//! Tier-1 invariant gate: runs the workspace analyzer exactly as
//! `cargo run -p memorydb-analysis` does and fails the build on any
//! violation or stale baseline entry. This is what makes the four invariant
//! families (panic-freedom, lock-discipline, sim-determinism,
//! sync-primitives) enforced properties rather than documentation — see
//! DESIGN.md, "Enforced invariants".

use memorydb_analysis::{analyze_source, apply_baseline, parse_baseline, run_gate, workspace_root};

#[test]
fn workspace_invariants_hold_and_baseline_is_tight() {
    let root = workspace_root();
    let outcome = match run_gate(&root) {
        Ok(o) => o,
        Err(errors) => panic!("analysis gate could not run:\n{}", errors.join("\n")),
    };

    let mut msg = String::new();
    for f in &outcome.violations {
        msg.push_str(&format!("violation: {f}\n"));
    }
    for e in &outcome.stale {
        msg.push_str(&format!(
            "stale baseline entry (fix merged? remove it): analysis.toml:{} [{}] {}\n",
            e.decl_line, e.lint, e.path
        ));
    }
    assert!(
        outcome.is_green(),
        "workspace invariant gate failed — run `cargo run -p memorydb-analysis` for details:\n{msg}"
    );
}

/// Every baseline exception must keep its one-line justification and a
/// count cap: an uncapped entry could silently absorb *new* violations of
/// the same shape, defeating the ratchet.
#[test]
fn baseline_entries_are_justified_and_capped() {
    let root = workspace_root();
    let src = std::fs::read_to_string(root.join("analysis.toml")).expect("read analysis.toml");
    let entries = parse_baseline(&src).expect("baseline parses");
    assert!(!entries.is_empty(), "expected a non-empty baseline");
    for e in &entries {
        assert!(
            e.reason.trim().len() >= 10,
            "analysis.toml:{}: reason too short to justify anything: {:?}",
            e.decl_line,
            e.reason
        );
        assert!(
            e.count.is_some(),
            "analysis.toml:{}: entry for [{}] {} has no count cap",
            e.decl_line,
            e.lint,
            e.path
        );
    }
}

/// Demonstrates the gate actually bites: seed a violation into a
/// serving-path file and check it surfaces as a finding that no baseline
/// entry absorbs.
#[test]
fn seeded_violation_fails_the_gate() {
    let seeded = r#"
        pub fn handle(frame: Option<u8>) -> u8 {
            frame.unwrap()
        }
    "#;
    let findings = analyze_source("crates/core/src/apply.rs", seeded);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].lint, "panic-freedom");

    let root = workspace_root();
    let src = std::fs::read_to_string(root.join("analysis.toml")).expect("read analysis.toml");
    let entries = parse_baseline(&src).expect("baseline parses");
    let outcome = apply_baseline(findings, &entries);
    assert_eq!(
        outcome.violations.len(),
        1,
        "the shipped baseline must not absorb an arbitrary new unwrap"
    );
}
