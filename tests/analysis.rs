//! Tier-1 invariant gate: runs the workspace analyzer exactly as
//! `cargo run -p memorydb-analysis` does and fails the build on any
//! violation or stale baseline entry. This is what makes the invariant
//! families (panic-freedom, lock-discipline, sim-determinism,
//! sync-primitives, durability-wait, stripe-order, atomics-ordering,
//! lock-order) enforced properties rather than documentation — see
//! DESIGN.md, "Enforced invariants".

use memorydb_analysis::{
    analyze_source, analyze_workspace_full, apply_baseline, parse_baseline, run_gate,
    workspace_root, AtomicClass,
};

#[test]
fn workspace_invariants_hold_and_baseline_is_tight() {
    let root = workspace_root();
    let outcome = match run_gate(&root) {
        Ok(o) => o,
        Err(errors) => panic!("analysis gate could not run:\n{}", errors.join("\n")),
    };

    let mut msg = String::new();
    for f in &outcome.violations {
        msg.push_str(&format!("violation: {f}\n"));
    }
    for e in &outcome.stale {
        // describe() prints the entry's key fields verbatim so the offending
        // [[allow]] block can be found by exact text search.
        msg.push_str(&format!(
            "stale baseline entry (fix merged? remove it): {}\n",
            e.describe()
        ));
    }
    assert!(
        outcome.is_green(),
        "workspace invariant gate failed — run `cargo run -p memorydb-analysis` for details:\n{msg}"
    );
}

/// Every baseline exception must keep its one-line justification and a
/// count cap: an uncapped entry could silently absorb *new* violations of
/// the same shape, defeating the ratchet.
#[test]
fn baseline_entries_are_justified_and_capped() {
    let root = workspace_root();
    let src = std::fs::read_to_string(root.join("analysis.toml")).expect("read analysis.toml");
    let entries = parse_baseline(&src).expect("baseline parses");
    assert!(!entries.is_empty(), "expected a non-empty baseline");
    for e in &entries {
        assert!(
            e.reason.trim().len() >= 10,
            "analysis.toml:{}: reason too short to justify anything: {:?}",
            e.decl_line,
            e.reason
        );
        assert!(
            e.count.is_some(),
            "analysis.toml:{}: entry for [{}] {} has no count cap",
            e.decl_line,
            e.lint,
            e.path
        );
    }
}

/// Demonstrates the gate actually bites: seed a violation into a
/// serving-path file and check it surfaces as a finding that no baseline
/// entry absorbs.
#[test]
fn seeded_violation_fails_the_gate() {
    let seeded = r#"
        pub fn handle(frame: Option<u8>) -> u8 {
            frame.unwrap()
        }
    "#;
    let findings = analyze_source("crates/core/src/apply.rs", seeded);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].lint, "panic-freedom");

    let root = workspace_root();
    let src = std::fs::read_to_string(root.join("analysis.toml")).expect("read analysis.toml");
    let entries = parse_baseline(&src).expect("baseline parses");
    let outcome = apply_baseline(findings, &entries);
    assert_eq!(
        outcome.violations.len(),
        1,
        "the shipped baseline must not absorb an arbitrary new unwrap"
    );
}

/// The real workspace's lock acquisition graph must be acyclic and must
/// contain the serving-path locks the commit pipeline is built from. A new
/// cycle is a potential deadlock: fix the acquisition order (the sanctioned
/// order is rendered in DESIGN.md §9) or justify the edge explicitly.
#[test]
fn lock_order_graph_is_acyclic_on_the_real_workspace() {
    let root = workspace_root();
    let analysis = analyze_workspace_full(&root).expect("walk workspace");
    let cycles = analysis.graph.cycles();
    assert!(
        cycles.is_empty(),
        "lock acquisition cycles (potential deadlocks):\n{cycles:#?}"
    );
    for node in [
        "core.stripes",
        "node.st",
        "node.flush_token",
        "pipeline.q",
        "pipeline.cq",
        "ticket.inner",
        "txlog.inner",
    ] {
        assert!(
            analysis.graph.nodes.contains(node),
            "serving-path lock `{node}` missing from the graph — did a rename \
             outdate the lockgraph identity table?\nnodes: {:?}",
            analysis.graph.nodes
        );
    }
    // The documented §11 order must appear as real edges.
    for (from, to) in [
        ("core.stripes", "node.st"),
        ("node.st", "pipeline.q"),
        ("node.flush_token", "pipeline.q"),
    ] {
        assert!(
            analysis
                .graph
                .edges
                .contains_key(&(from.to_string(), to.to_string())),
            "sanctioned edge {from} -> {to} not observed"
        );
    }
}

/// The atomics census is total: every `Ordering::Relaxed` site in non-test
/// code is classified (stats-scope / counter-rmw / scrutinized) and every
/// scrutinized site must be a finding the baseline either absorbs with a
/// written justification or the gate rejects — there is no silent bucket.
#[test]
fn atomics_census_has_no_silent_passes() {
    let root = workspace_root();
    let analysis = analyze_workspace_full(&root).expect("walk workspace");
    assert!(
        !analysis.atomics.is_empty(),
        "the workspace has Relaxed sites; an empty census means the scanner broke"
    );
    let scrutinized: Vec<_> = analysis
        .atomics
        .iter()
        .filter(|(_, s)| s.class == AtomicClass::Scrutinized)
        .collect();
    let findings: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| f.lint == "atomics-ordering")
        .collect();
    assert_eq!(
        scrutinized.len(),
        findings.len(),
        "every scrutinized Relaxed site must surface as exactly one finding\n\
         census: {scrutinized:#?}\nfindings: {findings:#?}"
    );
}

/// Named regressions for the handoff atomics the atomics-ordering lint
/// caught and this PR upgraded to Release/Acquire: none of these receivers
/// may ever appear in the Relaxed census again.
#[test]
fn regression_shutdown_and_stop_flags_are_not_relaxed() {
    let root = workspace_root();
    let analysis = analyze_workspace_full(&root).expect("walk workspace");
    for (file, site) in &analysis.atomics {
        // The stats scopes (bench drivers) legitimately poll their local
        // stop flags Relaxed; the regression pins the serving-path ones.
        if site.class == AtomicClass::StatsScope {
            continue;
        }
        assert!(
            site.receiver != "shutdown" && site.receiver != "stop" && site.receiver != "stop2",
            "{file}:{}: `{}.{}` went back to Relaxed — the server/txlog/monitor \
             stop flags gate thread teardown and need Release/Acquire",
            site.line,
            site.receiver,
            site.method
        );
    }
}

#[test]
fn regression_ticket_stamps_are_not_relaxed() {
    let root = workspace_root();
    let analysis = analyze_workspace_full(&root).expect("walk workspace");
    for (file, site) in &analysis.atomics {
        assert!(
            site.receiver != "enqueued_us" && site.receiver != "appended_us",
            "{file}:{}: `{}.{}` went back to Relaxed — the ticket stage stamps \
             are read by the completer across the commit handoff",
            site.line,
            site.receiver,
            site.method
        );
    }
}
