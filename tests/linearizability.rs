//! The paper's §7.2.2 consistency validation, end to end: concurrent
//! clients run against the real threaded MemoryDB stack (with commit
//! latency, hazards, failovers and partitions), their histories are
//! recorded, and the linearizability checker must accept them.
//!
//! A deliberately broken configuration (reading from a lagging replica
//! without the sequential-consistency pinning) must be REJECTED, proving
//! the checker has teeth.

use memorydb::consistency::{check, CheckOutcome, HistoryRecorder, KvInput, KvModel, KvOutput};
use memorydb::core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb::engine::{cmd, Frame, SessionState};
use memorydb::objectstore::ObjectStore;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn new_shard(replicas: usize, commit_ms: u64) -> Arc<Shard> {
    let cfg = ShardConfig {
        log: memorydb::txlog::LogConfig {
            latency: memorydb::txlog::CommitLatency {
                base: Duration::from_millis(commit_ms),
                jitter: Duration::from_millis(commit_ms / 2),
            },
            ..memorydb::txlog::LogConfig::default()
        },
        ..ShardConfig::fast()
    };
    Shard::bootstrap(
        0,
        cfg,
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        replicas,
    )
}

fn frame_to_value(frame: &Frame) -> KvOutput {
    match frame {
        Frame::Bulk(b) => KvOutput::Value(Some(String::from_utf8_lossy(b).into_owned())),
        Frame::Null => KvOutput::Value(None),
        Frame::Integer(n) => KvOutput::Int(*n),
        Frame::Simple(s) if s == "OK" => KvOutput::Ok,
        _ => KvOutput::Error,
    }
}

const CHECK_BUDGET: Duration = Duration::from_secs(30);

#[test]
fn primary_reads_and_writes_are_linearizable_steady_state() {
    // No failures; rich op mix over a tiny key domain (argument biasing).
    let shard = new_shard(1, 2);
    let primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    let recorder: HistoryRecorder<KvInput, KvOutput> = HistoryRecorder::new();
    let stop = Arc::new(AtomicBool::new(false));

    let mut workers = Vec::new();
    for client in 0..6usize {
        let primary = Arc::clone(&primary);
        let recorder = recorder.clone();
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut session = SessionState::new();
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                let key = format!("k{}", (client as u64 + n) % 3);
                let (input, args) = match n % 5 {
                    0 => (
                        KvInput::Set(key.clone(), format!("v{client}-{n}")),
                        cmd(["SET", key.as_str(), &format!("v{client}-{n}")]),
                    ),
                    1 | 3 => (KvInput::Get(key.clone()), cmd(["GET", key.as_str()])),
                    2 => (KvInput::Del(key.clone()), cmd(["DEL", key.as_str()])),
                    _ => (KvInput::Incr(key.clone()), cmd(["INCR", key.as_str()])),
                };
                let handle = recorder.begin(client, input);
                let reply = primary.handle(&mut session, &args);
                match &reply {
                    // INCR on a non-numeric value is a legitimate engine
                    // error, not a consistency event: record nothing (the
                    // op had no effect).
                    Frame::Error(_) => {}
                    _ => recorder.finish(handle, frame_to_value(&reply)),
                }
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(700));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let history = recorder.take();
    assert!(history.len() > 200, "history too small: {}", history.len());
    assert_eq!(
        check(&KvModel, history, CHECK_BUDGET),
        CheckOutcome::Ok,
        "steady-state history must be linearizable"
    );
}

#[test]
fn linearizable_across_a_primary_crash() {
    // Unique-value SETs with retry-until-ack (recording the whole retry
    // window as the operation interval) + GETs, across a mid-run crash.
    let shard = new_shard(2, 1);
    let recorder: HistoryRecorder<KvInput, KvOutput> = HistoryRecorder::new();
    let stop = Arc::new(AtomicBool::new(false));

    let current_primary = |shard: &Shard| {
        shard
            .wait_for_primary(Duration::from_secs(10))
            .expect("a primary eventually exists")
    };
    current_primary(&shard);

    let mut workers = Vec::new();
    for client in 0..5usize {
        let shard = Arc::clone(&shard);
        let recorder = recorder.clone();
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut session = SessionState::new();
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                let key = format!("k{}", n % 3);
                if n.is_multiple_of(3) {
                    // Unique-value write, retried until acknowledged; the
                    // recorded interval spans every attempt, so any attempt
                    // that silently committed still lies inside it.
                    let value = format!("c{client}n{n}");
                    let handle = recorder.begin(client, KvInput::Set(key.clone(), value.clone()));
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            return; // ambiguous tail op: dropped, permissive
                        }
                        let p = shard
                            .wait_for_primary(Duration::from_secs(10))
                            .expect("primary");
                        let reply =
                            p.handle(&mut session, &cmd(["SET", key.as_str(), value.as_str()]));
                        if reply == Frame::ok() {
                            recorder.finish(handle, KvOutput::Ok);
                            break;
                        }
                    }
                } else {
                    let p = shard
                        .wait_for_primary(Duration::from_secs(10))
                        .expect("primary");
                    let handle = recorder.begin(client, KvInput::Get(key.clone()));
                    let reply = p.handle(&mut session, &cmd(["GET", key.as_str()]));
                    match &reply {
                        Frame::Error(_) => {} // mid-failover refusal: no-op
                        _ => recorder.finish(handle, frame_to_value(&reply)),
                    }
                }
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(300));
    let victim = shard.primary().expect("primary to crash");
    victim.crash();
    std::thread::sleep(Duration::from_millis(700));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    let history = recorder.take();
    assert!(history.len() > 100, "history too small: {}", history.len());
    assert_eq!(
        check(&KvModel, history, CHECK_BUDGET),
        CheckOutcome::Ok,
        "history across a failover must be linearizable (paper §4.1.2)"
    );
}

#[test]
fn lagging_replica_reads_break_linearizability_and_are_caught() {
    // Negative control: interleave primary writes with reads served by a
    // *lagging* replica. The combined history claims linearizable
    // single-object semantics it does not have; the checker must reject it.
    let cfg = ShardConfig {
        log: memorydb::txlog::LogConfig {
            latency: memorydb::txlog::CommitLatency {
                base: Duration::from_millis(1),
                jitter: Duration::ZERO,
            },
            ..memorydb::txlog::LogConfig::default()
        },
        ..ShardConfig::fast()
    };
    let shard = Shard::bootstrap(
        0,
        cfg,
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        1,
    );
    let primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    let replica = shard.replicas().into_iter().next().unwrap();
    // Freeze the replica's log consumption: it keeps serving its stale view.
    shard.ctx().log.set_client_partitioned(replica.id, true);

    let recorder: HistoryRecorder<KvInput, KvOutput> = HistoryRecorder::new();
    let mut session = SessionState::new();

    // Establish a baseline value, then let it replicate... except the
    // replica is frozen, so it still sees nothing.
    let h = recorder.begin(0, KvInput::Set("k0".into(), "first".into()));
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "k0", "first"])),
        Frame::ok()
    );
    recorder.finish(h, KvOutput::Ok);

    // A sequential read from the frozen replica observes None AFTER the
    // write completed — a stale read, illegal under linearizability.
    let mut rs = SessionState::new();
    let h = recorder.begin(1, KvInput::Get("k0".into()));
    let reply = replica.handle(&mut rs, &cmd(["GET", "k0"]));
    recorder.finish(h, frame_to_value(&reply));

    let history = recorder.take();
    assert_eq!(
        check(&KvModel, history, CHECK_BUDGET),
        CheckOutcome::Illegal,
        "stale replica reads must be flagged as non-linearizable"
    );
}
