//! Cross-crate integration scenarios: upgrade protection (§7.1), snapshot
//! verification + trimming + restore (§4.2/§7.2.1), the WAIT contract, and
//! the baseline-vs-MemoryDB durability comparison end to end.

use memorydb::core::{ClusterBus, HaltReason, NodeIdGen, OffboxSnapshotter, Shard, ShardConfig};
use memorydb::engine::{cmd, EngineVersion, Frame, SessionState};
use memorydb::objectstore::ObjectStore;
use std::sync::Arc;
use std::time::Duration;

const T: Duration = Duration::from_secs(10);

fn new_shard(replicas: usize) -> Arc<Shard> {
    Shard::bootstrap(
        0,
        ShardConfig::fast(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        replicas,
    )
}

fn bulk(s: &str) -> Frame {
    Frame::Bulk(bytes::Bytes::copy_from_slice(s.as_bytes()))
}

#[test]
fn upgrade_protection_stalls_older_replicas() {
    // §7.1: during a rolling upgrade a replica running an OLDER engine must
    // stop consuming a stream produced by a NEWER engine rather than
    // misinterpret it.
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    primary.handle(&mut session, &cmd(["SET", "before", "1"]));

    // An old-engine replica joins (e.g. a node not yet upgraded).
    let old_replica = shard.add_node_with_version(EngineVersion::new(6, 2, 0));
    // It can consume the 7.0.7 stream? No: 6.2.0 < 7.0.7, so it must stall
    // on the very first Effects record.
    let deadline = std::time::Instant::now() + T;
    loop {
        if let Some(halt) = old_replica.halted() {
            assert_eq!(
                halt,
                HaltReason::StalledUpgrade(EngineVersion::new(7, 0, 7))
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "old replica should have stalled on the newer stream"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // A same-or-newer replica consumes the stream fine.
    let new_replica = shard.add_node_with_version(EngineVersion::new(7, 1, 0));
    primary.handle(&mut session, &cmd(["SET", "after", "2"]));
    let deadline = std::time::Instant::now() + T;
    loop {
        let mut s = SessionState::new();
        if new_replica.handle(&mut s, &cmd(["GET", "after"])) == bulk("2") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "new replica must catch up"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The stalled replica never campaigns: crash the primary and confirm
    // only the compatible replica takes over.
    primary.crash();
    let new_primary = shard.wait_for_primary(T).expect("failover");
    assert_eq!(new_primary.id, new_replica.id);
}

#[test]
fn snapshot_trim_restore_cycle() {
    // The full §4.2 lifecycle: write → off-box snapshot (verified) → trim →
    // more writes → cold restore from snapshot + suffix.
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..50 {
        primary.handle(&mut session, &cmd(["SET", &format!("a{i}"), "1"]));
    }
    let offbox = OffboxSnapshotter::new(Arc::clone(shard.ctx()), EngineVersion::CURRENT, 500);
    let (_, covered1) = offbox.create_snapshot(true).unwrap();
    // Log trimmed: the prefix is gone.
    assert!(shard.ctx().log.first_available() > memorydb::txlog::EntryId::ZERO.next());

    for i in 0..50 {
        primary.handle(&mut session, &cmd(["SET", &format!("b{i}"), "2"]));
    }
    // Second snapshot must cover strictly more than the first ("guaranteed
    // to be fresher than any previous snapshot", §4.2.2).
    let (_, covered2) = offbox.create_snapshot(true).unwrap();
    assert!(covered2 > covered1);

    for i in 0..25 {
        primary.handle(&mut session, &cmd(["SET", &format!("c{i}"), "3"]));
    }
    // Cold restore: a brand-new replica gets everything.
    let replica = shard.add_node();
    assert!(shard.wait_replicas_caught_up(T));
    let mut s = SessionState::new();
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "a25"])), bulk("1"));
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "b49"])), bulk("2"));
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "c24"])), bulk("3"));
    assert_eq!(
        replica.handle(&mut s, &cmd(["DBSIZE"])),
        Frame::Integer(125)
    );
}

#[test]
fn parallel_restores_share_nothing_with_peers() {
    // §4.2.1: restoration is local to each restoring replica — many can
    // restore at once without touching the primary.
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..100 {
        primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
    }
    let offbox = OffboxSnapshotter::new(Arc::clone(shard.ctx()), EngineVersion::CURRENT, 501);
    offbox.create_snapshot(true).unwrap();
    // Three replicas restore in parallel.
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let shard = Arc::clone(&shard);
            std::thread::spawn(move || shard.add_node())
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(shard.wait_replicas_caught_up(T));
    assert_eq!(shard.replicas().len(), 3);
    for r in shard.replicas() {
        assert_eq!(r.key_count(), 100);
    }
}

#[test]
fn only_verified_snapshots_are_served() {
    // §7.2.1: a corrupt snapshot must fail verification at fetch time; the
    // off-box snapshotter refuses to publish from a corrupt base.
    let shard = new_shard(0);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..30 {
        primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"]));
    }
    let offbox = OffboxSnapshotter::new(Arc::clone(shard.ctx()), EngineVersion::CURRENT, 502);
    let (key, _) = offbox.create_snapshot(false).unwrap();
    assert!(shard.ctx().store.corrupt_for_test(&key));
    // Fetch (what any restoring replica does) fails closed: the only
    // candidate is the corrupt manifest, so there is nothing to fall
    // back to and the chain-aware fetch reports the corruption.
    assert!(
        memorydb::core::manifest::fetch_latest_image(&shard.ctx().store, &shard.ctx().name, 1)
            .is_err()
    );
    assert!(memorydb::core::manifest::newest_restorable_covered(
        &shard.ctx().store,
        &shard.ctx().name
    )
    .is_none());
    // And a new off-box run from the corrupt base fails rather than
    // producing a bogus "fresher" snapshot.
    assert!(offbox.create_snapshot(false).is_err());
}

#[test]
fn wait_is_trivially_satisfied_by_durability() {
    // §3.2: every acknowledged write is already durable across AZs, so WAIT
    // never blocks and reports the replica count.
    let shard = new_shard(2);
    let primary = shard.wait_for_primary(T).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // heartbeats
    let mut session = SessionState::new();
    assert_eq!(
        primary.handle(&mut session, &cmd(["SET", "k", "v"])),
        Frame::ok()
    );
    let t0 = std::time::Instant::now();
    let reply = primary.handle(&mut session, &cmd(["WAIT", "2", "1000"]));
    assert_eq!(reply, Frame::Integer(2));
    assert!(
        t0.elapsed() < Duration::from_millis(100),
        "WAIT must not block"
    );
}

#[test]
fn baseline_loses_what_memorydb_keeps() {
    // The paper's thesis in one test, across both stacks.
    use memorydb::baseline::{failover, RedisShard, ReplicationConfig};

    let writes = 80;

    // Redis with replication lag.
    let redis = RedisShard::new(
        ReplicationConfig {
            lag: Duration::from_millis(200),
        },
        1,
    );
    let mut session = SessionState::new();
    for i in 0..writes {
        assert_eq!(
            redis.execute(&mut session, &cmd(["SET", &format!("k{i}"), "v"])),
            Frame::ok()
        );
    }
    redis.kill_primary();
    let report = failover::elect_and_promote(&redis);
    assert!(
        report.lost_writes > 0,
        "baseline must lose acked writes here"
    );

    // MemoryDB, same scenario.
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 0..writes {
        assert_eq!(
            primary.handle(&mut session, &cmd(["SET", &format!("k{i}"), "v"])),
            Frame::ok()
        );
    }
    primary.crash();
    let new_primary = shard.wait_for_primary(T).unwrap();
    let mut s = SessionState::new();
    for i in 0..writes {
        assert_eq!(
            new_primary.handle(&mut s, &cmd(["GET", &format!("k{i}")])),
            bulk("v"),
            "memorydb lost k{i}"
        );
    }
}

#[test]
fn transactions_commit_atomically_through_the_log() {
    // MULTI/EXEC effects form one atomic log record; a replica never
    // observes half a transaction.
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    primary.handle(&mut session, &cmd(["MULTI"]));
    primary.handle(&mut session, &cmd(["SET", "{t}a", "1"]));
    primary.handle(&mut session, &cmd(["SET", "{t}b", "2"]));
    primary.handle(&mut session, &cmd(["INCR", "{t}count"]));
    let out = primary.handle(&mut session, &cmd(["EXEC"]));
    assert_eq!(
        out,
        Frame::Array(vec![Frame::ok(), Frame::ok(), Frame::Integer(1)])
    );
    assert!(shard.wait_replicas_caught_up(T));
    let replica = shard.replicas().into_iter().next().unwrap();
    let mut s = SessionState::new();
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "{t}a"])), bulk("1"));
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "{t}b"])), bulk("2"));
    assert_eq!(replica.handle(&mut s, &cmd(["GET", "{t}count"])), bulk("1"));
}

#[test]
fn scripts_execute_atomically_and_replicate_by_effect() {
    // §2.1's scripting model on the full stack: the script runs once on the
    // primary; replicas converge via its effects.
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    primary.handle(&mut session, &cmd(["SADD", "{s}pool", "a", "b", "c", "d"]));
    let script = "LET winner = CALL SPOP $KEYS[1]\n\
                  CALL SET $KEYS[2] $winner\n\
                  RETURN $winner";
    let reply = primary.handle(
        &mut session,
        &cmd(["EVAL", script, "2", "{s}pool", "{s}winner"]),
    );
    let Frame::Bulk(winner) = reply else {
        panic!("expected winner, got {reply:?}");
    };
    assert!(shard.wait_replicas_caught_up(T));
    let replica = shard.replicas().into_iter().next().unwrap();
    let mut s = SessionState::new();
    // The replica stored the same randomly chosen winner.
    assert_eq!(
        replica.handle(&mut s, &cmd(["GET", "{s}winner"])),
        Frame::Bulk(winner.clone())
    );
    // And its pool no longer contains it.
    assert_eq!(
        replica.handle(
            &mut s,
            &cmd(["SISMEMBER", "{s}pool", &String::from_utf8_lossy(&winner)])
        ),
        Frame::Integer(0)
    );
    assert_eq!(
        replica.handle(&mut s, &cmd(["SCARD", "{s}pool"])),
        Frame::Integer(3)
    );
}

#[test]
fn consumer_groups_survive_replication_and_failover() {
    // Stream consumer-group state (cursors, PEL, claims) flows through the
    // transaction log as deterministic effects; after a failover the new
    // primary serves the same group state.
    let shard = new_shard(1);
    let primary = shard.wait_for_primary(T).unwrap();
    let mut session = SessionState::new();
    for i in 1..=5 {
        primary.handle(
            &mut session,
            &cmd(["XADD", "jobs", &format!("{i}-0"), "job", &i.to_string()]),
        );
    }
    assert_eq!(
        primary.handle(
            &mut session,
            &cmd(["XGROUP", "CREATE", "jobs", "workers", "0"])
        ),
        Frame::ok()
    );
    // Worker A takes three jobs, acks one; worker B claims one of A's.
    primary.handle(
        &mut session,
        &cmd([
            "XREADGROUP",
            "GROUP",
            "workers",
            "a",
            "COUNT",
            "3",
            "STREAMS",
            "jobs",
            ">",
        ]),
    );
    assert_eq!(
        primary.handle(&mut session, &cmd(["XACK", "jobs", "workers", "1-0"])),
        Frame::Integer(1)
    );
    primary.handle(
        &mut session,
        &cmd(["XCLAIM", "jobs", "workers", "b", "0", "2-0"]),
    );

    assert!(shard.wait_replicas_caught_up(T));
    let replica = shard.replicas().into_iter().next().unwrap();
    let mut s = SessionState::new();
    let pending = replica.handle(&mut s, &cmd(["XPENDING", "jobs", "workers"]));
    assert_eq!(
        pending.as_array().unwrap()[0],
        Frame::Integer(2),
        "{pending:?}"
    );

    // Failover: the new primary (ex-replica) carries the group state.
    primary.crash();
    let new_primary = shard.wait_for_primary(T).unwrap();
    let mut s = SessionState::new();
    // Job 2 now belongs to b.
    let rows = new_primary.handle(
        &mut s,
        &cmd(["XPENDING", "jobs", "workers", "-", "+", "10"]),
    );
    let rows = rows.as_array().unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].as_array().unwrap()[1], bulk("b"));
    // Undelivered jobs 4 and 5 are still deliverable to a new worker.
    let reply = new_primary.handle(
        &mut s,
        &cmd([
            "XREADGROUP",
            "GROUP",
            "workers",
            "c",
            "STREAMS",
            "jobs",
            ">",
        ]),
    );
    let entries = reply.as_array().unwrap()[0].as_array().unwrap()[1]
        .as_array()
        .unwrap();
    assert_eq!(entries.len(), 2);
}
