//! Wire-level integration: multiple RESP TCP servers fronting a cluster,
//! driven concurrently while the cluster reshards and fails over.

use memorydb::core::migration::migrate_slot;
use memorydb::core::{Cluster, ClusterClient, ShardConfig};
use memorydb::engine::{key_hash_slot, Frame};
use memorydb::server::{BlockingClient, Server};
use std::sync::Arc;
use std::time::Duration;

const T: Duration = Duration::from_secs(10);

#[test]
fn tcp_servers_over_a_two_shard_cluster() {
    let cluster = Cluster::launch(ShardConfig::fast(), 2, 0);
    let mut servers = Vec::new();
    for shard in cluster.shards() {
        let primary = shard.wait_for_primary(T).unwrap();
        servers.push(Server::start(primary, "127.0.0.1:0").unwrap());
    }
    // Each server owns half the slots; a client must target the right one
    // or get MOVED.
    let slot_of_foo = key_hash_slot(b"foo"); // 12182 → second shard
    let owner_idx = usize::from(slot_of_foo >= 8192);
    let mut right = BlockingClient::connect(servers[owner_idx].local_addr).unwrap();
    let mut wrong = BlockingClient::connect(servers[1 - owner_idx].local_addr).unwrap();
    assert_eq!(right.command(["SET", "foo", "1"]).unwrap(), Frame::ok());
    match wrong.command(["SET", "foo", "2"]).unwrap() {
        Frame::Error(msg) => assert!(msg.starts_with("MOVED"), "{msg}"),
        other => panic!("expected MOVED, got {other:?}"),
    }
    assert_eq!(
        right.command(["GET", "foo"]).unwrap(),
        Frame::Bulk(bytes::Bytes::from_static(b"1"))
    );
    // CLUSTER KEYSLOT agrees over the wire.
    assert_eq!(
        right.command(["CLUSTER", "KEYSLOT", "foo"]).unwrap(),
        Frame::Integer(slot_of_foo as i64)
    );
}

#[test]
fn cluster_client_survives_failover_and_resharding_concurrently() {
    let cluster = Cluster::launch(ShardConfig::fast(), 2, 1);
    for shard in cluster.shards() {
        shard.wait_for_primary(T).unwrap();
    }

    // Concurrent writers through the routing client.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut writers = Vec::new();
    for w in 0..4u32 {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut client = ClusterClient::new(cluster);
            let mut acked = Vec::new();
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let key = format!("w{w}:k{i}");
                if client.command(["SET", key.as_str(), "v"]) == Frame::ok() {
                    acked.push(key);
                }
                i += 1;
            }
            acked
        }));
    }

    std::thread::sleep(Duration::from_millis(100));
    // Chaos: fail over shard 0 while migrating slots from shard 1 to 0.
    let shard0 = cluster.shards()[0].clone();
    let shard1 = cluster.shards()[1].clone();
    shard0.crash_primary();
    for slot in 8192u16..8200 {
        migrate_slot(&shard1, &shard0, slot).expect("migration during failover");
    }
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    let mut all_acked = Vec::new();
    for w in writers {
        all_acked.extend(w.join().unwrap());
    }
    assert!(!all_acked.is_empty());

    // Every acknowledged write is durable and reachable.
    let mut client = ClusterClient::new(Arc::clone(&cluster));
    for key in &all_acked {
        assert_eq!(
            client.command(["GET", key.as_str()]),
            Frame::Bulk(bytes::Bytes::from_static(b"v")),
            "acked write {key} lost amid failover + resharding"
        );
    }
}

#[test]
fn readonly_replica_scaling_over_tcp() {
    let cluster = Cluster::launch(ShardConfig::fast(), 1, 2);
    let shard = cluster.shards()[0].clone();
    let primary = shard.wait_for_primary(T).unwrap();
    let primary_srv = Server::start(Arc::clone(&primary), "127.0.0.1:0").unwrap();
    let mut wclient = BlockingClient::connect(primary_srv.local_addr).unwrap();
    for i in 0..20 {
        let key = format!("k{i}");
        assert_eq!(
            wclient.command(["SET", key.as_str(), "v"]).unwrap(),
            Frame::ok()
        );
    }
    assert!(shard.wait_replicas_caught_up(T));
    // Two replica endpoints for read scaling, each requiring the opt-in.
    for replica in shard.replicas() {
        let srv = Server::start(replica, "127.0.0.1:0").unwrap();
        let mut rclient = BlockingClient::connect(srv.local_addr).unwrap();
        assert_eq!(rclient.command(["READONLY"]).unwrap(), Frame::ok());
        assert_eq!(
            rclient.command(["GET", "k7"]).unwrap(),
            Frame::Bulk(bytes::Bytes::from_static(b"v"))
        );
        assert_eq!(rclient.command(["DBSIZE"]).unwrap(), Frame::Integer(20));
    }
}
