//! Torture test: sustained concurrent load against a multi-shard cluster
//! while failovers, node replacements, off-box snapshots with log trimming,
//! and slot migrations all happen at once. Invariants checked afterwards:
//!
//! 1. **Zero acknowledged-write loss** (the paper's durability claim).
//! 2. Exactly one active primary per shard (leader singularity).
//! 3. Replicas converge to the committed tail and none are halted.
//! 4. The slot map still covers all 16384 slots exactly once.

use memorydb::core::migration::migrate_slot;
use memorydb::core::{Cluster, ClusterClient, MonitoringService, ShardConfig};
use memorydb::engine::Frame;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn cluster_survives_sustained_chaos() {
    let cluster = Cluster::launch(ShardConfig::fast(), 2, 1);
    for shard in cluster.shards() {
        shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    }
    let monitor = Arc::new(MonitoringService::new(cluster.shards(), 1));

    let stop = Arc::new(AtomicBool::new(false));
    // Writers: unique keys, retry until acknowledged.
    let mut writers = Vec::new();
    for w in 0..4u32 {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut client = ClusterClient::new(cluster);
            client.max_retries = 200;
            let mut acked = Vec::new();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("w{w}:k{i}");
                if client.command(["SET", key.as_str(), "v"]) == Frame::ok() {
                    acked.push(key);
                }
                i += 1;
            }
            acked
        }));
    }
    // Readers: hammer GETs (their replies only need to not wedge).
    let mut readers = Vec::new();
    for r in 0..2u32 {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut client = ClusterClient::new(cluster);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("w{}:k{}", r, i % 50);
                let _ = client.command(["GET", key.as_str()]);
                i += 1;
            }
        }));
    }

    // The chaos schedule.
    let shard0 = cluster.shards()[0].clone();
    let shard1 = cluster.shards()[1].clone();

    std::thread::sleep(Duration::from_millis(150));
    shard0.crash_primary();

    std::thread::sleep(Duration::from_millis(150));
    // Slot migrations while shard 0 is mid-failover recovery.
    for slot in 8192u16..8196 {
        migrate_slot(&shard1, &shard0, slot).expect("migration under chaos");
    }

    std::thread::sleep(Duration::from_millis(150));
    shard1.crash_primary();
    monitor.tick(); // replace dead nodes

    std::thread::sleep(Duration::from_millis(150));
    // Off-box snapshots + trims on both shards, mid-traffic.
    for shard in cluster.shards() {
        let offbox = memorydb::core::OffboxSnapshotter::new(
            Arc::clone(shard.ctx()),
            memorydb::engine::EngineVersion::CURRENT,
            700_000 + shard.id as u64,
        );
        offbox
            .create_snapshot(true)
            .expect("off-box snapshot under load");
    }

    std::thread::sleep(Duration::from_millis(150));
    // Another round of failover + repair.
    shard0.crash_primary();
    monitor.tick();
    std::thread::sleep(Duration::from_millis(300));

    stop.store(true, Ordering::Relaxed);
    let mut acked = Vec::new();
    for w in writers {
        acked.extend(w.join().unwrap());
    }
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        acked.len() > 100,
        "chaos run acked too few writes: {}",
        acked.len()
    );

    // Invariant 1: nothing acknowledged is lost.
    let mut client = ClusterClient::new(Arc::clone(&cluster));
    client.max_retries = 200;
    for key in &acked {
        assert_eq!(
            client.command(["GET", key.as_str()]),
            Frame::Bulk(bytes::Bytes::from_static(b"v")),
            "acknowledged write {key} lost under chaos"
        );
    }

    // Invariant 2: leader singularity per shard.
    for shard in cluster.shards() {
        shard.wait_for_primary(Duration::from_secs(10)).unwrap();
        let actives = shard
            .nodes()
            .iter()
            .filter(|n| n.is_active_primary())
            .count();
        assert_eq!(
            actives, 1,
            "shard {} has {actives} active primaries",
            shard.id
        );
    }

    // Invariant 3: replicas converge, none halted.
    for shard in cluster.shards() {
        assert!(
            shard.wait_replicas_caught_up(Duration::from_secs(10)),
            "shard {} replicas failed to converge",
            shard.id
        );
        for r in shard.replicas() {
            assert!(
                r.halted().is_none(),
                "replica {} halted: {:?}",
                r.id,
                r.halted()
            );
        }
    }

    // Invariant 4: the slot map is a partition of 0..16384.
    let map = cluster.slot_map();
    let mut covered = vec![false; 16384];
    for (lo, hi, _) in &map {
        for s in *lo..=*hi {
            assert!(!covered[s as usize], "slot {s} owned twice: {map:?}");
            covered[s as usize] = true;
        }
    }
    assert!(covered.iter().all(|c| *c), "slots uncovered: {map:?}");
}
