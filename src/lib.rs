//! # memorydb — facade crate
//!
//! A from-scratch Rust reproduction of *Amazon MemoryDB: A Fast and Durable
//! Memory-First Cloud Database* (SIGMOD 2024). This crate re-exports every
//! subsystem so examples and downstream users need a single dependency:
//!
//! * [`engine`] — the Redis-like in-memory execution engine.
//! * [`txlog`] — the multi-AZ durable transaction log service.
//! * [`objectstore`] — the S3-like snapshot store.
//! * [`core`] — the MemoryDB shard/cluster built on top of the three above
//!   (the paper's contribution).
//! * [`baseline`] — OSS-Redis-style async replication/failover/AOF/BGSave,
//!   the paper's comparison baseline.
//! * [`consistency`] — linearizability checker and consistency test
//!   framework (paper §7.2.2).
//! * [`sim`] — the discrete-event simulator used to regenerate the
//!   evaluation figures.
//! * [`resp`] — the RESP wire protocol.
//! * [`server`] — a threaded TCP server speaking RESP.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory; `EXPERIMENTS.md` records paper-vs-measured results for every
//! figure.
//!
//! # Example: a durable shard surviving a primary crash
//!
//! ```
//! use memorydb::core::{Shard, ShardConfig, ClusterBus, NodeIdGen};
//! use memorydb::engine::{cmd, Frame, SessionState};
//! use memorydb::objectstore::ObjectStore;
//! use std::{sync::Arc, time::Duration};
//!
//! let shard = Shard::bootstrap(
//!     0, ShardConfig::fast(),
//!     Arc::new(ObjectStore::new()), Arc::new(ClusterBus::new()),
//!     Arc::new(NodeIdGen::new()), vec![(0, 16383)], /*replicas*/ 1,
//! );
//! let primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
//! let mut session = SessionState::new();
//!
//! // The reply is withheld until the write is durable on a quorum of AZs.
//! assert_eq!(primary.handle(&mut session, &cmd(["SET", "k", "v"])), Frame::ok());
//!
//! // Crash the primary: a caught-up replica wins the election via a
//! // conditional append on the transaction log. Nothing acknowledged is lost.
//! primary.crash();
//! let successor = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
//! let mut s = SessionState::new();
//! assert_eq!(
//!     successor.handle(&mut s, &cmd(["GET", "k"])),
//!     Frame::Bulk(bytes::Bytes::from_static(b"v")),
//! );
//! ```

pub use memorydb_baseline as baseline;
pub use memorydb_consistency as consistency;
pub use memorydb_core as core;
pub use memorydb_engine as engine;
pub use memorydb_metrics as metrics;
pub use memorydb_objectstore as objectstore;
pub use memorydb_resp as resp;
pub use memorydb_server as server;
pub use memorydb_sim as sim;
pub use memorydb_txlog as txlog;
