//! The keyspace: key → value entries with expiration, a per-slot index for
//! cluster migration, per-key versions for `WATCH`, and SCAN support.

use crate::slots::key_hash_slot;
use crate::value::Value;
use bytes::Bytes;
use std::collections::{HashMap, HashSet};

/// One keyspace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The stored value.
    pub value: Value,
    /// Absolute expiry in engine milliseconds, if any.
    pub expire_at: Option<u64>,
}

/// The keyspace of a single shard.
///
/// Besides the main hash map it maintains:
/// * a dense key vector for O(1) `RANDOMKEY` and cursor-based `SCAN`;
/// * a slot → keys index, used by slot migration (paper §5.2) and
///   `CLUSTER GETKEYSINSLOT`;
/// * per-key modification versions driving `WATCH`;
/// * an index of keys carrying a TTL, for the active expiry cycle.
#[derive(Debug, Default, Clone)]
pub struct Db {
    entries: HashMap<Bytes, Entry>,
    key_list: Vec<Bytes>,
    key_pos: HashMap<Bytes, usize>,
    slot_index: HashMap<u16, HashSet<Bytes>>,
    expires: HashSet<Bytes>,
    versions: HashMap<Bytes, u64>,
    version_counter: u64,
    /// Count of state-changing operations since creation (Redis's `dirty`).
    pub dirty: u64,
}

impl Db {
    /// Creates an empty keyspace.
    pub fn new() -> Db {
        Db::default()
    }

    /// Number of live keys (including logically expired but unreaped ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Is the entry at `key` logically expired at `now_ms`?
    fn is_expired(&self, key: &[u8], now_ms: u64) -> bool {
        self.entries
            .get(key)
            .and_then(|e| e.expire_at)
            .is_some_and(|t| t <= now_ms)
    }

    /// Immutable lookup; logically expired keys read as absent.
    pub fn lookup(&self, key: &[u8], now_ms: u64) -> Option<&Value> {
        let e = self.entries.get(key)?;
        if e.expire_at.is_some_and(|t| t <= now_ms) {
            None
        } else {
            Some(&e.value)
        }
    }

    /// Mutable lookup; logically expired keys read as absent. The caller is
    /// responsible for calling [`Db::signal_modified`] if it mutates.
    pub fn lookup_mut(&mut self, key: &[u8], now_ms: u64) -> Option<&mut Value> {
        if self.is_expired(key, now_ms) {
            return None;
        }
        self.entries.get_mut(key).map(|e| &mut e.value)
    }

    /// If `key` is logically expired, removes it and returns `true`.
    ///
    /// The primary calls this on access and turns the reap into an explicit
    /// `DEL` effect for the replication stream; replicas never call it and
    /// instead wait for the primary's `DEL` (paper §2.1 determinism rule).
    pub fn reap_if_expired(&mut self, key: &[u8], now_ms: u64) -> bool {
        if self.is_expired(key, now_ms) {
            self.remove(key);
            true
        } else {
            false
        }
    }

    /// Inserts or replaces the value at `key`, clearing any TTL (Redis `SET`
    /// semantics; use [`Db::set_expiry`] afterwards to retain one).
    pub fn set_value(&mut self, key: Bytes, value: Value) {
        self.signal_modified(&key);
        if let Some(e) = self.entries.get_mut(&key) {
            e.value = value;
            e.expire_at = None;
            self.expires.remove(&key);
            return;
        }
        self.index_insert(key.clone());
        self.entries.insert(
            key,
            Entry {
                value,
                expire_at: None,
            },
        );
    }

    /// Inserts a value preserving an existing TTL if the key already exists
    /// (the `KEEPTTL` path and in-place aggregate creation).
    pub fn set_value_keep_ttl(&mut self, key: Bytes, value: Value) {
        self.signal_modified(&key);
        if let Some(e) = self.entries.get_mut(&key) {
            e.value = value;
            return;
        }
        self.index_insert(key.clone());
        self.entries.insert(
            key,
            Entry {
                value,
                expire_at: None,
            },
        );
    }

    /// Fetches or creates an aggregate value via `default`, returning a
    /// mutable reference. The caller must [`Db::signal_modified`] on change.
    pub fn entry_or_insert_with(
        &mut self,
        key: &Bytes,
        now_ms: u64,
        default: impl FnOnce() -> Value,
    ) -> &mut Value {
        if self.is_expired(key, now_ms) {
            self.remove(key);
        }
        if !self.entries.contains_key(key) {
            self.index_insert(key.clone());
            self.entries.insert(
                key.clone(),
                Entry {
                    value: default(),
                    expire_at: None,
                },
            );
        }
        &mut self.entries.get_mut(key).expect("inserted above").value
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &[u8]) -> Option<Value> {
        let entry = self.entries.remove(key)?;
        self.index_remove(key);
        self.expires.remove(key);
        self.signal_modified(key);
        Some(entry.value)
    }

    /// Removes the key if its container value became empty (Redis deletes
    /// empty aggregates).
    pub fn remove_if_empty(&mut self, key: &[u8]) {
        if self
            .entries
            .get(key)
            .is_some_and(|e| e.value.is_empty_container())
        {
            self.remove(key);
        }
    }

    /// Sets or clears the expiry of an existing key. Returns `false` when
    /// the key does not exist.
    pub fn set_expiry(&mut self, key: &[u8], expire_at: Option<u64>) -> bool {
        let Some(e) = self.entries.get_mut(key) else {
            return false;
        };
        e.expire_at = expire_at;
        // Own the key without re-allocating: fetch the stored instance.
        let owned = self
            .key_pos
            .get_key_value(key)
            .map(|(k, _)| k.clone())
            .expect("key indexed");
        if expire_at.is_some() {
            self.expires.insert(owned);
        } else {
            self.expires.remove(key);
        }
        self.signal_modified(key);
        true
    }

    /// Expiry timestamp of a live key.
    pub fn expiry(&self, key: &[u8]) -> Option<u64> {
        self.entries.get(key).and_then(|e| e.expire_at)
    }

    /// Does the key exist (and is not logically expired)?
    pub fn exists(&self, key: &[u8], now_ms: u64) -> bool {
        self.lookup(key, now_ms).is_some()
    }

    /// Samples up to `limit` logically-expired keys (the active expire
    /// cycle's input).
    pub fn expired_keys(&self, now_ms: u64, limit: usize) -> Vec<Bytes> {
        self.expires
            .iter()
            .filter(|k| self.is_expired(k, now_ms))
            .take(limit)
            .cloned()
            .collect()
    }

    /// Bumps the modification version of `key` (drives `WATCH`).
    pub fn signal_modified(&mut self, key: &[u8]) {
        self.version_counter += 1;
        self.dirty += 1;
        match self.versions.get_mut(key) {
            Some(v) => *v = self.version_counter,
            None => {
                self.versions
                    .insert(Bytes::copy_from_slice(key), self.version_counter);
            }
        }
    }

    /// Current modification version of `key` (0 = never modified).
    pub fn version(&self, key: &[u8]) -> u64 {
        self.versions.get(key).copied().unwrap_or(0)
    }

    /// A uniformly random live key, using the caller's RNG index.
    pub fn random_key(&self, idx: usize) -> Option<&Bytes> {
        if self.key_list.is_empty() {
            None
        } else {
            Some(&self.key_list[idx % self.key_list.len()])
        }
    }

    /// Cursor-based iteration: returns up to `count` keys starting at
    /// `cursor` plus the next cursor (0 = done). Guarantees are the weak
    /// SCAN guarantees: concurrent mutation may skip or repeat keys.
    pub fn scan(&self, cursor: u64, count: usize, pattern: Option<&[u8]>) -> (u64, Vec<Bytes>) {
        let mut out = Vec::new();
        let mut i = cursor as usize;
        while i < self.key_list.len() && out.len() < count {
            let key = &self.key_list[i];
            if pattern.is_none_or(|p| glob_match(p, key)) {
                out.push(key.clone());
            }
            i += 1;
        }
        let next = if i >= self.key_list.len() {
            0
        } else {
            i as u64
        };
        (next, out)
    }

    /// All keys matching a glob pattern (the `KEYS` command).
    pub fn keys_matching(&self, pattern: &[u8]) -> Vec<Bytes> {
        self.key_list
            .iter()
            .filter(|k| glob_match(pattern, k))
            .cloned()
            .collect()
    }

    /// Keys currently mapped to a cluster slot.
    pub fn keys_in_slot(&self, slot: u16) -> Vec<Bytes> {
        self.slot_index
            .get(&slot)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of keys in a cluster slot.
    pub fn count_keys_in_slot(&self, slot: u16) -> usize {
        self.slot_index.get(&slot).map_or(0, |s| s.len())
    }

    /// Deletes every key in a slot (migration abandon/cleanup path).
    /// Returns how many were removed.
    pub fn delete_slot(&mut self, slot: u16) -> usize {
        let keys = self.keys_in_slot(slot);
        for k in &keys {
            self.remove(k);
        }
        keys.len()
    }

    /// Drops the entire keyspace.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.key_list.clear();
        self.key_pos.clear();
        self.slot_index.clear();
        self.expires.clear();
        self.dirty += 1;
        self.version_counter += 1;
        // Preserve version monotonicity for watched keys: clearing versions
        // would let a flushed key look unmodified. Bump all watched-visible
        // state by clearing — WATCH compares against a snapshot, so clearing
        // versions would compare 0 == 0. Keep the map but reset values to
        // the new counter.
        for v in self.versions.values_mut() {
            *v = self.version_counter;
        }
    }

    /// Iterates all live entries (snapshot serialization).
    pub fn iter_entries(&self) -> impl Iterator<Item = (&Bytes, &Entry)> {
        self.entries.iter()
    }

    /// Splits the keyspace into `n` partitions, assigning each key by
    /// `stripe_of(slot)`. Entries move with their TTLs; per-key versions
    /// restart from zero in each partition (the same semantics as loading
    /// an RDB image, which is where the split happens in practice).
    pub fn split_by_slot(self, n: usize, stripe_of: impl Fn(u16) -> usize) -> Vec<Db> {
        let mut out: Vec<Db> = (0..n.max(1)).map(|_| Db::new()).collect();
        let last = out.len() - 1;
        for (key, entry) in self.entries {
            let idx = stripe_of(key_hash_slot(&key)).min(last);
            if let Some(db) = out.get_mut(idx) {
                db.set_value(key.clone(), entry.value);
                if entry.expire_at.is_some() {
                    db.set_expiry(&key, entry.expire_at);
                }
            }
        }
        out
    }

    /// Moves every entry of `other` into this keyspace, keeping TTLs.
    /// Existing keys are overwritten (the restore merge feeds disjoint
    /// partitions, but overwrite semantics keep the call total). Per-key
    /// versions restart like an RDB load, same as [`Db::split_by_slot`].
    pub fn absorb(&mut self, other: Db) {
        self.absorb_if(other, |_| true);
    }

    /// Like [`Db::absorb`] but keeps only entries whose key satisfies
    /// `keep` — the incremental-restore merge uses this to skip keys whose
    /// slot a newer snapshot chunk already provided authoritatively.
    pub fn absorb_if(&mut self, other: Db, keep: impl Fn(&Bytes) -> bool) {
        for (key, entry) in other.entries {
            if !keep(&key) {
                continue;
            }
            self.set_value(key.clone(), entry.value);
            if entry.expire_at.is_some() {
                self.set_expiry(&key, entry.expire_at);
            }
        }
    }

    /// Recomputes the approximate dataset footprint in bytes.
    pub fn used_memory(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, e)| k.len() + e.value.approx_size() + 16)
            .sum()
    }

    fn index_insert(&mut self, key: Bytes) {
        let slot = key_hash_slot(&key);
        self.key_pos.insert(key.clone(), self.key_list.len());
        self.key_list.push(key.clone());
        self.slot_index.entry(slot).or_default().insert(key);
    }

    fn index_remove(&mut self, key: &[u8]) {
        if let Some(pos) = self.key_pos.remove(key) {
            let last = self.key_list.len() - 1;
            self.key_list.swap(pos, last);
            self.key_list.pop();
            if pos < self.key_list.len() {
                let moved = self.key_list[pos].clone();
                self.key_pos.insert(moved, pos);
            }
        }
        let slot = key_hash_slot(key);
        if let Some(set) = self.slot_index.get_mut(&slot) {
            set.remove(key);
            if set.is_empty() {
                self.slot_index.remove(&slot);
            }
        }
    }
}

/// Redis-style glob matching: `*`, `?`, `[abc]`, `[^abc]`, `[a-z]`, and `\`
/// escapes.
pub fn glob_match(pattern: &[u8], text: &[u8]) -> bool {
    glob_inner(pattern, text)
}

fn glob_inner(mut p: &[u8], mut t: &[u8]) -> bool {
    while let Some(&pc) = p.first() {
        match pc {
            b'*' => {
                // Collapse consecutive stars.
                while p.first() == Some(&b'*') {
                    p = &p[1..];
                }
                if p.is_empty() {
                    return true;
                }
                for i in 0..=t.len() {
                    if glob_inner(p, &t[i..]) {
                        return true;
                    }
                }
                return false;
            }
            b'?' => {
                if t.is_empty() {
                    return false;
                }
                p = &p[1..];
                t = &t[1..];
            }
            b'[' => {
                if t.is_empty() {
                    return false;
                }
                let mut i = 1;
                let negate = p.get(1) == Some(&b'^');
                if negate {
                    i += 1;
                }
                let mut matched = false;
                let c = t[0];
                while i < p.len() && p[i] != b']' {
                    if p[i] == b'\\' && i + 1 < p.len() {
                        if p[i + 1] == c {
                            matched = true;
                        }
                        i += 2;
                    } else if i + 2 < p.len() && p[i + 1] == b'-' && p[i + 2] != b']' {
                        let (lo, hi) = (p[i].min(p[i + 2]), p[i].max(p[i + 2]));
                        if (lo..=hi).contains(&c) {
                            matched = true;
                        }
                        i += 3;
                    } else {
                        if p[i] == c {
                            matched = true;
                        }
                        i += 1;
                    }
                }
                if i >= p.len() {
                    return false; // unterminated class
                }
                if matched == negate {
                    return false;
                }
                p = &p[i + 1..];
                t = &t[1..];
            }
            b'\\' if p.len() > 1 => {
                if t.first() != Some(&p[1]) {
                    return false;
                }
                p = &p[2..];
                t = &t[1..];
            }
            _ => {
                if t.first() != Some(&pc) {
                    return false;
                }
                p = &p[1..];
                t = &t[1..];
            }
        }
    }
    t.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn sval(s: &str) -> Value {
        Value::Str(b(s))
    }

    #[test]
    fn set_get_remove() {
        let mut db = Db::new();
        db.set_value(b("k"), sval("v"));
        assert_eq!(db.lookup(b"k", 0), Some(&sval("v")));
        assert_eq!(db.len(), 1);
        assert_eq!(db.remove(b"k"), Some(sval("v")));
        assert_eq!(db.lookup(b"k", 0), None);
        assert!(db.is_empty());
    }

    #[test]
    fn expiry_hides_values() {
        let mut db = Db::new();
        db.set_value(b("k"), sval("v"));
        assert!(db.set_expiry(b"k", Some(100)));
        assert!(db.exists(b"k", 99));
        assert!(!db.exists(b"k", 100));
        assert!(db.lookup(b"k", 100).is_none());
        // Entry is still physically present until reaped.
        assert_eq!(db.len(), 1);
        assert!(db.reap_if_expired(b"k", 100));
        assert_eq!(db.len(), 0);
        assert!(!db.reap_if_expired(b"k", 100));
    }

    #[test]
    fn set_value_clears_ttl_keep_ttl_preserves() {
        let mut db = Db::new();
        db.set_value(b("k"), sval("v"));
        db.set_expiry(b"k", Some(100));
        db.set_value(b("k"), sval("v2"));
        assert_eq!(db.expiry(b"k"), None);

        db.set_expiry(b"k", Some(100));
        db.set_value_keep_ttl(b("k"), sval("v3"));
        assert_eq!(db.expiry(b"k"), Some(100));
    }

    #[test]
    fn absorb_moves_entries_with_ttls() {
        let mut a = Db::new();
        a.set_value(b("keep"), sval("old"));
        a.set_value(b("clash"), sval("mine"));
        let mut other = Db::new();
        other.set_value(b("clash"), sval("theirs"));
        other.set_value(b("ttl"), sval("v"));
        other.set_expiry(b"ttl", Some(777));
        other.set_value(b("skipme"), sval("x"));
        a.absorb_if(other, |k| k.as_ref() != b"skipme");
        assert_eq!(a.lookup(b"keep", 0), Some(&sval("old")));
        assert_eq!(a.lookup(b"clash", 0), Some(&sval("theirs")));
        assert_eq!(a.lookup(b"ttl", 0), Some(&sval("v")));
        assert_eq!(a.expiry(b"ttl"), Some(777));
        assert!(a.lookup(b"skipme", 0).is_none());
        assert_eq!(a.len(), 3);

        let mut c = Db::new();
        c.set_value(b("z"), sval("1"));
        let mut d = Db::new();
        d.absorb(c);
        assert_eq!(d.lookup(b"z", 0), Some(&sval("1")));
    }

    #[test]
    fn expiry_on_missing_key() {
        let mut db = Db::new();
        assert!(!db.set_expiry(b"nope", Some(1)));
    }

    #[test]
    fn expired_keys_sampling() {
        let mut db = Db::new();
        for i in 0..10 {
            let k = b(&format!("k{i}"));
            db.set_value(k.clone(), sval("v"));
            db.set_expiry(&k, Some(if i < 4 { 10 } else { 1000 }));
        }
        let expired = db.expired_keys(50, 100);
        assert_eq!(expired.len(), 4);
        assert!(db.expired_keys(5, 100).is_empty());
    }

    #[test]
    fn versions_bump_on_modification() {
        let mut db = Db::new();
        assert_eq!(db.version(b"k"), 0);
        db.set_value(b("k"), sval("v"));
        let v1 = db.version(b"k");
        assert!(v1 > 0);
        db.signal_modified(b"k");
        assert!(db.version(b"k") > v1);
        // Removal is a modification too.
        let v2 = db.version(b"k");
        db.remove(b"k");
        assert!(db.version(b"k") > v2);
    }

    #[test]
    fn flush_bumps_versions() {
        let mut db = Db::new();
        db.set_value(b("k"), sval("v"));
        let v = db.version(b"k");
        db.flush();
        assert!(db.version(b"k") > v);
        assert!(db.is_empty());
    }

    #[test]
    fn scan_pages_through_all_keys() {
        let mut db = Db::new();
        for i in 0..25 {
            db.set_value(b(&format!("k{i}")), sval("v"));
        }
        let mut seen = std::collections::HashSet::new();
        let mut cursor = 0;
        loop {
            let (next, keys) = db.scan(cursor, 7, None);
            seen.extend(keys);
            if next == 0 {
                break;
            }
            cursor = next;
        }
        assert_eq!(seen.len(), 25);
    }

    #[test]
    fn scan_with_pattern() {
        let mut db = Db::new();
        db.set_value(b("user:1"), sval("a"));
        db.set_value(b("user:2"), sval("b"));
        db.set_value(b("order:1"), sval("c"));
        let (_, keys) = db.scan(0, 100, Some(b"user:*"));
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn slot_index_tracks_keys() {
        let mut db = Db::new();
        db.set_value(b("{tag}a"), sval("1"));
        db.set_value(b("{tag}b"), sval("2"));
        let slot = crate::slots::key_hash_slot(b"{tag}a");
        assert_eq!(db.count_keys_in_slot(slot), 2);
        assert_eq!(db.keys_in_slot(slot).len(), 2);
        db.remove(b"{tag}a");
        assert_eq!(db.count_keys_in_slot(slot), 1);
        assert_eq!(db.delete_slot(slot), 1);
        assert!(db.is_empty());
    }

    #[test]
    fn random_key_none_when_empty() {
        let db = Db::new();
        assert!(db.random_key(3).is_none());
        let mut db = Db::new();
        db.set_value(b("only"), sval("v"));
        assert_eq!(db.random_key(12345), Some(&b("only")));
    }

    #[test]
    fn used_memory_reflects_content() {
        let mut db = Db::new();
        let base = db.used_memory();
        db.set_value(b("k"), Value::Str(Bytes::from(vec![0u8; 1024])));
        assert!(db.used_memory() > base + 1024);
    }

    #[test]
    fn glob_literals_and_wildcards() {
        assert!(glob_match(b"hello", b"hello"));
        assert!(!glob_match(b"hello", b"hell"));
        assert!(glob_match(b"*", b"anything"));
        assert!(glob_match(b"*", b""));
        assert!(glob_match(b"h*o", b"hello"));
        assert!(glob_match(b"h*llo*", b"hello"));
        assert!(!glob_match(b"h*z", b"hello"));
        assert!(glob_match(b"h?llo", b"hello"));
        assert!(!glob_match(b"h?llo", b"hllo"));
    }

    #[test]
    fn glob_classes() {
        assert!(glob_match(b"[abc]x", b"bx"));
        assert!(!glob_match(b"[abc]x", b"dx"));
        assert!(glob_match(b"[^abc]x", b"dx"));
        assert!(!glob_match(b"[^abc]x", b"ax"));
        assert!(glob_match(b"[a-c]x", b"bx"));
        assert!(!glob_match(b"[a-c]x", b"dx"));
        assert!(!glob_match(b"[ab", b"a")); // unterminated class
    }

    #[test]
    fn glob_escapes() {
        assert!(glob_match(b"a\\*b", b"a*b"));
        assert!(!glob_match(b"a\\*b", b"axb"));
        assert!(glob_match(b"a\\?b", b"a?b"));
    }

    #[test]
    fn entry_or_insert_with_reaps_expired() {
        let mut db = Db::new();
        db.set_value(b("k"), sval("old"));
        db.set_expiry(b"k", Some(5));
        // At t=10 the key is expired; the default should be inserted fresh.
        let v = db.entry_or_insert_with(&b("k"), 10, || sval("fresh"));
        assert_eq!(v, &sval("fresh"));
        assert_eq!(db.expiry(b"k"), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_glob_never_panics(pattern in proptest::collection::vec(any::<u8>(), 0..32),
                                  text in proptest::collection::vec(any::<u8>(), 0..32)) {
            let _ = glob_match(&pattern, &text);
        }

        #[test]
        fn prop_literal_patterns_match_exactly(text in proptest::collection::vec(any::<u8>(), 0..24)) {
            // A pattern with every byte escaped matches exactly its text.
            let mut pattern = Vec::new();
            for &b in &text {
                pattern.push(b'\\');
                pattern.push(b);
            }
            prop_assert!(glob_match(&pattern, &text));
            let mut other = text.clone();
            other.push(b'x');
            prop_assert!(!glob_match(&pattern, &other));
        }

        #[test]
        fn prop_star_matches_everything(text in proptest::collection::vec(any::<u8>(), 0..32)) {
            prop_assert!(glob_match(b"*", &text));
        }
    }
}
