//! A small deterministic scripting DSL — the reproduction's stand-in for
//! Redis Lua scripting (paper §2.1).
//!
//! What matters architecturally about Redis scripting for MemoryDB is not
//! the Lua language itself but the replication contract: **a script executes
//! atomically on the primary, and only its *effects* are replicated**, never
//! the script source — that is how non-deterministic scripts replicate
//! deterministically. This module reproduces that contract with a minimal
//! line-oriented language:
//!
//! ```text
//! LET cur = CALL GET $KEYS[1]          # run a command, bind its reply
//! IF ISNIL $cur THEN                   # conditionals on replies
//!   CALL SET $KEYS[1] $ARGV[1]
//! ELSE
//!   CALL APPEND $KEYS[1] $ARGV[1]
//! END
//! RETURN $cur                          # script reply (optional)
//! ```
//!
//! Statements: `CALL cmd args...`, `LET x = CALL ...`, `IF <cond> THEN ...
//! [ELSE ...] END`, `WHILE <cond> DO ... END` (bounded at 100k iterations,
//! like Redis's busy-script protection; conditions: `ISNIL v`, `NOTNIL v`,
//! `EQ a b`, `NE a b`), and `RETURN v`. Arguments may be literals (quoting as in redis-cli),
//! `$var`, `$KEYS[n]`, or `$ARGV[n]`. Lines starting with `#` are comments.
//!
//! The effects of every inner `CALL` are concatenated into one atomic batch;
//! MemoryDB's core commits that batch as a single transaction-log record.

use crate::effects::{DirtySet, EffectCmd, ExecOutcome};
use crate::exec::{CmdResult, Engine};
use bytes::Bytes;
use memorydb_resp::Frame;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// SHA-1 (for the script cache: SCRIPT LOAD / EVALSHA). From scratch; used
// only as a content address, exactly like Redis uses it.
// ---------------------------------------------------------------------------

/// Computes the SHA-1 digest of `data` as a lowercase hex string.
pub fn sha1_hex(data: &[u8]) -> String {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
    let ml = (data.len() as u64) * 8;
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());
    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h.iter().map(|x| format!("{x:08x}")).collect()
}

/// Where a script's inner `CALL`s execute.
///
/// The engine itself is the ordinary host: every CALL runs against the one
/// keyspace. A striped node substitutes a host that routes each CALL to the
/// stripe owning its keys (with every stripe lock held, preserving the
/// script's atomicity), which is why the seam exists: scripts may touch keys
/// they never declared, so routing must happen per inner command, not per
/// script.
pub trait ScriptHost {
    /// Executes one inner CALL command (never MULTI/EXEC/EVAL — the
    /// interpreter rejects those before calling).
    fn run_script_cmd(&mut self, cmd: &[Bytes]) -> ExecOutcome;
}

impl ScriptHost for Engine {
    fn run_script_cmd(&mut self, cmd: &[Bytes]) -> ExecOutcome {
        let mut session = crate::exec::SessionState::new();
        self.execute(&mut session, cmd)
    }
}

/// `SCRIPT LOAD src | EXISTS sha... | FLUSH`
pub(crate) fn script_cmd(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match crate::exec::upper(&a[1]).as_str() {
        "LOAD" => {
            let src = a.get(2).ok_or_else(|| {
                ExecOutcome::error("wrong number of arguments for 'script|load' command")
            })?;
            // Validate eagerly like Redis: a broken script never enters the
            // cache.
            let text = String::from_utf8_lossy(src).to_string();
            parse(&text).map_err(|msg| ExecOutcome::error(format!("script parse error: {msg}")))?;
            let sha = sha1_hex(src);
            e.script_cache_mut().insert(sha.clone(), src.clone());
            Ok(ExecOutcome::read(Frame::Bulk(Bytes::from(sha))))
        }
        "EXISTS" => {
            let out = a[2..]
                .iter()
                .map(|sha| {
                    let key = String::from_utf8_lossy(sha).to_lowercase();
                    Frame::Integer(e.script_cache_mut().contains_key(&key) as i64)
                })
                .collect();
            Ok(ExecOutcome::read(Frame::Array(out)))
        }
        "FLUSH" => {
            e.script_cache_mut().clear();
            Ok(ExecOutcome::read(Frame::ok()))
        }
        sub => Err(ExecOutcome::error(format!(
            "Unknown SCRIPT subcommand '{sub}'"
        ))),
    }
}

/// `EVALSHA sha numkeys key... arg...`
pub(crate) fn evalsha(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let sha = String::from_utf8_lossy(&a[1]).to_lowercase();
    let Some(src) = e.script_cache_mut().get(&sha).cloned() else {
        return Err(ExecOutcome::read(Frame::Error(
            "NOSCRIPT No matching script. Please use EVAL.".into(),
        )));
    };
    let mut args = a.to_vec();
    args[0] = Bytes::from_static(b"EVAL");
    args[1] = src;
    eval(e, &args)
}

/// `EVAL script numkeys key... arg...`
pub(crate) fn eval(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    eval_inner(e, a)
}

/// Runs `EVAL args` against an arbitrary [`ScriptHost`]. The caller must
/// have validated arity (`args.len() >= 3`). Error replies come back as the
/// outcome's reply frame, like [`Engine::execute`].
pub fn eval_on_host(host: &mut dyn ScriptHost, a: &[Bytes]) -> ExecOutcome {
    match eval_inner(host, a) {
        Ok(out) => out,
        Err(out) => out,
    }
}

fn eval_inner(host: &mut dyn ScriptHost, a: &[Bytes]) -> CmdResult {
    let src = String::from_utf8_lossy(&a[1]).to_string();
    let nk: usize = std::str::from_utf8(&a[2])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ExecOutcome::error("value is not an integer or out of range"))?;
    if a.len() < 3 + nk {
        return Err(ExecOutcome::error(
            "Number of keys can't be greater than number of args",
        ));
    }
    let keys: Vec<Bytes> = a[3..3 + nk].to_vec();
    let argv: Vec<Bytes> = a[3 + nk..].to_vec();

    let program =
        parse(&src).map_err(|msg| ExecOutcome::error(format!("script parse error: {msg}")))?;
    let mut interp = Interp {
        host,
        vars: HashMap::new(),
        keys,
        argv,
        effects: Vec::new(),
        dirty: DirtySet::None,
    };
    let ret = interp
        .run_block(&program)
        .map_err(|msg| ExecOutcome::error(format!("script runtime error: {msg}")))?;
    let reply = match ret {
        Flow::Return(frame) => frame,
        Flow::Done => Frame::Null,
    };
    let effects = interp.effects;
    let dirty = interp.dirty;
    if effects.is_empty() {
        Ok(ExecOutcome::read(reply))
    } else {
        Ok(ExecOutcome::write(reply, effects, dirty))
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Arg {
    Literal(Bytes),
    Var(String),
    Key(usize),
    Argv(usize),
}

#[derive(Debug, Clone, PartialEq)]
enum Cond {
    IsNil(Arg),
    NotNil(Arg),
    Eq(Arg, Arg),
    Ne(Arg, Arg),
}

#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    Call {
        bind: Option<String>,
        args: Vec<Arg>,
    },
    If {
        cond: Cond,
        then_block: Vec<Stmt>,
        else_block: Vec<Stmt>,
    },
    While {
        cond: Cond,
        body: Vec<Stmt>,
    },
    Return(Arg),
}

fn parse_arg(tok: &Bytes) -> Result<Arg, String> {
    let s = String::from_utf8_lossy(tok);
    if let Some(rest) = s.strip_prefix('$') {
        if let Some(idx) = rest.strip_prefix("KEYS[").and_then(|r| r.strip_suffix(']')) {
            let n: usize = idx.parse().map_err(|_| format!("bad KEYS index {idx:?}"))?;
            if n == 0 {
                return Err("KEYS index is 1-based".into());
            }
            return Ok(Arg::Key(n - 1));
        }
        if let Some(idx) = rest.strip_prefix("ARGV[").and_then(|r| r.strip_suffix(']')) {
            let n: usize = idx.parse().map_err(|_| format!("bad ARGV index {idx:?}"))?;
            if n == 0 {
                return Err("ARGV index is 1-based".into());
            }
            return Ok(Arg::Argv(n - 1));
        }
        if rest.is_empty() {
            return Err("empty variable name".into());
        }
        return Ok(Arg::Var(rest.to_string()));
    }
    Ok(Arg::Literal(tok.clone()))
}

fn parse_cond(toks: &[Bytes]) -> Result<Cond, String> {
    let op = String::from_utf8_lossy(&toks[0]).to_ascii_uppercase();
    match op.as_str() {
        "ISNIL" if toks.len() == 2 => Ok(Cond::IsNil(parse_arg(&toks[1])?)),
        "NOTNIL" if toks.len() == 2 => Ok(Cond::NotNil(parse_arg(&toks[1])?)),
        "EQ" if toks.len() == 3 => Ok(Cond::Eq(parse_arg(&toks[1])?, parse_arg(&toks[2])?)),
        "NE" if toks.len() == 3 => Ok(Cond::Ne(parse_arg(&toks[1])?, parse_arg(&toks[2])?)),
        _ => Err(format!("bad condition starting with {op:?}")),
    }
}

fn parse(src: &str) -> Result<Vec<Stmt>, String> {
    let mut lines: Vec<Vec<Bytes>> = Vec::new();
    for (no, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks = memorydb_resp::tokenize(line).map_err(|e| format!("line {}: {e}", no + 1))?;
        if !toks.is_empty() {
            lines.push(toks);
        }
    }
    let mut pos = 0;
    let block = parse_block(&lines, &mut pos, false)?;
    if pos != lines.len() {
        return Err("unexpected END or ELSE outside IF".into());
    }
    Ok(block)
}

fn parse_block(
    lines: &[Vec<Bytes>],
    pos: &mut usize,
    inside_if: bool,
) -> Result<Vec<Stmt>, String> {
    let mut out = Vec::new();
    while *pos < lines.len() {
        let toks = &lines[*pos];
        let head = String::from_utf8_lossy(&toks[0]).to_ascii_uppercase();
        match head.as_str() {
            "END" | "ELSE" if inside_if => return Ok(out),
            "END" | "ELSE" => return Err(format!("{head} outside IF")),
            "CALL" => {
                if toks.len() < 2 {
                    return Err("CALL needs a command".into());
                }
                let args = toks[1..]
                    .iter()
                    .map(parse_arg)
                    .collect::<Result<Vec<_>, _>>()?;
                out.push(Stmt::Call { bind: None, args });
                *pos += 1;
            }
            "LET" => {
                // LET name = CALL cmd args...
                if toks.len() < 5
                    || toks[2].as_ref() != b"="
                    || !toks[3].eq_ignore_ascii_case(b"CALL")
                {
                    return Err("LET syntax: LET name = CALL cmd args...".into());
                }
                let name = String::from_utf8_lossy(&toks[1]).to_string();
                let args = toks[4..]
                    .iter()
                    .map(parse_arg)
                    .collect::<Result<Vec<_>, _>>()?;
                out.push(Stmt::Call {
                    bind: Some(name),
                    args,
                });
                *pos += 1;
            }
            "IF" => {
                if toks.len() < 3 || !toks[toks.len() - 1].eq_ignore_ascii_case(b"THEN") {
                    return Err("IF syntax: IF <cond> THEN".into());
                }
                let cond = parse_cond(&toks[1..toks.len() - 1])?;
                *pos += 1;
                let then_block = parse_block(lines, pos, true)?;
                let mut else_block = Vec::new();
                if *pos < lines.len() && lines[*pos][0].eq_ignore_ascii_case(b"ELSE") {
                    *pos += 1;
                    else_block = parse_block(lines, pos, true)?;
                }
                if *pos >= lines.len() || !lines[*pos][0].eq_ignore_ascii_case(b"END") {
                    return Err("IF missing END".into());
                }
                *pos += 1;
                out.push(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                });
            }
            "WHILE" => {
                if toks.len() < 3 || !toks[toks.len() - 1].eq_ignore_ascii_case(b"DO") {
                    return Err("WHILE syntax: WHILE <cond> DO".into());
                }
                let cond = parse_cond(&toks[1..toks.len() - 1])?;
                *pos += 1;
                let body = parse_block(lines, pos, true)?;
                if *pos >= lines.len() || !lines[*pos][0].eq_ignore_ascii_case(b"END") {
                    return Err("WHILE missing END".into());
                }
                *pos += 1;
                out.push(Stmt::While { cond, body });
            }
            "RETURN" => {
                if toks.len() != 2 {
                    return Err("RETURN takes exactly one value".into());
                }
                out.push(Stmt::Return(parse_arg(&toks[1])?));
                *pos += 1;
            }
            other => return Err(format!("unknown statement {other:?}")),
        }
    }
    if inside_if {
        return Err("IF missing END".into());
    }
    Ok(out)
}

enum Flow {
    Done,
    Return(Frame),
}

struct Interp<'a> {
    host: &'a mut dyn ScriptHost,
    vars: HashMap<String, Frame>,
    keys: Vec<Bytes>,
    argv: Vec<Bytes>,
    effects: Vec<EffectCmd>,
    dirty: DirtySet,
}

impl<'a> Interp<'a> {
    fn resolve(&self, arg: &Arg) -> Result<Frame, String> {
        match arg {
            Arg::Literal(b) => Ok(Frame::Bulk(b.clone())),
            Arg::Var(name) => self
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| format!("undefined variable ${name}")),
            Arg::Key(i) => self
                .keys
                .get(*i)
                .map(|k| Frame::Bulk(k.clone()))
                .ok_or_else(|| format!("KEYS[{}] out of range", i + 1)),
            Arg::Argv(i) => self
                .argv
                .get(*i)
                .map(|k| Frame::Bulk(k.clone()))
                .ok_or_else(|| format!("ARGV[{}] out of range", i + 1)),
        }
    }

    fn to_bytes(frame: &Frame) -> Result<Bytes, String> {
        match frame {
            Frame::Bulk(b) => Ok(b.clone()),
            Frame::Simple(s) => Ok(Bytes::from(s.clone())),
            Frame::Integer(i) => Ok(Bytes::from(i.to_string())),
            Frame::Double(d) => Ok(Bytes::from(format!("{d}"))),
            Frame::Null => Err("cannot pass nil as a command argument".into()),
            other => Err(format!("cannot pass {other:?} as a command argument")),
        }
    }

    fn truthy_nil(&self, arg: &Arg) -> Result<bool, String> {
        Ok(matches!(self.resolve(arg)?, Frame::Null))
    }

    fn eval_cond(&self, cond: &Cond) -> Result<bool, String> {
        match cond {
            Cond::IsNil(a) => self.truthy_nil(a),
            Cond::NotNil(a) => Ok(!self.truthy_nil(a)?),
            Cond::Eq(a, b) | Cond::Ne(a, b) => {
                let (fa, fb) = (self.resolve(a)?, self.resolve(b)?);
                let eq = match (&fa, &fb) {
                    (Frame::Null, Frame::Null) => true,
                    (Frame::Null, _) | (_, Frame::Null) => false,
                    _ => Self::to_bytes(&fa)? == Self::to_bytes(&fb)?,
                };
                Ok(if matches!(cond, Cond::Eq(..)) {
                    eq
                } else {
                    !eq
                })
            }
        }
    }

    fn run_block(&mut self, block: &[Stmt]) -> Result<Flow, String> {
        for stmt in block {
            match stmt {
                Stmt::Call { bind, args } => {
                    let mut cmd: EffectCmd = Vec::with_capacity(args.len());
                    for a in args {
                        cmd.push(Self::to_bytes(&self.resolve(a)?)?);
                    }
                    // Scripts may not nest: EVAL/MULTI inside a script are
                    // rejected (matching Redis).
                    let name = String::from_utf8_lossy(&cmd[0]).to_ascii_uppercase();
                    if matches!(
                        name.as_str(),
                        "EVAL" | "MULTI" | "EXEC" | "DISCARD" | "WATCH"
                    ) {
                        return Err(format!("{name} is not allowed inside a script"));
                    }
                    let outcome = self.host.run_script_cmd(&cmd);
                    if let Frame::Error(msg) = &outcome.reply {
                        return Err(msg.to_string());
                    }
                    self.effects.extend(outcome.effects);
                    self.dirty.merge(outcome.dirty);
                    if let Some(name) = bind {
                        self.vars.insert(name.clone(), outcome.reply);
                    }
                }
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                } => {
                    let flow = if self.eval_cond(cond)? {
                        self.run_block(then_block)?
                    } else {
                        self.run_block(else_block)?
                    };
                    if let Flow::Return(f) = flow {
                        return Ok(Flow::Return(f));
                    }
                }
                Stmt::While { cond, body } => {
                    // Turing-complete, but a runaway loop must not wedge the
                    // single-threaded engine: hard iteration cap, like
                    // Redis's busy-script protection.
                    const MAX_ITERATIONS: u32 = 100_000;
                    let mut iterations = 0u32;
                    while self.eval_cond(cond)? {
                        iterations += 1;
                        if iterations > MAX_ITERATIONS {
                            return Err(format!(
                                "script loop exceeded {MAX_ITERATIONS} iterations"
                            ));
                        }
                        if let Flow::Return(f) = self.run_block(body)? {
                            return Ok(Flow::Return(f));
                        }
                    }
                }
                Stmt::Return(arg) => return Ok(Flow::Return(self.resolve(arg)?)),
            }
        }
        Ok(Flow::Done)
    }
}

#[cfg(test)]
mod tests {
    use crate::exec::{Engine, Role, SessionState};
    use crate::{cmd, Frame};
    use bytes::Bytes;

    fn eval_script(
        e: &mut Engine,
        script: &str,
        keys: &[&str],
        argv: &[&str],
    ) -> crate::ExecOutcome {
        let mut args = vec![
            Bytes::from_static(b"EVAL"),
            Bytes::from(script.to_string()),
            Bytes::from(keys.len().to_string()),
        ];
        args.extend(keys.iter().map(|k| Bytes::from(k.to_string())));
        args.extend(argv.iter().map(|v| Bytes::from(v.to_string())));
        let mut s = SessionState::new();
        e.execute(&mut s, &args)
    }

    #[test]
    fn simple_call_and_return() {
        let mut e = Engine::new(Role::Primary);
        let out = eval_script(
            &mut e,
            "CALL SET $KEYS[1] $ARGV[1]\nLET v = CALL GET $KEYS[1]\nRETURN $v",
            &["k"],
            &["hello"],
        );
        assert_eq!(out.reply, Frame::Bulk(Bytes::from_static(b"hello")));
        assert_eq!(out.effects.len(), 1);
        assert_eq!(out.effects[0], cmd(["SET", "k", "hello"]));
    }

    #[test]
    fn conditional_set_if_absent() {
        let script = "LET cur = CALL GET $KEYS[1]\n\
                      IF ISNIL $cur THEN\n\
                        CALL SET $KEYS[1] $ARGV[1]\n\
                        RETURN 1\n\
                      ELSE\n\
                        RETURN 0\n\
                      END";
        let mut e = Engine::new(Role::Primary);
        let out = eval_script(&mut e, script, &["k"], &["v1"]);
        assert_eq!(out.reply, Frame::Bulk(Bytes::from_static(b"1")));
        assert_eq!(out.effects.len(), 1);
        // Second run takes the ELSE branch and produces no effects.
        let out2 = eval_script(&mut e, script, &["k"], &["v2"]);
        assert_eq!(out2.reply, Frame::Bulk(Bytes::from_static(b"0")));
        assert!(out2.effects.is_empty());
    }

    #[test]
    fn script_effects_replay_identically() {
        // A script using SPOP (non-deterministic) must replicate via its
        // effects — the replica applying them reaches the same state.
        let script = "CALL SADD $KEYS[1] a b c d\nLET p = CALL SPOP $KEYS[1]\nRETURN $p";
        let mut primary = Engine::new(Role::Primary);
        let out = eval_script(&mut primary, script, &["s"], &[]);
        assert!(!out.effects.is_empty());
        let mut replica = Engine::new(Role::Replica);
        for eff in &out.effects {
            replica.apply_effect(eff).unwrap();
        }
        let mut s1 = SessionState::new();
        let mut s2 = SessionState::new();
        let m1 = primary.execute(&mut s1, &cmd(["SMEMBERS", "s"]));
        let m2 = replica.execute(&mut s2, &cmd(["SMEMBERS", "s"]));
        assert_eq!(m1.reply, m2.reply);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut e = Engine::new(Role::Primary);
        let out = eval_script(&mut e, "# comment\n\nRETURN ok\n", &[], &[]);
        assert_eq!(out.reply, Frame::Bulk(Bytes::from_static(b"ok")));
    }

    #[test]
    fn parse_errors_reported() {
        let mut e = Engine::new(Role::Primary);
        for bad in [
            "FROB x",
            "IF ISNIL $x THEN", // missing END
            "LET x CALL GET k", // missing =
            "END",
            "IF BADCOND THEN\nEND",
            "RETURN", // missing value
        ] {
            let out = eval_script(&mut e, bad, &[], &[]);
            assert!(out.reply.is_error(), "expected parse error for {bad:?}");
        }
    }

    #[test]
    fn runtime_errors_reported() {
        let mut e = Engine::new(Role::Primary);
        // Undefined variable.
        let out = eval_script(&mut e, "RETURN $nope", &[], &[]);
        assert!(out.reply.is_error());
        // KEYS index out of range.
        let out = eval_script(&mut e, "CALL GET $KEYS[1]", &[], &[]);
        assert!(out.reply.is_error());
        // Inner command error propagates.
        let mut e2 = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        e2.execute(&mut s, &cmd(["LPUSH", "l", "x"]));
        let out = eval_script(&mut e2, "CALL GET l", &[], &[]);
        assert!(out.reply.is_error());
    }

    #[test]
    fn nested_scripts_rejected() {
        let mut e = Engine::new(Role::Primary);
        let out = eval_script(&mut e, "CALL EVAL \"RETURN 1\" 0", &[], &[]);
        assert!(out.reply.is_error());
    }

    #[test]
    fn eq_and_ne_conditions() {
        let script = "IF EQ $ARGV[1] $ARGV[2] THEN\nRETURN same\nELSE\nRETURN diff\nEND";
        let mut e = Engine::new(Role::Primary);
        assert_eq!(
            eval_script(&mut e, script, &[], &["a", "a"]).reply,
            Frame::Bulk(Bytes::from_static(b"same"))
        );
        assert_eq!(
            eval_script(&mut e, script, &[], &["a", "b"]).reply,
            Frame::Bulk(Bytes::from_static(b"diff"))
        );
        let ne = "IF NE $ARGV[1] $ARGV[2] THEN\nRETURN 1\nELSE\nRETURN 0\nEND";
        assert_eq!(
            eval_script(&mut e, ne, &[], &["a", "b"]).reply,
            Frame::Bulk(Bytes::from_static(b"1"))
        );
    }
}

#[cfg(test)]
mod sha_and_cache_tests {
    use super::*;
    use crate::cmd;
    use crate::exec::{Role, SessionState};

    #[test]
    fn sha1_known_vectors() {
        // FIPS-180 test vectors.
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkjklmklmnlmnomnopnopq"),
            "971f89a34572bcff6dc9038d36e27711275f593e"
        );
    }

    #[test]
    fn script_load_exists_evalsha_flush() {
        let mut e = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        let script = "CALL SET $KEYS[1] $ARGV[1]\nRETURN ok";
        let out = e.execute(&mut s, &cmd(["SCRIPT", "LOAD", script]));
        let Frame::Bulk(sha) = out.reply else {
            panic!("expected sha, got {:?}", out.reply)
        };
        let sha = String::from_utf8_lossy(&sha).to_string();
        assert_eq!(sha, sha1_hex(script.as_bytes()));
        // EXISTS sees it (case-insensitively).
        let out = e.execute(
            &mut s,
            &cmd(["SCRIPT", "EXISTS", &sha.to_uppercase(), "deadbeef"]),
        );
        assert_eq!(
            out.reply,
            Frame::Array(vec![Frame::Integer(1), Frame::Integer(0)])
        );
        // EVALSHA runs it with effects.
        let out = e.execute(&mut s, &cmd(["EVALSHA", &sha, "1", "k", "v1"]));
        assert_eq!(out.reply, Frame::Bulk(Bytes::from_static(b"ok")));
        assert_eq!(out.effects, vec![cmd(["SET", "k", "v1"])]);
        assert_eq!(
            e.execute(&mut s, &cmd(["GET", "k"])).reply,
            Frame::Bulk(Bytes::from_static(b"v1"))
        );
        // Unknown sha → NOSCRIPT; after FLUSH the loaded one is gone too.
        let out = e.execute(
            &mut s,
            &cmd(["EVALSHA", "0000000000000000000000000000000000000000", "0"]),
        );
        match out.reply {
            Frame::Error(msg) => assert!(msg.starts_with("NOSCRIPT"), "{msg}"),
            other => panic!("expected NOSCRIPT, got {other:?}"),
        }
        e.execute(&mut s, &cmd(["SCRIPT", "FLUSH"]));
        let out = e.execute(&mut s, &cmd(["EVALSHA", &sha, "1", "k", "v2"]));
        assert!(out.reply.is_error());
    }

    #[test]
    fn script_load_rejects_broken_scripts() {
        let mut e = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        let out = e.execute(&mut s, &cmd(["SCRIPT", "LOAD", "NOT A STATEMENT"]));
        assert!(out.reply.is_error());
        // Nothing entered the cache.
        let sha = sha1_hex(b"NOT A STATEMENT");
        let out = e.execute(&mut s, &cmd(["SCRIPT", "EXISTS", &sha]));
        assert_eq!(out.reply, Frame::Array(vec![Frame::Integer(0)]));
    }
}

#[cfg(test)]
mod while_tests {
    use crate::exec::{Engine, Role, SessionState};
    use crate::{cmd, Frame};
    use bytes::Bytes;

    fn eval(e: &mut Engine, script: &str, keys: &[&str], argv: &[&str]) -> crate::ExecOutcome {
        let mut args = vec![
            Bytes::from_static(b"EVAL"),
            Bytes::from(script.to_string()),
            Bytes::from(keys.len().to_string()),
        ];
        args.extend(keys.iter().map(|k| Bytes::from(k.to_string())));
        args.extend(argv.iter().map(|v| Bytes::from(v.to_string())));
        let mut s = SessionState::new();
        e.execute(&mut s, &args)
    }

    #[test]
    fn while_loop_drains_a_list() {
        let mut e = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        e.execute(&mut s, &cmd(["RPUSH", "q", "a", "b", "c", "d"]));
        // Pop until empty, counting into a key — all atomic, replicated by
        // the realized effects.
        let script = "LET item = CALL LPOP $KEYS[1]\n\
                      WHILE NOTNIL $item DO\n\
                        CALL INCR $KEYS[2]\n\
                        LET item = CALL LPOP $KEYS[1]\n\
                      END\n\
                      LET n = CALL GET $KEYS[2]\n\
                      RETURN $n";
        let out = eval(&mut e, script, &["q", "count"], &[]);
        assert_eq!(out.reply, Frame::Bulk(Bytes::from_static(b"4")));
        // Replay on a replica converges.
        let mut replica = Engine::new(Role::Replica);
        replica
            .apply_effect(&cmd(["RPUSH", "q", "a", "b", "c", "d"]))
            .unwrap();
        for eff in &out.effects {
            replica.apply_effect(eff).unwrap();
        }
        assert_eq!(crate::rdb::dump(&e.db), crate::rdb::dump(&replica.db));
    }

    #[test]
    fn runaway_loop_is_capped() {
        let mut e = Engine::new(Role::Primary);
        let script = "CALL SET x 1\nWHILE NOTNIL $KEYS[1] DO\nCALL INCR spin\nEND";
        let out = eval(&mut e, script, &["k"], &[]);
        match out.reply {
            Frame::Error(msg) => assert!(msg.contains("iterations"), "{msg}"),
            other => panic!("expected loop-cap error, got {other:?}"),
        }
    }

    #[test]
    fn while_parse_errors() {
        let mut e = Engine::new(Role::Primary);
        for bad in ["WHILE ISNIL $x DO", "WHILE ISNIL $x\nEND", "WHILE DO\nEND"] {
            let out = eval(&mut e, bad, &[], &[]);
            assert!(out.reply.is_error(), "{bad:?} should fail to parse");
        }
    }
}
