//! The value model: one enum over all Redis data types.

use crate::ds::{hll::Hll, stream::Stream, zset::ZSet};
use bytes::Bytes;
use std::collections::{HashMap, HashSet, VecDeque};

/// A value stored at a key.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Binary-safe string (also the storage for HyperLogLog-free strings).
    Str(Bytes),
    /// Doubly-ended list.
    List(VecDeque<Bytes>),
    /// Field → value hash.
    Hash(HashMap<Bytes, Bytes>),
    /// Unordered set of members.
    Set(HashSet<Bytes>),
    /// Sorted set backed by a skiplist with rank spans.
    ZSet(ZSet),
    /// Append-only stream of id → field/value entries.
    Stream(Stream),
    /// Dense HyperLogLog (stored as its own type; `PF*` commands only).
    Hll(Hll),
}

impl Value {
    /// The `TYPE` command's name for this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Hash(_) => "hash",
            Value::Set(_) => "set",
            Value::ZSet(_) => "zset",
            Value::Stream(_) => "stream",
            // Redis stores HLLs as strings; we keep the visible type equal.
            Value::Hll(_) => "string",
        }
    }

    /// True when the container is empty and the key should be removed
    /// (Redis deletes empty aggregates).
    pub fn is_empty_container(&self) -> bool {
        match self {
            Value::Str(_) => false,
            Value::List(l) => l.is_empty(),
            Value::Hash(h) => h.is_empty(),
            Value::Set(s) => s.is_empty(),
            Value::ZSet(z) => z.is_empty(),
            // Streams persist even when all entries are deleted.
            Value::Stream(_) => false,
            Value::Hll(_) => false,
        }
    }

    /// Approximate heap footprint in bytes, used for `used_memory`
    /// accounting, snapshot scheduling (paper §4.2.3), and the BGSave
    /// copy-on-write model (paper §6.2).
    pub fn approx_size(&self) -> usize {
        const ENTRY_OVERHEAD: usize = 48; // allocator + struct overhead guess
        match self {
            Value::Str(b) => b.len() + ENTRY_OVERHEAD,
            Value::List(l) => l.iter().map(|b| b.len() + 16).sum::<usize>() + ENTRY_OVERHEAD,
            Value::Hash(h) => {
                h.iter().map(|(k, v)| k.len() + v.len() + 32).sum::<usize>() + ENTRY_OVERHEAD
            }
            Value::Set(s) => s.iter().map(|m| m.len() + 24).sum::<usize>() + ENTRY_OVERHEAD,
            Value::ZSet(z) => z.approx_size() + ENTRY_OVERHEAD,
            Value::Stream(s) => s.approx_size() + ENTRY_OVERHEAD,
            Value::Hll(h) => h.approx_size() + ENTRY_OVERHEAD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Str(Bytes::new()).type_name(), "string");
        assert_eq!(Value::List(VecDeque::new()).type_name(), "list");
        assert_eq!(Value::Hash(HashMap::new()).type_name(), "hash");
        assert_eq!(Value::Set(HashSet::new()).type_name(), "set");
        assert_eq!(Value::ZSet(ZSet::new()).type_name(), "zset");
        assert_eq!(Value::Hll(Hll::new()).type_name(), "string");
    }

    #[test]
    fn empty_container_detection() {
        assert!(Value::List(VecDeque::new()).is_empty_container());
        assert!(Value::Hash(HashMap::new()).is_empty_container());
        assert!(Value::Set(HashSet::new()).is_empty_container());
        assert!(Value::ZSet(ZSet::new()).is_empty_container());
        assert!(!Value::Str(Bytes::new()).is_empty_container());
        let mut l = VecDeque::new();
        l.push_back(Bytes::from_static(b"x"));
        assert!(!Value::List(l).is_empty_container());
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = Value::Str(Bytes::from(vec![0u8; 10]));
        let big = Value::Str(Bytes::from(vec![0u8; 1000]));
        assert!(big.approx_size() > small.approx_size());
    }
}
