//! Redis streams: an append-only log of `(ms, seq)`-identified entries.

use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A stream entry id: millisecond timestamp plus a per-millisecond sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId {
    /// Millisecond component.
    pub ms: u64,
    /// Sequence within the millisecond.
    pub seq: u64,
}

impl StreamId {
    /// The smallest possible id (`0-0`).
    pub const MIN: StreamId = StreamId { ms: 0, seq: 0 };
    /// The largest possible id.
    pub const MAX: StreamId = StreamId {
        ms: u64::MAX,
        seq: u64::MAX,
    };

    /// The next id after this one, or `None` at the maximum.
    pub fn next(self) -> Option<StreamId> {
        if self.seq < u64::MAX {
            Some(StreamId {
                ms: self.ms,
                seq: self.seq + 1,
            })
        } else if self.ms < u64::MAX {
            Some(StreamId {
                ms: self.ms + 1,
                seq: 0,
            })
        } else {
            None
        }
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.ms, self.seq)
    }
}

/// Error parsing a stream id from its `ms-seq` text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStreamIdError;

impl FromStr for StreamId {
    type Err = ParseStreamIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('-') {
            Some((ms, seq)) => Ok(StreamId {
                ms: ms.parse().map_err(|_| ParseStreamIdError)?,
                seq: seq.parse().map_err(|_| ParseStreamIdError)?,
            }),
            // A bare number means `ms-0` in range queries.
            None => Ok(StreamId {
                ms: s.parse().map_err(|_| ParseStreamIdError)?,
                seq: 0,
            }),
        }
    }
}

/// One stream entry: alternating field/value pairs.
pub type StreamEntry = Vec<(Bytes, Bytes)>;

/// A pending (delivered but unacknowledged) entry in a consumer group's PEL.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingEntry {
    /// Consumer the entry is assigned to.
    pub consumer: Bytes,
    /// Last delivery time (engine milliseconds).
    pub delivery_time_ms: u64,
    /// How many times it has been delivered.
    pub delivery_count: u64,
}

/// A consumer group over a stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConsumerGroup {
    /// Last entry delivered to any consumer via `>`.
    pub last_delivered: StreamId,
    /// The pending entries list (PEL): delivered, not yet acknowledged.
    pub pending: BTreeMap<StreamId, PendingEntry>,
    /// Known consumer names (created on first read or explicitly).
    pub consumers: std::collections::BTreeSet<Bytes>,
}

/// An append-only stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Stream {
    entries: BTreeMap<StreamId, StreamEntry>,
    /// Highest id ever assigned — persists across XDEL so ids never repeat.
    pub last_id: StreamId,
    /// Total entries ever added (monotone).
    pub entries_added: u64,
    /// Lowest id ever trimmed/deleted, for `XADD` id validation parity.
    pub max_deleted_id: StreamId,
    /// Consumer groups, by name (sorted for canonical serialization).
    pub groups: BTreeMap<Bytes, ConsumerGroup>,
}

impl Stream {
    /// Creates an empty stream.
    pub fn new() -> Stream {
        Stream::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no live entries remain.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Generates the id `XADD key *` would assign at wall time `now_ms`.
    pub fn next_auto_id(&self, now_ms: u64) -> StreamId {
        if now_ms > self.last_id.ms {
            StreamId { ms: now_ms, seq: 0 }
        } else {
            StreamId {
                ms: self.last_id.ms,
                seq: self.last_id.seq + 1,
            }
        }
    }

    /// Appends an entry with an explicit id. Fails if the id is not strictly
    /// greater than `last_id` (Redis's monotonicity rule).
    pub fn add(&mut self, id: StreamId, fields: StreamEntry) -> Result<(), StreamAddError> {
        if id == StreamId::MIN {
            return Err(StreamAddError::IdZero);
        }
        if id <= self.last_id && self.entries_added > 0 {
            return Err(StreamAddError::IdTooSmall);
        }
        self.last_id = id;
        self.entries_added += 1;
        self.entries.insert(id, fields);
        Ok(())
    }

    /// Looks up a single entry.
    pub fn get(&self, id: &StreamId) -> Option<&StreamEntry> {
        self.entries.get(id)
    }

    /// Deletes entries by id, returning how many existed.
    pub fn delete(&mut self, ids: &[StreamId]) -> usize {
        let mut removed = 0;
        for id in ids {
            if self.entries.remove(id).is_some() {
                removed += 1;
                if *id > self.max_deleted_id {
                    self.max_deleted_id = *id;
                }
            }
        }
        removed
    }

    /// Entries with `start <= id <= end`, ascending, up to `count`.
    pub fn range(
        &self,
        start: StreamId,
        end: StreamId,
        count: Option<usize>,
    ) -> Vec<(StreamId, StreamEntry)> {
        let iter = self
            .entries
            .range(start..=end)
            .map(|(id, e)| (*id, e.clone()));
        match count {
            Some(n) => iter.take(n).collect(),
            None => iter.collect(),
        }
    }

    /// Entries with `start <= id <= end`, **descending**, up to `count`.
    pub fn rev_range(
        &self,
        start: StreamId,
        end: StreamId,
        count: Option<usize>,
    ) -> Vec<(StreamId, StreamEntry)> {
        let iter = self
            .entries
            .range(start..=end)
            .rev()
            .map(|(id, e)| (*id, e.clone()));
        match count {
            Some(n) => iter.take(n).collect(),
            None => iter.collect(),
        }
    }

    /// Entries strictly after `after`, ascending (the `XREAD` primitive).
    pub fn read_after(
        &self,
        after: StreamId,
        count: Option<usize>,
    ) -> Vec<(StreamId, StreamEntry)> {
        let Some(start) = after.next() else {
            return Vec::new();
        };
        self.range(start, StreamId::MAX, count)
    }

    /// Trims to at most `maxlen` entries by dropping the oldest; returns the
    /// number evicted (`XTRIM MAXLEN`).
    pub fn trim_maxlen(&mut self, maxlen: usize) -> usize {
        let mut evicted = 0;
        while self.entries.len() > maxlen {
            let Some((id, _)) = self.entries.pop_first() else {
                break;
            };
            if id > self.max_deleted_id {
                self.max_deleted_id = id;
            }
            evicted += 1;
        }
        evicted
    }

    /// Trims entries with id < `minid`; returns the number evicted.
    pub fn trim_minid(&mut self, minid: StreamId) -> usize {
        let victims: Vec<StreamId> = self.entries.range(..minid).map(|(id, _)| *id).collect();
        let n = victims.len();
        self.delete(&victims);
        n
    }

    /// First (lowest-id) live entry.
    pub fn first(&self) -> Option<(StreamId, &StreamEntry)> {
        self.entries.iter().next().map(|(id, e)| (*id, e))
    }

    /// Last (highest-id) live entry.
    pub fn last(&self) -> Option<(StreamId, &StreamEntry)> {
        self.entries.iter().next_back().map(|(id, e)| (*id, e))
    }

    /// Approximate heap footprint.
    pub fn approx_size(&self) -> usize {
        let entries: usize = self
            .entries
            .values()
            .map(|e| e.iter().map(|(f, v)| f.len() + v.len() + 32).sum::<usize>() + 48)
            .sum();
        let groups: usize = self
            .groups
            .iter()
            .map(|(name, g)| name.len() + g.pending.len() * 48 + 64)
            .sum();
        entries + groups
    }

    // --- consumer groups (§2.1's "rich feature set") ----------------------

    /// Creates a consumer group positioned after `start`. Returns `false`
    /// if the group already exists.
    pub fn create_group(&mut self, name: Bytes, start: StreamId) -> bool {
        if self.groups.contains_key(&name) {
            return false;
        }
        self.groups.insert(
            name,
            ConsumerGroup {
                last_delivered: start,
                ..ConsumerGroup::default()
            },
        );
        true
    }

    /// Destroys a group; returns whether it existed.
    pub fn destroy_group(&mut self, name: &[u8]) -> bool {
        self.groups.remove(name).is_some()
    }

    /// New-message ids a `XREADGROUP ... >` call would deliver (does NOT
    /// mutate; the caller assigns via [`Stream::claim`] + group SETID so
    /// the mutation is expressible as deterministic effects).
    pub fn undelivered(&self, group: &[u8], count: Option<usize>) -> Vec<StreamId> {
        let Some(g) = self.groups.get(group) else {
            return Vec::new();
        };
        let iter = self
            .entries
            .range(g.last_delivered..)
            .map(|(id, _)| *id)
            .filter(|id| *id > g.last_delivered);
        match count {
            Some(n) => iter.take(n).collect(),
            None => iter.collect(),
        }
    }

    /// Assigns entries to a consumer in a group's PEL with an explicit
    /// delivery time — the deterministic primitive behind both `XCLAIM`
    /// and the replication of `XREADGROUP` (Redis replicates group reads
    /// as XCLAIM). With `force`, creates PEL entries even if absent.
    /// Returns the ids actually (re)assigned.
    pub fn claim(
        &mut self,
        group: &[u8],
        consumer: &Bytes,
        ids: &[StreamId],
        time_ms: u64,
        retry_count: Option<u64>,
        force: bool,
    ) -> Vec<StreamId> {
        let Some(g) = self.groups.get_mut(group) else {
            return Vec::new();
        };
        g.consumers.insert(consumer.clone());
        let mut out = Vec::new();
        for id in ids {
            // Claiming an entry that no longer exists removes it from the
            // PEL instead (Redis behaviour).
            if !self.entries.contains_key(id) {
                g.pending.remove(id);
                continue;
            }
            match g.pending.get_mut(id) {
                Some(p) => {
                    p.consumer = consumer.clone();
                    p.delivery_time_ms = time_ms;
                    p.delivery_count = retry_count.unwrap_or(p.delivery_count + 1);
                    out.push(*id);
                }
                None if force => {
                    g.pending.insert(
                        *id,
                        PendingEntry {
                            consumer: consumer.clone(),
                            delivery_time_ms: time_ms,
                            delivery_count: retry_count.unwrap_or(1),
                        },
                    );
                    out.push(*id);
                }
                None => {}
            }
        }
        out
    }

    /// Acknowledges ids in a group; returns how many were pending.
    pub fn ack(&mut self, group: &[u8], ids: &[StreamId]) -> usize {
        let Some(g) = self.groups.get_mut(group) else {
            return 0;
        };
        ids.iter()
            .filter(|id| g.pending.remove(id).is_some())
            .count()
    }

    /// Moves a group's delivery cursor (XGROUP SETID / replication of
    /// group reads).
    pub fn set_group_cursor(&mut self, group: &[u8], id: StreamId) -> bool {
        match self.groups.get_mut(group) {
            Some(g) => {
                g.last_delivered = id;
                true
            }
            None => false,
        }
    }

    /// A consumer's pending entries in id order (the non-`>` XREADGROUP
    /// form re-reads the consumer's own PEL).
    pub fn consumer_pending(
        &self,
        group: &[u8],
        consumer: &[u8],
        after: StreamId,
        count: Option<usize>,
    ) -> Vec<StreamId> {
        let Some(g) = self.groups.get(group) else {
            return Vec::new();
        };
        let iter = g
            .pending
            .range(after..)
            .filter(|(id, p)| **id > after && p.consumer.as_ref() == consumer)
            .map(|(id, _)| *id);
        match count {
            Some(n) => iter.take(n).collect(),
            None => iter.collect(),
        }
    }
}

/// Errors from [`Stream::add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamAddError {
    /// `0-0` is not a valid entry id.
    IdZero,
    /// The id is not greater than the stream's last id.
    IdTooSmall,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(s: &str) -> StreamEntry {
        vec![(
            Bytes::from_static(b"f"),
            Bytes::copy_from_slice(s.as_bytes()),
        )]
    }

    fn id(ms: u64, seq: u64) -> StreamId {
        StreamId { ms, seq }
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("5-3".parse::<StreamId>().unwrap(), id(5, 3));
        assert_eq!("7".parse::<StreamId>().unwrap(), id(7, 0));
        assert!("x-1".parse::<StreamId>().is_err());
        assert_eq!(id(5, 3).to_string(), "5-3");
    }

    #[test]
    fn monotonic_ids_enforced() {
        let mut s = Stream::new();
        s.add(id(5, 0), fields("a")).unwrap();
        assert_eq!(
            s.add(id(5, 0), fields("b")),
            Err(StreamAddError::IdTooSmall)
        );
        assert_eq!(
            s.add(id(4, 9), fields("b")),
            Err(StreamAddError::IdTooSmall)
        );
        s.add(id(5, 1), fields("b")).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.add(id(0, 0), fields("z")), Err(StreamAddError::IdZero));
    }

    #[test]
    fn auto_id_generation() {
        let mut s = Stream::new();
        assert_eq!(s.next_auto_id(100), id(100, 0));
        s.add(id(100, 0), fields("a")).unwrap();
        // Same millisecond → bump sequence.
        assert_eq!(s.next_auto_id(100), id(100, 1));
        // Clock went backwards → stay at last ms, bump sequence.
        assert_eq!(s.next_auto_id(50), id(100, 1));
        assert_eq!(s.next_auto_id(200), id(200, 0));
    }

    #[test]
    fn range_queries() {
        let mut s = Stream::new();
        for i in 1..=5 {
            s.add(id(i, 0), fields(&i.to_string())).unwrap();
        }
        assert_eq!(s.range(id(2, 0), id(4, 0), None).len(), 3);
        assert_eq!(s.range(StreamId::MIN, StreamId::MAX, Some(2)).len(), 2);
        let rev = s.rev_range(StreamId::MIN, StreamId::MAX, Some(2));
        assert_eq!(rev[0].0, id(5, 0));
        assert_eq!(rev[1].0, id(4, 0));
    }

    #[test]
    fn read_after_excludes_start() {
        let mut s = Stream::new();
        for i in 1..=3 {
            s.add(id(i, 0), fields(&i.to_string())).unwrap();
        }
        let out = s.read_after(id(1, 0), None);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, id(2, 0));
        assert!(s.read_after(id(3, 0), None).is_empty());
    }

    #[test]
    fn delete_and_last_id_persistence() {
        let mut s = Stream::new();
        s.add(id(1, 0), fields("a")).unwrap();
        s.add(id(2, 0), fields("b")).unwrap();
        assert_eq!(s.delete(&[id(2, 0), id(9, 9)]), 1);
        assert_eq!(s.len(), 1);
        // last_id survives deletion: new adds must still exceed 2-0.
        assert_eq!(
            s.add(id(2, 0), fields("c")),
            Err(StreamAddError::IdTooSmall)
        );
    }

    #[test]
    fn trim_maxlen_drops_oldest() {
        let mut s = Stream::new();
        for i in 1..=10 {
            s.add(id(i, 0), fields(&i.to_string())).unwrap();
        }
        assert_eq!(s.trim_maxlen(3), 7);
        assert_eq!(s.len(), 3);
        assert_eq!(s.first().unwrap().0, id(8, 0));
    }

    /// Panic-freedom regression (analyzer invariant 1): trimming to zero —
    /// including on an already-empty stream — must drain via the fallible
    /// pop path, never unwrap a missing first key.
    #[test]
    fn trim_maxlen_to_zero_and_on_empty_stream() {
        let mut s = Stream::new();
        assert_eq!(s.trim_maxlen(0), 0);

        for i in 1..=4 {
            s.add(id(i, 0), fields(&i.to_string())).unwrap();
        }
        assert_eq!(s.trim_maxlen(0), 4);
        assert_eq!(s.len(), 0);
        assert!(s.first().is_none());
        // Trimming again on the now-empty stream is still a no-op.
        assert_eq!(s.trim_maxlen(0), 0);
        // max_deleted_id advanced, so re-adding an evicted id is rejected.
        assert_eq!(
            s.add(id(4, 0), fields("x")),
            Err(StreamAddError::IdTooSmall)
        );
    }

    #[test]
    fn trim_minid() {
        let mut s = Stream::new();
        for i in 1..=5 {
            s.add(id(i, 0), fields(&i.to_string())).unwrap();
        }
        assert_eq!(s.trim_minid(id(3, 0)), 2);
        assert_eq!(s.first().unwrap().0, id(3, 0));
    }

    #[test]
    fn id_next_overflow_behaviour() {
        assert_eq!(id(1, u64::MAX).next(), Some(id(2, 0)));
        assert_eq!(StreamId::MAX.next(), None);
        assert_eq!(id(1, 1).next(), Some(id(1, 2)));
    }
}
