//! Sorted set: a skiplist with rank spans plus a member → score map.
//!
//! This mirrors Redis's own `t_zset.c` design: a hash map gives O(1) score
//! lookup, and a skiplist ordered by `(score, member)` gives O(log n)
//! insertion, deletion, rank queries, and range scans. Spans on each forward
//! link count level-0 hops, which is what makes rank arithmetic O(log n).
//!
//! The arena-based representation (`Vec<Node>` + u32 links) avoids `unsafe`
//! entirely: the workspace denies unsafe code.

use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::HashMap;

const MAX_LEVEL: usize = 32;
/// Probability numerator for promoting a node one level (Redis uses 0.25).
const P_NUM: u64 = 1;
const P_DEN: u64 = 4;
const NIL: u32 = u32::MAX;

/// Inclusive/exclusive bound on a score range (`ZRANGEBYSCORE` syntax).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoreBound {
    /// Unbounded below (`-inf`).
    NegInf,
    /// Unbounded above (`+inf`).
    PosInf,
    /// Inclusive finite bound.
    Incl(f64),
    /// Exclusive finite bound (the `(1.5` syntax).
    Excl(f64),
}

impl ScoreBound {
    fn admits_from_below(&self, score: f64) -> bool {
        match *self {
            ScoreBound::NegInf => true,
            ScoreBound::PosInf => false,
            ScoreBound::Incl(b) => score >= b,
            ScoreBound::Excl(b) => score > b,
        }
    }

    fn admits_from_above(&self, score: f64) -> bool {
        match *self {
            ScoreBound::NegInf => false,
            ScoreBound::PosInf => true,
            ScoreBound::Incl(b) => score <= b,
            ScoreBound::Excl(b) => score < b,
        }
    }
}

/// Bound on a lexicographic range (`ZRANGEBYLEX` syntax).
#[derive(Debug, Clone, PartialEq)]
pub enum LexBound {
    /// `-` — before every member.
    NegInf,
    /// `+` — after every member.
    PosInf,
    /// `[m` — inclusive.
    Incl(Bytes),
    /// `(m` — exclusive.
    Excl(Bytes),
}

impl LexBound {
    fn admits_from_below(&self, member: &[u8]) -> bool {
        match self {
            LexBound::NegInf => true,
            LexBound::PosInf => false,
            LexBound::Incl(b) => member >= b.as_ref(),
            LexBound::Excl(b) => member > b.as_ref(),
        }
    }

    fn admits_from_above(&self, member: &[u8]) -> bool {
        match self {
            LexBound::NegInf => false,
            LexBound::PosInf => true,
            LexBound::Incl(b) => member <= b.as_ref(),
            LexBound::Excl(b) => member < b.as_ref(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Link {
    next: u32,
    /// Number of level-0 hops this link covers.
    span: u32,
}

#[derive(Debug, Clone)]
struct Node {
    member: Bytes,
    score: f64,
    links: Vec<Link>,
}

/// A sorted set.
#[derive(Debug, Clone)]
pub struct ZSet {
    scores: HashMap<Bytes, f64>,
    nodes: Vec<Node>,
    free: Vec<u32>,
    level: usize,
    len: usize,
    /// xorshift64 state for level generation; seeded constant so that a
    /// replica replaying the effect stream builds an identical structure.
    rng: u64,
}

impl Default for ZSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for ZSet {
    fn eq(&self, other: &Self) -> bool {
        // Structural layout (levels) is irrelevant; equal content suffices.
        self.len == other.len && self.scores == other.scores
    }
}

fn cmp_entry(a_score: f64, a_member: &[u8], b_score: f64, b_member: &[u8]) -> Ordering {
    // Scores are validated NaN-free at the command layer; total_cmp agrees
    // with partial_cmp on every non-NaN pair and never panics.
    a_score
        .total_cmp(&b_score)
        .then_with(|| a_member.cmp(b_member))
}

impl ZSet {
    /// Creates an empty sorted set.
    pub fn new() -> ZSet {
        let head = Node {
            member: Bytes::new(),
            score: f64::NEG_INFINITY,
            links: vec![Link { next: NIL, span: 0 }; MAX_LEVEL],
        };
        ZSet {
            scores: HashMap::new(),
            nodes: vec![head],
            free: Vec::new(),
            level: 1,
            len: 0,
            rng: 0x9E3779B97F4A7C15,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Score of `member`, if present.
    pub fn score(&self, member: &[u8]) -> Option<f64> {
        self.scores.get(member).copied()
    }

    /// Inserts or updates a member. Returns `true` if the member was new.
    pub fn insert(&mut self, member: Bytes, score: f64) -> bool {
        debug_assert!(!score.is_nan());
        match self.scores.get(&member).copied() {
            Some(old) => {
                if old != score {
                    self.list_remove(old, &member);
                    self.list_insert(score, member.clone());
                    self.scores.insert(member, score);
                }
                false
            }
            None => {
                self.list_insert(score, member.clone());
                self.scores.insert(member, score);
                self.len += 1;
                true
            }
        }
    }

    /// Removes a member. Returns its score if it was present.
    pub fn remove(&mut self, member: &[u8]) -> Option<f64> {
        let score = self.scores.remove(member)?;
        self.list_remove(score, member);
        self.len -= 1;
        Some(score)
    }

    /// Adds `delta` to a member's score (inserting at `delta` when absent)
    /// and returns the new score.
    pub fn incr(&mut self, member: Bytes, delta: f64) -> f64 {
        let new = self.scores.get(&member).copied().unwrap_or(0.0) + delta;
        self.insert(member, new);
        new
    }

    /// 0-based rank of a member in ascending `(score, member)` order.
    pub fn rank(&self, member: &[u8]) -> Option<usize> {
        let score = self.score(member)?;
        let mut x = 0u32;
        let mut rank = 0usize;
        for i in (0..self.level).rev() {
            loop {
                let link = self.nodes[x as usize].links[i];
                if link.next == NIL {
                    break;
                }
                let nxt = &self.nodes[link.next as usize];
                if cmp_entry(nxt.score, &nxt.member, score, member) == Ordering::Less {
                    rank += link.span as usize;
                    x = link.next;
                } else {
                    break;
                }
            }
        }
        Some(rank)
    }

    /// Member and score at a 0-based rank.
    pub fn by_rank(&self, rank: usize) -> Option<(&Bytes, f64)> {
        if rank >= self.len {
            return None;
        }
        let target = rank + 1; // 1-based traversal position
        let mut traversed = 0usize;
        let mut x = 0u32;
        for i in (0..self.level).rev() {
            loop {
                let link = self.nodes[x as usize].links[i];
                if link.next == NIL || traversed + link.span as usize > target {
                    break;
                }
                traversed += link.span as usize;
                x = link.next;
                if traversed == target {
                    let n = &self.nodes[x as usize];
                    return Some((&n.member, n.score));
                }
            }
        }
        None
    }

    /// Ascending iterator over all `(member, score)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, f64)> {
        ZIter {
            z: self,
            cur: self.nodes[0].links[0].next,
        }
    }

    /// Members in the 0-based rank window `[start, stop]` (both inclusive),
    /// ascending.
    pub fn range_by_rank(&self, start: usize, stop: usize) -> Vec<(Bytes, f64)> {
        if start >= self.len || stop < start {
            return Vec::new();
        }
        let stop = stop.min(self.len - 1);
        let mut out = Vec::with_capacity(stop - start + 1);
        // Jump to `start` with rank arithmetic, then walk level 0.
        if let Some((m, s)) = self.by_rank(start) {
            let Some(mut cur_idx) = self.find_index(s, m) else {
                // A rank hit always has an index; returning the partial
                // window beats panicking the serving path.
                return out;
            };
            out.push((m.clone(), s));
            for _ in start..stop {
                let nxt = self.nodes[cur_idx as usize].links[0].next;
                if nxt == NIL {
                    break;
                }
                let n = &self.nodes[nxt as usize];
                out.push((n.member.clone(), n.score));
                cur_idx = nxt;
            }
        }
        out
    }

    /// Members whose score lies within `[min, max]`, ascending.
    pub fn range_by_score(&self, min: &ScoreBound, max: &ScoreBound) -> Vec<(Bytes, f64)> {
        let mut out = Vec::new();
        let mut cur = self.first_in_score_range(min);
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if !max.admits_from_above(n.score) {
                break;
            }
            out.push((n.member.clone(), n.score));
            cur = n.links[0].next;
        }
        out
    }

    /// Number of members whose score lies within the range.
    pub fn count_by_score(&self, min: &ScoreBound, max: &ScoreBound) -> usize {
        // O(range) walk; fine at this scale and keeps the code simple.
        let mut count = 0;
        let mut cur = self.first_in_score_range(min);
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if !max.admits_from_above(n.score) {
                break;
            }
            count += 1;
            cur = n.links[0].next;
        }
        count
    }

    /// Members within a lexicographic range, ascending. Redis defines this
    /// only when all members share a score; we apply it over member order
    /// regardless.
    pub fn range_by_lex(&self, min: &LexBound, max: &LexBound) -> Vec<(Bytes, f64)> {
        let mut out = Vec::new();
        let mut cur = self.nodes[0].links[0].next;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if min.admits_from_below(&n.member) {
                if !max.admits_from_above(&n.member) {
                    // Members are only lex-ordered within one score band, so
                    // keep scanning rather than break (multi-score sets).
                    cur = n.links[0].next;
                    continue;
                }
                out.push((n.member.clone(), n.score));
            }
            cur = n.links[0].next;
        }
        out
    }

    /// Removes every member in the 0-based rank window, returning them.
    pub fn remove_range_by_rank(&mut self, start: usize, stop: usize) -> Vec<(Bytes, f64)> {
        let victims = self.range_by_rank(start, stop);
        for (m, _) in &victims {
            self.remove(m);
        }
        victims
    }

    /// Removes every member in the score range, returning them.
    pub fn remove_range_by_score(
        &mut self,
        min: &ScoreBound,
        max: &ScoreBound,
    ) -> Vec<(Bytes, f64)> {
        let victims = self.range_by_score(min, max);
        for (m, _) in &victims {
            self.remove(m);
        }
        victims
    }

    /// Pops the `count` lowest-ranked members (`ZPOPMIN`).
    pub fn pop_min(&mut self, count: usize) -> Vec<(Bytes, f64)> {
        if count == 0 || self.len == 0 {
            return Vec::new();
        }
        let count = count.min(self.len);
        self.remove_range_by_rank(0, count - 1)
    }

    /// Pops the `count` highest-ranked members (`ZPOPMAX`), highest first.
    pub fn pop_max(&mut self, count: usize) -> Vec<(Bytes, f64)> {
        if self.len == 0 || count == 0 {
            return Vec::new();
        }
        let count = count.min(self.len);
        let mut out = self.remove_range_by_rank(self.len - count, self.len - 1);
        out.reverse();
        out
    }

    /// Approximate heap footprint.
    pub fn approx_size(&self) -> usize {
        self.scores.keys().map(|m| 2 * m.len() + 64).sum::<usize>()
    }

    // --- internals ---------------------------------------------------------

    fn first_in_score_range(&self, min: &ScoreBound) -> u32 {
        let mut x = 0u32;
        for i in (0..self.level).rev() {
            loop {
                let link = self.nodes[x as usize].links[i];
                if link.next == NIL {
                    break;
                }
                let nxt = &self.nodes[link.next as usize];
                if !min.admits_from_below(nxt.score) {
                    x = link.next;
                } else {
                    break;
                }
            }
        }
        self.nodes[x as usize].links[0].next
    }

    fn find_index(&self, score: f64, member: &[u8]) -> Option<u32> {
        let mut x = 0u32;
        for i in (0..self.level).rev() {
            loop {
                let link = self.nodes[x as usize].links[i];
                if link.next == NIL {
                    break;
                }
                let nxt = &self.nodes[link.next as usize];
                if cmp_entry(nxt.score, &nxt.member, score, member) == Ordering::Less {
                    x = link.next;
                } else {
                    break;
                }
            }
        }
        let candidate = self.nodes[x as usize].links[0].next;
        if candidate != NIL {
            let n = &self.nodes[candidate as usize];
            if n.score == score && n.member.as_ref() == member {
                return Some(candidate);
            }
        }
        None
    }

    fn random_level(&mut self) -> usize {
        let mut level = 1;
        loop {
            // xorshift64
            self.rng ^= self.rng << 13;
            self.rng ^= self.rng >> 7;
            self.rng ^= self.rng << 17;
            if self.rng % P_DEN < P_NUM && level < MAX_LEVEL {
                level += 1;
            } else {
                return level;
            }
        }
    }

    fn alloc_node(&mut self, member: Bytes, score: f64, levels: usize) -> u32 {
        let node = Node {
            member,
            score,
            links: vec![Link { next: NIL, span: 0 }; levels],
        };
        match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn list_insert(&mut self, score: f64, member: Bytes) {
        let mut update = [0u32; MAX_LEVEL];
        let mut rank = [0usize; MAX_LEVEL];
        let mut x = 0u32;
        for i in (0..self.level).rev() {
            rank[i] = if i == self.level - 1 { 0 } else { rank[i + 1] };
            loop {
                let link = self.nodes[x as usize].links[i];
                if link.next == NIL {
                    break;
                }
                let nxt = &self.nodes[link.next as usize];
                if cmp_entry(nxt.score, &nxt.member, score, &member) == Ordering::Less {
                    rank[i] += link.span as usize;
                    x = link.next;
                } else {
                    break;
                }
            }
            update[i] = x;
        }

        let lvl = self.random_level();
        if lvl > self.level {
            for i in self.level..lvl {
                rank[i] = 0;
                update[i] = 0;
                self.nodes[0].links[i].span = self.len as u32;
            }
            self.level = lvl;
        }

        let new = self.alloc_node(member, score, lvl);
        for i in 0..lvl {
            let up = update[i];
            let up_link = self.nodes[up as usize].links[i];
            self.nodes[new as usize].links[i] = Link {
                next: up_link.next,
                span: up_link.span - (rank[0] - rank[i]) as u32,
            };
            self.nodes[up as usize].links[i] = Link {
                next: new,
                span: (rank[0] - rank[i]) as u32 + 1,
            };
        }
        for (i, &up) in update.iter().enumerate().take(self.level).skip(lvl) {
            self.nodes[up as usize].links[i].span += 1;
        }
    }

    fn list_remove(&mut self, score: f64, member: &[u8]) {
        let mut update = [0u32; MAX_LEVEL];
        let mut x = 0u32;
        for i in (0..self.level).rev() {
            loop {
                let link = self.nodes[x as usize].links[i];
                if link.next == NIL {
                    break;
                }
                let nxt = &self.nodes[link.next as usize];
                if cmp_entry(nxt.score, &nxt.member, score, member) == Ordering::Less {
                    x = link.next;
                } else {
                    break;
                }
            }
            update[i] = x;
        }
        let target = self.nodes[x as usize].links[0].next;
        if target == NIL {
            return;
        }
        {
            let t = &self.nodes[target as usize];
            if t.score != score || t.member.as_ref() != member {
                return;
            }
        }
        let t_levels = self.nodes[target as usize].links.len();
        for (i, &up) in update.iter().enumerate().take(self.level) {
            if self.nodes[up as usize].links[i].next == target && i < t_levels {
                let t_link = self.nodes[target as usize].links[i];
                let up_link = &mut self.nodes[up as usize].links[i];
                // Redis: span += x.span - 1 (x.span is 0 when x ends the
                // level, making the predecessor's span shrink by one).
                up_link.span = up_link.span + t_link.span - 1;
                up_link.next = t_link.next;
            } else {
                self.nodes[up as usize].links[i].span -= 1;
            }
        }
        while self.level > 1 && self.nodes[0].links[self.level - 1].next == NIL {
            self.level -= 1;
        }
        // Return the slot to the free list; clear payload to release memory.
        self.nodes[target as usize].member = Bytes::new();
        self.nodes[target as usize].links.clear();
        self.free.push(target);
    }
}

struct ZIter<'a> {
    z: &'a ZSet,
    cur: u32,
}

impl<'a> Iterator for ZIter<'a> {
    type Item = (&'a Bytes, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.z.nodes[self.cur as usize];
        self.cur = n.links[0].next;
        Some((&n.member, n.score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_and_score() {
        let mut z = ZSet::new();
        assert!(z.insert(m("a"), 1.0));
        assert!(z.insert(m("b"), 2.0));
        assert!(!z.insert(m("a"), 3.0)); // update, not new
        assert_eq!(z.score(b"a"), Some(3.0));
        assert_eq!(z.score(b"b"), Some(2.0));
        assert_eq!(z.score(b"zzz"), None);
        assert_eq!(z.len(), 2);
    }

    #[test]
    fn ordering_by_score_then_member() {
        let mut z = ZSet::new();
        z.insert(m("b"), 1.0);
        z.insert(m("a"), 1.0);
        z.insert(m("c"), 0.5);
        let order: Vec<_> = z.iter().map(|(mm, _)| mm.clone()).collect();
        assert_eq!(order, vec![m("c"), m("a"), m("b")]);
    }

    #[test]
    fn rank_and_by_rank() {
        let mut z = ZSet::new();
        for (i, name) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            z.insert(m(name), i as f64);
        }
        for (i, name) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            assert_eq!(z.rank(name.as_bytes()), Some(i));
            let (mm, s) = z.by_rank(i).unwrap();
            assert_eq!(mm, &m(name));
            assert_eq!(s, i as f64);
        }
        assert_eq!(z.rank(b"nope"), None);
        assert_eq!(z.by_rank(5), None);
    }

    #[test]
    fn remove_updates_ranks() {
        let mut z = ZSet::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            z.insert(m(name), i as f64);
        }
        assert_eq!(z.remove(b"b"), Some(1.0));
        assert_eq!(z.remove(b"b"), None);
        assert_eq!(z.len(), 3);
        assert_eq!(z.rank(b"a"), Some(0));
        assert_eq!(z.rank(b"c"), Some(1));
        assert_eq!(z.rank(b"d"), Some(2));
    }

    #[test]
    fn score_update_moves_member() {
        let mut z = ZSet::new();
        z.insert(m("a"), 1.0);
        z.insert(m("b"), 2.0);
        z.insert(m("a"), 10.0);
        assert_eq!(z.rank(b"a"), Some(1));
        assert_eq!(z.rank(b"b"), Some(0));
    }

    #[test]
    fn range_by_rank_windows() {
        let mut z = ZSet::new();
        for (i, name) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            z.insert(m(name), i as f64);
        }
        let r = z.range_by_rank(1, 3);
        assert_eq!(
            r.iter().map(|(mm, _)| mm.clone()).collect::<Vec<_>>(),
            vec![m("b"), m("c"), m("d")]
        );
        assert_eq!(z.range_by_rank(4, 100).len(), 1);
        assert!(z.range_by_rank(9, 10).is_empty());
        assert!(z.range_by_rank(3, 2).is_empty());
    }

    #[test]
    fn range_by_score_bounds() {
        let mut z = ZSet::new();
        for (i, name) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            z.insert(m(name), i as f64);
        }
        let incl = z.range_by_score(&ScoreBound::Incl(1.0), &ScoreBound::Incl(3.0));
        assert_eq!(incl.len(), 3);
        let excl = z.range_by_score(&ScoreBound::Excl(1.0), &ScoreBound::Excl(3.0));
        assert_eq!(excl.len(), 1);
        assert_eq!(excl[0].0, m("c"));
        let all = z.range_by_score(&ScoreBound::NegInf, &ScoreBound::PosInf);
        assert_eq!(all.len(), 5);
        assert_eq!(
            z.count_by_score(&ScoreBound::Incl(2.0), &ScoreBound::PosInf),
            3
        );
    }

    #[test]
    fn lex_range_same_score() {
        let mut z = ZSet::new();
        for name in ["alpha", "beta", "delta", "gamma"] {
            z.insert(m(name), 0.0);
        }
        let r = z.range_by_lex(&LexBound::Incl(m("beta")), &LexBound::Excl(m("gamma")));
        assert_eq!(
            r.iter().map(|(mm, _)| mm.clone()).collect::<Vec<_>>(),
            vec![m("beta"), m("delta")]
        );
        let all = z.range_by_lex(&LexBound::NegInf, &LexBound::PosInf);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn pop_min_max() {
        let mut z = ZSet::new();
        for (i, name) in ["a", "b", "c", "d"].iter().enumerate() {
            z.insert(m(name), i as f64);
        }
        assert_eq!(z.pop_min(2), vec![(m("a"), 0.0), (m("b"), 1.0)]);
        assert_eq!(z.pop_max(1), vec![(m("d"), 3.0)]);
        assert_eq!(z.len(), 1);
        assert_eq!(z.pop_max(10), vec![(m("c"), 2.0)]);
        assert!(z.pop_min(1).is_empty());
    }

    #[test]
    fn incr_inserts_and_accumulates() {
        let mut z = ZSet::new();
        assert_eq!(z.incr(m("a"), 2.5), 2.5);
        assert_eq!(z.incr(m("a"), -1.0), 1.5);
        assert_eq!(z.score(b"a"), Some(1.5));
    }

    #[test]
    fn remove_range_by_score() {
        let mut z = ZSet::new();
        for i in 0..10 {
            z.insert(m(&format!("m{i}")), i as f64);
        }
        let gone = z.remove_range_by_score(&ScoreBound::Incl(3.0), &ScoreBound::Incl(6.0));
        assert_eq!(gone.len(), 4);
        assert_eq!(z.len(), 6);
        assert_eq!(z.score(b"m3"), None);
        assert_eq!(z.score(b"m7"), Some(7.0));
    }

    #[test]
    fn negative_scores_order_correctly() {
        let mut z = ZSet::new();
        z.insert(m("neg"), -5.0);
        z.insert(m("zero"), 0.0);
        z.insert(m("pos"), 5.0);
        assert_eq!(z.rank(b"neg"), Some(0));
        assert_eq!(z.rank(b"zero"), Some(1));
        assert_eq!(z.rank(b"pos"), Some(2));
    }

    /// Reference-model property test: the skiplist must agree with a sorted
    /// Vec on every operation sequence.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u8, i16),
        Remove(u8),
        Rank(u8),
        ByRank(u8),
        RangeScore(i16, i16),
        PopMin(u8),
        PopMax(u8),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), any::<i16>()).prop_map(|(k, s)| Op::Insert(k % 32, s)),
            any::<u8>().prop_map(|k| Op::Remove(k % 32)),
            any::<u8>().prop_map(|k| Op::Rank(k % 32)),
            any::<u8>().prop_map(Op::ByRank),
            (any::<i16>(), any::<i16>()).prop_map(|(a, b)| Op::RangeScore(a.min(b), a.max(b))),
            (0u8..4).prop_map(Op::PopMin),
            (0u8..4).prop_map(Op::PopMax),
        ]
    }

    fn model_sorted(model: &HashMap<Vec<u8>, f64>) -> Vec<(Vec<u8>, f64)> {
        let mut v: Vec<_> = model.iter().map(|(k, s)| (k.clone(), *s)).collect();
        v.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("no NaN")
                .then_with(|| a.0.cmp(&b.0))
        });
        v
    }

    proptest! {
        #[test]
        fn prop_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
            let mut z = ZSet::new();
            let mut model: HashMap<Vec<u8>, f64> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(k, s) => {
                        let key = vec![k];
                        let score = s as f64;
                        let was_new = z.insert(Bytes::from(key.clone()), score);
                        prop_assert_eq!(was_new, !model.contains_key(&key));
                        model.insert(key, score);
                    }
                    Op::Remove(k) => {
                        let key = vec![k];
                        prop_assert_eq!(z.remove(&key), model.remove(&key));
                    }
                    Op::Rank(k) => {
                        let key = vec![k];
                        let sorted = model_sorted(&model);
                        let expect = sorted.iter().position(|(kk, _)| kk == &key);
                        prop_assert_eq!(z.rank(&key), expect);
                    }
                    Op::ByRank(r) => {
                        let sorted = model_sorted(&model);
                        let expect = sorted.get(r as usize);
                        let got = z.by_rank(r as usize);
                        match (got, expect) {
                            (Some((gm, gs)), Some((em, es))) => {
                                prop_assert_eq!(gm.as_ref(), em.as_slice());
                                prop_assert_eq!(gs, *es);
                            }
                            (None, None) => {}
                            other => prop_assert!(false, "by_rank mismatch: {:?}", other),
                        }
                    }
                    Op::RangeScore(lo, hi) => {
                        let got = z.range_by_score(
                            &ScoreBound::Incl(lo as f64),
                            &ScoreBound::Incl(hi as f64),
                        );
                        let expect: Vec<_> = model_sorted(&model)
                            .into_iter()
                            .filter(|(_, s)| *s >= lo as f64 && *s <= hi as f64)
                            .collect();
                        prop_assert_eq!(got.len(), expect.len());
                        for (g, e) in got.iter().zip(&expect) {
                            prop_assert_eq!(g.0.as_ref(), e.0.as_slice());
                            prop_assert_eq!(g.1, e.1);
                        }
                    }
                    Op::PopMin(n) => {
                        let got = z.pop_min(n as usize);
                        let sorted = model_sorted(&model);
                        let expect: Vec<_> = sorted.iter().take(n as usize).cloned().collect();
                        prop_assert_eq!(got.len(), expect.len());
                        for (g, e) in got.iter().zip(&expect) {
                            prop_assert_eq!(g.0.as_ref(), e.0.as_slice());
                            model.remove(&e.0);
                        }
                    }
                    Op::PopMax(n) => {
                        let got = z.pop_max(n as usize);
                        let sorted = model_sorted(&model);
                        let expect: Vec<_> =
                            sorted.iter().rev().take(n as usize).cloned().collect();
                        prop_assert_eq!(got.len(), expect.len());
                        for (g, e) in got.iter().zip(&expect) {
                            prop_assert_eq!(g.0.as_ref(), e.0.as_slice());
                            model.remove(&e.0);
                        }
                    }
                }
                prop_assert_eq!(z.len(), model.len());
            }
        }
    }
}
