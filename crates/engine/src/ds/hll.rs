//! Dense HyperLogLog with 2^14 six-bit registers.
//!
//! Matches Redis's dense encoding parameters (16384 registers → standard
//! error ≈ 0.81%) and uses the classic bias-corrected estimator with linear
//! counting for small cardinalities. Hashing uses a fixed-key SipHash so
//! estimates are deterministic across processes — a requirement for
//! effect-stream replication (a replica merging the same `PFADD`s must reach
//! an identical structure).

use std::hash::{Hash, Hasher};

/// Number of registers (2^14, Redis's choice).
pub const REGISTERS: usize = 1 << 14;
const REG_BITS: usize = 6;
const DATA_BYTES: usize = REGISTERS * REG_BITS / 8; // 12288

/// A dense HyperLogLog.
#[derive(Clone, PartialEq)]
pub struct Hll {
    /// 6-bit registers packed little-endian-in-bit-order.
    data: Box<[u8; DATA_BYTES]>,
}

impl std::fmt::Debug for Hll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hll(count≈{})", self.count())
    }
}

impl Default for Hll {
    fn default() -> Self {
        Self::new()
    }
}

/// A deterministic 64-bit hash: std's SipHash-1-3 with its fixed default
/// keys, which is stable for a given Rust release and — more importantly —
/// identical on primary and replicas within one process universe.
fn hash64(data: &[u8]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    data.hash(&mut h);
    h.finish()
}

impl Hll {
    /// Creates an empty HLL (all registers zero).
    pub fn new() -> Hll {
        Hll {
            data: Box::new([0u8; DATA_BYTES]),
        }
    }

    fn get_register(&self, idx: usize) -> u8 {
        let bit = idx * REG_BITS;
        let byte = bit / 8;
        let off = bit % 8;
        let lo = self.data[byte] as u16;
        let hi = if byte + 1 < DATA_BYTES {
            self.data[byte + 1] as u16
        } else {
            0
        };
        (((lo | (hi << 8)) >> off) & 0x3F) as u8
    }

    fn set_register(&mut self, idx: usize, val: u8) {
        debug_assert!(val < 64);
        let bit = idx * REG_BITS;
        let byte = bit / 8;
        let off = bit % 8;
        let mut word = self.data[byte] as u16;
        if byte + 1 < DATA_BYTES {
            word |= (self.data[byte + 1] as u16) << 8;
        }
        word &= !(0x3Fu16 << off);
        word |= (val as u16) << off;
        self.data[byte] = (word & 0xFF) as u8;
        if byte + 1 < DATA_BYTES {
            self.data[byte + 1] = (word >> 8) as u8;
        }
    }

    /// Adds an element. Returns `true` if any register changed (the Redis
    /// `PFADD` return contract).
    pub fn add(&mut self, element: &[u8]) -> bool {
        let h = hash64(element);
        let idx = (h & (REGISTERS as u64 - 1)) as usize;
        // Rank of first set bit in the remaining 50 bits, 1-based.
        let rest = h >> 14;
        let rank = (rest.trailing_zeros().min(50) + 1) as u8;
        if rank > self.get_register(idx) {
            self.set_register(idx, rank);
            true
        } else {
            false
        }
    }

    /// Merges another HLL into this one (register-wise max). Returns `true`
    /// if any register changed.
    pub fn merge(&mut self, other: &Hll) -> bool {
        let mut changed = false;
        for i in 0..REGISTERS {
            let o = other.get_register(i);
            if o > self.get_register(i) {
                self.set_register(i, o);
                changed = true;
            }
        }
        changed
    }

    /// Estimates the cardinality.
    pub fn count(&self) -> u64 {
        let m = REGISTERS as f64;
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for i in 0..REGISTERS {
            let r = self.get_register(i);
            if r == 0 {
                zeros += 1;
            }
            sum += 1.0 / (1u64 << r) as f64;
        }
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Linear counting for small cardinalities.
            (m * (m / zeros as f64).ln()).round() as u64
        } else {
            raw.round() as u64
        }
    }

    /// Serializes to bytes (used by the RDB-like snapshot format).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Deserializes from bytes produced by [`Hll::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Hll> {
        if data.len() != DATA_BYTES {
            return None;
        }
        let mut arr = Box::new([0u8; DATA_BYTES]);
        arr.copy_from_slice(data);
        Some(Hll { data: arr })
    }

    /// Approximate heap footprint.
    pub fn approx_size(&self) -> usize {
        DATA_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counts_zero() {
        assert_eq!(Hll::new().count(), 0);
    }

    #[test]
    fn register_packing_roundtrip() {
        let mut h = Hll::new();
        // Exercise all bit offsets, including byte-straddling registers.
        for (i, v) in [
            (0usize, 63u8),
            (1, 1),
            (2, 42),
            (3, 7),
            (100, 33),
            (16383, 50),
        ] {
            h.set_register(i, v);
        }
        assert_eq!(h.get_register(0), 63);
        assert_eq!(h.get_register(1), 1);
        assert_eq!(h.get_register(2), 42);
        assert_eq!(h.get_register(3), 7);
        assert_eq!(h.get_register(100), 33);
        assert_eq!(h.get_register(16383), 50);
        // Neighbours untouched.
        assert_eq!(h.get_register(4), 0);
        assert_eq!(h.get_register(99), 0);
    }

    #[test]
    fn add_is_idempotent() {
        let mut h = Hll::new();
        assert!(h.add(b"x"));
        assert!(!h.add(b"x"));
        let c = h.count();
        h.add(b"x");
        assert_eq!(h.count(), c);
    }

    #[test]
    fn small_cardinality_exactish() {
        let mut h = Hll::new();
        for i in 0..100 {
            h.add(format!("item-{i}").as_bytes());
        }
        let c = h.count();
        // Linear counting regime: should be essentially exact.
        assert!((95..=105).contains(&c), "count {c} not within 5% of 100");
    }

    #[test]
    fn large_cardinality_within_error_bound() {
        let mut h = Hll::new();
        let n = 100_000u64;
        for i in 0..n {
            h.add(format!("element-{i}").as_bytes());
        }
        let c = h.count() as f64;
        let err = (c - n as f64).abs() / n as f64;
        // Standard error is 0.81%; allow 4 sigma.
        assert!(err < 0.033, "relative error {err} too large (count {c})");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Hll::new();
        let mut b = Hll::new();
        let mut union = Hll::new();
        for i in 0..5_000 {
            let e = format!("a-{i}");
            a.add(e.as_bytes());
            union.add(e.as_bytes());
        }
        for i in 0..5_000 {
            let e = format!("b-{i}");
            b.add(e.as_bytes());
            union.add(e.as_bytes());
        }
        let mut merged = a.clone();
        assert!(merged.merge(&b));
        assert_eq!(merged.count(), union.count());
        // Merging again changes nothing.
        assert!(!merged.merge(&b));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut h = Hll::new();
        for i in 0..1_000 {
            h.add(format!("x{i}").as_bytes());
        }
        let bytes = h.to_bytes();
        let back = Hll::from_bytes(&bytes).unwrap();
        assert_eq!(back.count(), h.count());
        assert!(Hll::from_bytes(&bytes[1..]).is_none());
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = Hll::new();
        let mut b = Hll::new();
        for i in 0..1_000 {
            a.add(format!("k{i}").as_bytes());
            b.add(format!("k{i}").as_bytes());
        }
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
