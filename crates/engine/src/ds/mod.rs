//! The engine's from-scratch data structures.
//!
//! Strings, lists, hashes and sets use `std` collections directly (as fields
//! of [`crate::Value`]); the structures with non-trivial algorithmic content
//! live here:
//!
//! * [`zset`] — a skiplist with rank spans (the structure Redis itself uses
//!   for sorted sets), supporting O(log n) insert/delete/rank and range
//!   queries by rank, score, and lex order.
//! * [`stream`] — an append-only log of (ms, seq) ids, as used by `XADD` &co.
//! * [`hll`] — a dense HyperLogLog with 2^14 six-bit registers and the
//!   standard bias-corrected estimator.
// Serving/apply path: panic-freedom is an enforced invariant (DESIGN.md §9;
// `cargo run -p memorydb-analysis`). Keep clippy aligned with the analyzer.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod hll;
pub mod stream;
pub mod zset;
