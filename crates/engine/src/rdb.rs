//! RDB-like binary snapshot format with CRC64 integrity.
//!
//! MemoryDB snapshots (paper §4.2) serialize the keyspace into a compact
//! binary form stored in the object store. The format is canonical — hash
//! and set members are sorted — so identical keyspaces always serialize to
//! identical bytes, which is what makes the running-checksum verification of
//! §7.2.1 meaningful.

use crate::db::Db;
use crate::ds::hll::Hll;
use crate::ds::stream::{Stream, StreamId};
use crate::ds::zset::ZSet;
use crate::value::Value;
use bytes::Bytes;
use std::collections::{HashMap, HashSet, VecDeque};

const MAGIC: &[u8; 4] = b"MDBR";
const FORMAT_VERSION: u32 = 1;

/// Errors from snapshot deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdbError {
    /// Bad magic bytes.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The trailing CRC64 does not match the payload.
    ChecksumMismatch,
    /// Structurally invalid payload.
    Corrupt(&'static str),
}

impl std::fmt::Display for RdbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdbError::BadMagic => write!(f, "bad snapshot magic"),
            RdbError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            RdbError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            RdbError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for RdbError {}

// --- CRC64 (ECMA-182, the polynomial Redis uses for RDB) ------------------

fn crc64_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        const POLY: u64 = 0xad93d23594c935a9; // reflected ECMA-182
        let mut table = [0u64; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u64;
            let mut j = 0;
            while j < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                j += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

/// Streaming CRC64 (Jones/Redis variant): feed chunks, read the digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Fresh hasher.
    pub fn new() -> Crc64 {
        Crc64 { state: 0 }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, data: &[u8]) {
        let table = crc64_table();
        for &b in data {
            self.state = table[((self.state ^ b as u64) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Current digest.
    pub fn digest(&self) -> u64 {
        self.state
    }
}

/// One-shot CRC64 of a byte slice.
pub fn crc64(data: &[u8]) -> u64 {
    let mut c = Crc64::new();
    c.update(data);
    c.digest()
}

// --- primitives ------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, RdbError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or(RdbError::Corrupt("truncated u8"))?;
        self.pos += 1;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, RdbError> {
        let end = self.pos + 4;
        let raw: [u8; 4] = self
            .data
            .get(self.pos..end)
            .ok_or(RdbError::Corrupt("truncated u32"))?
            .try_into()
            .expect("length checked");
        self.pos = end;
        Ok(u32::from_le_bytes(raw))
    }
    fn u64(&mut self) -> Result<u64, RdbError> {
        let end = self.pos + 8;
        let raw: [u8; 8] = self
            .data
            .get(self.pos..end)
            .ok_or(RdbError::Corrupt("truncated u64"))?
            .try_into()
            .expect("length checked");
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }
    fn f64(&mut self) -> Result<f64, RdbError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bytes(&mut self) -> Result<Bytes, RdbError> {
        let len = self.u32()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .ok_or(RdbError::Corrupt("length overflow"))?;
        let out = self
            .data
            .get(self.pos..end)
            .ok_or(RdbError::Corrupt("truncated bytes"))?;
        self.pos = end;
        Ok(Bytes::copy_from_slice(out))
    }
}

// --- value (de)serialization ------------------------------------------------

const TAG_STR: u8 = 0;
const TAG_LIST: u8 = 1;
const TAG_HASH: u8 = 2;
const TAG_SET: u8 = 3;
const TAG_ZSET: u8 = 4;
const TAG_STREAM: u8 = 5;
const TAG_HLL: u8 = 6;

fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Str(b) => {
            w.u8(TAG_STR);
            w.bytes(b);
        }
        Value::List(l) => {
            w.u8(TAG_LIST);
            w.u32(l.len() as u32);
            for item in l {
                w.bytes(item);
            }
        }
        Value::Hash(h) => {
            w.u8(TAG_HASH);
            w.u32(h.len() as u32);
            let mut fields: Vec<_> = h.iter().collect();
            fields.sort_by(|a, b| a.0.cmp(b.0));
            for (f, val) in fields {
                w.bytes(f);
                w.bytes(val);
            }
        }
        Value::Set(s) => {
            w.u8(TAG_SET);
            w.u32(s.len() as u32);
            let mut members: Vec<_> = s.iter().collect();
            members.sort();
            for m in members {
                w.bytes(m);
            }
        }
        Value::ZSet(z) => {
            w.u8(TAG_ZSET);
            w.u32(z.len() as u32);
            for (m, score) in z.iter() {
                w.bytes(m);
                w.f64(score);
            }
        }
        Value::Stream(s) => {
            w.u8(TAG_STREAM);
            w.u64(s.last_id.ms);
            w.u64(s.last_id.seq);
            w.u64(s.entries_added);
            w.u64(s.max_deleted_id.ms);
            w.u64(s.max_deleted_id.seq);
            w.u32(s.len() as u32);
            for (id, entry) in s.range(StreamId::MIN, StreamId::MAX, None) {
                w.u64(id.ms);
                w.u64(id.seq);
                w.u32(entry.len() as u32);
                for (f, v) in entry {
                    w.bytes(&f);
                    w.bytes(&v);
                }
            }
            // Consumer groups (BTreeMap iteration is already canonical).
            w.u32(s.groups.len() as u32);
            for (name, g) in &s.groups {
                w.bytes(name);
                w.u64(g.last_delivered.ms);
                w.u64(g.last_delivered.seq);
                w.u32(g.pending.len() as u32);
                for (id, p) in &g.pending {
                    w.u64(id.ms);
                    w.u64(id.seq);
                    w.bytes(&p.consumer);
                    w.u64(p.delivery_time_ms);
                    w.u64(p.delivery_count);
                }
                w.u32(g.consumers.len() as u32);
                for c in &g.consumers {
                    w.bytes(c);
                }
            }
        }
        Value::Hll(h) => {
            w.u8(TAG_HLL);
            w.bytes(&h.to_bytes());
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, RdbError> {
    match r.u8()? {
        TAG_STR => Ok(Value::Str(r.bytes()?)),
        TAG_LIST => {
            let n = r.u32()? as usize;
            let mut l = VecDeque::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                l.push_back(r.bytes()?);
            }
            Ok(Value::List(l))
        }
        TAG_HASH => {
            let n = r.u32()? as usize;
            let mut h = HashMap::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let f = r.bytes()?;
                let v = r.bytes()?;
                h.insert(f, v);
            }
            Ok(Value::Hash(h))
        }
        TAG_SET => {
            let n = r.u32()? as usize;
            let mut s = HashSet::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                s.insert(r.bytes()?);
            }
            Ok(Value::Set(s))
        }
        TAG_ZSET => {
            let n = r.u32()? as usize;
            let mut z = ZSet::new();
            for _ in 0..n {
                let m = r.bytes()?;
                let score = r.f64()?;
                if score.is_nan() {
                    return Err(RdbError::Corrupt("NaN zset score"));
                }
                z.insert(m, score);
            }
            Ok(Value::ZSet(z))
        }
        TAG_STREAM => {
            let mut s = Stream::new();
            let last = StreamId {
                ms: r.u64()?,
                seq: r.u64()?,
            };
            let entries_added = r.u64()?;
            let max_deleted = StreamId {
                ms: r.u64()?,
                seq: r.u64()?,
            };
            let n = r.u32()? as usize;
            for _ in 0..n {
                let id = StreamId {
                    ms: r.u64()?,
                    seq: r.u64()?,
                };
                let fc = r.u32()? as usize;
                let mut entry = Vec::with_capacity(fc.min(1 << 16));
                for _ in 0..fc {
                    let f = r.bytes()?;
                    let v = r.bytes()?;
                    entry.push((f, v));
                }
                s.add(id, entry)
                    .map_err(|_| RdbError::Corrupt("stream ids out of order"))?;
            }
            s.last_id = last;
            s.entries_added = entries_added;
            s.max_deleted_id = max_deleted;
            let ngroups = r.u32()? as usize;
            for _ in 0..ngroups {
                let name = r.bytes()?;
                let mut group = crate::ds::stream::ConsumerGroup {
                    last_delivered: StreamId {
                        ms: r.u64()?,
                        seq: r.u64()?,
                    },
                    ..Default::default()
                };
                let npending = r.u32()? as usize;
                for _ in 0..npending {
                    let id = StreamId {
                        ms: r.u64()?,
                        seq: r.u64()?,
                    };
                    let consumer = r.bytes()?;
                    let delivery_time_ms = r.u64()?;
                    let delivery_count = r.u64()?;
                    group.pending.insert(
                        id,
                        crate::ds::stream::PendingEntry {
                            consumer,
                            delivery_time_ms,
                            delivery_count,
                        },
                    );
                }
                let nconsumers = r.u32()? as usize;
                for _ in 0..nconsumers {
                    group.consumers.insert(r.bytes()?);
                }
                s.groups.insert(name, group);
            }
            Ok(Value::Stream(s))
        }
        TAG_HLL => {
            let raw = r.bytes()?;
            Hll::from_bytes(&raw)
                .map(Value::Hll)
                .ok_or(RdbError::Corrupt("bad HLL payload"))
        }
        _ => Err(RdbError::Corrupt("unknown value tag")),
    }
}

/// Serializes a single (value, expiry) pair — the unit slot migration moves
/// between shards (paper §5.2).
pub fn serialize_entry(value: &Value, expire_at: Option<u64>) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    match expire_at {
        Some(at) => {
            w.u8(1);
            w.u64(at);
        }
        None => w.u8(0),
    }
    write_value(&mut w, value);
    w.buf
}

/// Inverse of [`serialize_entry`].
pub fn deserialize_entry(data: &[u8]) -> Result<(Value, Option<u64>), RdbError> {
    let mut r = Reader { data, pos: 0 };
    let expire_at = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return Err(RdbError::Corrupt("bad expiry tag")),
    };
    let v = read_value(&mut r)?;
    if r.pos != data.len() {
        return Err(RdbError::Corrupt("trailing bytes"));
    }
    Ok((v, expire_at))
}

/// Shared body of the dump variants: sorts the entries by key and emits the
/// canonical `MAGIC | version | count | entries | crc64` envelope.
fn dump_entries(mut entries: Vec<(&Bytes, &crate::db::Entry)>) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u32(FORMAT_VERSION);
    entries.sort_by(|a, b| a.0.cmp(b.0));
    w.u64(entries.len() as u64);
    for (key, entry) in entries {
        w.bytes(key);
        match entry.expire_at {
            Some(at) => {
                w.u8(1);
                w.u64(at);
            }
            None => w.u8(0),
        }
        write_value(&mut w, &entry.value);
    }
    let crc = crc64(&w.buf);
    w.u64(crc);
    w.buf
}

/// Serializes a whole keyspace into the snapshot format.
///
/// Layout: `MAGIC | version u32 | count u64 | entries... | crc64 u64` where
/// each entry is `key | expiry-tag(+ms) | value`. Keys are emitted in sorted
/// order so equal keyspaces produce byte-identical snapshots.
pub fn dump(db: &Db) -> Vec<u8> {
    dump_entries(db.iter_entries().collect())
}

/// Serializes several disjoint keyspaces into one snapshot, as if they were
/// a single [`Db`]. Entries are merge-sorted by key across partitions, so the
/// output is byte-identical to [`dump`] of the unsplit keyspace — striped
/// engines snapshot without re-merging their data first.
pub fn dump_multi(dbs: &[&Db]) -> Vec<u8> {
    dump_entries(dbs.iter().flat_map(|db| db.iter_entries()).collect())
}

/// Serializes only the keys whose hash slot falls in `lo..=hi`, merge-sorted
/// across partitions. This is the payload of one incremental-snapshot chunk:
/// the same envelope as [`dump`], so [`load`] decodes it unchanged, but
/// restricted to a slot range so deltas ship only dirtied slots.
pub fn dump_slot_range(dbs: &[&Db], lo: u16, hi: u16) -> Vec<u8> {
    dump_entries(
        dbs.iter()
            .flat_map(|db| db.iter_entries())
            .filter(|(key, _)| {
                let slot = crate::slots::key_hash_slot(key);
                (lo..=hi).contains(&slot)
            })
            .collect(),
    )
}

/// Loads a snapshot produced by [`dump`], verifying the CRC64 trailer.
pub fn load(data: &[u8]) -> Result<Db, RdbError> {
    if data.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(RdbError::Corrupt("too short"));
    }
    let (payload, trailer) = data.split_at(data.len() - 8);
    let stored_crc = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if crc64(payload) != stored_crc {
        return Err(RdbError::ChecksumMismatch);
    }
    if &payload[..4] != MAGIC {
        return Err(RdbError::BadMagic);
    }
    let mut r = Reader {
        data: payload,
        pos: 4,
    };
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(RdbError::BadVersion(version));
    }
    let count = r.u64()?;
    let mut db = Db::new();
    for _ in 0..count {
        let key = r.bytes()?;
        let expire_at = match r.u8()? {
            0 => None,
            1 => Some(r.u64()?),
            _ => return Err(RdbError::Corrupt("bad expiry tag")),
        };
        let value = read_value(&mut r)?;
        db.set_value(key.clone(), value);
        if expire_at.is_some() {
            db.set_expiry(&key, expire_at);
        }
    }
    if r.pos != payload.len() {
        return Err(RdbError::Corrupt("trailing bytes"));
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd;
    use crate::exec::{Engine, Role, SessionState};

    fn populated_engine() -> Engine {
        let mut e = Engine::new(Role::Primary);
        e.set_time_ms(1_000);
        let mut s = SessionState::new();
        for c in [
            cmd(["SET", "str", "hello"]),
            cmd(["SET", "expiring", "v", "PXAT", "999999"]),
            cmd(["RPUSH", "list", "a", "b", "c"]),
            cmd(["HSET", "hash", "f1", "v1", "f2", "v2"]),
            cmd(["SADD", "set", "x", "y", "z"]),
            cmd(["ZADD", "zset", "1.5", "m1", "-2", "m2"]),
            cmd(["XADD", "stream", "5-1", "f", "v"]),
            cmd(["XADD", "stream", "6-0", "g", "w"]),
            cmd(["PFADD", "hll", "a", "b", "c"]),
        ] {
            let out = e.execute(&mut s, &c);
            assert!(!out.reply.is_error(), "{:?} -> {:?}", c, out.reply);
        }
        e
    }

    #[test]
    fn dump_load_roundtrip_all_types() {
        let e = populated_engine();
        let snapshot = dump(&e.db);
        let restored = load(&snapshot).unwrap();
        assert_eq!(restored.len(), e.db.len());
        for (key, entry) in e.db.iter_entries() {
            assert_eq!(restored.lookup(key, 0), Some(&entry.value), "key {key:?}");
            assert_eq!(restored.expiry(key), entry.expire_at, "expiry of {key:?}");
        }
    }

    #[test]
    fn canonical_bytes_for_equal_keyspaces() {
        // Same logical content inserted in different orders must serialize
        // identically (sorted keys, sorted hash fields / set members).
        let mut e1 = Engine::new(Role::Primary);
        let mut e2 = Engine::new(Role::Primary);
        let mut s = SessionState::new();
        e1.execute(&mut s, &cmd(["HSET", "h", "a", "1", "b", "2"]));
        e1.execute(&mut s, &cmd(["SADD", "s", "x", "y"]));
        e2.execute(&mut s, &cmd(["SADD", "s", "y", "x"]));
        e2.execute(&mut s, &cmd(["HSET", "h", "b", "2", "a", "1"]));
        assert_eq!(dump(&e1.db), dump(&e2.db));
    }

    #[test]
    fn dump_multi_matches_single_dump() {
        let e = populated_engine();
        let whole = dump(&e.db);
        let n = 4usize;
        let parts = e.db.clone().split_by_slot(n, |slot| {
            (slot as usize * n) / crate::slots::NUM_SLOTS as usize
        });
        assert!(parts.iter().filter(|p| !p.is_empty()).count() > 1);
        let refs: Vec<&Db> = parts.iter().collect();
        assert_eq!(dump_multi(&refs), whole);
        // Degenerate cases: one partition, and empty input.
        assert_eq!(dump_multi(&[&e.db]), whole);
        assert_eq!(dump_multi(&[]), dump(&Db::new()));
    }

    #[test]
    fn dump_slot_range_partitions_cover_dump() {
        let e = populated_engine();
        // Disjoint ranges covering the whole slot space must together hold
        // exactly the keys of the full dump, each loadable via plain load().
        let ranges = [(0u16, 4095u16), (4096, 8191), (8192, 12287), (12288, 16383)];
        let mut total = 0usize;
        for (lo, hi) in ranges {
            let chunk = dump_slot_range(&[&e.db], lo, hi);
            let part = load(&chunk).unwrap();
            for (key, entry) in part.iter_entries() {
                let slot = crate::slots::key_hash_slot(key);
                assert!((lo..=hi).contains(&slot), "key {key:?} outside {lo}..={hi}");
                assert_eq!(e.db.lookup(key, 0), Some(&entry.value));
                assert_eq!(e.db.expiry(key), entry.expire_at);
            }
            total += part.len();
        }
        assert_eq!(total, e.db.len());
        // The full slot range is byte-identical to a plain dump.
        assert_eq!(
            dump_slot_range(&[&e.db], 0, crate::slots::NUM_SLOTS - 1),
            dump(&e.db)
        );
    }

    #[test]
    fn checksum_detects_corruption() {
        let e = populated_engine();
        let mut snapshot = dump(&e.db);
        // Flip one payload byte.
        let mid = snapshot.len() / 2;
        snapshot[mid] ^= 0xFF;
        assert_eq!(load(&snapshot).err(), Some(RdbError::ChecksumMismatch));
    }

    #[test]
    fn truncation_detected() {
        let e = populated_engine();
        let snapshot = dump(&e.db);
        assert!(load(&snapshot[..snapshot.len() - 3]).is_err());
        assert!(load(b"tiny").is_err());
    }

    #[test]
    fn bad_magic_and_version() {
        let e = populated_engine();
        let mut snapshot = dump(&e.db);
        snapshot[0] = b'X';
        // Fix up the CRC so magic is the first failure observed.
        let len = snapshot.len();
        let crc = crc64(&snapshot[..len - 8]);
        snapshot[len - 8..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(load(&snapshot).err(), Some(RdbError::BadMagic));
    }

    #[test]
    fn empty_db_roundtrip() {
        let db = Db::new();
        let snapshot = dump(&db);
        let restored = load(&snapshot).unwrap();
        assert_eq!(restored.len(), 0);
    }

    #[test]
    fn entry_roundtrip_for_migration() {
        let e = populated_engine();
        for (key, entry) in e.db.iter_entries() {
            let raw = serialize_entry(&entry.value, entry.expire_at);
            let (v, at) = deserialize_entry(&raw).unwrap();
            assert_eq!(&v, &entry.value, "key {key:?}");
            assert_eq!(at, entry.expire_at);
        }
        assert!(deserialize_entry(&[9]).is_err());
    }

    #[test]
    fn crc64_stable_known_values() {
        // Self-consistency vectors (guards against accidental table edits).
        assert_eq!(crc64(b""), 0);
        let a = crc64(b"123456789");
        let b = crc64(b"123456789");
        assert_eq!(a, b);
        assert_ne!(crc64(b"123456789"), crc64(b"123456780"));
        // Streaming equals one-shot.
        let mut c = Crc64::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.digest(), a);
    }
}
