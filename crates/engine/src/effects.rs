//! Effect-based replication primitives (paper §2.1, §3.2).
//!
//! Executing a command on the primary yields an [`ExecOutcome`]: the RESP
//! reply for the client plus the **effects** — the deterministic command
//! sequence that, applied in order to any replica, reproduces the primary's
//! state change. MemoryDB intercepts exactly this stream and redirects it
//! into the transaction log.

use bytes::Bytes;
use memorydb_resp::Frame;

/// One effect: a deterministic command in argument-vector form.
pub type EffectCmd = Vec<Bytes>;

/// Which keys a command dirtied, for the key-level hazard tracker
/// (paper §3.2: reads of keys with unpersisted writes must be delayed).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum DirtySet {
    /// Nothing was modified.
    #[default]
    None,
    /// These specific keys were modified.
    Keys(Vec<Bytes>),
    /// The entire keyspace was modified (`FLUSHALL`).
    All,
}

impl DirtySet {
    /// True when nothing was dirtied.
    pub fn is_none(&self) -> bool {
        matches!(self, DirtySet::None)
    }

    /// Merges another dirty set into this one.
    pub fn merge(&mut self, other: DirtySet) {
        match (&mut *self, other) {
            (_, DirtySet::None) => {}
            (DirtySet::All, _) => {}
            (_, DirtySet::All) => *self = DirtySet::All,
            (DirtySet::None, k @ DirtySet::Keys(_)) => *self = k,
            (DirtySet::Keys(mine), DirtySet::Keys(theirs)) => mine.extend(theirs),
        }
    }
}

/// The result of executing one client command (or one `EXEC` transaction).
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Reply to send to the client (possibly only after the effects commit,
    /// which is the core crate's client-blocking tracker's job).
    pub reply: Frame,
    /// Deterministic effects to replicate. Empty for reads and no-op writes.
    pub effects: Vec<EffectCmd>,
    /// Keys dirtied by this execution.
    pub dirty: DirtySet,
}

impl ExecOutcome {
    /// A read-only outcome: a reply with no effects.
    pub fn read(reply: Frame) -> ExecOutcome {
        ExecOutcome {
            reply,
            effects: Vec::new(),
            dirty: DirtySet::None,
        }
    }

    /// A write outcome carrying its effects and dirtied keys.
    pub fn write(reply: Frame, effects: Vec<EffectCmd>, dirty: DirtySet) -> ExecOutcome {
        ExecOutcome {
            reply,
            effects,
            dirty,
        }
    }

    /// An error outcome (no effects).
    pub fn error(msg: impl Into<memorydb_resp::FrameStr>) -> ExecOutcome {
        ExecOutcome::read(Frame::error(msg))
    }

    /// Did this execution mutate state?
    pub fn is_mutation(&self) -> bool {
        !self.effects.is_empty()
    }
}

/// Serializes an effect command into the compact length-prefixed record
/// format used inside transaction-log payloads: `argc` then `len,bytes` per
/// argument, all varint-free little-endian u32 (simple and unambiguous).
pub fn encode_effect(cmd: &EffectCmd, out: &mut Vec<u8>) {
    out.extend_from_slice(&(cmd.len() as u32).to_le_bytes());
    for arg in cmd {
        out.extend_from_slice(&(arg.len() as u32).to_le_bytes());
        out.extend_from_slice(arg);
    }
}

/// Serializes a batch of effects (one atomic log record).
pub fn encode_effect_batch(cmds: &[EffectCmd]) -> Vec<u8> {
    let mut out = Vec::with_capacity(effect_batch_encoded_len(cmds));
    encode_effect_batch_into(cmds, &mut out);
    out
}

/// Appends [`encode_effect_batch`]'s serialization to `out` — the hot
/// append path pre-sizes one buffer (via [`effect_batch_encoded_len`]) and
/// encodes straight into it instead of allocating an intermediate batch.
pub fn encode_effect_batch_into(cmds: &[EffectCmd], out: &mut Vec<u8>) {
    out.extend_from_slice(&(cmds.len() as u32).to_le_bytes());
    for c in cmds {
        encode_effect(c, out);
    }
}

/// Exact encoded size of [`encode_effect_batch`]'s output for `cmds`.
pub fn effect_batch_encoded_len(cmds: &[EffectCmd]) -> usize {
    4 + cmds
        .iter()
        .map(|c| 4 + c.iter().map(|a| 4 + a.len()).sum::<usize>())
        .sum::<usize>()
}

/// Decodes a batch produced by [`encode_effect_batch`].
pub fn decode_effect_batch(data: &[u8]) -> Option<Vec<EffectCmd>> {
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> Option<u32> {
        let end = pos.checked_add(4)?;
        let raw: [u8; 4] = data.get(*pos..end)?.try_into().ok()?;
        *pos = end;
        Some(u32::from_le_bytes(raw))
    };
    let n = take_u32(&mut pos)? as usize;
    let mut cmds = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let argc = take_u32(&mut pos)? as usize;
        let mut cmd = Vec::with_capacity(argc.min(64));
        for _ in 0..argc {
            let len = take_u32(&mut pos)? as usize;
            let end = pos.checked_add(len)?;
            cmd.push(Bytes::copy_from_slice(data.get(pos..end)?));
            pos = end;
        }
        cmds.push(cmd);
    }
    if pos == data.len() {
        Some(cmds)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn dirty_set_merge_rules() {
        let mut d = DirtySet::None;
        d.merge(DirtySet::Keys(vec![b("a")]));
        assert_eq!(d, DirtySet::Keys(vec![b("a")]));
        d.merge(DirtySet::Keys(vec![b("b")]));
        assert_eq!(d, DirtySet::Keys(vec![b("a"), b("b")]));
        d.merge(DirtySet::All);
        assert_eq!(d, DirtySet::All);
        d.merge(DirtySet::Keys(vec![b("c")]));
        assert_eq!(d, DirtySet::All);
        let mut n = DirtySet::None;
        n.merge(DirtySet::None);
        assert!(n.is_none());
    }

    #[test]
    fn effect_batch_roundtrip() {
        let cmds = vec![
            vec![b("SET"), b("k"), b("v")],
            vec![b("DEL"), b("k2")],
            vec![b("SREM"), b("s"), Bytes::from(vec![0u8, 255u8, 10u8])],
            vec![], // degenerate but encodable
        ];
        let encoded = encode_effect_batch(&cmds);
        assert_eq!(encoded.len(), effect_batch_encoded_len(&cmds));
        assert_eq!(decode_effect_batch(&encoded), Some(cmds));
    }

    #[test]
    fn empty_batch_roundtrip() {
        let encoded = encode_effect_batch(&[]);
        assert_eq!(encoded.len(), effect_batch_encoded_len(&[]));
        assert_eq!(decode_effect_batch(&encoded), Some(vec![]));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let cmds = vec![vec![b("SET"), b("k"), b("v")]];
        let mut encoded = encode_effect_batch(&cmds);
        assert!(decode_effect_batch(&encoded[..encoded.len() - 1]).is_none());
        encoded.push(0);
        assert!(decode_effect_batch(&encoded).is_none());
        assert!(decode_effect_batch(&[1, 2]).is_none());
    }
}
