//! Cluster key-space: CRC16 slot mapping with hash-tag support.
//!
//! Redis splits the flat key space into 16384 slots using CRC16-CCITT
//! (paper §2.1). If a key contains a `{...}` hash tag, only the tag is
//! hashed, letting applications pin related keys to one slot so multi-key
//! transactions stay within one shard.

/// Total number of cluster slots.
pub const NUM_SLOTS: u16 = 16384;

/// CRC16-CCITT (XModem variant, polynomial 0x1021), the exact function
/// Redis Cluster specifies.
pub fn crc16(data: &[u8]) -> u16 {
    const POLY: u16 = 0x1021;
    let mut crc: u16 = 0;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ POLY;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Maps a key to its cluster slot, honouring `{hash tags}`.
pub fn key_hash_slot(key: &[u8]) -> u16 {
    let effective = hash_tag(key).unwrap_or(key);
    crc16(effective) % NUM_SLOTS
}

/// Extracts the hash tag from a key, if present: the content of the first
/// `{...}` pair, provided it is non-empty.
fn hash_tag(key: &[u8]) -> Option<&[u8]> {
    let open = key.iter().position(|&b| b == b'{')?;
    let close_rel = key[open + 1..].iter().position(|&b| b == b'}')?;
    if close_rel == 0 {
        None // "{}" — empty tag, hash the whole key
    } else {
        Some(&key[open + 1..open + 1 + close_rel])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vectors() {
        // Vector from the Redis Cluster specification.
        assert_eq!(crc16(b"123456789"), 0x31C3);
        assert_eq!(crc16(b""), 0x0000);
    }

    #[test]
    fn known_slot_assignments() {
        // Published values from the Redis Cluster spec & widely used tests.
        assert_eq!(key_hash_slot(b"123456789"), 0x31C3 % NUM_SLOTS);
        assert_eq!(key_hash_slot(b"foo"), 12182);
        assert_eq!(key_hash_slot(b"bar"), 5061);
        assert_eq!(key_hash_slot(b"hello"), 866);
    }

    #[test]
    fn hash_tags_group_keys() {
        assert_eq!(
            key_hash_slot(b"{user1}.following"),
            key_hash_slot(b"{user1}.followers")
        );
        assert_eq!(key_hash_slot(b"{user1}.x"), key_hash_slot(b"user1"));
        // Only the first tag counts.
        assert_eq!(key_hash_slot(b"{a}{b}"), key_hash_slot(b"a"));
        // Empty tag — whole key hashed.
        assert_ne!(key_hash_slot(b"{}different"), key_hash_slot(b""));
        assert_eq!(key_hash_slot(b"{}x"), crc16(b"{}x") % NUM_SLOTS);
        // Unclosed brace — whole key hashed.
        assert_eq!(key_hash_slot(b"{open"), crc16(b"{open") % NUM_SLOTS);
    }

    #[test]
    fn all_slots_reachable() {
        // Sanity: hashing a spread of keys covers many distinct slots.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000 {
            seen.insert(key_hash_slot(format!("key:{i}").as_bytes()));
        }
        assert!(seen.len() > 16000, "only {} slots hit", seen.len());
    }
}
