//! The command table: arity, flags, and key-extraction rules.
//!
//! MemoryDB's core needs three pieces of metadata about every command before
//! execution (paper §3.2): whether it mutates (must be logged and its reply
//! blocked until commit), which keys it touches (key-level hazard
//! detection), and which cluster slot it belongs to (routing and slot-level
//! migration blocking). This module is that metadata.
// Serving/apply path: panic-freedom is an enforced invariant (DESIGN.md §9;
// `cargo run -p memorydb-analysis`). Keep clippy aligned with the analyzer.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use bytes::Bytes;

/// Longest command name the stack-resident fast path covers. Every name in
/// the command table fits; anything longer is by definition unknown and
/// takes the spill path.
const CMD_NAME_INLINE: usize = 24;

/// An uppercased command name that lives on the stack.
///
/// The serve path needs the canonical (ASCII-uppercase) name of every
/// command two or three times per request — dispatch in the server,
/// classification in the node, key extraction in the command table. The
/// old idiom, `String::from_utf8_lossy(..).to_ascii_uppercase()`, paid up
/// to two heap allocations per use. `CmdName` uppercases into a fixed
/// 24-byte buffer instead; names that are longer or non-ASCII (possible on
/// the wire, never a real command) spill to the old lossy-`String` path so
/// error messages that embed the name stay byte-identical.
pub struct CmdName {
    buf: [u8; CMD_NAME_INLINE],
    len: usize,
    spill: Option<String>,
}

impl CmdName {
    /// Uppercases `arg` (a command's first argument) without allocating in
    /// the common case.
    pub fn from_arg(arg: &[u8]) -> CmdName {
        if arg.len() <= CMD_NAME_INLINE && arg.is_ascii() {
            let mut buf = [0u8; CMD_NAME_INLINE];
            for (dst, src) in buf.iter_mut().zip(arg) {
                *dst = src.to_ascii_uppercase();
            }
            CmdName {
                buf,
                len: arg.len(),
                spill: None,
            }
        } else {
            CmdName {
                buf: [0u8; CMD_NAME_INLINE],
                len: 0,
                spill: Some(String::from_utf8_lossy(arg).to_ascii_uppercase()),
            }
        }
    }

    /// The canonical name.
    pub fn as_str(&self) -> &str {
        match &self.spill {
            Some(s) => s,
            // Inline bytes are uppercased ASCII, always valid UTF-8.
            None => std::str::from_utf8(self.buf.get(..self.len).unwrap_or(&[])).unwrap_or(""),
        }
    }
}

impl std::ops::Deref for CmdName {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl std::fmt::Display for CmdName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<str> for CmdName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}
impl PartialEq<&str> for CmdName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Behavioural flags of a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommandFlags {
    /// May mutate the keyspace (its effects must be committed to the log).
    pub write: bool,
    /// Never mutates; may be served by replicas after `READONLY`.
    pub readonly: bool,
    /// Administrative/connection command (no keys, never replicated).
    pub admin: bool,
}

/// How to find the keys in a command's argument vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyRule {
    /// No keys.
    None,
    /// Keys at `args[first..=last]` stepping by `step`; `last == 0` means
    /// "through the final argument".
    Range {
        /// Index of the first key (1 = the arg right after the name).
        first: usize,
        /// Index of the last key, or 0 for "to the end".
        last: usize,
        /// Distance between consecutive keys.
        step: usize,
    },
    /// `numkeys` at `args[pos]`, then that many keys follow (ZUNIONSTORE-style
    /// with a destination at `args[1]`: use `DestPlusNumkeys`).
    DestPlusNumkeys,
    /// `EVAL script numkeys key...` — numkeys at `args[2]`.
    EvalStyle,
    /// `XREAD [COUNT n] STREAMS key... id...` — keys between STREAMS marker
    /// and the midpoint of the remainder.
    XRead,
    /// `GEORADIUS`-style or other specials we don't support: reject.
    Unsupported,
}

/// Static description of one command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandSpec {
    /// Canonical uppercase name.
    pub name: &'static str,
    /// Redis arity convention: positive = exact argc (including the name),
    /// negative = minimum argc.
    pub arity: i32,
    /// Behaviour flags.
    pub flags: CommandFlags,
    /// Key-extraction rule.
    pub keys: KeyRule,
}

const W: CommandFlags = CommandFlags {
    write: true,
    readonly: false,
    admin: false,
};
const R: CommandFlags = CommandFlags {
    write: false,
    readonly: true,
    admin: false,
};
const A: CommandFlags = CommandFlags {
    write: false,
    readonly: false,
    admin: true,
};

const fn range(first: usize, last: usize, step: usize) -> KeyRule {
    KeyRule::Range { first, last, step }
}

/// One key at position 1.
const K1: KeyRule = range(1, 1, 1);
/// Keys from position 1 through the end.
const KALL: KeyRule = range(1, 0, 1);
/// Two keys at positions 1 and 2.
const K12: KeyRule = range(1, 2, 1);

macro_rules! spec_table {
    ($( $name:literal => $arity:literal, $flags:expr, $keys:expr; )*) => {
        /// Looks up the spec for an (uppercased) command name.
        pub fn command_spec(name: &str) -> Option<&'static CommandSpec> {
            match name {
                $( $name => {
                    static S: CommandSpec = CommandSpec {
                        name: $name,
                        arity: $arity,
                        flags: $flags,
                        keys: $keys,
                    };
                    Some(&S)
                } )*
                _ => None,
            }
        }

        /// All command specs (drives the spec-driven test generator,
        /// paper §7.2.2.2). Every table name resolves by construction;
        /// `filter_map` keeps the serving path panic-free regardless.
        pub fn all_commands() -> Vec<&'static CommandSpec> {
            [ $( $name ),* ].into_iter().filter_map(command_spec).collect()
        }
    };
}

spec_table! {
    // --- strings ---
    "GET" => 2, R, K1;
    "SET" => -3, W, K1;
    "SETNX" => 3, W, K1;
    "SETEX" => 4, W, K1;
    "PSETEX" => 4, W, K1;
    "GETSET" => 3, W, K1;
    "GETDEL" => 2, W, K1;
    "GETEX" => -2, W, K1;
    "APPEND" => 3, W, K1;
    "STRLEN" => 2, R, K1;
    "INCR" => 2, W, K1;
    "DECR" => 2, W, K1;
    "INCRBY" => 3, W, K1;
    "DECRBY" => 3, W, K1;
    "INCRBYFLOAT" => 3, W, K1;
    "MGET" => -2, R, KALL;
    "MSET" => -3, W, range(1, 0, 2);
    "MSETNX" => -3, W, range(1, 0, 2);
    "SETRANGE" => 4, W, K1;
    "GETRANGE" => 4, R, K1;
    "SUBSTR" => 4, R, K1;
    // --- keyspace ---
    "DEL" => -2, W, KALL;
    "UNLINK" => -2, W, KALL;
    "EXISTS" => -2, R, KALL;
    "TYPE" => 2, R, K1;
    "EXPIRE" => -3, W, K1;
    "PEXPIRE" => -3, W, K1;
    "EXPIREAT" => -3, W, K1;
    "PEXPIREAT" => -3, W, K1;
    "TTL" => 2, R, K1;
    "PTTL" => 2, R, K1;
    "EXPIRETIME" => 2, R, K1;
    "PEXPIRETIME" => 2, R, K1;
    "PERSIST" => 2, W, K1;
    "KEYS" => 2, R, KeyRule::None;
    "SCAN" => -2, R, KeyRule::None;
    "RANDOMKEY" => 1, R, KeyRule::None;
    "RENAME" => 3, W, K12;
    "RENAMENX" => 3, W, K12;
    "COPY" => -3, W, K12;
    "RESTORE" => -4, W, K1;
    "DBSIZE" => 1, R, KeyRule::None;
    "FLUSHALL" => -1, W, KeyRule::None;
    "FLUSHDB" => -1, W, KeyRule::None;
    "TOUCH" => -2, R, KALL;
    // --- bitmaps ---
    "SETBIT" => 4, W, K1;
    "GETBIT" => 3, R, K1;
    "BITCOUNT" => -2, R, K1;
    "BITPOS" => -3, R, K1;
    "BITOP" => -4, W, range(2, 0, 1);
    // --- hashes ---
    "HSET" => -4, W, K1;
    "HMSET" => -4, W, K1;
    "HSETNX" => 4, W, K1;
    "HGET" => 3, R, K1;
    "HMGET" => -3, R, K1;
    "HDEL" => -3, W, K1;
    "HLEN" => 2, R, K1;
    "HEXISTS" => 3, R, K1;
    "HKEYS" => 2, R, K1;
    "HVALS" => 2, R, K1;
    "HGETALL" => 2, R, K1;
    "HINCRBY" => 4, W, K1;
    "HINCRBYFLOAT" => 4, W, K1;
    "HSTRLEN" => 3, R, K1;
    "HRANDFIELD" => -2, R, K1;
    "HSCAN" => -3, R, K1;
    // --- lists ---
    "LPUSH" => -3, W, K1;
    "RPUSH" => -3, W, K1;
    "LPUSHX" => -3, W, K1;
    "RPUSHX" => -3, W, K1;
    "LPOP" => -2, W, K1;
    "RPOP" => -2, W, K1;
    "LLEN" => 2, R, K1;
    "LRANGE" => 4, R, K1;
    "LINDEX" => 3, R, K1;
    "LSET" => 4, W, K1;
    "LINSERT" => 5, W, K1;
    "LREM" => 4, W, K1;
    "LTRIM" => 4, W, K1;
    "RPOPLPUSH" => 3, W, K12;
    "LMOVE" => 5, W, K12;
    "LPOS" => -3, R, K1;
    // --- sets ---
    "SADD" => -3, W, K1;
    "SREM" => -3, W, K1;
    "SMEMBERS" => 2, R, K1;
    "SISMEMBER" => 3, R, K1;
    "SMISMEMBER" => -3, R, K1;
    "SCARD" => 2, R, K1;
    "SPOP" => -2, W, K1;
    "SRANDMEMBER" => -2, R, K1;
    "SMOVE" => 4, W, K12;
    "SUNION" => -2, R, KALL;
    "SINTER" => -2, R, KALL;
    "SDIFF" => -2, R, KALL;
    "SUNIONSTORE" => -3, W, KALL;
    "SINTERSTORE" => -3, W, KALL;
    "SDIFFSTORE" => -3, W, KALL;
    "SINTERCARD" => -3, R, KeyRule::DestPlusNumkeys; // numkeys at 1, no dest
    "SSCAN" => -3, R, K1;
    // --- sorted sets ---
    "ZADD" => -4, W, K1;
    "ZREM" => -3, W, K1;
    "ZSCORE" => 3, R, K1;
    "ZMSCORE" => -3, R, K1;
    "ZINCRBY" => 4, W, K1;
    "ZCARD" => 2, R, K1;
    "ZCOUNT" => 4, R, K1;
    "ZLEXCOUNT" => 4, R, K1;
    "ZRANGE" => -4, R, K1;
    "ZREVRANGE" => -4, R, K1;
    "ZRANGEBYSCORE" => -4, R, K1;
    "ZREVRANGEBYSCORE" => -4, R, K1;
    "ZRANGEBYLEX" => -4, R, K1;
    "ZREVRANGEBYLEX" => -4, R, K1;
    "ZRANK" => -3, R, K1;
    "ZREVRANK" => -3, R, K1;
    "ZPOPMIN" => -2, W, K1;
    "ZPOPMAX" => -2, W, K1;
    "ZRANDMEMBER" => -2, R, K1;
    "ZREMRANGEBYRANK" => 4, W, K1;
    "ZREMRANGEBYSCORE" => 4, W, K1;
    "ZREMRANGEBYLEX" => 4, W, K1;
    "ZUNION" => -3, R, KeyRule::DestPlusNumkeys; // numkeys at 1, no dest
    "ZINTER" => -3, R, KeyRule::DestPlusNumkeys;
    "ZDIFF" => -3, R, KeyRule::DestPlusNumkeys;
    "ZUNIONSTORE" => -4, W, KeyRule::DestPlusNumkeys;
    "ZINTERSTORE" => -4, W, KeyRule::DestPlusNumkeys;
    "ZDIFFSTORE" => -4, W, KeyRule::DestPlusNumkeys;
    "ZSCAN" => -3, R, K1;
    // --- streams ---
    "XADD" => -5, W, K1;
    "XLEN" => 2, R, K1;
    "XRANGE" => -4, R, K1;
    "XREVRANGE" => -4, R, K1;
    "XDEL" => -3, W, K1;
    "XTRIM" => -4, W, K1;
    "XREAD" => -4, R, KeyRule::XRead;
    "XSETID" => -3, W, K1;
    "XGROUP" => -2, W, range(2, 2, 1);
    "XREADGROUP" => -7, W, KeyRule::XRead;
    "XACK" => -4, W, K1;
    "XPENDING" => -3, R, K1;
    "XCLAIM" => -6, W, K1;
    "XINFO" => -3, R, range(2, 2, 1);
    // --- hyperloglog ---
    "PFADD" => -2, W, K1;
    "PFCOUNT" => -2, R, KALL;
    "PFMERGE" => -2, W, KALL;
    // --- scripting (the deterministic DSL stand-in for Lua, §2.1) ---
    "EVAL" => -3, W, KeyRule::EvalStyle;
    "EVALSHA" => -3, W, KeyRule::EvalStyle;
    "SCRIPT" => -2, A, KeyRule::None;
    // --- transactions ---
    "MULTI" => 1, A, KeyRule::None;
    "EXEC" => 1, A, KeyRule::None;
    "DISCARD" => 1, A, KeyRule::None;
    "WATCH" => -2, R, KALL;
    "UNWATCH" => 1, A, KeyRule::None;
    // --- server / connection ---
    "PING" => -1, A, KeyRule::None;
    "ECHO" => 2, A, KeyRule::None;
    "SELECT" => 2, A, KeyRule::None;
    "TIME" => 1, A, KeyRule::None;
    "INFO" => -1, A, KeyRule::None;
    "COMMAND" => -1, A, KeyRule::None;
    "CLIENT" => -2, A, KeyRule::None;
    "CONFIG" => -2, A, KeyRule::None;
    "MEMORY" => -2, R, KeyRule::None;
    "DEBUG" => -2, A, KeyRule::None;
    "OBJECT" => -3, R, range(2, 2, 1);
    "CLUSTER" => -2, A, KeyRule::None;
    "WAIT" => 3, A, KeyRule::None;
    "READONLY" => 1, A, KeyRule::None;
    "READWRITE" => 1, A, KeyRule::None;
    "REPLCONF" => -1, A, KeyRule::None;
    "SLOWLOG" => -2, A, KeyRule::None;
    "LATENCY" => -2, A, KeyRule::None;
}

/// Validates argc against a spec's arity convention.
pub fn arity_ok(spec: &CommandSpec, argc: usize) -> bool {
    if spec.arity >= 0 {
        argc == spec.arity as usize
    } else {
        argc >= (-spec.arity) as usize
    }
}

/// Visits each key referenced by a command, per its [`KeyRule`], without
/// allocating. Returns the number of keys visited; `None` for unknown
/// commands or malformed key layouts (in which case `f` is never called —
/// layouts are validated before the first visit). The allocating
/// [`keys_for`] is implemented on top of this; hot paths that only need to
/// *look at* the keys (stripe classification, expiry reaping) call this
/// directly and skip the `Vec`.
pub fn for_each_key(args: &[Bytes], mut f: impl FnMut(&Bytes)) -> Option<usize> {
    if args.is_empty() {
        return None;
    }
    let name = CmdName::from_arg(args.first().map_or(&[][..], |a| a));
    let spec = command_spec(&name)?;
    let argc = args.len();
    let mut count = 0usize;
    match spec.keys {
        KeyRule::None => {}
        KeyRule::Range { first, last, step } => {
            if first >= argc {
                return Some(0);
            }
            let last = if last == 0 {
                argc - 1
            } else {
                last.min(argc - 1)
            };
            let mut i = first;
            while i <= last {
                if let Some(k) = args.get(i) {
                    f(k);
                    count += 1;
                }
                i += step;
            }
        }
        KeyRule::DestPlusNumkeys => {
            // Two layouts share this rule:
            //  ZUNIONSTORE dest numkeys k...   (dest at 1, numkeys at 2)
            //  SINTERCARD numkeys k...         (numkeys at 1)
            let (has_dest, nk_pos) =
                if matches!(name.as_str(), "SINTERCARD" | "ZUNION" | "ZINTER" | "ZDIFF") {
                    (false, 1)
                } else {
                    (true, 2)
                };
            let nk: usize = std::str::from_utf8(args.get(nk_pos)?).ok()?.parse().ok()?;
            // Validate the whole layout before the first visit.
            if nk > 0 {
                args.get(nk_pos + nk)?;
            }
            if has_dest {
                f(args.get(1)?);
                count += 1;
            }
            for i in 0..nk {
                f(args.get(nk_pos + 1 + i)?);
                count += 1;
            }
        }
        KeyRule::EvalStyle => {
            let nk: usize = std::str::from_utf8(args.get(2)?).ok()?.parse().ok()?;
            if nk > 0 {
                args.get(2 + nk)?;
            }
            for i in 0..nk {
                f(args.get(3 + i)?);
                count += 1;
            }
        }
        KeyRule::XRead => {
            let streams_pos = args
                .iter()
                .position(|a| a.eq_ignore_ascii_case(b"STREAMS"))?;
            let rest = argc - streams_pos - 1;
            if rest == 0 || !rest.is_multiple_of(2) {
                return None;
            }
            for k in args.get(streams_pos + 1..streams_pos + 1 + rest / 2)? {
                f(k);
                count += 1;
            }
        }
        KeyRule::Unsupported => return None,
    }
    Some(count)
}

/// Extracts the keys referenced by a command, per its [`KeyRule`].
///
/// Returns `None` for unknown commands or malformed key layouts; an empty
/// vec means "valid, but touches no keys".
pub fn keys_for(args: &[Bytes]) -> Option<Vec<Bytes>> {
    let mut keys: Vec<Bytes> = Vec::new();
    for_each_key(args, |k| keys.push(k.clone()))?;
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmd;

    #[test]
    fn lookup_known_and_unknown() {
        assert!(command_spec("GET").is_some());
        assert!(command_spec("ZADD").is_some());
        assert!(command_spec("NOPE").is_none());
        // Lookup is by uppercase canonical name only.
        assert!(command_spec("get").is_none());
    }

    #[test]
    fn arity_rules() {
        let get = command_spec("GET").unwrap();
        assert!(arity_ok(get, 2));
        assert!(!arity_ok(get, 1));
        assert!(!arity_ok(get, 3));
        let set = command_spec("SET").unwrap();
        assert!(arity_ok(set, 3));
        assert!(arity_ok(set, 7));
        assert!(!arity_ok(set, 2));
    }

    #[test]
    fn flags_consistency() {
        for spec in all_commands() {
            // A command is write xor readonly xor admin.
            let kinds = spec.flags.write as u8 + spec.flags.readonly as u8 + spec.flags.admin as u8;
            assert_eq!(kinds, 1, "{} has inconsistent flags", spec.name);
        }
    }

    #[test]
    fn simple_key_extraction() {
        assert_eq!(keys_for(&cmd(["GET", "k"])).unwrap(), cmd(["k"]));
        assert_eq!(
            keys_for(&cmd(["DEL", "a", "b", "c"])).unwrap(),
            cmd(["a", "b", "c"])
        );
        assert_eq!(
            keys_for(&cmd(["MSET", "k1", "v1", "k2", "v2"])).unwrap(),
            cmd(["k1", "k2"])
        );
        assert_eq!(
            keys_for(&cmd(["RENAME", "old", "new"])).unwrap(),
            cmd(["old", "new"])
        );
        assert!(keys_for(&cmd(["PING"])).unwrap().is_empty());
        assert!(keys_for(&cmd(["NOSUCH", "x"])).is_none());
    }

    #[test]
    fn numkeys_extraction() {
        assert_eq!(
            keys_for(&cmd([
                "ZUNIONSTORE",
                "dest",
                "2",
                "a",
                "b",
                "WEIGHTS",
                "1",
                "2"
            ]))
            .unwrap(),
            cmd(["dest", "a", "b"])
        );
        assert_eq!(
            keys_for(&cmd(["SINTERCARD", "2", "a", "b"])).unwrap(),
            cmd(["a", "b"])
        );
        // numkeys pointing past the end is malformed.
        assert!(keys_for(&cmd(["ZUNIONSTORE", "dest", "5", "a"])).is_none());
    }

    #[test]
    fn eval_extraction() {
        assert_eq!(
            keys_for(&cmd(["EVAL", "script", "2", "k1", "k2", "arg"])).unwrap(),
            cmd(["k1", "k2"])
        );
        assert!(keys_for(&cmd(["EVAL", "script", "x"])).is_none());
    }

    #[test]
    fn xread_extraction() {
        assert_eq!(
            keys_for(&cmd([
                "XREAD", "COUNT", "5", "STREAMS", "s1", "s2", "0", "0"
            ]))
            .unwrap(),
            cmd(["s1", "s2"])
        );
        assert!(keys_for(&cmd(["XREAD", "STREAMS", "s1", "0", "0"])).is_none());
    }

    #[test]
    fn every_spec_self_describes() {
        for spec in all_commands() {
            assert_eq!(command_spec(spec.name), Some(spec));
            assert!(spec.arity != 0);
        }
        assert!(all_commands().len() > 120, "command surface too small");
    }
}
