//! String commands.

use super::*;
use crate::value::Value;
use bytes::{Bytes, BytesMut};

fn read_str<'a>(e: &'a Engine, key: &[u8]) -> Result<Option<&'a Bytes>, ExecOutcome> {
    match e.db.lookup(key, e.now()) {
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(_) => Err(wrongtype()),
        None => Ok(None),
    }
}

/// Largest string value a write may create (Redis `proto-max-bulk-len`,
/// shared with the decoder's per-element cap). Guards SETRANGE from turning
/// an `i64::MAX`-adjacent offset into a multi-GB zero-filled allocation.
const PROTO_MAX_BULK_LEN: usize = memorydb_resp::DEFAULT_MAX_LEN;

pub(super) fn get(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    Ok(ExecOutcome::read(bulk_or_null(
        read_str(e, &a[1])?.cloned(),
    )))
}

pub(super) fn strlen(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let len = read_str(e, &a[1])?.map_or(0, |s| s.len());
    Ok(ExecOutcome::read(Frame::Integer(len as i64)))
}

/// `SET key value [EX s|PX ms|EXAT s|PXAT ms|KEEPTTL] [NX|XX] [GET]`
pub(super) fn set(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let val = a[2].clone();
    let mut expire_at: Option<u64> = None;
    let mut keep_ttl = false;
    let mut nx = false;
    let mut xx = false;
    let mut want_get = false;
    let mut i = 3;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "EX" | "PX" | "EXAT" | "PXAT" => {
                let opt = upper(&a[i]);
                let n = p_i64(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?;
                if n <= 0 && (opt == "EX" || opt == "PX") {
                    return Err(ExecOutcome::error("invalid expire time in 'set' command"));
                }
                expire_at = Some(match opt.as_str() {
                    "EX" => e.now().saturating_add((n as u64).saturating_mul(1000)),
                    "PX" => e.now().saturating_add(n as u64),
                    "EXAT" => (n.max(0) as u64).saturating_mul(1000),
                    _ => n.max(0) as u64,
                });
                i += 2;
            }
            "KEEPTTL" => {
                keep_ttl = true;
                i += 1;
            }
            "NX" => {
                nx = true;
                i += 1;
            }
            "XX" => {
                xx = true;
                i += 1;
            }
            "GET" => {
                want_get = true;
                i += 1;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    if nx && xx {
        return Err(ExecOutcome::error("syntax error"));
    }

    // GET option requires the old value to be a string (or absent).
    let old = if want_get {
        Some(read_str(e, &key)?.cloned())
    } else {
        None
    };

    let exists = e.db.exists(&key, e.now());
    if (nx && exists) || (xx && !exists) {
        let reply = match old {
            Some(o) => bulk_or_null(o),
            None => Frame::Null,
        };
        return Ok(ExecOutcome::read(reply));
    }

    if keep_ttl {
        e.db.set_value_keep_ttl(key.clone(), Value::Str(val.clone()));
    } else {
        e.db.set_value(key.clone(), Value::Str(val.clone()));
    }
    if let Some(at) = expire_at {
        e.db.set_expiry(&key, Some(at));
    }

    // Deterministic effect: relative expirations become absolute PXAT.
    let mut eff: EffectCmd = vec![Bytes::from_static(b"SET"), key.clone(), val];
    if let Some(at) = expire_at {
        eff.push(Bytes::from_static(b"PXAT"));
        eff.push(Bytes::from(at.to_string()));
    } else if keep_ttl {
        eff.push(Bytes::from_static(b"KEEPTTL"));
    }
    let reply = match old {
        Some(o) => bulk_or_null(o),
        None => Frame::ok(),
    };
    Ok(effect_write(reply, vec![eff], vec![key]))
}

pub(super) fn setnx(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    if e.db.exists(&a[1], e.now()) {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.set_value(a[1].clone(), Value::Str(a[2].clone()));
    let eff = vec![Bytes::from_static(b"SET"), a[1].clone(), a[2].clone()];
    Ok(effect_write(
        Frame::Integer(1),
        vec![eff],
        vec![a[1].clone()],
    ))
}

/// `SETEX key seconds value` / `PSETEX key ms value`
pub(super) fn setex(e: &mut Engine, a: &[Bytes], millis: bool) -> CmdResult {
    let n = p_i64(&a[2])?;
    if n <= 0 {
        return Err(ExecOutcome::error(format!(
            "invalid expire time in '{}' command",
            if millis { "psetex" } else { "setex" }
        )));
    }
    let at = e
        .now()
        .saturating_add(if millis { n as u64 } else { (n as u64) * 1000 });
    e.db.set_value(a[1].clone(), Value::Str(a[3].clone()));
    e.db.set_expiry(&a[1], Some(at));
    let eff = vec![
        Bytes::from_static(b"SET"),
        a[1].clone(),
        a[3].clone(),
        Bytes::from_static(b"PXAT"),
        Bytes::from(at.to_string()),
    ];
    Ok(effect_write(Frame::ok(), vec![eff], vec![a[1].clone()]))
}

pub(super) fn getset(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let old = read_str(e, &a[1])?.cloned();
    e.db.set_value(a[1].clone(), Value::Str(a[2].clone()));
    let eff = vec![Bytes::from_static(b"SET"), a[1].clone(), a[2].clone()];
    Ok(effect_write(
        bulk_or_null(old),
        vec![eff],
        vec![a[1].clone()],
    ))
}

pub(super) fn getdel(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let old = read_str(e, &a[1])?.cloned();
    if old.is_none() {
        return Ok(ExecOutcome::read(Frame::Null));
    }
    e.db.remove(&a[1]);
    let eff = vec![Bytes::from_static(b"DEL"), a[1].clone()];
    Ok(effect_write(
        bulk_or_null(old),
        vec![eff],
        vec![a[1].clone()],
    ))
}

/// `GETEX key [EX s|PX ms|EXAT s|PXAT ms|PERSIST]`
pub(super) fn getex(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let val = read_str(e, &a[1])?.cloned();
    let Some(val) = val else {
        return Ok(ExecOutcome::read(Frame::Null));
    };
    if a.len() == 2 {
        return Ok(ExecOutcome::read(Frame::Bulk(val)));
    }
    let opt = upper(&a[2]);
    let (expire_at, persist) = match opt.as_str() {
        "PERSIST" => (None, true),
        "EX" | "PX" | "EXAT" | "PXAT" => {
            let n = p_i64(a.get(3).ok_or_else(|| ExecOutcome::error("syntax error"))?)?;
            let at = match opt.as_str() {
                "EX" => e.now().saturating_add((n.max(0) as u64) * 1000),
                "PX" => e.now().saturating_add(n.max(0) as u64),
                "EXAT" => (n.max(0) as u64) * 1000,
                _ => n.max(0) as u64,
            };
            (Some(at), false)
        }
        _ => return Err(ExecOutcome::error("syntax error")),
    };
    let mut effects = Vec::new();
    if persist {
        if e.db.expiry(&a[1]).is_some() {
            e.db.set_expiry(&a[1], None);
            effects.push(vec![Bytes::from_static(b"PERSIST"), a[1].clone()]);
        }
    } else if let Some(at) = expire_at {
        e.db.set_expiry(&a[1], Some(at));
        effects.push(vec![
            Bytes::from_static(b"PEXPIREAT"),
            a[1].clone(),
            Bytes::from(at.to_string()),
        ]);
    }
    if effects.is_empty() {
        Ok(ExecOutcome::read(Frame::Bulk(val)))
    } else {
        Ok(effect_write(Frame::Bulk(val), effects, vec![a[1].clone()]))
    }
}

pub(super) fn append(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let existing = read_str(e, &a[1])?.cloned();
    let new = match existing {
        Some(s) => {
            let mut buf = BytesMut::with_capacity(s.len() + a[2].len());
            buf.extend_from_slice(&s);
            buf.extend_from_slice(&a[2]);
            buf.freeze()
        }
        None => a[2].clone(),
    };
    let len = new.len();
    e.db.set_value_keep_ttl(a[1].clone(), Value::Str(new));
    Ok(verbatim_write(
        Frame::Integer(len as i64),
        a,
        vec![a[1].clone()],
    ))
}

pub(super) fn incr_by(e: &mut Engine, key: &Bytes, delta: i64) -> CmdResult {
    let cur = match read_str(e, key)? {
        Some(s) => std::str::from_utf8(s)
            .ok()
            .and_then(|t| t.parse::<i64>().ok())
            .ok_or_else(|| ExecOutcome::error("value is not an integer or out of range"))?,
        None => 0,
    };
    let new = cur
        .checked_add(delta)
        .ok_or_else(|| ExecOutcome::error("increment or decrement would overflow"))?;
    e.db.set_value_keep_ttl(key.clone(), Value::Str(Bytes::from(new.to_string())));
    // Integer increments are deterministic; replicate a canonical INCRBY.
    let eff = vec![
        Bytes::from_static(b"INCRBY"),
        key.clone(),
        Bytes::from(delta.to_string()),
    ];
    Ok(effect_write(
        Frame::Integer(new),
        vec![eff],
        vec![key.clone()],
    ))
}

pub(super) fn incrby(e: &mut Engine, a: &[Bytes], negate: bool) -> CmdResult {
    let n = p_i64(&a[2])?;
    let delta = if negate {
        n.checked_neg()
            .ok_or_else(|| ExecOutcome::error("decrement would overflow"))?
    } else {
        n
    };
    incr_by(e, &a[1], delta)
}

pub(super) fn incrbyfloat(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let delta = p_f64(&a[2])?;
    let cur = match read_str(e, &a[1])? {
        Some(s) => std::str::from_utf8(s)
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .ok_or_else(|| ExecOutcome::error("value is not a valid float"))?,
        None => 0.0,
    };
    let new = cur + delta;
    if new.is_nan() || new.is_infinite() {
        return Err(ExecOutcome::error(
            "increment would produce NaN or Infinity",
        ));
    }
    let text = Bytes::from(fmt_f64(new));
    e.db.set_value_keep_ttl(a[1].clone(), Value::Str(text.clone()));
    // Paper §2.1: float arithmetic is replicated by effect — a SET of the
    // result — so replicas never re-do float math. KEEPTTL because
    // INCRBYFLOAT preserves the key's expiry while plain SET clears it.
    let eff = vec![
        Bytes::from_static(b"SET"),
        a[1].clone(),
        text.clone(),
        Bytes::from_static(b"KEEPTTL"),
    ];
    Ok(effect_write(
        Frame::Bulk(text),
        vec![eff],
        vec![a[1].clone()],
    ))
}

pub(super) fn mget(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let mut out = Vec::with_capacity(a.len() - 1);
    for key in &a[1..] {
        // MGET never raises WRONGTYPE; non-strings read as nil.
        let v = match e.db.lookup(key, e.now()) {
            Some(Value::Str(s)) => Frame::Bulk(s.clone()),
            _ => Frame::Null,
        };
        out.push(v);
    }
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn mset(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    if !(a.len() - 1).is_multiple_of(2) {
        return Err(wrong_arity("mset"));
    }
    let mut dirty = Vec::new();
    for pair in a[1..].chunks(2) {
        e.db.set_value(pair[0].clone(), Value::Str(pair[1].clone()));
        dirty.push(pair[0].clone());
    }
    Ok(verbatim_write(Frame::ok(), a, dirty))
}

pub(super) fn msetnx(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    if !(a.len() - 1).is_multiple_of(2) {
        return Err(wrong_arity("msetnx"));
    }
    let any_exists = a[1..].chunks(2).any(|pair| e.db.exists(&pair[0], e.now()));
    if any_exists {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let mut dirty = Vec::new();
    for pair in a[1..].chunks(2) {
        e.db.set_value(pair[0].clone(), Value::Str(pair[1].clone()));
        dirty.push(pair[0].clone());
    }
    Ok(verbatim_write(Frame::Integer(1), a, dirty))
}

pub(super) fn setrange(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let offset = p_i64(&a[2])?;
    if offset < 0 {
        return Err(ExecOutcome::error("offset is out of range"));
    }
    let offset = offset as usize;
    let patch = &a[3];
    let existing = read_str(e, &a[1])?.cloned().unwrap_or_default();
    if patch.is_empty() {
        return Ok(ExecOutcome::read(Frame::Integer(existing.len() as i64)));
    }
    // Overflow-checked end position, capped before any allocation happens:
    // `i64::MAX`-adjacent offsets must be a clean error, not a wrapped
    // length or an attempted multi-GB zero-fill.
    let end = match offset.checked_add(patch.len()) {
        Some(end) if end <= PROTO_MAX_BULK_LEN => end,
        _ => {
            return Err(ExecOutcome::error(
                "string exceeds maximum allowed size (proto-max-bulk-len)",
            ))
        }
    };
    let new_len = existing.len().max(end);
    let mut buf = vec![0u8; new_len];
    buf[..existing.len()].copy_from_slice(&existing);
    buf[offset..offset + patch.len()].copy_from_slice(patch);
    e.db.set_value_keep_ttl(a[1].clone(), Value::Str(Bytes::from(buf)));
    Ok(verbatim_write(
        Frame::Integer(new_len as i64),
        a,
        vec![a[1].clone()],
    ))
}

pub(super) fn getrange(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let s = read_str(e, &a[1])?.cloned().unwrap_or_default();
    let (start, end) = (p_i64(&a[2])?, p_i64(&a[3])?);
    let len = s.len() as i64;
    let norm = |i: i64| -> i64 {
        if i < 0 {
            // Saturate: `len + i64::MIN` must clamp to 0, not overflow.
            len.saturating_add(i).max(0)
        } else {
            i
        }
    };
    let (start, end) = (norm(start), norm(end).min(len - 1));
    if len == 0 || start > end || start >= len {
        return Ok(ExecOutcome::read(Frame::Bulk(Bytes::new())));
    }
    Ok(ExecOutcome::read(Frame::Bulk(
        s.slice(start as usize..=(end as usize)),
    )))
}
