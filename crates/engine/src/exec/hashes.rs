//! Hash commands.

use super::*;
use crate::value::Value;
use rand::seq::SliceRandom;
use std::collections::HashMap;

fn read_hash<'a>(
    e: &'a Engine,
    key: &[u8],
) -> Result<Option<&'a HashMap<Bytes, Bytes>>, ExecOutcome> {
    match e.db.lookup(key, e.now()) {
        Some(Value::Hash(h)) => Ok(Some(h)),
        Some(_) => Err(wrongtype()),
        None => Ok(None),
    }
}

fn hash_mut<'a>(
    e: &'a mut Engine,
    key: &Bytes,
) -> Result<&'a mut HashMap<Bytes, Bytes>, ExecOutcome> {
    let now = e.now();
    // Pre-check type to avoid creating on WRONGTYPE.
    if let Some(v) = e.db.lookup(key, now) {
        if !matches!(v, Value::Hash(_)) {
            return Err(wrongtype());
        }
    }
    match e
        .db
        .entry_or_insert_with(key, now, || Value::Hash(HashMap::new()))
    {
        Value::Hash(h) => Ok(h),
        _ => Err(wrongtype()),
    }
}

pub(super) fn hset(e: &mut Engine, a: &[Bytes], hmset_reply: bool) -> CmdResult {
    if !(a.len() - 2).is_multiple_of(2) {
        return Err(wrong_arity(if hmset_reply { "hmset" } else { "hset" }));
    }
    let key = a[1].clone();
    let h = hash_mut(e, &key)?;
    let mut added = 0i64;
    for pair in a[2..].chunks(2) {
        if h.insert(pair[0].clone(), pair[1].clone()).is_none() {
            added += 1;
        }
    }
    e.db.signal_modified(&key);
    let reply = if hmset_reply {
        Frame::ok()
    } else {
        Frame::Integer(added)
    };
    Ok(verbatim_write(reply, a, vec![key]))
}

pub(super) fn hsetnx(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let h = hash_mut(e, &key)?;
    if h.contains_key(&a[2]) {
        e.db.remove_if_empty(&key);
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    h.insert(a[2].clone(), a[3].clone());
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::Integer(1), a, vec![key]))
}

pub(super) fn hget(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let v = read_hash(e, &a[1])?.and_then(|h| h.get(&a[2]).cloned());
    Ok(ExecOutcome::read(bulk_or_null(v)))
}

pub(super) fn hmget(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let h = read_hash(e, &a[1])?;
    let out = a[2..]
        .iter()
        .map(|f| bulk_or_null(h.and_then(|h| h.get(f).cloned())))
        .collect();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn hdel(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let Some(_) = read_hash(e, &key)? else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let now = e.now();
    let Some(Value::Hash(h)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let mut removed: Vec<Bytes> = Vec::new();
    for field in &a[2..] {
        if h.remove(field).is_some() {
            removed.push(field.clone());
        }
    }
    if removed.is_empty() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    let mut eff: EffectCmd = vec![Bytes::from_static(b"HDEL"), key.clone()];
    eff.extend(removed.iter().cloned());
    Ok(effect_write(
        Frame::Integer(removed.len() as i64),
        vec![eff],
        vec![key],
    ))
}

pub(super) fn hlen(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let n = read_hash(e, &a[1])?.map_or(0, |h| h.len());
    Ok(ExecOutcome::read(Frame::Integer(n as i64)))
}

pub(super) fn hexists(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let present = read_hash(e, &a[1])?.is_some_and(|h| h.contains_key(&a[2]));
    Ok(ExecOutcome::read(Frame::Integer(present as i64)))
}

pub(super) fn hkeys(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let out = read_hash(e, &a[1])?
        .map(|h| h.keys().cloned().map(Frame::Bulk).collect())
        .unwrap_or_default();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn hvals(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let out = read_hash(e, &a[1])?
        .map(|h| h.values().cloned().map(Frame::Bulk).collect())
        .unwrap_or_default();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn hgetall(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let mut out = Vec::new();
    if let Some(h) = read_hash(e, &a[1])? {
        for (f, v) in h {
            out.push(Frame::Bulk(f.clone()));
            out.push(Frame::Bulk(v.clone()));
        }
    }
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn hincrby(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let delta = p_i64(&a[3])?;
    let key = a[1].clone();
    let h = hash_mut(e, &key)?;
    let cur = match h.get(&a[2]) {
        Some(v) => std::str::from_utf8(v)
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
            .ok_or_else(|| ExecOutcome::error("hash value is not an integer"))?,
        None => 0,
    };
    let new = cur
        .checked_add(delta)
        .ok_or_else(|| ExecOutcome::error("increment or decrement would overflow"))?;
    h.insert(a[2].clone(), Bytes::from(new.to_string()));
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::Integer(new), a, vec![key]))
}

pub(super) fn hincrbyfloat(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let delta = p_f64(&a[3])?;
    let key = a[1].clone();
    let h = hash_mut(e, &key)?;
    let cur = match h.get(&a[2]) {
        Some(v) => std::str::from_utf8(v)
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| ExecOutcome::error("hash value is not a float"))?,
        None => 0.0,
    };
    let new = cur + delta;
    if new.is_nan() || new.is_infinite() {
        return Err(ExecOutcome::error(
            "increment would produce NaN or Infinity",
        ));
    }
    let text = Bytes::from(fmt_f64(new));
    h.insert(a[2].clone(), text.clone());
    e.db.signal_modified(&key);
    // Effect rewrite: float math becomes a deterministic HSET of the result.
    let eff = vec![
        Bytes::from_static(b"HSET"),
        key.clone(),
        a[2].clone(),
        text.clone(),
    ];
    Ok(effect_write(Frame::Bulk(text), vec![eff], vec![key]))
}

pub(super) fn hstrlen(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let n = read_hash(e, &a[1])?
        .and_then(|h| h.get(&a[2]))
        .map_or(0, |v| v.len());
    Ok(ExecOutcome::read(Frame::Integer(n as i64)))
}

/// `HRANDFIELD key [count [WITHVALUES]]` — read-only, so its randomness
/// needs no effect rewrite.
pub(super) fn hrandfield(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let withvalues = a.len() > 3 && upper(&a[3]) == "WITHVALUES";
    if a.len() > 4 || (a.len() == 4 && !withvalues) {
        return Err(ExecOutcome::error("syntax error"));
    }
    let count = if a.len() >= 3 {
        Some(p_i64(&a[2])?)
    } else {
        None
    };
    let Some(h) = read_hash(e, &a[1])?.cloned() else {
        return Ok(ExecOutcome::read(match count {
            Some(_) => Frame::Array(vec![]),
            None => Frame::Null,
        }));
    };
    let fields: Vec<&Bytes> = h.keys().collect();
    match count {
        None => {
            let idx = rand::Rng::gen_range(e.rng(), 0..fields.len());
            Ok(ExecOutcome::read(Frame::Bulk(fields[idx].clone())))
        }
        Some(n) => {
            let chosen: Vec<Bytes> = if n >= 0 {
                // Distinct fields, up to the hash size.
                let mut pool: Vec<Bytes> = fields.into_iter().cloned().collect();
                pool.shuffle(e.rng());
                pool.truncate(n as usize);
                pool
            } else {
                // With repetition, exactly |n| entries.
                (0..n.unsigned_abs())
                    .map(|_| {
                        let idx = rand::Rng::gen_range(e.rng(), 0..fields.len());
                        fields[idx].clone()
                    })
                    .collect()
            };
            let mut out = Vec::new();
            for f in chosen {
                if withvalues {
                    let v = h.get(&f).cloned().unwrap_or_default();
                    out.push(Frame::Bulk(f));
                    out.push(Frame::Bulk(v));
                } else {
                    out.push(Frame::Bulk(f));
                }
            }
            Ok(ExecOutcome::read(Frame::Array(out)))
        }
    }
}

pub(super) fn hscan(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let _cursor = p_cursor(&a[2])?;
    let mut pattern: Option<Bytes> = None;
    let mut novalues = false;
    let mut i = 3;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "MATCH" => {
                pattern = Some(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?
                        .clone(),
                );
                i += 2;
            }
            "COUNT" => i += 2, // single-batch scan: COUNT is advisory
            "NOVALUES" => {
                novalues = true;
                i += 1;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let mut out = Vec::new();
    if let Some(h) = read_hash(e, &a[1])? {
        for (f, v) in h {
            if pattern
                .as_deref()
                .is_none_or(|p| crate::db::glob_match(p, f))
            {
                out.push(Frame::Bulk(f.clone()));
                if !novalues {
                    out.push(Frame::Bulk(v.clone()));
                }
            }
        }
    }
    Ok(ExecOutcome::read(Frame::Array(vec![
        Frame::Bulk(Bytes::from_static(b"0")),
        Frame::Array(out),
    ])))
}
