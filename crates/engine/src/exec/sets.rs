//! Set commands.
//!
//! `SPOP` is the paper's canonical example of a non-deterministic command
//! (§2.1): the primary picks random members, then replicates an explicit
//! `SREM` of exactly those members so every replica deletes the same ones.

use super::*;
use crate::value::Value;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

fn read_set<'a>(e: &'a Engine, key: &[u8]) -> Result<Option<&'a HashSet<Bytes>>, ExecOutcome> {
    match e.db.lookup(key, e.now()) {
        Some(Value::Set(s)) => Ok(Some(s)),
        Some(_) => Err(wrongtype()),
        None => Ok(None),
    }
}

fn set_mut<'a>(e: &'a mut Engine, key: &Bytes) -> Result<&'a mut HashSet<Bytes>, ExecOutcome> {
    let now = e.now();
    if let Some(v) = e.db.lookup(key, now) {
        if !matches!(v, Value::Set(_)) {
            return Err(wrongtype());
        }
    }
    match e
        .db
        .entry_or_insert_with(key, now, || Value::Set(HashSet::new()))
    {
        Value::Set(s) => Ok(s),
        _ => Err(wrongtype()),
    }
}

/// Sorted members for deterministic reply ordering where Redis order is
/// unspecified anyway — stable output simplifies testing.
fn sorted(members: impl IntoIterator<Item = Bytes>) -> Vec<Bytes> {
    let mut v: Vec<Bytes> = members.into_iter().collect();
    v.sort();
    v
}

pub(super) fn sadd(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let s = set_mut(e, &key)?;
    let mut added = 0i64;
    for m in &a[2..] {
        if s.insert(m.clone()) {
            added += 1;
        }
    }
    if added == 0 {
        e.db.remove_if_empty(&key);
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::Integer(added), a, vec![key]))
}

pub(super) fn srem(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    if read_set(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let now = e.now();
    let Some(Value::Set(s)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let mut removed = 0i64;
    for m in &a[2..] {
        if s.remove(m) {
            removed += 1;
        }
    }
    if removed == 0 {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    Ok(verbatim_write(Frame::Integer(removed), a, vec![key]))
}

pub(super) fn smembers(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let out = read_set(e, &a[1])?
        .map(|s| sorted(s.iter().cloned()))
        .unwrap_or_default();
    Ok(ExecOutcome::read(Frame::Array(
        out.into_iter().map(Frame::Bulk).collect(),
    )))
}

pub(super) fn sismember(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let present = read_set(e, &a[1])?.is_some_and(|s| s.contains(&a[2]));
    Ok(ExecOutcome::read(Frame::Integer(present as i64)))
}

pub(super) fn smismember(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let s = read_set(e, &a[1])?;
    let out = a[2..]
        .iter()
        .map(|m| Frame::Integer(s.is_some_and(|s| s.contains(m)) as i64))
        .collect();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn scard(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let n = read_set(e, &a[1])?.map_or(0, |s| s.len());
    Ok(ExecOutcome::read(Frame::Integer(n as i64)))
}

/// `SPOP key [count]` — non-deterministic; replicated as `SREM`/`DEL`.
pub(super) fn spop(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let explicit_count = a.len() == 3;
    let count = if explicit_count {
        let n = p_i64(&a[2])?;
        if n < 0 {
            return Err(ExecOutcome::error(
                "value is out of range, must be positive",
            ));
        }
        n as usize
    } else {
        1
    };
    let key = a[1].clone();
    let Some(s) = read_set(e, &key)? else {
        return Ok(ExecOutcome::read(if explicit_count {
            Frame::Array(vec![])
        } else {
            Frame::Null
        }));
    };
    let size = s.len();
    let mut pool: Vec<Bytes> = s.iter().cloned().collect();
    pool.sort(); // stable base order before the seeded shuffle
    pool.shuffle(e.rng());
    let chosen: Vec<Bytes> = pool.into_iter().take(count).collect();
    if chosen.is_empty() {
        return Ok(ExecOutcome::read(if explicit_count {
            Frame::Array(vec![])
        } else {
            Frame::Null
        }));
    }
    let now = e.now();
    if let Some(Value::Set(s)) = e.db.lookup_mut(&key, now) {
        for m in &chosen {
            s.remove(m);
        }
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    // Effect rewrite (paper §2.1): the whole set popped → DEL, otherwise an
    // explicit SREM of the chosen members.
    let eff: EffectCmd = if chosen.len() >= size {
        vec![Bytes::from_static(b"DEL"), key.clone()]
    } else {
        let mut c: EffectCmd = vec![Bytes::from_static(b"SREM"), key.clone()];
        c.extend(chosen.iter().cloned());
        c
    };
    let reply = if explicit_count {
        Frame::Array(chosen.into_iter().map(Frame::Bulk).collect())
    } else {
        // chosen is non-empty (checked above); Null mirrors the empty case.
        chosen.into_iter().next().map_or(Frame::Null, Frame::Bulk)
    };
    Ok(effect_write(reply, vec![eff], vec![key]))
}

pub(super) fn srandmember(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let count = if a.len() == 3 {
        Some(p_i64(&a[2])?)
    } else {
        None
    };
    let Some(s) = read_set(e, &a[1])? else {
        return Ok(ExecOutcome::read(match count {
            Some(_) => Frame::Array(vec![]),
            None => Frame::Null,
        }));
    };
    let mut pool: Vec<Bytes> = s.iter().cloned().collect();
    pool.sort();
    match count {
        None => {
            let idx = e.rng().gen_range(0..pool.len());
            Ok(ExecOutcome::read(Frame::Bulk(pool[idx].clone())))
        }
        Some(n) if n >= 0 => {
            pool.shuffle(e.rng());
            pool.truncate(n as usize);
            Ok(ExecOutcome::read(Frame::Array(
                pool.into_iter().map(Frame::Bulk).collect(),
            )))
        }
        Some(n) => {
            let out: Vec<Frame> = (0..n.unsigned_abs())
                .map(|_| {
                    let idx = e.rng().gen_range(0..pool.len());
                    Frame::Bulk(pool[idx].clone())
                })
                .collect();
            Ok(ExecOutcome::read(Frame::Array(out)))
        }
    }
}

pub(super) fn smove(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let (src, dst, member) = (a[1].clone(), a[2].clone(), a[3].clone());
    let Some(s) = read_set(e, &src)? else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    if !s.contains(&member) {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    // Destination type check before mutating.
    if let Some(v) = e.db.lookup(&dst, e.now()) {
        if !matches!(v, Value::Set(_)) {
            return Err(wrongtype());
        }
    }
    let now = e.now();
    if let Some(Value::Set(s)) = e.db.lookup_mut(&src, now) {
        s.remove(&member);
    }
    e.db.signal_modified(&src);
    e.db.remove_if_empty(&src);
    let d = set_mut(e, &dst)?;
    d.insert(member);
    e.db.signal_modified(&dst);
    Ok(verbatim_write(Frame::Integer(1), a, vec![src, dst]))
}

/// Which set algebra operation to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum SetOp {
    /// Union of all sets.
    Union,
    /// Intersection of all sets.
    Inter,
    /// First set minus the rest.
    Diff,
}

/// `SUNION`/`SINTER`/`SDIFF` and their `*STORE` variants.
pub(super) fn setop(e: &mut Engine, a: &[Bytes], op: SetOp, store: bool) -> CmdResult {
    let keys = if store { &a[2..] } else { &a[1..] };
    if keys.is_empty() {
        return Err(wrong_arity("setop"));
    }
    let mut result: HashSet<Bytes> = match read_set(e, &keys[0])? {
        Some(s) => s.clone(),
        None => HashSet::new(),
    };
    for key in &keys[1..] {
        let other = read_set(e, key)?;
        match op {
            SetOp::Union => {
                if let Some(o) = other {
                    result.extend(o.iter().cloned());
                }
            }
            SetOp::Inter => match other {
                Some(o) => result.retain(|m| o.contains(m)),
                None => result.clear(),
            },
            SetOp::Diff => {
                if let Some(o) = other {
                    result.retain(|m| !o.contains(m));
                }
            }
        }
    }
    if !store {
        let out = sorted(result);
        return Ok(ExecOutcome::read(Frame::Array(
            out.into_iter().map(Frame::Bulk).collect(),
        )));
    }
    let dest = a[1].clone();
    let n = result.len() as i64;
    if result.is_empty() {
        // Storing an empty result deletes the destination.
        let existed = e.db.exists(&dest, e.now());
        if existed {
            e.db.remove(&dest);
            let eff = vec![Bytes::from_static(b"DEL"), dest.clone()];
            return Ok(effect_write(Frame::Integer(0), vec![eff], vec![dest]));
        }
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.set_value(dest.clone(), Value::Set(result));
    Ok(verbatim_write(Frame::Integer(n), a, vec![dest]))
}

pub(super) fn sintercard(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let nk = p_i64(&a[1])?;
    if nk <= 0 {
        return Err(ExecOutcome::error("numkeys should be greater than 0"));
    }
    let nk = nk as usize;
    if a.len() < 2 + nk {
        return Err(ExecOutcome::error(
            "Number of keys can't be greater than number of args",
        ));
    }
    let mut limit = usize::MAX;
    if a.len() > 2 + nk {
        if upper(&a[2 + nk]) != "LIMIT" || a.len() != 4 + nk {
            return Err(ExecOutcome::error("syntax error"));
        }
        let n = p_i64(&a[3 + nk])?;
        if n < 0 {
            return Err(ExecOutcome::error("LIMIT can't be negative"));
        }
        limit = if n == 0 { usize::MAX } else { n as usize };
    }
    let mut result: HashSet<Bytes> = match read_set(e, &a[2])? {
        Some(s) => s.clone(),
        None => HashSet::new(),
    };
    for key in &a[3..2 + nk] {
        match read_set(e, key)? {
            Some(o) => result.retain(|m| o.contains(m)),
            None => result.clear(),
        }
    }
    Ok(ExecOutcome::read(Frame::Integer(
        result.len().min(limit) as i64
    )))
}

pub(super) fn sscan(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let _cursor = p_cursor(&a[2])?;
    let mut pattern: Option<Bytes> = None;
    let mut i = 3;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "MATCH" => {
                pattern = Some(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?
                        .clone(),
                );
                i += 2;
            }
            "COUNT" => i += 2,
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let mut out = Vec::new();
    if let Some(s) = read_set(e, &a[1])? {
        for m in sorted(s.iter().cloned()) {
            if pattern
                .as_deref()
                .is_none_or(|p| crate::db::glob_match(p, &m))
            {
                out.push(Frame::Bulk(m));
            }
        }
    }
    Ok(ExecOutcome::read(Frame::Array(vec![
        Frame::Bulk(Bytes::from_static(b"0")),
        Frame::Array(out),
    ])))
}
