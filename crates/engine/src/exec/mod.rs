//! The command executor: dispatch, transactions, expiry discipline, and
//! effect generation.
// Serving/apply path: panic-freedom is an enforced invariant (DESIGN.md §9;
// `cargo run -p memorydb-analysis`). Keep clippy aligned with the analyzer.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use crate::command::{arity_ok, command_spec, CmdName};
use crate::db::Db;
use crate::effects::{DirtySet, EffectCmd, ExecOutcome};
use crate::version::EngineVersion;
use bytes::Bytes;
use memorydb_resp::Frame;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

mod bitmaps;
mod hashes;
mod hllcmd;
mod keyspace;
mod lists;
mod server;
mod sets;
mod streams;
mod strings;
mod zsets;

/// Handler result: `Err` carries an error outcome for early return via `?`.
pub(crate) type CmdResult = Result<ExecOutcome, ExecOutcome>;

/// Role of the engine within a shard, governing expiry behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Reaps expired keys and emits `DEL` effects for them.
    Primary,
    /// Never reaps; waits for the primary's `DEL` (paper §2.1).
    Replica,
}

/// Per-connection state: `MULTI` queue and `WATCH`es.
#[derive(Debug, Default)]
pub struct SessionState {
    queued: Option<Vec<Vec<Bytes>>>,
    queue_error: bool,
    watches: Vec<(Bytes, u64)>,
}

impl SessionState {
    /// Fresh session with no transaction in progress.
    pub fn new() -> SessionState {
        SessionState::default()
    }

    /// Is a `MULTI` block open?
    pub fn in_multi(&self) -> bool {
        self.queued.is_some()
    }

    /// Closes any open `MULTI` block, returning its queued commands, whether
    /// a queueing error occurred, and the `WATCH` snapshot. The session is
    /// reset. The striped node-level `EXEC` uses this to route each queued
    /// command to its owning stripe itself, mirroring
    /// [`Engine::execute`]'s transaction semantics.
    pub fn take_transaction(&mut self) -> (Vec<Vec<Bytes>>, bool, Vec<(Bytes, u64)>) {
        let queued = self.queued.take().unwrap_or_default();
        let queue_error = self.queue_error;
        let watches = std::mem::take(&mut self.watches);
        self.reset();
        (queued, queue_error, watches)
    }

    fn reset(&mut self) {
        self.queued = None;
        self.queue_error = false;
        self.watches.clear();
    }
}

/// The single-threaded execution engine.
///
/// One instance backs one node (primary or replica). All entry points take
/// `&mut self`: like Redis, command execution is strictly sequential, which
/// is what makes the effect stream a faithful serialization of state
/// changes.
pub struct Engine {
    /// The keyspace.
    pub db: Db,
    now_ms: u64,
    role: Role,
    version: EngineVersion,
    rng: StdRng,
    applying_effects: bool,
    config: HashMap<String, String>,
    scripts: HashMap<String, Bytes>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("keys", &self.db.len())
            .field("role", &self.role)
            .field("version", &self.version)
            .finish()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new(Role::Primary)
    }
}

impl Engine {
    /// Creates an engine with the given role at version
    /// [`EngineVersion::CURRENT`].
    pub fn new(role: Role) -> Engine {
        Engine::with_version(role, EngineVersion::CURRENT)
    }

    /// Creates an engine at an explicit version (used by the rolling-upgrade
    /// tests, paper §7.1).
    pub fn with_version(role: Role, version: EngineVersion) -> Engine {
        Engine {
            db: Db::new(),
            now_ms: 0,
            role,
            version,
            rng: StdRng::seed_from_u64(0x5EED),
            applying_effects: false,
            config: HashMap::new(),
            scripts: HashMap::new(),
        }
    }

    /// Reseeds the engine's RNG (tests and the deterministic simulator).
    pub fn seed_rng(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Engine version (stamped onto the replication stream by the core).
    pub fn version(&self) -> EngineVersion {
        self.version
    }

    /// Current engine time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Role of this engine.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Changes role (replica promotion during failover).
    pub fn set_role(&mut self, role: Role) {
        self.role = role;
    }

    /// Advances the engine clock. The clock is injected — never read from
    /// the OS — so execution is deterministic under test and simulation.
    pub fn set_time_ms(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
    }

    /// Effective "now" for expiry decisions: while applying replicated
    /// effects, expiry is ignored entirely (the primary already converted
    /// expirations into explicit `DEL`s), preventing clock-skew divergence.
    pub(crate) fn now(&self) -> u64 {
        if self.applying_effects {
            0
        } else {
            self.now_ms
        }
    }

    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Executes one client command against this engine.
    ///
    /// Handles `MULTI`/`EXEC` queueing itself; everything else dispatches to
    /// the per-type handlers. The returned outcome carries the reply, the
    /// deterministic effects to replicate, and the dirtied keys.
    pub fn execute(&mut self, session: &mut SessionState, args: &[Bytes]) -> ExecOutcome {
        if args.is_empty() {
            return ExecOutcome::error("empty command");
        }
        let name = CmdName::from_arg(&args[0]);

        // Transaction control commands act on the session, not the keyspace.
        match name.as_str() {
            "MULTI" => {
                if session.in_multi() {
                    return ExecOutcome::error("MULTI calls can not be nested");
                }
                session.queued = Some(Vec::new());
                session.queue_error = false;
                return ExecOutcome::read(Frame::ok());
            }
            "DISCARD" => {
                if !session.in_multi() {
                    return ExecOutcome::error("DISCARD without MULTI");
                }
                session.reset();
                return ExecOutcome::read(Frame::ok());
            }
            "EXEC" => return self.exec_transaction(session),
            "WATCH" => {
                if session.in_multi() {
                    return ExecOutcome::error("WATCH inside MULTI is not allowed");
                }
                if args.len() < 2 {
                    return wrong_arity("watch");
                }
                for key in &args[1..] {
                    let v = self.db.version(key);
                    session.watches.push((key.clone(), v));
                }
                return ExecOutcome::read(Frame::ok());
            }
            "UNWATCH" => {
                session.watches.clear();
                return ExecOutcome::read(Frame::ok());
            }
            _ => {}
        }

        // Inside MULTI: validate and queue.
        if session.in_multi() {
            let valid = match command_spec(&name) {
                Some(spec) => arity_ok(spec, args.len()),
                None => false,
            };
            if !valid {
                session.queue_error = true;
                return ExecOutcome::error(format!(
                    "unknown command or wrong arity '{}'",
                    name.to_ascii_lowercase()
                ));
            }
            if let Some(queued) = session.queued.as_mut() {
                queued.push(args.to_vec());
            } else {
                // in_multi() implies a queue; recover instead of panicking.
                session.queued = Some(vec![args.to_vec()]);
            }
            return ExecOutcome::read(Frame::Simple("QUEUED".into()));
        }

        self.execute_one(&name, args)
    }

    fn exec_transaction(&mut self, session: &mut SessionState) -> ExecOutcome {
        if !session.in_multi() {
            return ExecOutcome::error("EXEC without MULTI");
        }
        if session.queue_error {
            session.reset();
            return ExecOutcome::read(Frame::Error(
                "EXECABORT Transaction discarded because of previous errors.".into(),
            ));
        }
        // WATCH validation: any watched key modified since WATCH aborts.
        let aborted = session
            .watches
            .iter()
            .any(|(key, ver)| self.db.version(key) != *ver);
        let queued = session.queued.take().unwrap_or_default();
        session.reset();
        if aborted {
            return ExecOutcome::read(Frame::Null);
        }
        let mut replies = Vec::with_capacity(queued.len());
        let mut effects: Vec<EffectCmd> = Vec::new();
        let mut dirty = DirtySet::None;
        for cmd in queued {
            let name = CmdName::from_arg(&cmd[0]);
            let outcome = self.execute_one(&name, &cmd);
            replies.push(outcome.reply);
            effects.extend(outcome.effects);
            dirty.merge(outcome.dirty);
        }
        // The whole transaction's effects form one atomic replication unit;
        // the core layer commits them as a single log record.
        ExecOutcome::write(Frame::Array(replies), effects, dirty)
    }

    /// Executes a single (non-transactional) command.
    fn execute_one(&mut self, name: &str, args: &[Bytes]) -> ExecOutcome {
        let Some(spec) = command_spec(name) else {
            return ExecOutcome::error(format!(
                "unknown command '{}'",
                String::from_utf8_lossy(&args[0])
            ));
        };
        if !arity_ok(spec, args.len()) {
            return wrong_arity(&name.to_ascii_lowercase());
        }

        // Primary-side expiry reaping: convert logically expired keys the
        // command touches into explicit DEL effects *before* execution, so
        // replicas see deterministic deletes (paper §2.1).
        let mut pre_effects: Vec<EffectCmd> = Vec::new();
        let mut pre_dirty = DirtySet::None;
        if self.role == Role::Primary && !self.applying_effects {
            let now_ms = self.now_ms;
            let db = &mut self.db;
            let _ = crate::command::for_each_key(args, |key| {
                if db.reap_if_expired(key, now_ms) {
                    pre_effects.push(vec![Bytes::from_static(b"DEL"), key.clone()]);
                    pre_dirty.merge(DirtySet::Keys(vec![key.clone()]));
                }
            });
        }

        let result = self.dispatch(name, args);
        let mut outcome = result.unwrap_or_else(|e| e);
        if !pre_effects.is_empty() {
            pre_effects.extend(std::mem::take(&mut outcome.effects));
            outcome.effects = pre_effects;
            pre_dirty.merge(std::mem::take(&mut outcome.dirty));
            outcome.dirty = pre_dirty;
        }
        outcome
    }

    /// Applies one replicated effect command (replica path / log replay).
    ///
    /// Effects are deterministic by construction; an error reply here means
    /// the stream and the local state have diverged, which callers treat as
    /// corruption.
    pub fn apply_effect(&mut self, cmd: &[Bytes]) -> Result<(), String> {
        if cmd.is_empty() {
            return Err("empty effect".into());
        }
        let name = CmdName::from_arg(&cmd[0]);
        self.applying_effects = true;
        let outcome = self.execute_one(&name, cmd);
        self.applying_effects = false;
        match outcome.reply {
            Frame::Error(e) => Err(e.into()),
            _ => Ok(()),
        }
    }

    /// Runs one active-expire cycle: reaps up to `limit` expired keys,
    /// returning the `DEL` effects to replicate. Only meaningful on a
    /// primary.
    pub fn active_expire_cycle(&mut self, limit: usize) -> Vec<EffectCmd> {
        if self.role != Role::Primary {
            return Vec::new();
        }
        let victims = self.db.expired_keys(self.now_ms, limit);
        let mut effects = Vec::with_capacity(victims.len());
        for key in victims {
            if self.db.reap_if_expired(&key, self.now_ms) {
                effects.push(vec![Bytes::from_static(b"DEL"), key]);
            }
        }
        effects
    }

    fn dispatch(&mut self, name: &str, args: &[Bytes]) -> CmdResult {
        let a = args;
        match name {
            // strings
            "GET" => strings::get(self, a),
            "SET" => strings::set(self, a),
            "SETNX" => strings::setnx(self, a),
            "SETEX" => strings::setex(self, a, false),
            "PSETEX" => strings::setex(self, a, true),
            "GETSET" => strings::getset(self, a),
            "GETDEL" => strings::getdel(self, a),
            "GETEX" => strings::getex(self, a),
            "APPEND" => strings::append(self, a),
            "STRLEN" => strings::strlen(self, a),
            "INCR" => strings::incr_by(self, &a[1], 1),
            "DECR" => strings::incr_by(self, &a[1], -1),
            "INCRBY" => strings::incrby(self, a, false),
            "DECRBY" => strings::incrby(self, a, true),
            "INCRBYFLOAT" => strings::incrbyfloat(self, a),
            "MGET" => strings::mget(self, a),
            "MSET" => strings::mset(self, a),
            "MSETNX" => strings::msetnx(self, a),
            "SETRANGE" => strings::setrange(self, a),
            "GETRANGE" | "SUBSTR" => strings::getrange(self, a),
            // keyspace
            "DEL" | "UNLINK" => keyspace::del(self, a),
            "EXISTS" => keyspace::exists(self, a),
            "TYPE" => keyspace::type_cmd(self, a),
            "EXPIRE" => keyspace::expire_generic(self, a, 1000, false),
            "PEXPIRE" => keyspace::expire_generic(self, a, 1, false),
            "EXPIREAT" => keyspace::expire_generic(self, a, 1000, true),
            "PEXPIREAT" => keyspace::expire_generic(self, a, 1, true),
            "TTL" => keyspace::ttl(self, a, 1000),
            "PTTL" => keyspace::ttl(self, a, 1),
            "EXPIRETIME" => keyspace::expiretime(self, a, 1000),
            "PEXPIRETIME" => keyspace::expiretime(self, a, 1),
            "PERSIST" => keyspace::persist(self, a),
            "KEYS" => keyspace::keys(self, a),
            "SCAN" => keyspace::scan(self, a),
            "RANDOMKEY" => keyspace::randomkey(self, a),
            "RENAME" => keyspace::rename(self, a, false),
            "RENAMENX" => keyspace::rename(self, a, true),
            "COPY" => keyspace::copy(self, a),
            "RESTORE" => keyspace::restore(self, a),
            "DBSIZE" => keyspace::dbsize(self, a),
            "FLUSHALL" | "FLUSHDB" => keyspace::flushall(self, a),
            "TOUCH" => keyspace::touch(self, a),
            // bitmaps
            "SETBIT" => bitmaps::setbit(self, a),
            "GETBIT" => bitmaps::getbit(self, a),
            "BITCOUNT" => bitmaps::bitcount(self, a),
            "BITPOS" => bitmaps::bitpos(self, a),
            "BITOP" => bitmaps::bitop(self, a),
            // hashes
            "HSET" | "HMSET" => hashes::hset(self, a, name == "HMSET"),
            "HSETNX" => hashes::hsetnx(self, a),
            "HGET" => hashes::hget(self, a),
            "HMGET" => hashes::hmget(self, a),
            "HDEL" => hashes::hdel(self, a),
            "HLEN" => hashes::hlen(self, a),
            "HEXISTS" => hashes::hexists(self, a),
            "HKEYS" => hashes::hkeys(self, a),
            "HVALS" => hashes::hvals(self, a),
            "HGETALL" => hashes::hgetall(self, a),
            "HINCRBY" => hashes::hincrby(self, a),
            "HINCRBYFLOAT" => hashes::hincrbyfloat(self, a),
            "HSTRLEN" => hashes::hstrlen(self, a),
            "HRANDFIELD" => hashes::hrandfield(self, a),
            "HSCAN" => hashes::hscan(self, a),
            // lists
            "LPUSH" => lists::push(self, a, true, false),
            "RPUSH" => lists::push(self, a, false, false),
            "LPUSHX" => lists::push(self, a, true, true),
            "RPUSHX" => lists::push(self, a, false, true),
            "LPOP" => lists::pop(self, a, true),
            "RPOP" => lists::pop(self, a, false),
            "LLEN" => lists::llen(self, a),
            "LRANGE" => lists::lrange(self, a),
            "LINDEX" => lists::lindex(self, a),
            "LSET" => lists::lset(self, a),
            "LINSERT" => lists::linsert(self, a),
            "LREM" => lists::lrem(self, a),
            "LTRIM" => lists::ltrim(self, a),
            "RPOPLPUSH" => lists::lmove_compat(self, a),
            "LMOVE" => lists::lmove(self, a),
            "LPOS" => lists::lpos(self, a),
            // sets
            "SADD" => sets::sadd(self, a),
            "SREM" => sets::srem(self, a),
            "SMEMBERS" => sets::smembers(self, a),
            "SISMEMBER" => sets::sismember(self, a),
            "SMISMEMBER" => sets::smismember(self, a),
            "SCARD" => sets::scard(self, a),
            "SPOP" => sets::spop(self, a),
            "SRANDMEMBER" => sets::srandmember(self, a),
            "SMOVE" => sets::smove(self, a),
            "SUNION" => sets::setop(self, a, sets::SetOp::Union, false),
            "SINTER" => sets::setop(self, a, sets::SetOp::Inter, false),
            "SDIFF" => sets::setop(self, a, sets::SetOp::Diff, false),
            "SUNIONSTORE" => sets::setop(self, a, sets::SetOp::Union, true),
            "SINTERSTORE" => sets::setop(self, a, sets::SetOp::Inter, true),
            "SDIFFSTORE" => sets::setop(self, a, sets::SetOp::Diff, true),
            "SINTERCARD" => sets::sintercard(self, a),
            "SSCAN" => sets::sscan(self, a),
            // zsets
            "ZADD" => zsets::zadd(self, a),
            "ZREM" => zsets::zrem(self, a),
            "ZSCORE" => zsets::zscore(self, a),
            "ZMSCORE" => zsets::zmscore(self, a),
            "ZINCRBY" => zsets::zincrby(self, a),
            "ZCARD" => zsets::zcard(self, a),
            "ZCOUNT" => zsets::zcount(self, a),
            "ZLEXCOUNT" => zsets::zlexcount(self, a),
            "ZRANGE" => zsets::zrange(self, a),
            "ZREVRANGE" => zsets::zrevrange(self, a),
            "ZRANGEBYSCORE" => zsets::zrangebyscore(self, a, false),
            "ZREVRANGEBYSCORE" => zsets::zrangebyscore(self, a, true),
            "ZRANGEBYLEX" => zsets::zrangebylex(self, a, false),
            "ZREVRANGEBYLEX" => zsets::zrangebylex(self, a, true),
            "ZRANK" => zsets::zrank(self, a, false),
            "ZREVRANK" => zsets::zrank(self, a, true),
            "ZPOPMIN" => zsets::zpop(self, a, true),
            "ZPOPMAX" => zsets::zpop(self, a, false),
            "ZRANDMEMBER" => zsets::zrandmember(self, a),
            "ZREMRANGEBYRANK" => zsets::zremrangebyrank(self, a),
            "ZREMRANGEBYSCORE" => zsets::zremrangebyscore(self, a),
            "ZREMRANGEBYLEX" => zsets::zremrangebylex(self, a),
            "ZUNION" => zsets::zread_op(self, a, zsets::ZOp::Union),
            "ZINTER" => zsets::zread_op(self, a, zsets::ZOp::Inter),
            "ZDIFF" => zsets::zread_op(self, a, zsets::ZOp::Diff),
            "ZUNIONSTORE" => zsets::zstore(self, a, zsets::ZOp::Union),
            "ZINTERSTORE" => zsets::zstore(self, a, zsets::ZOp::Inter),
            "ZDIFFSTORE" => zsets::zstore(self, a, zsets::ZOp::Diff),
            "ZSCAN" => zsets::zscan(self, a),
            // streams
            "XADD" => streams::xadd(self, a),
            "XLEN" => streams::xlen(self, a),
            "XRANGE" => streams::xrange(self, a, false),
            "XREVRANGE" => streams::xrange(self, a, true),
            "XDEL" => streams::xdel(self, a),
            "XTRIM" => streams::xtrim(self, a),
            "XREAD" => streams::xread(self, a),
            "XSETID" => streams::xsetid(self, a),
            "XGROUP" => streams::xgroup(self, a),
            "XREADGROUP" => streams::xreadgroup(self, a),
            "XACK" => streams::xack(self, a),
            "XPENDING" => streams::xpending(self, a),
            "XCLAIM" => streams::xclaim(self, a),
            "XINFO" => streams::xinfo(self, a),
            // hyperloglog
            "PFADD" => hllcmd::pfadd(self, a),
            "PFCOUNT" => hllcmd::pfcount(self, a),
            "PFMERGE" => hllcmd::pfmerge(self, a),
            // scripting
            "EVAL" => crate::script::eval(self, a),
            "EVALSHA" => crate::script::evalsha(self, a),
            "SCRIPT" => crate::script::script_cmd(self, a),
            // server / connection
            "PING" => server::ping(self, a),
            "ECHO" => server::echo(self, a),
            "SELECT" => server::select(self, a),
            "TIME" => server::time(self, a),
            "INFO" => server::info(self, a),
            "COMMAND" => server::command(self, a),
            "CLIENT" => server::client(self, a),
            "CONFIG" => server::config(self, a),
            "MEMORY" => server::memory(self, a),
            "DEBUG" => server::debug(self, a),
            "OBJECT" => server::object(self, a),
            "CLUSTER" => server::cluster(self, a),
            "SLOWLOG" => server::slowlog(self, a),
            "LATENCY" => server::latency(self, a),
            // Replication-adjacent commands answered at the engine level
            // with standalone semantics; the core/server layers intercept
            // them before they reach the engine when a shard is attached.
            "WAIT" => Ok(ExecOutcome::read(Frame::Integer(0))),
            "READONLY" | "READWRITE" | "REPLCONF" => Ok(ExecOutcome::read(Frame::ok())),
            other => Err(ExecOutcome::error(format!("unknown command '{other}'"))),
        }
    }

    pub(crate) fn config_mut(&mut self) -> &mut HashMap<String, String> {
        &mut self.config
    }

    /// The SCRIPT LOAD cache (node-local, never replicated — scripts
    /// replicate by their effects, §2.1).
    pub(crate) fn script_cache_mut(&mut self) -> &mut HashMap<String, Bytes> {
        &mut self.scripts
    }

    pub(crate) fn config(&self) -> &HashMap<String, String> {
        &self.config
    }

    /// Reads one CONFIG parameter. The node layer polls observability knobs
    /// (e.g. `slowlog-log-slower-than`) from here under the engine lock it
    /// already holds, so `CONFIG SET` takes effect without extra plumbing.
    pub fn config_param(&self, key: &str) -> Option<&str> {
        self.config.get(key).map(String::as_str)
    }

    /// Executes one command outside any transaction context.
    ///
    /// The striped node routes `MULTI`/`EXEC`/`WATCH` and queueing itself
    /// (they are session concerns, not keyspace concerns) and hands each
    /// stripe's engine one already-routed command at a time through here.
    pub fn execute_single(&mut self, args: &[Bytes]) -> ExecOutcome {
        if args.is_empty() {
            return ExecOutcome::error("empty command");
        }
        let name = CmdName::from_arg(&args[0]);
        self.execute_one(&name, args)
    }

    /// Looks up a cached script body by lowercase sha. The striped `EVALSHA`
    /// path resolves the source first, then runs the script against its
    /// multi-stripe host.
    pub fn script_source(&self, sha: &str) -> Option<Bytes> {
        self.scripts.get(sha).cloned()
    }

    /// Draws a uniform index in `0..n` from the engine RNG (the striped
    /// `RANDOMKEY` picks an owning stripe with this before delegating).
    /// Randomized commands replicate by their realized effects, so this
    /// choice never has to match any other node's.
    pub fn rand_index(&mut self, n: usize) -> usize {
        use rand::RngCore;
        if n == 0 {
            0
        } else {
            (self.rng.next_u64() % n as u64) as usize
        }
    }

    /// Splits this engine into `n` stripe engines partitioned by
    /// `stripe_of(slot)`. Each stripe keeps the role, version, clock, config
    /// and script cache; keyspace entries move to their owning stripe. RNGs
    /// are freshly seeded — acceptable because randomized commands replicate
    /// by their realized effects, never by the random choice itself.
    pub fn split_striped(self, n: usize, stripe_of: impl Fn(u16) -> usize) -> Vec<Engine> {
        let Engine {
            db,
            now_ms,
            role,
            version,
            config,
            scripts,
            ..
        } = self;
        db.split_by_slot(n, stripe_of)
            .into_iter()
            .map(|part| Engine {
                db: part,
                now_ms,
                role,
                version,
                rng: StdRng::seed_from_u64(0x5EED),
                applying_effects: false,
                config: config.clone(),
                scripts: scripts.clone(),
            })
            .collect()
    }
}

// --- shared helpers for handler modules -----------------------------------

pub(crate) fn wrong_arity(name: &str) -> ExecOutcome {
    ExecOutcome::error(format!("wrong number of arguments for '{name}' command"))
}

pub(crate) fn wrongtype() -> ExecOutcome {
    ExecOutcome::read(Frame::Error(
        "WRONGTYPE Operation against a key holding the wrong kind of value".into(),
    ))
}

pub(crate) fn p_i64(arg: &[u8]) -> Result<i64, ExecOutcome> {
    std::str::from_utf8(arg)
        .ok()
        .and_then(|s| s.parse::<i64>().ok())
        .ok_or_else(|| ExecOutcome::error("value is not an integer or out of range"))
}

/// Parses a SCAN-family cursor. Cursors are unsigned: Redis rejects
/// negative or non-numeric cursors outright instead of letting them wrap
/// into huge valid positions (`SCAN -1` must not become `SCAN 2^64-1`).
pub(crate) fn p_cursor(arg: &[u8]) -> Result<u64, ExecOutcome> {
    std::str::from_utf8(arg)
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| ExecOutcome::error("invalid cursor"))
}

pub(crate) fn p_f64(arg: &[u8]) -> Result<f64, ExecOutcome> {
    let v = std::str::from_utf8(arg)
        .ok()
        .and_then(|s| match s {
            "inf" | "+inf" | "Inf" | "+Inf" => Some(f64::INFINITY),
            "-inf" | "-Inf" => Some(f64::NEG_INFINITY),
            _ => s.parse::<f64>().ok(),
        })
        .ok_or_else(|| ExecOutcome::error("value is not a valid float"))?;
    if v.is_nan() {
        return Err(ExecOutcome::error("value is not a valid float"));
    }
    Ok(v)
}

pub(crate) fn upper(arg: &[u8]) -> String {
    String::from_utf8_lossy(arg).to_ascii_uppercase()
}

/// Formats a float the way Redis replies do (no trailing `.0` on integers).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e17 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Builds a write outcome whose effect is the original command verbatim —
/// the common case for deterministic commands.
pub(crate) fn verbatim_write(reply: Frame, args: &[Bytes], dirty_keys: Vec<Bytes>) -> ExecOutcome {
    ExecOutcome::write(reply, vec![args.to_vec()], DirtySet::Keys(dirty_keys))
}

/// Builds a write outcome with explicit (rewritten) effects.
pub(crate) fn effect_write(
    reply: Frame,
    effects: Vec<EffectCmd>,
    dirty_keys: Vec<Bytes>,
) -> ExecOutcome {
    ExecOutcome::write(reply, effects, DirtySet::Keys(dirty_keys))
}

/// Bulk-or-null reply.
pub(crate) fn bulk_or_null(v: Option<Bytes>) -> Frame {
    match v {
        Some(b) => Frame::Bulk(b),
        None => Frame::Null,
    }
}

#[cfg(test)]
mod tests;
