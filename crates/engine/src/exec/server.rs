//! Server, connection, and introspection commands.

use super::*;
use crate::command::all_commands;
use crate::slots::key_hash_slot;

pub(super) fn ping(_e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match a.len() {
        1 => Ok(ExecOutcome::read(Frame::Simple("PONG".into()))),
        2 => Ok(ExecOutcome::read(Frame::Bulk(a[1].clone()))),
        _ => Err(wrong_arity("ping")),
    }
}

pub(super) fn echo(_e: &mut Engine, a: &[Bytes]) -> CmdResult {
    Ok(ExecOutcome::read(Frame::Bulk(a[1].clone())))
}

pub(super) fn select(_e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let n = p_i64(&a[1])?;
    if n == 0 {
        Ok(ExecOutcome::read(Frame::ok()))
    } else {
        // MemoryDB, like Redis Cluster, only exposes database 0.
        Err(ExecOutcome::error("DB index is out of range"))
    }
}

pub(super) fn time(e: &mut Engine, _a: &[Bytes]) -> CmdResult {
    let ms = e.now_ms();
    Ok(ExecOutcome::read(Frame::Array(vec![
        Frame::Bulk(Bytes::from((ms / 1000).to_string())),
        Frame::Bulk(Bytes::from(((ms % 1000) * 1000).to_string())),
    ])))
}

pub(super) fn info(e: &mut Engine, _a: &[Bytes]) -> CmdResult {
    let role = match e.role() {
        super::Role::Primary => "master",
        super::Role::Replica => "slave",
    };
    let text = format!(
        "# Server\r\nredis_version:{}\r\nengine:memorydb-repro\r\n\
         # Replication\r\nrole:{}\r\n\
         # Keyspace\r\ndb0:keys={},expires=0\r\n\
         # Memory\r\nused_memory:{}\r\n",
        e.version(),
        role,
        e.db.len(),
        e.db.used_memory(),
    );
    Ok(ExecOutcome::read(Frame::Bulk(Bytes::from(text))))
}

pub(super) fn command(_e: &mut Engine, a: &[Bytes]) -> CmdResult {
    if a.len() >= 2 && upper(&a[1]) == "COUNT" {
        return Ok(ExecOutcome::read(Frame::Integer(
            all_commands().len() as i64
        )));
    }
    if a.len() >= 2 && upper(&a[1]) == "DOCS" {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    }
    // Plain COMMAND: name + arity per command, enough for spec-driven
    // clients and our §7.2.2.2 generator.
    let out = all_commands()
        .iter()
        .map(|spec| {
            Frame::Array(vec![
                Frame::Bulk(Bytes::from(spec.name.to_ascii_lowercase())),
                Frame::Integer(spec.arity as i64),
            ])
        })
        .collect();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn client(_e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match upper(&a[1]).as_str() {
        "SETNAME" => Ok(ExecOutcome::read(Frame::ok())),
        "GETNAME" => Ok(ExecOutcome::read(Frame::Null)),
        "ID" => Ok(ExecOutcome::read(Frame::Integer(1))),
        "INFO" => Ok(ExecOutcome::read(Frame::Bulk(Bytes::from_static(b"id=1")))),
        sub => Err(ExecOutcome::error(format!(
            "Unknown CLIENT subcommand '{sub}'"
        ))),
    }
}

pub(super) fn config(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match upper(&a[1]).as_str() {
        "GET" => {
            if a.len() < 3 {
                return Err(wrong_arity("config|get"));
            }
            let mut out = Vec::new();
            for pattern in &a[2..] {
                for (k, v) in e.config() {
                    if crate::db::glob_match(pattern, k.as_bytes()) {
                        out.push(Frame::Bulk(Bytes::from(k.clone())));
                        out.push(Frame::Bulk(Bytes::from(v.clone())));
                    }
                }
            }
            Ok(ExecOutcome::read(Frame::Array(out)))
        }
        "SET" => {
            if a.len() < 4 || !a.len().is_multiple_of(2) {
                return Err(wrong_arity("config|set"));
            }
            for pair in a[2..].chunks(2) {
                let k = String::from_utf8_lossy(&pair[0]).to_ascii_lowercase();
                let v = String::from_utf8_lossy(&pair[1]).to_string();
                e.config_mut().insert(k, v);
            }
            Ok(ExecOutcome::read(Frame::ok()))
        }
        "RESETSTAT" | "REWRITE" => Ok(ExecOutcome::read(Frame::ok())),
        sub => Err(ExecOutcome::error(format!(
            "Unknown CONFIG subcommand '{sub}'"
        ))),
    }
}

pub(super) fn memory(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match upper(&a[1]).as_str() {
        "USAGE" => {
            let Some(key) = a.get(2) else {
                return Err(wrong_arity("memory|usage"));
            };
            match e.db.lookup(key, e.now()) {
                Some(v) => Ok(ExecOutcome::read(Frame::Integer(v.approx_size() as i64))),
                None => Ok(ExecOutcome::read(Frame::Null)),
            }
        }
        "DOCTOR" => Ok(ExecOutcome::read(Frame::Bulk(Bytes::from_static(
            b"Sam, I detected a few issues in this Redis instance memory implants:\n * None. ",
        )))),
        sub => Err(ExecOutcome::error(format!(
            "Unknown MEMORY subcommand '{sub}'"
        ))),
    }
}

pub(super) fn debug(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match upper(&a[1]).as_str() {
        // Accepted for test-suite parity; our expiry cycle is explicit.
        "SET-ACTIVE-EXPIRE" => Ok(ExecOutcome::read(Frame::ok())),
        "JMAP" => Ok(ExecOutcome::read(Frame::ok())),
        "OBJECT" => {
            let Some(key) = a.get(2) else {
                return Err(wrong_arity("debug|object"));
            };
            match e.db.lookup(key, e.now()) {
                Some(v) => Ok(ExecOutcome::read(Frame::Simple(
                    format!(
                        "Value at:0 refcount:1 encoding:{} serializedlength:{}",
                        v.type_name(),
                        v.approx_size()
                    )
                    .into(),
                ))),
                None => Err(ExecOutcome::error("no such key")),
            }
        }
        sub => Err(ExecOutcome::error(format!(
            "DEBUG subcommand '{sub}' not supported"
        ))),
    }
}

/// `OBJECT ENCODING|REFCOUNT|FREQ|IDLETIME key`
pub(super) fn object(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let sub = upper(&a[1]);
    let Some(key) = a.get(2) else {
        return Err(wrong_arity("object"));
    };
    let Some(v) = e.db.lookup(key, e.now()) else {
        return Err(ExecOutcome::error("no such key"));
    };
    match sub.as_str() {
        "ENCODING" => {
            // We use a single representation per type; report the canonical
            // large-object encodings Redis would settle on.
            let enc = match v {
                crate::value::Value::Str(s) => {
                    if std::str::from_utf8(s).is_ok_and(|t| t.parse::<i64>().is_ok()) {
                        "int"
                    } else if s.len() <= 44 {
                        "embstr"
                    } else {
                        "raw"
                    }
                }
                crate::value::Value::List(_) => "quicklist",
                crate::value::Value::Hash(_) => "hashtable",
                crate::value::Value::Set(_) => "hashtable",
                crate::value::Value::ZSet(_) => "skiplist",
                crate::value::Value::Stream(_) => "stream",
                crate::value::Value::Hll(_) => "raw",
            };
            Ok(ExecOutcome::read(Frame::Bulk(Bytes::from_static(
                enc.as_bytes(),
            ))))
        }
        "REFCOUNT" => Ok(ExecOutcome::read(Frame::Integer(1))),
        "FREQ" | "IDLETIME" => Ok(ExecOutcome::read(Frame::Integer(0))),
        other => Err(ExecOutcome::error(format!(
            "Unknown OBJECT subcommand '{other}'"
        ))),
    }
}

/// `SLOWLOG GET|RESET|LEN` — engine-level fallback. The slowlog ring lives
/// in the node's metrics registry and the node intercepts this command
/// before dispatch; a standalone engine answers with the empty shapes so
/// spec-driven clients keep working.
pub(super) fn slowlog(_e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match upper(&a[1]).as_str() {
        "GET" => Ok(ExecOutcome::read(Frame::Array(Vec::new()))),
        "RESET" => Ok(ExecOutcome::read(Frame::ok())),
        "LEN" => Ok(ExecOutcome::read(Frame::Integer(0))),
        sub => Err(ExecOutcome::error(format!(
            "Unknown SLOWLOG subcommand '{sub}'"
        ))),
    }
}

/// `LATENCY HISTOGRAM|RESET` — engine-level fallback, same story as
/// [`slowlog`]: the node intercepts with real per-stage histograms.
pub(super) fn latency(_e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match upper(&a[1]).as_str() {
        "HISTOGRAM" => Ok(ExecOutcome::read(Frame::Map(Vec::new()))),
        "RESET" => Ok(ExecOutcome::read(Frame::Integer(0))),
        sub => Err(ExecOutcome::error(format!(
            "Unknown LATENCY subcommand '{sub}'"
        ))),
    }
}

pub(super) fn cluster(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    match upper(&a[1]).as_str() {
        "KEYSLOT" => {
            let Some(key) = a.get(2) else {
                return Err(wrong_arity("cluster|keyslot"));
            };
            Ok(ExecOutcome::read(Frame::Integer(key_hash_slot(key) as i64)))
        }
        "COUNTKEYSINSLOT" => {
            let Some(arg) = a.get(2) else {
                return Err(wrong_arity("cluster|countkeysinslot"));
            };
            let slot = p_i64(arg)?;
            if !(0..16384).contains(&slot) {
                return Err(ExecOutcome::error("Invalid slot"));
            }
            Ok(ExecOutcome::read(Frame::Integer(
                e.db.count_keys_in_slot(slot as u16) as i64,
            )))
        }
        "GETKEYSINSLOT" => {
            let (Some(slot_arg), Some(count_arg)) = (a.get(2), a.get(3)) else {
                return Err(wrong_arity("cluster|getkeysinslot"));
            };
            let slot = p_i64(slot_arg)?;
            let count = p_i64(count_arg)?.max(0) as usize;
            if !(0..16384).contains(&slot) {
                return Err(ExecOutcome::error("Invalid slot"));
            }
            let mut keys = e.db.keys_in_slot(slot as u16);
            keys.sort();
            keys.truncate(count);
            Ok(ExecOutcome::read(Frame::Array(
                keys.into_iter().map(Frame::Bulk).collect(),
            )))
        }
        // INFO/SLOTS/SHARDS need cluster topology, which lives above the
        // engine in memorydb-core; the standalone engine answers minimally.
        "INFO" => Ok(ExecOutcome::read(Frame::Bulk(Bytes::from_static(
            b"cluster_enabled:0\r\ncluster_state:ok\r\n",
        )))),
        sub => Err(ExecOutcome::error(format!(
            "Unknown CLUSTER subcommand '{sub}'"
        ))),
    }
}
