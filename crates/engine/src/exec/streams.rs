//! Stream commands.
//!
//! `XADD key * ...` is non-deterministic (the id comes from the primary's
//! clock); its effect carries the concrete assigned id so replicas append
//! exactly the same entry (paper §2.1).

use super::*;
use crate::ds::stream::{Stream, StreamAddError, StreamEntry, StreamId};
use crate::value::Value;

fn read_stream<'a>(e: &'a Engine, key: &[u8]) -> Result<Option<&'a Stream>, ExecOutcome> {
    match e.db.lookup(key, e.now()) {
        Some(Value::Stream(s)) => Ok(Some(s)),
        Some(_) => Err(wrongtype()),
        None => Ok(None),
    }
}

fn stream_mut<'a>(e: &'a mut Engine, key: &Bytes) -> Result<&'a mut Stream, ExecOutcome> {
    let now = e.now();
    if let Some(v) = e.db.lookup(key, now) {
        if !matches!(v, Value::Stream(_)) {
            return Err(wrongtype());
        }
    }
    match e
        .db
        .entry_or_insert_with(key, now, || Value::Stream(Stream::new()))
    {
        Value::Stream(s) => Ok(s),
        _ => Err(wrongtype()),
    }
}

fn parse_id(arg: &[u8], default_seq: u64) -> Result<StreamId, ExecOutcome> {
    let s = std::str::from_utf8(arg).map_err(|_| {
        ExecOutcome::error("Invalid stream ID specified as stream command argument")
    })?;
    if let Some((ms, seq)) = s.split_once('-') {
        let ms = ms.parse().map_err(|_| {
            ExecOutcome::error("Invalid stream ID specified as stream command argument")
        })?;
        let seq = seq.parse().map_err(|_| {
            ExecOutcome::error("Invalid stream ID specified as stream command argument")
        })?;
        Ok(StreamId { ms, seq })
    } else {
        let ms = s.parse().map_err(|_| {
            ExecOutcome::error("Invalid stream ID specified as stream command argument")
        })?;
        Ok(StreamId {
            ms,
            seq: default_seq,
        })
    }
}

fn entry_frame(id: StreamId, entry: &StreamEntry) -> Frame {
    let mut fields = Vec::with_capacity(entry.len() * 2);
    for (f, v) in entry {
        fields.push(Frame::Bulk(f.clone()));
        fields.push(Frame::Bulk(v.clone()));
    }
    Frame::Array(vec![
        Frame::Bulk(Bytes::from(id.to_string())),
        Frame::Array(fields),
    ])
}

/// `XADD key [NOMKSTREAM] [MAXLEN|MINID [=|~] n] <id|*> field value ...`
pub(super) fn xadd(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let mut i = 2;
    let mut nomkstream = false;
    let mut maxlen: Option<usize> = None;
    let mut minid: Option<StreamId> = None;
    loop {
        let Some(arg) = a.get(i) else {
            return Err(wrong_arity("xadd"));
        };
        match upper(arg).as_str() {
            "NOMKSTREAM" => {
                nomkstream = true;
                i += 1;
            }
            "MAXLEN" | "MINID" => {
                let which = upper(arg);
                let mut j = i + 1;
                // Optional exactness marker (= or ~) — both treated exactly.
                if matches!(a.get(j).map(|x| x.as_ref()), Some(b"=") | Some(b"~")) {
                    j += 1;
                }
                let val = a.get(j).ok_or_else(|| ExecOutcome::error("syntax error"))?;
                if which == "MAXLEN" {
                    let n = p_i64(val)?;
                    if n < 0 {
                        return Err(ExecOutcome::error("MAXLEN can't be negative"));
                    }
                    maxlen = Some(n as usize);
                } else {
                    minid = Some(parse_id(val, 0)?);
                }
                i = j + 1;
            }
            _ => break,
        }
    }
    let id_arg = a.get(i).ok_or_else(|| wrong_arity("xadd"))?.clone();
    i += 1;
    let fields_raw = &a[i..];
    if fields_raw.is_empty() || !fields_raw.len().is_multiple_of(2) {
        return Err(wrong_arity("xadd"));
    }

    if nomkstream && read_stream(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Null));
    }

    let now = e.now_ms();
    let s = stream_mut(e, &key)?;
    let id = if id_arg.as_ref() == b"*" {
        s.next_auto_id(now)
    } else if id_arg.ends_with(b"-*") {
        let ms_part = &id_arg[..id_arg.len() - 2];
        let base = parse_id(ms_part, 0)?;
        if base.ms == s.last_id.ms {
            StreamId {
                ms: base.ms,
                seq: s.last_id.seq + 1,
            }
        } else {
            StreamId {
                ms: base.ms,
                seq: 0,
            }
        }
    } else {
        parse_id(&id_arg, 0)?
    };

    let entry: StreamEntry = fields_raw
        .chunks(2)
        .map(|c| (c[0].clone(), c[1].clone()))
        .collect();
    match s.add(id, entry) {
        Ok(()) => {}
        Err(StreamAddError::IdZero) => {
            e.db.remove_if_empty(&key);
            return Err(ExecOutcome::error(
                "The ID specified in XADD must be greater than 0-0",
            ));
        }
        Err(StreamAddError::IdTooSmall) => {
            e.db.remove_if_empty(&key);
            return Err(ExecOutcome::read(Frame::Error(
                "ERR The ID specified in XADD is equal or smaller than the target stream top item"
                    .into(),
            )));
        }
    }
    if let Some(n) = maxlen {
        s.trim_maxlen(n);
    }
    if let Some(m) = minid {
        s.trim_minid(m);
    }
    e.db.signal_modified(&key);

    // Effect: XADD with the concrete id (and realized trim bounds).
    let mut eff: EffectCmd = vec![Bytes::from_static(b"XADD"), key.clone()];
    if let Some(n) = maxlen {
        eff.push(Bytes::from_static(b"MAXLEN"));
        eff.push(Bytes::from(n.to_string()));
    }
    if let Some(m) = minid {
        eff.push(Bytes::from_static(b"MINID"));
        eff.push(Bytes::from(m.to_string()));
    }
    eff.push(Bytes::from(id.to_string()));
    eff.extend(fields_raw.iter().cloned());
    Ok(effect_write(
        Frame::Bulk(Bytes::from(id.to_string())),
        vec![eff],
        vec![key],
    ))
}

pub(super) fn xlen(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let n = read_stream(e, &a[1])?.map_or(0, |s| s.len());
    Ok(ExecOutcome::read(Frame::Integer(n as i64)))
}

pub(super) fn xrange(e: &mut Engine, a: &[Bytes], rev: bool) -> CmdResult {
    let mut count = None;
    if a.len() > 4 {
        if upper(&a[4]) != "COUNT" || a.len() != 6 {
            return Err(ExecOutcome::error("syntax error"));
        }
        count = Some(p_i64(&a[5])?.max(0) as usize);
    }
    let (lo_arg, hi_arg) = if rev { (&a[3], &a[2]) } else { (&a[2], &a[3]) };
    let start = match lo_arg.as_ref() {
        b"-" => StreamId::MIN,
        arg if arg.starts_with(b"(") => {
            let base = parse_id(&arg[1..], 0)?;
            base.next().unwrap_or(StreamId::MAX)
        }
        arg => parse_id(arg, 0)?,
    };
    let end = match hi_arg.as_ref() {
        b"+" => StreamId::MAX,
        arg if arg.starts_with(b"(") => {
            let base = parse_id(&arg[1..], u64::MAX)?;
            // Exclusive end: step back one.
            if base.seq > 0 {
                StreamId {
                    ms: base.ms,
                    seq: base.seq - 1,
                }
            } else if base.ms > 0 {
                StreamId {
                    ms: base.ms - 1,
                    seq: u64::MAX,
                }
            } else {
                return Ok(ExecOutcome::read(Frame::Array(vec![])));
            }
        }
        arg => parse_id(arg, u64::MAX)?,
    };
    let Some(s) = read_stream(e, &a[1])? else {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    };
    let entries = if rev {
        s.rev_range(start, end, count)
    } else {
        s.range(start, end, count)
    };
    let out = entries
        .iter()
        .map(|(id, entry)| entry_frame(*id, entry))
        .collect();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn xdel(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    if read_stream(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let mut ids = Vec::with_capacity(a.len() - 2);
    for arg in &a[2..] {
        ids.push(parse_id(arg, 0)?);
    }
    let now = e.now();
    let Some(Value::Stream(s)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let removed = s.delete(&ids);
    if removed == 0 {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::Integer(removed as i64), a, vec![key]))
}

pub(super) fn xtrim(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let which = upper(&a[2]);
    let mut j = 3;
    if matches!(a.get(j).map(|x| x.as_ref()), Some(b"=") | Some(b"~")) {
        j += 1;
    }
    let val = a.get(j).ok_or_else(|| ExecOutcome::error("syntax error"))?;
    if read_stream(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let now = e.now();
    let evicted = {
        let Some(Value::Stream(s)) = e.db.lookup_mut(&key, now) else {
            return Ok(ExecOutcome::read(Frame::Integer(0)));
        };
        match which.as_str() {
            "MAXLEN" => {
                let n = p_i64(val)?;
                if n < 0 {
                    return Err(ExecOutcome::error("MAXLEN can't be negative"));
                }
                s.trim_maxlen(n as usize)
            }
            "MINID" => {
                let m = parse_id(val, 0)?;
                s.trim_minid(m)
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    };
    if evicted == 0 {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    // Realized trims are deterministic given identical stream state.
    let mut eff: EffectCmd = vec![Bytes::from_static(b"XTRIM"), key.clone(), a[2].clone()];
    eff.push(val.clone());
    Ok(effect_write(
        Frame::Integer(evicted as i64),
        vec![eff],
        vec![key],
    ))
}

/// `XREAD [COUNT n] STREAMS key... id...` — non-blocking form only.
pub(super) fn xread(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let mut count: Option<usize> = None;
    let mut i = 1;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "COUNT" => {
                count = Some(
                    p_i64(
                        a.get(i + 1)
                            .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                    )?
                    .max(0) as usize,
                );
                i += 2;
            }
            "BLOCK" => {
                return Err(ExecOutcome::error(
                    "BLOCK is not supported in this reproduction's XREAD",
                ))
            }
            "STREAMS" => {
                i += 1;
                break;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let rest = &a[i..];
    if rest.is_empty() || !rest.len().is_multiple_of(2) {
        return Err(ExecOutcome::error(
            "Unbalanced XREAD list of streams: for each stream key an ID or '$' must be specified.",
        ));
    }
    let nk = rest.len() / 2;
    let mut out = Vec::new();
    for k in 0..nk {
        let key = &rest[k];
        let id_arg = &rest[nk + k];
        let after = if id_arg.as_ref() == b"$" {
            match read_stream(e, key)? {
                Some(s) => s.last_id,
                None => StreamId::MIN,
            }
        } else {
            parse_id(id_arg, 0)?
        };
        let Some(s) = read_stream(e, key)? else {
            continue;
        };
        let entries = s.read_after(after, count);
        if entries.is_empty() {
            continue;
        }
        let frames = entries
            .iter()
            .map(|(id, entry)| entry_frame(*id, entry))
            .collect();
        out.push(Frame::Array(vec![
            Frame::Bulk(key.clone()),
            Frame::Array(frames),
        ]));
    }
    if out.is_empty() {
        return Ok(ExecOutcome::read(Frame::Null));
    }
    Ok(ExecOutcome::read(Frame::Array(out)))
}

/// `XGROUP CREATE key group id|$ [MKSTREAM] | DESTROY key group |
///  SETID key group id|$ | CREATECONSUMER key group consumer |
///  DELCONSUMER key group consumer`
pub(super) fn xgroup(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let sub = upper(&a[1]);
    let key = a.get(2).ok_or_else(|| wrong_arity("xgroup"))?.clone();
    match sub.as_str() {
        "CREATE" => {
            let group = a.get(3).ok_or_else(|| wrong_arity("xgroup"))?.clone();
            let id_arg = a.get(4).ok_or_else(|| wrong_arity("xgroup"))?;
            let mkstream = a.get(5).is_some_and(|x| upper(x) == "MKSTREAM");
            if read_stream(e, &key)?.is_none() && !mkstream {
                return Err(ExecOutcome::error(
                    "The XGROUP subcommand requires the key to exist. Note that for CREATE you may want to use the MKSTREAM option to create an empty stream automatically.",
                ));
            }
            let s = stream_mut(e, &key)?;
            let start = if id_arg.as_ref() == b"$" {
                s.last_id
            } else {
                parse_id(id_arg, 0)?
            };
            if !s.create_group(group.clone(), start) {
                e.db.remove_if_empty(&key);
                return Err(ExecOutcome::read(Frame::Error(
                    "BUSYGROUP Consumer Group name already exists".into(),
                )));
            }
            e.db.signal_modified(&key);
            // Deterministic effect: explicit start id + MKSTREAM.
            let eff = vec![
                Bytes::from_static(b"XGROUP"),
                Bytes::from_static(b"CREATE"),
                key.clone(),
                group,
                Bytes::from(start.to_string()),
                Bytes::from_static(b"MKSTREAM"),
            ];
            Ok(effect_write(Frame::ok(), vec![eff], vec![key]))
        }
        "DESTROY" => {
            let group = a.get(3).ok_or_else(|| wrong_arity("xgroup"))?;
            let Some(_) = read_stream(e, &key)? else {
                return Ok(ExecOutcome::read(Frame::Integer(0)));
            };
            let now = e.now();
            let Some(Value::Stream(s)) = e.db.lookup_mut(&key, now) else {
                return Ok(ExecOutcome::read(Frame::Integer(0)));
            };
            let existed = s.destroy_group(group);
            if !existed {
                return Ok(ExecOutcome::read(Frame::Integer(0)));
            }
            e.db.signal_modified(&key);
            Ok(verbatim_write(Frame::Integer(1), a, vec![key]))
        }
        "SETID" => {
            let group = a.get(3).ok_or_else(|| wrong_arity("xgroup"))?;
            let id_arg = a.get(4).ok_or_else(|| wrong_arity("xgroup"))?;
            let Some(s0) = read_stream(e, &key)? else {
                return Err(no_group());
            };
            let id = if id_arg.as_ref() == b"$" {
                s0.last_id
            } else {
                parse_id(id_arg, 0)?
            };
            let now = e.now();
            let Some(Value::Stream(s)) = e.db.lookup_mut(&key, now) else {
                return Err(no_group());
            };
            if !s.set_group_cursor(group, id) {
                return Err(no_group());
            }
            e.db.signal_modified(&key);
            let eff = vec![
                Bytes::from_static(b"XGROUP"),
                Bytes::from_static(b"SETID"),
                key.clone(),
                a[3].clone(),
                Bytes::from(id.to_string()),
            ];
            Ok(effect_write(Frame::ok(), vec![eff], vec![key]))
        }
        "CREATECONSUMER" => {
            let group = a.get(3).ok_or_else(|| wrong_arity("xgroup"))?;
            let consumer = a.get(4).ok_or_else(|| wrong_arity("xgroup"))?.clone();
            let now = e.now();
            let Some(Value::Stream(s)) = e.db.lookup_mut(&key, now) else {
                return Err(no_group());
            };
            let Some(g) = s.groups.get_mut(group.as_ref()) else {
                return Err(no_group());
            };
            let created = g.consumers.insert(consumer);
            if !created {
                return Ok(ExecOutcome::read(Frame::Integer(0)));
            }
            e.db.signal_modified(&key);
            Ok(verbatim_write(Frame::Integer(1), a, vec![key]))
        }
        "DELCONSUMER" => {
            let group = a.get(3).ok_or_else(|| wrong_arity("xgroup"))?;
            let consumer = a.get(4).ok_or_else(|| wrong_arity("xgroup"))?;
            let now = e.now();
            let Some(Value::Stream(s)) = e.db.lookup_mut(&key, now) else {
                return Err(no_group());
            };
            let Some(g) = s.groups.get_mut(group.as_ref()) else {
                return Err(no_group());
            };
            let before = g.pending.len();
            g.pending.retain(|_, p| p.consumer != *consumer);
            let dropped = before - g.pending.len();
            let existed = g.consumers.remove(consumer.as_ref());
            if dropped == 0 && !existed {
                return Ok(ExecOutcome::read(Frame::Integer(0)));
            }
            e.db.signal_modified(&key);
            Ok(verbatim_write(Frame::Integer(dropped as i64), a, vec![key]))
        }
        other => Err(ExecOutcome::error(format!(
            "Unknown XGROUP subcommand '{other}'"
        ))),
    }
}

fn no_group() -> ExecOutcome {
    ExecOutcome::read(Frame::Error("NOGROUP No such consumer group".into()))
}

/// `XREADGROUP GROUP g consumer [COUNT n] [NOACK] STREAMS key... id...`
///
/// Delivering new messages (`>`) mutates the group (cursor + PEL); the
/// mutation is replicated the way Redis does it: as deterministic `XCLAIM
/// ... FORCE JUSTID TIME t` plus `XGROUP SETID` effects (paper §2.1's
/// effect-based replication of non-idempotent reads).
pub(super) fn xreadgroup(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    if upper(&a[1]) != "GROUP" {
        return Err(ExecOutcome::error("syntax error"));
    }
    let group = a[2].clone();
    let consumer = a[3].clone();
    let mut count: Option<usize> = None;
    let mut noack = false;
    let mut i = 4;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "COUNT" => {
                count = Some(
                    p_i64(
                        a.get(i + 1)
                            .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                    )?
                    .max(0) as usize,
                );
                i += 2;
            }
            "NOACK" => {
                noack = true;
                i += 1;
            }
            "BLOCK" => {
                return Err(ExecOutcome::error(
                    "BLOCK is not supported in this reproduction's XREADGROUP",
                ))
            }
            "STREAMS" => {
                i += 1;
                break;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let rest = &a[i..];
    if rest.is_empty() || !rest.len().is_multiple_of(2) {
        return Err(ExecOutcome::error("Unbalanced XREADGROUP list of streams"));
    }
    let nk = rest.len() / 2;
    let now = e.now_ms();
    let mut out = Vec::new();
    let mut effects: Vec<EffectCmd> = Vec::new();
    let mut dirty: Vec<Bytes> = Vec::new();
    for k in 0..nk {
        let key = rest[k].clone();
        let id_arg = &rest[nk + k];
        {
            let Some(s) = read_stream(e, &key)? else {
                return Err(no_group());
            };
            if !s.groups.contains_key(key_of(&group)) {
                return Err(no_group());
            }
        }
        if id_arg.as_ref() == b">" {
            // New messages: deliver, assign to the consumer, advance cursor.
            let ids = {
                let Some(s) = read_stream(e, &key)? else {
                    continue; // existence checked above
                };
                s.undelivered(&group, count)
            };
            let Some(&last) = ids.last() else {
                continue;
            };
            let nownow = e.now();
            let Some(Value::Stream(s)) = e.db.lookup_mut(&key, nownow) else {
                continue;
            };
            if !noack {
                s.claim(&group, &consumer, &ids, now, Some(1), true);
            }
            s.set_group_cursor(&group, last);
            let frames: Vec<Frame> = ids
                .iter()
                .filter_map(|id| s.get(id).map(|entry| entry_frame(*id, entry)))
                .collect();
            e.db.signal_modified(&key);
            dirty.push(key.clone());
            if !noack {
                let mut claim_eff: EffectCmd = vec![
                    Bytes::from_static(b"XCLAIM"),
                    key.clone(),
                    group.clone(),
                    consumer.clone(),
                    Bytes::from_static(b"0"),
                ];
                claim_eff.extend(ids.iter().map(|id| Bytes::from(id.to_string())));
                claim_eff.extend([
                    Bytes::from_static(b"TIME"),
                    Bytes::from(now.to_string()),
                    Bytes::from_static(b"RETRYCOUNT"),
                    Bytes::from_static(b"1"),
                    Bytes::from_static(b"FORCE"),
                    Bytes::from_static(b"JUSTID"),
                ]);
                effects.push(claim_eff);
            }
            effects.push(vec![
                Bytes::from_static(b"XGROUP"),
                Bytes::from_static(b"SETID"),
                key.clone(),
                group.clone(),
                Bytes::from(last.to_string()),
            ]);
            out.push(Frame::Array(vec![Frame::Bulk(key), Frame::Array(frames)]));
        } else {
            // Re-read the consumer's own pending entries: pure read.
            let after = parse_id(id_arg, 0)?;
            let prev = after; // exclusive per Redis history-read semantics
            let Some(s) = read_stream(e, &key)? else {
                continue; // existence checked above
            };
            let ids = s.consumer_pending(&group, &consumer, prev, count);
            let frames: Vec<Frame> = ids
                .iter()
                .filter_map(|id| s.get(id).map(|entry| entry_frame(*id, entry)))
                .collect();
            out.push(Frame::Array(vec![Frame::Bulk(key), Frame::Array(frames)]));
        }
    }
    let reply = if out.is_empty() {
        Frame::Null
    } else {
        Frame::Array(out)
    };
    if effects.is_empty() {
        Ok(ExecOutcome::read(reply))
    } else {
        Ok(effect_write(reply, effects, dirty))
    }
}

fn key_of(b: &Bytes) -> &[u8] {
    b.as_ref()
}

/// `XACK key group id...`
pub(super) fn xack(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let mut ids = Vec::with_capacity(a.len() - 3);
    for arg in &a[3..] {
        ids.push(parse_id(arg, 0)?);
    }
    if read_stream(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let now = e.now();
    let Some(Value::Stream(s)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let acked = s.ack(&a[2], &ids);
    if acked == 0 {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::Integer(acked as i64), a, vec![key]))
}

/// `XPENDING key group [start end count [consumer]]`
pub(super) fn xpending(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let Some(s) = read_stream(e, &a[1])? else {
        return Err(no_group());
    };
    let Some(g) = s.groups.get(a[2].as_ref()) else {
        return Err(no_group());
    };
    if a.len() == 3 {
        // Summary form: total, min id, max id, per-consumer counts.
        if g.pending.is_empty() {
            return Ok(ExecOutcome::read(Frame::Array(vec![
                Frame::Integer(0),
                Frame::Null,
                Frame::Null,
                Frame::Null,
            ])));
        }
        let (Some(&min), Some(&max)) = (g.pending.keys().next(), g.pending.keys().next_back())
        else {
            // Emptiness handled above; mirror the empty summary if racing.
            return Ok(ExecOutcome::read(Frame::Array(vec![
                Frame::Integer(0),
                Frame::Null,
                Frame::Null,
                Frame::Null,
            ])));
        };
        let mut per: std::collections::BTreeMap<Bytes, i64> = Default::default();
        for p in g.pending.values() {
            *per.entry(p.consumer.clone()).or_default() += 1;
        }
        let consumers = per
            .into_iter()
            .map(|(c, n)| {
                Frame::Array(vec![
                    Frame::Bulk(c),
                    Frame::Bulk(Bytes::from(n.to_string())),
                ])
            })
            .collect();
        return Ok(ExecOutcome::read(Frame::Array(vec![
            Frame::Integer(g.pending.len() as i64),
            Frame::Bulk(Bytes::from(min.to_string())),
            Frame::Bulk(Bytes::from(max.to_string())),
            Frame::Array(consumers),
        ])));
    }
    if a.len() < 6 {
        return Err(ExecOutcome::error("syntax error"));
    }
    let start = match a[3].as_ref() {
        b"-" => StreamId::MIN,
        arg => parse_id(arg, 0)?,
    };
    let end = match a[4].as_ref() {
        b"+" => StreamId::MAX,
        arg => parse_id(arg, u64::MAX)?,
    };
    let count = p_i64(&a[5])?.max(0) as usize;
    let consumer_filter = a.get(6).cloned();
    let now = e.now_ms();
    let rows: Vec<Frame> = g
        .pending
        .range(start..=end)
        .filter(|(_, p)| consumer_filter.as_ref().is_none_or(|c| p.consumer == *c))
        .take(count)
        .map(|(id, p)| {
            Frame::Array(vec![
                Frame::Bulk(Bytes::from(id.to_string())),
                Frame::Bulk(p.consumer.clone()),
                Frame::Integer(now.saturating_sub(p.delivery_time_ms) as i64),
                Frame::Integer(p.delivery_count as i64),
            ])
        })
        .collect();
    Ok(ExecOutcome::read(Frame::Array(rows)))
}

/// `XCLAIM key group consumer min-idle-time id... [IDLE ms] [TIME ms]
///  [RETRYCOUNT n] [FORCE] [JUSTID]`
pub(super) fn xclaim(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let group = a[2].clone();
    let consumer = a[3].clone();
    let min_idle = p_i64(&a[4])?.max(0) as u64;
    let mut ids = Vec::new();
    let mut i = 5;
    while i < a.len() {
        let Ok(id) = std::str::from_utf8(&a[i])
            .map_err(|_| ())
            .and_then(|s| s.parse::<StreamId>().map_err(|_| ()))
        else {
            break;
        };
        ids.push(id);
        i += 1;
    }
    if ids.is_empty() {
        return Err(wrong_arity("xclaim"));
    }
    let mut time_ms: Option<u64> = None;
    let mut retry: Option<u64> = None;
    let mut force = false;
    let mut justid = false;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "IDLE" => {
                let idle = p_i64(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?;
                time_ms = Some(e.now_ms().saturating_sub(idle.max(0) as u64));
                i += 2;
            }
            "TIME" => {
                time_ms = Some(
                    p_i64(
                        a.get(i + 1)
                            .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                    )?
                    .max(0) as u64,
                );
                i += 2;
            }
            "RETRYCOUNT" => {
                retry = Some(
                    p_i64(
                        a.get(i + 1)
                            .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                    )?
                    .max(0) as u64,
                );
                i += 2;
            }
            "FORCE" => {
                force = true;
                i += 1;
            }
            "JUSTID" => {
                justid = true;
                i += 1;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let now = e.now_ms();
    let time = time_ms.unwrap_or(now);
    if read_stream(e, &key)?.is_none() {
        return Err(no_group());
    }
    // Filter by idleness before mutating.
    let eligible: Vec<StreamId> = {
        let Some(s) = read_stream(e, &key)? else {
            return Err(no_group());
        };
        let Some(g) = s.groups.get(group.as_ref()) else {
            return Err(no_group());
        };
        ids.iter()
            .copied()
            .filter(|id| match g.pending.get(id) {
                Some(p) => now.saturating_sub(p.delivery_time_ms) >= min_idle,
                None => force,
            })
            .collect()
    };
    // JUSTID does not bump the retry count: preserve each entry's current
    // value explicitly.
    let retry_for = |s: &Stream, id: &StreamId| -> Option<u64> {
        if justid && retry.is_none() {
            s.groups
                .get(group.as_ref())
                .and_then(|g| g.pending.get(id))
                .map(|p| p.delivery_count)
                .or(Some(1))
        } else {
            retry
        }
    };
    let nownow = e.now();
    let mut claimed = Vec::new();
    {
        let Some(Value::Stream(s)) = e.db.lookup_mut(&key, nownow) else {
            return Err(no_group());
        };
        for id in &eligible {
            let rc = retry_for(s, id);
            if !s
                .claim(&group, &consumer, &[*id], time, rc, force)
                .is_empty()
            {
                claimed.push(*id);
            }
        }
    }
    let reply = {
        let Some(s) = read_stream(e, &key)? else {
            return Err(no_group());
        };
        if justid {
            Frame::Array(
                claimed
                    .iter()
                    .map(|id| Frame::Bulk(Bytes::from(id.to_string())))
                    .collect(),
            )
        } else {
            Frame::Array(
                claimed
                    .iter()
                    .filter_map(|id| s.get(id).map(|entry| entry_frame(*id, entry)))
                    .collect(),
            )
        }
    };
    if claimed.is_empty() {
        return Ok(ExecOutcome::read(reply));
    }
    e.db.signal_modified(&key);
    // Deterministic effect: explicit TIME, per-id RETRYCOUNT, FORCE.
    let Some(s) = read_stream(e, &key)? else {
        return Err(no_group());
    };
    let Some(g) = s.groups.get(group.as_ref()) else {
        return Err(no_group());
    };
    let effects: Vec<EffectCmd> = claimed
        .iter()
        .map(|id| {
            let rc = g.pending.get(id).map(|p| p.delivery_count).unwrap_or(1);
            vec![
                Bytes::from_static(b"XCLAIM"),
                key.clone(),
                group.clone(),
                consumer.clone(),
                Bytes::from_static(b"0"),
                Bytes::from(id.to_string()),
                Bytes::from_static(b"TIME"),
                Bytes::from(time.to_string()),
                Bytes::from_static(b"RETRYCOUNT"),
                Bytes::from(rc.to_string()),
                Bytes::from_static(b"FORCE"),
                Bytes::from_static(b"JUSTID"),
            ]
        })
        .collect();
    Ok(effect_write(reply, effects, vec![key]))
}

/// `XINFO STREAM key | GROUPS key`
pub(super) fn xinfo(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let sub = upper(&a[1]);
    let key = a.get(2).ok_or_else(|| wrong_arity("xinfo"))?;
    let Some(s) = read_stream(e, key)? else {
        return Err(ExecOutcome::error("no such key"));
    };
    match sub.as_str() {
        "STREAM" => Ok(ExecOutcome::read(Frame::Array(vec![
            Frame::bulk("length"),
            Frame::Integer(s.len() as i64),
            Frame::bulk("last-generated-id"),
            Frame::Bulk(Bytes::from(s.last_id.to_string())),
            Frame::bulk("entries-added"),
            Frame::Integer(s.entries_added as i64),
            Frame::bulk("groups"),
            Frame::Integer(s.groups.len() as i64),
        ]))),
        "GROUPS" => {
            let out = s
                .groups
                .iter()
                .map(|(name, g)| {
                    Frame::Array(vec![
                        Frame::bulk("name"),
                        Frame::Bulk(name.clone()),
                        Frame::bulk("consumers"),
                        Frame::Integer(g.consumers.len() as i64),
                        Frame::bulk("pending"),
                        Frame::Integer(g.pending.len() as i64),
                        Frame::bulk("last-delivered-id"),
                        Frame::Bulk(Bytes::from(g.last_delivered.to_string())),
                    ])
                })
                .collect();
            Ok(ExecOutcome::read(Frame::Array(out)))
        }
        other => Err(ExecOutcome::error(format!(
            "Unknown XINFO subcommand '{other}'"
        ))),
    }
}

/// `XSETID key id [ENTRIESADDED n] [MAXDELETEDID id]`
pub(super) fn xsetid(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let id = parse_id(&a[2], 0)?;
    if read_stream(e, &key)?.is_none() {
        return Err(ExecOutcome::error(
            "The XSETID command requires the key to exist",
        ));
    }
    let now = e.now();
    let Some(Value::Stream(s)) = e.db.lookup_mut(&key, now) else {
        return Err(ExecOutcome::error("no such key"));
    };
    if let Some((last, _)) = s.last() {
        if id < last {
            return Err(ExecOutcome::error(
                "The ID specified in XSETID is smaller than the target stream top item",
            ));
        }
    }
    s.last_id = id;
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::ok(), a, vec![key]))
}
