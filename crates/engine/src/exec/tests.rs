//! Executor tests: command semantics, effect rewrites, transactions, and
//! the effect-replay equivalence property at the heart of the paper's
//! replication model.

use crate::effects::DirtySet;
use crate::exec::{Engine, Role, SessionState};
use crate::{cmd, Frame};
use bytes::Bytes;
use proptest::prelude::*;

fn engine() -> Engine {
    let mut e = Engine::new(Role::Primary);
    e.set_time_ms(1_000_000);
    e
}

/// Runs a command, returning just the reply.
fn run(e: &mut Engine, parts: &[&str]) -> Frame {
    let mut s = SessionState::new();
    e.execute(&mut s, &cmd(parts.to_vec())).reply
}

/// Runs a command, returning the whole outcome.
fn run_full(e: &mut Engine, parts: &[&str]) -> crate::ExecOutcome {
    let mut s = SessionState::new();
    e.execute(&mut s, &cmd(parts.to_vec()))
}

fn bulk(s: &str) -> Frame {
    Frame::Bulk(Bytes::copy_from_slice(s.as_bytes()))
}

#[test]
fn set_get_roundtrip() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["SET", "k", "v"]), Frame::ok());
    assert_eq!(run(&mut e, &["GET", "k"]), bulk("v"));
    assert_eq!(run(&mut e, &["GET", "missing"]), Frame::Null);
}

#[test]
fn set_nx_xx() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["SET", "k", "v1", "NX"]), Frame::ok());
    assert_eq!(run(&mut e, &["SET", "k", "v2", "NX"]), Frame::Null);
    assert_eq!(run(&mut e, &["GET", "k"]), bulk("v1"));
    assert_eq!(run(&mut e, &["SET", "k", "v3", "XX"]), Frame::ok());
    assert_eq!(run(&mut e, &["SET", "nope", "v", "XX"]), Frame::Null);
    assert!(run(&mut e, &["SET", "k", "v", "NX", "XX"]).is_error());
}

#[test]
fn set_get_option_returns_old() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["SET", "k", "v1"]), Frame::ok());
    assert_eq!(run(&mut e, &["SET", "k", "v2", "GET"]), bulk("v1"));
    assert_eq!(run(&mut e, &["SET", "fresh", "v", "GET"]), Frame::Null);
}

#[test]
fn set_expiry_rewritten_to_pxat_effect() {
    let mut e = engine();
    let out = run_full(&mut e, &["SET", "k", "v", "EX", "10"]);
    assert_eq!(out.reply, Frame::ok());
    assert_eq!(out.effects.len(), 1);
    let eff = &out.effects[0];
    assert_eq!(eff[0], Bytes::from_static(b"SET"));
    assert_eq!(eff[3], Bytes::from_static(b"PXAT"));
    let at: u64 = std::str::from_utf8(&eff[4]).unwrap().parse().unwrap();
    assert_eq!(at, 1_000_000 + 10_000);
    // The key actually expires.
    e.set_time_ms(1_000_000 + 10_000);
    assert_eq!(run(&mut e, &["GET", "k"]), Frame::Null);
}

#[test]
fn expired_key_access_emits_del_effect() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "v", "PX", "5"]);
    e.set_time_ms(1_000_100);
    let out = run_full(&mut e, &["GET", "k"]);
    assert_eq!(out.reply, Frame::Null);
    assert_eq!(out.effects, vec![cmd(["DEL", "k"])]);
    assert_eq!(out.dirty, DirtySet::Keys(cmd(["k"])));
}

#[test]
fn incr_decr_semantics_and_errors() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["INCR", "n"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["INCRBY", "n", "10"]), Frame::Integer(11));
    assert_eq!(run(&mut e, &["DECR", "n"]), Frame::Integer(10));
    assert_eq!(run(&mut e, &["DECRBY", "n", "4"]), Frame::Integer(6));
    run(&mut e, &["SET", "s", "abc"]);
    assert!(run(&mut e, &["INCR", "s"]).is_error());
    run(&mut e, &["SET", "big", &i64::MAX.to_string()]);
    assert!(run(&mut e, &["INCR", "big"]).is_error());
}

#[test]
fn incrbyfloat_effect_is_set_of_result() {
    let mut e = engine();
    let out = run_full(&mut e, &["INCRBYFLOAT", "f", "1.5"]);
    assert_eq!(out.reply, bulk("1.5"));
    assert_eq!(out.effects, vec![cmd(["SET", "f", "1.5", "KEEPTTL"])]);
    let out2 = run_full(&mut e, &["INCRBYFLOAT", "f", "0.25"]);
    assert_eq!(out2.effects, vec![cmd(["SET", "f", "1.75", "KEEPTTL"])]);
}

#[test]
fn incrbyfloat_preserves_ttl_on_replica() {
    // Regression: INCRBYFLOAT keeps the key's TTL on the primary, so its
    // replicated SET must carry KEEPTTL or the replica silently drops the
    // expiry and the keyspaces diverge.
    assert_replica_convergence(&[
        cmd(["SET", "k", "1"]),
        cmd(["PEXPIRE", "k", "289"]),
        cmd(["INCRBYFLOAT", "k", "0.5"]),
    ]);
}

#[test]
fn append_strlen_getrange_setrange() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["APPEND", "k", "Hello "]), Frame::Integer(6));
    assert_eq!(run(&mut e, &["APPEND", "k", "World"]), Frame::Integer(11));
    assert_eq!(run(&mut e, &["STRLEN", "k"]), Frame::Integer(11));
    assert_eq!(run(&mut e, &["GETRANGE", "k", "0", "4"]), bulk("Hello"));
    assert_eq!(run(&mut e, &["GETRANGE", "k", "-5", "-1"]), bulk("World"));
    assert_eq!(run(&mut e, &["GETRANGE", "k", "99", "100"]), bulk(""));
    assert_eq!(
        run(&mut e, &["SETRANGE", "k", "6", "Redis"]),
        Frame::Integer(11)
    );
    assert_eq!(run(&mut e, &["GET", "k"]), bulk("Hello Redis"));
    // Extending past the end zero-pads.
    assert_eq!(
        run(&mut e, &["SETRANGE", "pad", "3", "x"]),
        Frame::Integer(4)
    );
    assert_eq!(
        run(&mut e, &["GET", "pad"]),
        Frame::Bulk(Bytes::from_static(b"\0\0\0x"))
    );
}

#[test]
fn mset_mget_msetnx() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["MSET", "a", "1", "b", "2"]), Frame::ok());
    assert_eq!(
        run(&mut e, &["MGET", "a", "b", "nope"]),
        Frame::Array(vec![bulk("1"), bulk("2"), Frame::Null])
    );
    assert_eq!(
        run(&mut e, &["MSETNX", "c", "3", "a", "x"]),
        Frame::Integer(0)
    );
    assert_eq!(run(&mut e, &["GET", "c"]), Frame::Null);
    assert_eq!(
        run(&mut e, &["MSETNX", "c", "3", "d", "4"]),
        Frame::Integer(1)
    );
}

#[test]
fn del_exists_type() {
    let mut e = engine();
    run(&mut e, &["SET", "a", "1"]);
    run(&mut e, &["RPUSH", "l", "x"]);
    assert_eq!(
        run(&mut e, &["EXISTS", "a", "l", "a", "nope"]),
        Frame::Integer(3)
    );
    assert_eq!(run(&mut e, &["TYPE", "a"]), Frame::Simple("string".into()));
    assert_eq!(run(&mut e, &["TYPE", "l"]), Frame::Simple("list".into()));
    assert_eq!(run(&mut e, &["TYPE", "nope"]), Frame::Simple("none".into()));
    let out = run_full(&mut e, &["DEL", "a", "l", "nope"]);
    assert_eq!(out.reply, Frame::Integer(2));
    // Effect names only the keys that actually existed.
    assert_eq!(out.effects, vec![cmd(["DEL", "a", "l"])]);
    let noop = run_full(&mut e, &["DEL", "nope"]);
    assert_eq!(noop.reply, Frame::Integer(0));
    assert!(noop.effects.is_empty());
}

#[test]
fn expire_ttl_persist() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "v"]);
    assert_eq!(run(&mut e, &["TTL", "k"]), Frame::Integer(-1));
    assert_eq!(run(&mut e, &["TTL", "none"]), Frame::Integer(-2));
    let out = run_full(&mut e, &["EXPIRE", "k", "100"]);
    assert_eq!(out.reply, Frame::Integer(1));
    // Effect is an absolute PEXPIREAT.
    assert_eq!(out.effects[0][0], Bytes::from_static(b"PEXPIREAT"));
    assert_eq!(run(&mut e, &["TTL", "k"]), Frame::Integer(100));
    assert_eq!(run(&mut e, &["PTTL", "k"]), Frame::Integer(100_000));
    assert_eq!(run(&mut e, &["PERSIST", "k"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["TTL", "k"]), Frame::Integer(-1));
    assert_eq!(run(&mut e, &["PERSIST", "k"]), Frame::Integer(0));
}

#[test]
fn expire_with_flags() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "v"]);
    assert_eq!(
        run(&mut e, &["EXPIRE", "k", "100", "XX"]),
        Frame::Integer(0)
    );
    assert_eq!(
        run(&mut e, &["EXPIRE", "k", "100", "NX"]),
        Frame::Integer(1)
    );
    assert_eq!(run(&mut e, &["EXPIRE", "k", "50", "NX"]), Frame::Integer(0));
    assert_eq!(
        run(&mut e, &["EXPIRE", "k", "200", "GT"]),
        Frame::Integer(1)
    );
    assert_eq!(
        run(&mut e, &["EXPIRE", "k", "100", "GT"]),
        Frame::Integer(0)
    );
    assert_eq!(
        run(&mut e, &["EXPIRE", "k", "100", "LT"]),
        Frame::Integer(1)
    );
    assert_eq!(run(&mut e, &["TTL", "k"]), Frame::Integer(100));
}

#[test]
fn expire_in_past_deletes() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "v"]);
    let out = run_full(&mut e, &["EXPIRE", "k", "-5"]);
    assert_eq!(out.reply, Frame::Integer(1));
    assert_eq!(out.effects, vec![cmd(["DEL", "k"])]);
    assert_eq!(run(&mut e, &["EXISTS", "k"]), Frame::Integer(0));
}

#[test]
fn rename_and_copy() {
    let mut e = engine();
    run(&mut e, &["SET", "a", "v"]);
    run(&mut e, &["EXPIRE", "a", "100"]);
    assert_eq!(run(&mut e, &["RENAME", "a", "b"]), Frame::ok());
    assert_eq!(run(&mut e, &["EXISTS", "a"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["TTL", "b"]), Frame::Integer(100));
    assert!(run(&mut e, &["RENAME", "missing", "x"]).is_error());
    run(&mut e, &["SET", "c", "other"]);
    assert_eq!(run(&mut e, &["RENAMENX", "b", "c"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["COPY", "b", "d"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["GET", "d"]), bulk("v"));
    assert_eq!(run(&mut e, &["COPY", "b", "c"]), Frame::Integer(0));
    assert_eq!(
        run(&mut e, &["COPY", "b", "c", "REPLACE"]),
        Frame::Integer(1)
    );
}

#[test]
fn keys_and_dbsize() {
    let mut e = engine();
    run(
        &mut e,
        &["MSET", "user:1", "a", "user:2", "b", "order:1", "c"],
    );
    assert_eq!(run(&mut e, &["DBSIZE"]), Frame::Integer(3));
    let reply = run(&mut e, &["KEYS", "user:*"]);
    assert_eq!(reply.as_array().unwrap().len(), 2);
    assert_eq!(run(&mut e, &["FLUSHALL"]), Frame::ok());
    assert_eq!(run(&mut e, &["DBSIZE"]), Frame::Integer(0));
}

#[test]
fn hash_commands() {
    let mut e = engine();
    assert_eq!(
        run(&mut e, &["HSET", "h", "f1", "v1", "f2", "v2"]),
        Frame::Integer(2)
    );
    assert_eq!(run(&mut e, &["HSET", "h", "f1", "v1b"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["HGET", "h", "f1"]), bulk("v1b"));
    assert_eq!(run(&mut e, &["HLEN", "h"]), Frame::Integer(2));
    assert_eq!(run(&mut e, &["HEXISTS", "h", "f2"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["HSTRLEN", "h", "f1"]), Frame::Integer(3));
    assert_eq!(
        run(&mut e, &["HMGET", "h", "f1", "zz"]),
        Frame::Array(vec![bulk("v1b"), Frame::Null])
    );
    assert_eq!(run(&mut e, &["HSETNX", "h", "f1", "x"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["HSETNX", "h", "f3", "x"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["HINCRBY", "h", "n", "5"]), Frame::Integer(5));
    assert_eq!(
        run(&mut e, &["HINCRBYFLOAT", "h", "fl", "2.5"]),
        bulk("2.5")
    );
    assert_eq!(run(&mut e, &["HDEL", "h", "f1", "zz"]), Frame::Integer(1));
    // Deleting the last fields removes the key.
    run(&mut e, &["HDEL", "h", "f2", "f3", "n", "fl"]);
    assert_eq!(run(&mut e, &["EXISTS", "h"]), Frame::Integer(0));
}

#[test]
fn hash_wrongtype() {
    let mut e = engine();
    run(&mut e, &["SET", "s", "v"]);
    assert!(run(&mut e, &["HSET", "s", "f", "v"]).is_error());
    assert!(run(&mut e, &["HGET", "s", "f"]).is_error());
    // And the failed HSET must not clobber the string.
    assert_eq!(run(&mut e, &["GET", "s"]), bulk("v"));
}

#[test]
fn list_push_pop_range() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["RPUSH", "l", "b", "c"]), Frame::Integer(2));
    assert_eq!(run(&mut e, &["LPUSH", "l", "a"]), Frame::Integer(3));
    assert_eq!(
        run(&mut e, &["LRANGE", "l", "0", "-1"]),
        Frame::Array(vec![bulk("a"), bulk("b"), bulk("c")])
    );
    assert_eq!(run(&mut e, &["LLEN", "l"]), Frame::Integer(3));
    assert_eq!(run(&mut e, &["LPOP", "l"]), bulk("a"));
    assert_eq!(run(&mut e, &["RPOP", "l"]), bulk("c"));
    assert_eq!(
        run(&mut e, &["LPOP", "l", "5"]),
        Frame::Array(vec![bulk("b")])
    );
    assert_eq!(run(&mut e, &["EXISTS", "l"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["LPOP", "l"]), Frame::Null);
    assert_eq!(run(&mut e, &["LPUSHX", "l", "x"]), Frame::Integer(0));
}

#[test]
fn list_index_set_insert_rem_trim() {
    let mut e = engine();
    run(&mut e, &["RPUSH", "l", "a", "b", "c", "b", "a"]);
    assert_eq!(run(&mut e, &["LINDEX", "l", "0"]), bulk("a"));
    assert_eq!(run(&mut e, &["LINDEX", "l", "-1"]), bulk("a"));
    assert_eq!(run(&mut e, &["LINDEX", "l", "99"]), Frame::Null);
    assert_eq!(run(&mut e, &["LSET", "l", "2", "C"]), Frame::ok());
    assert!(run(&mut e, &["LSET", "l", "99", "x"]).is_error());
    assert_eq!(
        run(&mut e, &["LINSERT", "l", "BEFORE", "C", "pre"]),
        Frame::Integer(6)
    );
    assert_eq!(
        run(&mut e, &["LINSERT", "l", "AFTER", "zz", "x"]),
        Frame::Integer(-1)
    );
    assert_eq!(run(&mut e, &["LREM", "l", "1", "a"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["LREM", "l", "-1", "a"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["LTRIM", "l", "1", "2"]), Frame::ok());
    assert_eq!(run(&mut e, &["LLEN", "l"]), Frame::Integer(2));
    run(&mut e, &["LTRIM", "l", "5", "3"]);
    assert_eq!(run(&mut e, &["EXISTS", "l"]), Frame::Integer(0));
}

#[test]
fn lmove_and_rpoplpush() {
    let mut e = engine();
    run(&mut e, &["RPUSH", "src", "a", "b", "c"]);
    assert_eq!(
        run(&mut e, &["LMOVE", "src", "dst", "LEFT", "RIGHT"]),
        bulk("a")
    );
    assert_eq!(run(&mut e, &["RPOPLPUSH", "src", "dst"]), bulk("c"));
    assert_eq!(
        run(&mut e, &["LRANGE", "dst", "0", "-1"]),
        Frame::Array(vec![bulk("c"), bulk("a")])
    );
    assert_eq!(
        run(&mut e, &["LMOVE", "missing", "dst", "LEFT", "LEFT"]),
        Frame::Null
    );
}

#[test]
fn lpos_ranks_and_counts() {
    let mut e = engine();
    run(&mut e, &["RPUSH", "l", "a", "b", "c", "b", "b"]);
    assert_eq!(run(&mut e, &["LPOS", "l", "b"]), Frame::Integer(1));
    assert_eq!(
        run(&mut e, &["LPOS", "l", "b", "RANK", "2"]),
        Frame::Integer(3)
    );
    assert_eq!(
        run(&mut e, &["LPOS", "l", "b", "RANK", "-1"]),
        Frame::Integer(4)
    );
    assert_eq!(
        run(&mut e, &["LPOS", "l", "b", "COUNT", "0"]),
        Frame::Array(vec![
            Frame::Integer(1),
            Frame::Integer(3),
            Frame::Integer(4)
        ])
    );
    assert_eq!(run(&mut e, &["LPOS", "l", "zz"]), Frame::Null);
}

#[test]
fn set_commands() {
    let mut e = engine();
    assert_eq!(
        run(&mut e, &["SADD", "s", "a", "b", "c"]),
        Frame::Integer(3)
    );
    assert_eq!(run(&mut e, &["SADD", "s", "a"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["SCARD", "s"]), Frame::Integer(3));
    assert_eq!(run(&mut e, &["SISMEMBER", "s", "a"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["SISMEMBER", "s", "z"]), Frame::Integer(0));
    assert_eq!(
        run(&mut e, &["SMISMEMBER", "s", "a", "z"]),
        Frame::Array(vec![Frame::Integer(1), Frame::Integer(0)])
    );
    assert_eq!(run(&mut e, &["SREM", "s", "a", "zz"]), Frame::Integer(1));
    assert_eq!(
        run(&mut e, &["SMEMBERS", "s"]),
        Frame::Array(vec![bulk("b"), bulk("c")])
    );
    run(&mut e, &["SREM", "s", "b", "c"]);
    assert_eq!(run(&mut e, &["EXISTS", "s"]), Frame::Integer(0));
}

#[test]
fn spop_effect_is_srem_of_chosen() {
    let mut e = engine();
    run(&mut e, &["SADD", "s", "a", "b", "c", "d"]);
    let out = run_full(&mut e, &["SPOP", "s"]);
    let popped = match &out.reply {
        Frame::Bulk(b) => b.clone(),
        other => panic!("expected bulk, got {other:?}"),
    };
    assert_eq!(out.effects.len(), 1);
    assert_eq!(out.effects[0][0], Bytes::from_static(b"SREM"));
    assert_eq!(out.effects[0][2], popped);
    // Popping everything rewrites to DEL.
    let out2 = run_full(&mut e, &["SPOP", "s", "10"]);
    assert_eq!(out2.effects[0][0], Bytes::from_static(b"DEL"));
    assert_eq!(run(&mut e, &["EXISTS", "s"]), Frame::Integer(0));
}

#[test]
fn smove_between_sets() {
    let mut e = engine();
    run(&mut e, &["SADD", "a", "x", "y"]);
    run(&mut e, &["SADD", "b", "z"]);
    assert_eq!(run(&mut e, &["SMOVE", "a", "b", "x"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["SMOVE", "a", "b", "nope"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["SCARD", "b"]), Frame::Integer(2));
}

#[test]
fn set_algebra() {
    let mut e = engine();
    run(&mut e, &["SADD", "a", "1", "2", "3"]);
    run(&mut e, &["SADD", "b", "2", "3", "4"]);
    assert_eq!(
        run(&mut e, &["SUNION", "a", "b"]).as_array().unwrap().len(),
        4
    );
    assert_eq!(
        run(&mut e, &["SINTER", "a", "b"]).as_array().unwrap().len(),
        2
    );
    assert_eq!(
        run(&mut e, &["SDIFF", "a", "b"]).as_array().unwrap().len(),
        1
    );
    assert_eq!(
        run(&mut e, &["SINTERSTORE", "dst", "a", "b"]),
        Frame::Integer(2)
    );
    assert_eq!(run(&mut e, &["SCARD", "dst"]), Frame::Integer(2));
    // Empty result deletes the destination.
    assert_eq!(
        run(&mut e, &["SINTERSTORE", "dst", "a", "missing"]),
        Frame::Integer(0)
    );
    assert_eq!(run(&mut e, &["EXISTS", "dst"]), Frame::Integer(0));
    assert_eq!(
        run(&mut e, &["SINTERCARD", "2", "a", "b"]),
        Frame::Integer(2)
    );
    assert_eq!(
        run(&mut e, &["SINTERCARD", "2", "a", "b", "LIMIT", "1"]),
        Frame::Integer(1)
    );
}

#[test]
fn zset_basic() {
    let mut e = engine();
    assert_eq!(
        run(&mut e, &["ZADD", "z", "1", "a", "2", "b", "3", "c"]),
        Frame::Integer(3)
    );
    assert_eq!(run(&mut e, &["ZCARD", "z"]), Frame::Integer(3));
    assert_eq!(run(&mut e, &["ZSCORE", "z", "b"]), bulk("2"));
    assert_eq!(run(&mut e, &["ZSCORE", "z", "zz"]), Frame::Null);
    assert_eq!(run(&mut e, &["ZRANK", "z", "a"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["ZREVRANK", "z", "a"]), Frame::Integer(2));
    assert_eq!(
        run(&mut e, &["ZRANGE", "z", "0", "-1"]),
        Frame::Array(vec![bulk("a"), bulk("b"), bulk("c")])
    );
    assert_eq!(
        run(&mut e, &["ZRANGE", "z", "0", "0", "WITHSCORES"]),
        Frame::Array(vec![bulk("a"), bulk("1")])
    );
    assert_eq!(run(&mut e, &["ZREM", "z", "b"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["ZCARD", "z"]), Frame::Integer(2));
}

#[test]
fn zadd_flags() {
    let mut e = engine();
    run(&mut e, &["ZADD", "z", "5", "m"]);
    assert_eq!(
        run(&mut e, &["ZADD", "z", "NX", "9", "m"]),
        Frame::Integer(0)
    );
    assert_eq!(run(&mut e, &["ZSCORE", "z", "m"]), bulk("5"));
    assert_eq!(
        run(&mut e, &["ZADD", "z", "XX", "CH", "9", "m"]),
        Frame::Integer(1)
    );
    assert_eq!(
        run(&mut e, &["ZADD", "z", "GT", "7", "m"]),
        Frame::Integer(0)
    );
    assert_eq!(run(&mut e, &["ZSCORE", "z", "m"]), bulk("9"));
    assert_eq!(
        run(&mut e, &["ZADD", "z", "LT", "7", "m"]),
        Frame::Integer(0)
    );
    assert_eq!(run(&mut e, &["ZSCORE", "z", "m"]), bulk("7"));
    assert_eq!(run(&mut e, &["ZADD", "z", "INCR", "3", "m"]), bulk("10"));
    assert_eq!(
        run(&mut e, &["ZADD", "z", "XX", "INCR", "1", "nope"]),
        Frame::Null
    );
    assert!(run(&mut e, &["ZADD", "z", "NX", "XX", "1", "m"]).is_error());
}

#[test]
fn zrange_byscore_bylex_rev_limit() {
    let mut e = engine();
    run(
        &mut e,
        &["ZADD", "z", "1", "a", "2", "b", "3", "c", "4", "d"],
    );
    assert_eq!(
        run(&mut e, &["ZRANGEBYSCORE", "z", "2", "3"]),
        Frame::Array(vec![bulk("b"), bulk("c")])
    );
    assert_eq!(
        run(&mut e, &["ZRANGEBYSCORE", "z", "(2", "+inf"]),
        Frame::Array(vec![bulk("c"), bulk("d")])
    );
    assert_eq!(
        run(&mut e, &["ZREVRANGEBYSCORE", "z", "3", "2"]),
        Frame::Array(vec![bulk("c"), bulk("b")])
    );
    assert_eq!(
        run(
            &mut e,
            &["ZRANGEBYSCORE", "z", "-inf", "+inf", "LIMIT", "1", "2"]
        ),
        Frame::Array(vec![bulk("b"), bulk("c")])
    );
    assert_eq!(
        run(&mut e, &["ZRANGE", "z", "(1", "3", "BYSCORE"]),
        Frame::Array(vec![bulk("b"), bulk("c")])
    );
    assert_eq!(
        run(&mut e, &["ZRANGE", "z", "3", "1", "BYSCORE", "REV"]),
        Frame::Array(vec![bulk("c"), bulk("b"), bulk("a")])
    );
    // Lex on same-score members.
    run(&mut e, &["ZADD", "lex", "0", "aa", "0", "ab", "0", "b"]);
    assert_eq!(
        run(&mut e, &["ZRANGEBYLEX", "lex", "[aa", "(b"]),
        Frame::Array(vec![bulk("aa"), bulk("ab")])
    );
    assert_eq!(
        run(&mut e, &["ZLEXCOUNT", "lex", "-", "+"]),
        Frame::Integer(3)
    );
    assert_eq!(
        run(&mut e, &["ZREVRANGE", "lex", "0", "0"]),
        Frame::Array(vec![bulk("b")])
    );
}

#[test]
fn zincrby_and_zpop() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["ZINCRBY", "z", "2.5", "m"]), bulk("2.5"));
    let out = run_full(&mut e, &["ZINCRBY", "z", "1.5", "m"]);
    assert_eq!(out.reply, bulk("4"));
    // Effect is a deterministic ZADD of the result.
    assert_eq!(out.effects, vec![cmd(["ZADD", "z", "4", "m"])]);
    run(&mut e, &["ZADD", "z", "1", "low", "9", "high"]);
    let popped = run_full(&mut e, &["ZPOPMIN", "z"]);
    assert_eq!(popped.reply, Frame::Array(vec![bulk("low"), bulk("1")]));
    assert_eq!(popped.effects, vec![cmd(["ZREM", "z", "low"])]);
    assert_eq!(
        run(&mut e, &["ZPOPMAX", "z", "2"]),
        Frame::Array(vec![bulk("high"), bulk("9"), bulk("m"), bulk("4")])
    );
    assert_eq!(run(&mut e, &["EXISTS", "z"]), Frame::Integer(0));
}

#[test]
fn zremrange_variants() {
    let mut e = engine();
    run(
        &mut e,
        &[
            "ZADD", "z", "1", "a", "2", "b", "3", "c", "4", "d", "5", "e",
        ],
    );
    assert_eq!(
        run(&mut e, &["ZREMRANGEBYRANK", "z", "0", "1"]),
        Frame::Integer(2)
    );
    assert_eq!(
        run(&mut e, &["ZREMRANGEBYSCORE", "z", "4", "4"]),
        Frame::Integer(1)
    );
    assert_eq!(run(&mut e, &["ZCARD", "z"]), Frame::Integer(2));
    run(&mut e, &["ZADD", "lex", "0", "a", "0", "b", "0", "c"]);
    assert_eq!(
        run(&mut e, &["ZREMRANGEBYLEX", "lex", "[a", "[b"]),
        Frame::Integer(2)
    );
}

#[test]
fn zstore_union_inter_diff() {
    let mut e = engine();
    run(&mut e, &["ZADD", "z1", "1", "a", "2", "b"]);
    run(&mut e, &["ZADD", "z2", "10", "b", "20", "c"]);
    assert_eq!(
        run(&mut e, &["ZUNIONSTORE", "u", "2", "z1", "z2"]),
        Frame::Integer(3)
    );
    assert_eq!(run(&mut e, &["ZSCORE", "u", "b"]), bulk("12"));
    assert_eq!(
        run(
            &mut e,
            &[
                "ZUNIONSTORE",
                "u2",
                "2",
                "z1",
                "z2",
                "WEIGHTS",
                "2",
                "1",
                "AGGREGATE",
                "MAX"
            ]
        ),
        Frame::Integer(3)
    );
    assert_eq!(run(&mut e, &["ZSCORE", "u2", "b"]), bulk("10"));
    assert_eq!(
        run(&mut e, &["ZINTERSTORE", "i", "2", "z1", "z2"]),
        Frame::Integer(1)
    );
    assert_eq!(run(&mut e, &["ZSCORE", "i", "b"]), bulk("12"));
    assert_eq!(
        run(&mut e, &["ZDIFFSTORE", "d", "2", "z1", "z2"]),
        Frame::Integer(1)
    );
    assert_eq!(run(&mut e, &["ZSCORE", "d", "a"]), bulk("1"));
    // Sets participate as score-1 members.
    run(&mut e, &["SADD", "s", "a", "q"]);
    assert_eq!(
        run(&mut e, &["ZUNIONSTORE", "m", "2", "z1", "s"]),
        Frame::Integer(3)
    );
    assert_eq!(run(&mut e, &["ZSCORE", "m", "q"]), bulk("1"));
}

#[test]
fn stream_xadd_xlen_xrange() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["XADD", "st", "1-1", "f", "v"]), bulk("1-1"));
    assert!(run(&mut e, &["XADD", "st", "1-1", "f", "v"]).is_error());
    assert_eq!(run(&mut e, &["XADD", "st", "2-0", "g", "w"]), bulk("2-0"));
    assert_eq!(run(&mut e, &["XLEN", "st"]), Frame::Integer(2));
    let range = run(&mut e, &["XRANGE", "st", "-", "+"]);
    assert_eq!(range.as_array().unwrap().len(), 2);
    let rev = run(&mut e, &["XREVRANGE", "st", "+", "-", "COUNT", "1"]);
    assert_eq!(rev.as_array().unwrap().len(), 1);
    assert_eq!(run(&mut e, &["XDEL", "st", "1-1"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["XLEN", "st"]), Frame::Integer(1));
}

#[test]
fn stream_auto_id_effect_carries_concrete_id() {
    let mut e = Engine::new(Role::Primary);
    e.set_time_ms(5_000);
    let out = run_full(&mut e, &["XADD", "st", "*", "f", "v"]);
    assert_eq!(out.reply, bulk("5000-0"));
    // The effect must contain the assigned id, not '*' (paper §2.1).
    let eff = &out.effects[0];
    assert!(eff.contains(&Bytes::from_static(b"5000-0")));
    assert!(!eff.contains(&Bytes::from_static(b"*")));
    let out2 = run_full(&mut e, &["XADD", "st", "*", "f", "v"]);
    assert_eq!(out2.reply, bulk("5000-1"));
}

#[test]
fn stream_xread_and_trim() {
    let mut e = engine();
    for i in 1..=5 {
        run(
            &mut e,
            &["XADD", "st", &format!("{i}-0"), "n", &i.to_string()],
        );
    }
    let reply = run(&mut e, &["XREAD", "COUNT", "2", "STREAMS", "st", "2-0"]);
    let streams = reply.as_array().unwrap();
    assert_eq!(streams.len(), 1);
    let entries = streams[0].as_array().unwrap()[1].as_array().unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(run(&mut e, &["XREAD", "STREAMS", "st", "5-0"]), Frame::Null);
    assert_eq!(
        run(&mut e, &["XTRIM", "st", "MAXLEN", "2"]),
        Frame::Integer(3)
    );
    assert_eq!(run(&mut e, &["XLEN", "st"]), Frame::Integer(2));
}

#[test]
fn hll_commands() {
    let mut e = engine();
    assert_eq!(
        run(&mut e, &["PFADD", "h", "a", "b", "c"]),
        Frame::Integer(1)
    );
    assert_eq!(run(&mut e, &["PFADD", "h", "a"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["PFCOUNT", "h"]), Frame::Integer(3));
    run(&mut e, &["PFADD", "h2", "c", "d"]);
    assert_eq!(run(&mut e, &["PFCOUNT", "h", "h2"]), Frame::Integer(4));
    assert_eq!(run(&mut e, &["PFMERGE", "dst", "h", "h2"]), Frame::ok());
    assert_eq!(run(&mut e, &["PFCOUNT", "dst"]), Frame::Integer(4));
    run(&mut e, &["SET", "s", "x"]);
    assert!(run(&mut e, &["PFADD", "s", "y"]).is_error());
}

#[test]
fn multi_exec_basics() {
    let mut e = engine();
    let mut s = SessionState::new();
    assert_eq!(e.execute(&mut s, &cmd(["MULTI"])).reply, Frame::ok());
    assert_eq!(
        e.execute(&mut s, &cmd(["SET", "k", "v"])).reply,
        Frame::Simple("QUEUED".into())
    );
    assert_eq!(
        e.execute(&mut s, &cmd(["INCR", "n"])).reply,
        Frame::Simple("QUEUED".into())
    );
    // Nothing executed yet.
    let mut s2 = SessionState::new();
    assert_eq!(e.execute(&mut s2, &cmd(["GET", "k"])).reply, Frame::Null);
    let out = e.execute(&mut s, &cmd(["EXEC"]));
    assert_eq!(
        out.reply,
        Frame::Array(vec![Frame::ok(), Frame::Integer(1)])
    );
    // Effects of the whole transaction are grouped in one outcome.
    assert_eq!(out.effects.len(), 2);
    assert_eq!(e.execute(&mut s2, &cmd(["GET", "k"])).reply, bulk("v"));
}

#[test]
fn multi_error_aborts_exec() {
    let mut e = engine();
    let mut s = SessionState::new();
    e.execute(&mut s, &cmd(["MULTI"]));
    let r = e.execute(&mut s, &cmd(["NOTACOMMAND", "x"]));
    assert!(r.reply.is_error());
    e.execute(&mut s, &cmd(["SET", "k", "v"]));
    let out = e.execute(&mut s, &cmd(["EXEC"]));
    match out.reply {
        Frame::Error(msg) => assert!(msg.starts_with("EXECABORT")),
        other => panic!("expected EXECABORT, got {other:?}"),
    }
    let mut s2 = SessionState::new();
    assert_eq!(e.execute(&mut s2, &cmd(["GET", "k"])).reply, Frame::Null);
}

#[test]
fn discard_clears_queue() {
    let mut e = engine();
    let mut s = SessionState::new();
    e.execute(&mut s, &cmd(["MULTI"]));
    e.execute(&mut s, &cmd(["SET", "k", "v"]));
    assert_eq!(e.execute(&mut s, &cmd(["DISCARD"])).reply, Frame::ok());
    assert!(e.execute(&mut s, &cmd(["EXEC"])).reply.is_error());
    assert!(e.execute(&mut s, &cmd(["DISCARD"])).reply.is_error());
}

#[test]
fn watch_aborts_on_conflict() {
    let mut e = engine();
    let mut s = SessionState::new();
    e.execute(&mut s, &cmd(["SET", "k", "0"]));
    e.execute(&mut s, &cmd(["WATCH", "k"]));
    // Another session modifies the watched key.
    let mut other = SessionState::new();
    e.execute(&mut other, &cmd(["SET", "k", "conflict"]));
    e.execute(&mut s, &cmd(["MULTI"]));
    e.execute(&mut s, &cmd(["SET", "k", "mine"]));
    let out = e.execute(&mut s, &cmd(["EXEC"]));
    assert_eq!(out.reply, Frame::Null);
    assert!(out.effects.is_empty());
    assert_eq!(
        e.execute(&mut other, &cmd(["GET", "k"])).reply,
        bulk("conflict")
    );
}

#[test]
fn watch_passes_without_conflict() {
    let mut e = engine();
    let mut s = SessionState::new();
    e.execute(&mut s, &cmd(["SET", "k", "0"]));
    e.execute(&mut s, &cmd(["WATCH", "k"]));
    e.execute(&mut s, &cmd(["MULTI"]));
    e.execute(&mut s, &cmd(["SET", "k", "mine"]));
    let out = e.execute(&mut s, &cmd(["EXEC"]));
    assert_eq!(out.reply, Frame::Array(vec![Frame::ok()]));
    // WATCH is one-shot: a later EXEC is unaffected by the old watch.
    e.execute(&mut s, &cmd(["MULTI"]));
    e.execute(&mut s, &cmd(["SET", "k", "again"]));
    assert_eq!(
        e.execute(&mut s, &cmd(["EXEC"])).reply,
        Frame::Array(vec![Frame::ok()])
    );
}

#[test]
fn nested_multi_and_watch_inside_multi_rejected() {
    let mut e = engine();
    let mut s = SessionState::new();
    e.execute(&mut s, &cmd(["MULTI"]));
    assert!(e.execute(&mut s, &cmd(["MULTI"])).reply.is_error());
    assert!(e.execute(&mut s, &cmd(["WATCH", "k"])).reply.is_error());
}

#[test]
fn unknown_command_and_arity_errors() {
    let mut e = engine();
    assert!(run(&mut e, &["FROBNICATE"]).is_error());
    assert!(run(&mut e, &["GET"]).is_error());
    assert!(run(&mut e, &["GET", "a", "b"]).is_error());
    assert!(run(&mut e, &["SET", "a"]).is_error());
}

#[test]
fn replica_does_not_reap_expired_keys() {
    let mut replica = Engine::new(Role::Replica);
    replica.set_time_ms(1_000);
    replica
        .apply_effect(&cmd(["SET", "k", "v", "PXAT", "2000"]))
        .unwrap();
    replica.set_time_ms(10_000);
    // Reads treat it as missing...
    let mut s = SessionState::new();
    assert_eq!(
        replica.execute(&mut s, &cmd(["GET", "k"])).reply,
        Frame::Null
    );
    // ...but the entry stays until the primary's DEL arrives.
    assert_eq!(replica.db.len(), 1);
    replica.apply_effect(&cmd(["DEL", "k"])).unwrap();
    assert_eq!(replica.db.len(), 0);
}

#[test]
fn active_expire_cycle_emits_dels() {
    let mut e = engine();
    run(&mut e, &["SET", "a", "1", "PX", "10"]);
    run(&mut e, &["SET", "b", "2", "PX", "10"]);
    run(&mut e, &["SET", "c", "3"]);
    e.set_time_ms(2_000_000);
    let mut effects = e.active_expire_cycle(100);
    effects.sort();
    assert_eq!(effects, vec![cmd(["DEL", "a"]), cmd(["DEL", "b"])]);
    assert_eq!(e.db.len(), 1);
    // Replicas never reap on their own.
    let mut r = Engine::new(Role::Replica);
    assert!(r.active_expire_cycle(100).is_empty());
}

#[test]
fn ping_echo_time_info() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["PING"]), Frame::Simple("PONG".into()));
    assert_eq!(run(&mut e, &["PING", "hi"]), bulk("hi"));
    assert_eq!(run(&mut e, &["ECHO", "x"]), bulk("x"));
    let t = run(&mut e, &["TIME"]);
    assert_eq!(t.as_array().unwrap().len(), 2);
    match run(&mut e, &["INFO"]) {
        Frame::Bulk(b) => {
            let text = String::from_utf8_lossy(&b).to_string();
            assert!(text.contains("role:master"));
            assert!(text.contains("redis_version:7.0.7"));
        }
        other => panic!("expected bulk, got {other:?}"),
    }
}

#[test]
fn cluster_keyslot_via_command() {
    let mut e = engine();
    assert_eq!(
        run(&mut e, &["CLUSTER", "KEYSLOT", "foo"]),
        Frame::Integer(12182)
    );
    run(&mut e, &["SET", "{tag}a", "1"]);
    run(&mut e, &["SET", "{tag}b", "2"]);
    let slot = crate::slots::key_hash_slot(b"{tag}a");
    assert_eq!(
        run(&mut e, &["CLUSTER", "COUNTKEYSINSLOT", &slot.to_string()]),
        Frame::Integer(2)
    );
    let keys = run(
        &mut e,
        &["CLUSTER", "GETKEYSINSLOT", &slot.to_string(), "10"],
    );
    assert_eq!(keys.as_array().unwrap().len(), 2);
}

#[test]
fn config_set_get() {
    let mut e = engine();
    assert_eq!(
        run(&mut e, &["CONFIG", "SET", "maxmemory", "100mb"]),
        Frame::ok()
    );
    assert_eq!(
        run(&mut e, &["CONFIG", "GET", "maxmemory"]),
        Frame::Array(vec![bulk("maxmemory"), bulk("100mb")])
    );
    assert_eq!(
        run(&mut e, &["CONFIG", "GET", "nope*"]),
        Frame::Array(vec![])
    );
}

// ---------------------------------------------------------------------------
// The replication property the whole system rests on: applying a primary's
// effect stream to a fresh replica reproduces the primary's keyspace.
// ---------------------------------------------------------------------------

/// Replays the effects of every mutation onto a replica and asserts the two
/// keyspaces serialize identically.
fn assert_replica_convergence(commands: &[Vec<Bytes>]) {
    let mut primary = Engine::new(Role::Primary);
    primary.set_time_ms(1_000_000);
    primary.seed_rng(42);
    let mut replica = Engine::new(Role::Replica);
    let mut s = SessionState::new();
    for c in commands {
        let out = primary.execute(&mut s, c);
        for eff in &out.effects {
            replica
                .apply_effect(eff)
                .unwrap_or_else(|e| panic!("effect {eff:?} failed on replica: {e}"));
        }
    }
    assert_eq!(
        crate::rdb::dump(&primary.db),
        crate::rdb::dump(&replica.db),
        "replica diverged after {} commands",
        commands.len()
    );
}

#[test]
fn effect_replay_reproduces_state_across_types() {
    assert_replica_convergence(&[
        cmd(["SET", "s", "v1"]),
        cmd(["APPEND", "s", "v2"]),
        cmd(["INCR", "n"]),
        cmd(["INCRBYFLOAT", "f", "1.25"]),
        cmd(["RPUSH", "l", "a", "b", "c"]),
        cmd(["LPOP", "l"]),
        cmd(["LMOVE", "l", "l2", "LEFT", "RIGHT"]),
        cmd(["HSET", "h", "f", "1", "g", "2"]),
        cmd(["HINCRBYFLOAT", "h", "f", "0.5"]),
        cmd(["HDEL", "h", "g"]),
        cmd(["SADD", "st", "a", "b", "c", "d", "e"]),
        cmd(["SPOP", "st", "2"]),
        cmd(["SMOVE", "st", "st2", "a"]),
        cmd(["ZADD", "z", "1", "a", "2", "b", "3", "c"]),
        cmd(["ZINCRBY", "z", "0.5", "a"]),
        cmd(["ZPOPMAX", "z"]),
        cmd(["ZUNIONSTORE", "zu", "2", "z", "st2"]),
        cmd(["XADD", "x", "*", "f", "v"]),
        cmd(["XADD", "x", "*", "f", "w"]),
        cmd(["XTRIM", "x", "MAXLEN", "1"]),
        cmd(["PFADD", "hll", "a", "b", "c"]),
        cmd(["PFMERGE", "hll2", "hll"]),
        cmd(["EXPIRE", "s", "500"]),
        cmd(["DEL", "n"]),
        cmd(["RENAME", "f", "f2"]),
    ]);
}

#[test]
fn effect_replay_with_expirations() {
    let mut primary = Engine::new(Role::Primary);
    primary.set_time_ms(1_000);
    let mut replica = Engine::new(Role::Replica);
    let mut s = SessionState::new();
    let feed = |p: &mut Engine, r: &mut Engine, s: &mut SessionState, c: &[Bytes]| {
        let out = p.execute(s, c);
        for eff in &out.effects {
            r.apply_effect(eff).unwrap();
        }
    };
    feed(
        &mut primary,
        &mut replica,
        &mut s,
        &cmd(["SET", "k", "v", "PX", "100"]),
    );
    feed(
        &mut primary,
        &mut replica,
        &mut s,
        &cmd(["SET", "stay", "v"]),
    );
    primary.set_time_ms(10_000);
    // Accessing the expired key generates the DEL the replica needs.
    feed(&mut primary, &mut replica, &mut s, &cmd(["GET", "k"]));
    assert_eq!(crate::rdb::dump(&primary.db), crate::rdb::dump(&replica.db));
    assert_eq!(replica.db.len(), 1);
}

// Property: random command sequences over a small domain never diverge.
fn arb_command() -> impl Strategy<Value = Vec<Bytes>> {
    let key = prop_oneof![Just("k1"), Just("k2"), Just("k3")];
    let val = "[a-z]{0,6}";
    prop_oneof![
        (key.clone(), val).prop_map(|(k, v)| cmd(["SET", k, &v])),
        key.clone().prop_map(|k| cmd(["GET", k])),
        key.clone().prop_map(|k| cmd(["DEL", k])),
        key.clone().prop_map(|k| cmd(["INCR", k])),
        (key.clone(), val).prop_map(|(k, v)| cmd(["RPUSH", k, &v])),
        key.clone().prop_map(|k| cmd(["LPOP", k])),
        (key.clone(), val).prop_map(|(k, v)| cmd(["SADD", k, &v])),
        key.clone().prop_map(|k| cmd(["SPOP", k])),
        (key.clone(), 0i32..100, val).prop_map(|(k, s, v)| cmd(["ZADD", k, &s.to_string(), &v])),
        key.clone().prop_map(|k| cmd(["ZPOPMIN", k])),
        (key.clone(), val).prop_map(|(k, v)| cmd(["HSET", k, "f", &v])),
        (key.clone(), 1i64..1000).prop_map(|(k, ms)| cmd(["PEXPIRE", k, &ms.to_string()])),
        (key.clone(), val).prop_map(|(k, v)| cmd(["APPEND", k, &v])),
        (key.clone(), 0i64..64).prop_map(|(k, off)| cmd(["SETBIT", k, &off.to_string(), "1"])),
        (key.clone(), val).prop_map(|(k, v)| cmd(["XADD", k, "*", "f", &v])),
        key.clone().prop_map(|k| cmd(["XTRIM", k, "MAXLEN", "2"])),
        (key.clone(), val).prop_map(|(k, v)| cmd(["PFADD", k, &v])),
        key.clone().prop_map(|k| cmd(["LPOP", k, "2"])),
        (key.clone(), key.clone()).prop_map(|(a, b)| cmd(["ZUNIONSTORE", a, "1", b])),
        (key.clone(), "[a-z]{1,3}").prop_map(|(k, v)| cmd(["SETRANGE", k, "2", &v])),
        (key.clone(), key.clone()).prop_map(|(a, b)| cmd(["COPY", a, b, "REPLACE"])),
        key.prop_map(|k| cmd(["INCRBYFLOAT", k, "0.5"])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn prop_random_sequences_converge(cmds in proptest::collection::vec(arb_command(), 1..60)) {
        // Commands of mixed types against the same key produce WRONGTYPE
        // errors on the primary — which yield no effects, so convergence
        // must still hold.
        assert_replica_convergence(&cmds);
    }
}

#[test]
fn zunion_zinter_zdiff_read_variants() {
    let mut e = engine();
    run(&mut e, &["ZADD", "z1", "1", "a", "2", "b"]);
    run(&mut e, &["ZADD", "z2", "10", "b", "20", "c"]);
    assert_eq!(
        run(&mut e, &["ZUNION", "2", "z1", "z2"]),
        Frame::Array(vec![bulk("a"), bulk("b"), bulk("c")])
    );
    assert_eq!(
        run(&mut e, &["ZUNION", "2", "z1", "z2", "WITHSCORES"]),
        Frame::Array(vec![
            bulk("a"),
            bulk("1"),
            bulk("b"),
            bulk("12"),
            bulk("c"),
            bulk("20")
        ])
    );
    assert_eq!(
        run(&mut e, &["ZINTER", "2", "z1", "z2", "WITHSCORES"]),
        Frame::Array(vec![bulk("b"), bulk("12")])
    );
    assert_eq!(
        run(&mut e, &["ZDIFF", "2", "z1", "z2", "WITHSCORES"]),
        Frame::Array(vec![bulk("a"), bulk("1")])
    );
    // Weights/aggregate on the read forms.
    assert_eq!(
        run(
            &mut e,
            &[
                "ZUNION",
                "2",
                "z1",
                "z2",
                "WEIGHTS",
                "2",
                "1",
                "AGGREGATE",
                "MAX",
                "WITHSCORES"
            ]
        ),
        Frame::Array(vec![
            bulk("a"),
            bulk("2"),
            bulk("b"),
            bulk("10"),
            bulk("c"),
            bulk("20")
        ])
    );
    // Read variants are pure: no effects, nothing stored.
    let out = run_full(&mut e, &["ZUNION", "2", "z1", "z2"]);
    assert!(out.effects.is_empty());
    assert!(run(&mut e, &["ZDIFF", "0"]).is_error());
    assert!(run(&mut e, &["ZDIFF", "2", "z1"]).is_error());
    // Sets join at score 1 like the STORE variants.
    run(&mut e, &["SADD", "s", "x"]);
    assert_eq!(
        run(&mut e, &["ZUNION", "2", "z1", "s", "WITHSCORES"]),
        Frame::Array(vec![
            bulk("a"),
            bulk("1"),
            bulk("x"),
            bulk("1"),
            bulk("b"),
            bulk("2")
        ])
    );
}

#[test]
fn expired_key_reaped_by_active_cycle_is_gone_everywhere() {
    // Companion to active_expire_cycle_emits_dels: the replica applying the
    // DELs converges even though it never looked at its clock.
    let mut primary = Engine::new(Role::Primary);
    primary.set_time_ms(1_000);
    let mut replica = Engine::new(Role::Replica);
    let mut s = SessionState::new();
    let out = primary.execute(&mut s, &cmd(["SET", "k", "v", "PX", "50"]));
    for eff in &out.effects {
        replica.apply_effect(eff).unwrap();
    }
    primary.set_time_ms(10_000);
    for eff in primary.active_expire_cycle(16) {
        replica.apply_effect(&eff).unwrap();
    }
    assert_eq!(crate::rdb::dump(&primary.db), crate::rdb::dump(&replica.db));
    assert_eq!(replica.db.len(), 0);
}

#[test]
fn bitmap_setbit_getbit() {
    let mut e = engine();
    assert_eq!(run(&mut e, &["SETBIT", "b", "7", "1"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["GETBIT", "b", "7"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["GETBIT", "b", "6"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["GETBIT", "b", "999"]), Frame::Integer(0));
    // The string grew to exactly one byte: 0b00000001.
    assert_eq!(
        run(&mut e, &["GET", "b"]),
        Frame::Bulk(Bytes::from_static(b"\x01"))
    );
    // Flip it back, observing the old value.
    assert_eq!(run(&mut e, &["SETBIT", "b", "7", "0"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["GETBIT", "b", "7"]), Frame::Integer(0));
    // Offsets extend with zero padding.
    assert_eq!(run(&mut e, &["SETBIT", "b", "100", "1"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["STRLEN", "b"]), Frame::Integer(13));
    assert!(run(&mut e, &["SETBIT", "b", "-1", "1"]).is_error());
    assert!(run(&mut e, &["SETBIT", "b", "0", "2"]).is_error());
}

#[test]
fn bitmap_bitcount_ranges() {
    let mut e = engine();
    run(&mut e, &["SET", "s", "foobar"]);
    assert_eq!(run(&mut e, &["BITCOUNT", "s"]), Frame::Integer(26));
    assert_eq!(run(&mut e, &["BITCOUNT", "s", "0", "0"]), Frame::Integer(4));
    assert_eq!(run(&mut e, &["BITCOUNT", "s", "1", "1"]), Frame::Integer(6));
    assert_eq!(
        run(&mut e, &["BITCOUNT", "s", "-2", "-1"]),
        Frame::Integer(7)
    ); // "ar"
    assert_eq!(
        run(&mut e, &["BITCOUNT", "s", "5", "30", "BIT"]),
        Frame::Integer(17)
    );
    assert_eq!(run(&mut e, &["BITCOUNT", "missing"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["BITCOUNT", "s", "3", "1"]), Frame::Integer(0));
}

#[test]
fn bitmap_bitpos() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "\x00\x0f\x00"]);
    assert_eq!(run(&mut e, &["BITPOS", "k", "1"]), Frame::Integer(12));
    assert_eq!(run(&mut e, &["BITPOS", "k", "1", "2"]), Frame::Integer(-1));
    assert_eq!(run(&mut e, &["BITPOS", "k", "0"]), Frame::Integer(0));
    let mut s = SessionState::new();
    e.execute(
        &mut s,
        &[
            Bytes::from_static(b"SET"),
            Bytes::from_static(b"ones"),
            Bytes::from_static(b"\xff\xff"),
        ],
    );
    // All ones with no explicit end: first 0 is past the string.
    assert_eq!(run(&mut e, &["BITPOS", "ones", "0"]), Frame::Integer(16));
    // With an explicit end: no 0 inside the range.
    assert_eq!(
        run(&mut e, &["BITPOS", "ones", "0", "0", "1"]),
        Frame::Integer(-1)
    );
    assert_eq!(run(&mut e, &["BITPOS", "missing", "1"]), Frame::Integer(-1));
    assert_eq!(run(&mut e, &["BITPOS", "missing", "0"]), Frame::Integer(0));
}

#[test]
fn bitmap_bitop() {
    let mut e = engine();
    run(&mut e, &["SET", "a", "abc"]);
    run(&mut e, &["SET", "b", "ab"]);
    assert_eq!(
        run(&mut e, &["BITOP", "AND", "dst", "a", "b"]),
        Frame::Integer(3)
    );
    assert_eq!(
        run(&mut e, &["GET", "dst"]),
        Frame::Bulk(Bytes::from_static(b"ab\x00"))
    );
    assert_eq!(
        run(&mut e, &["BITOP", "OR", "dst", "a", "b"]),
        Frame::Integer(3)
    );
    assert_eq!(
        run(&mut e, &["BITOP", "XOR", "dst", "a", "a"]),
        Frame::Integer(3)
    );
    assert_eq!(
        run(&mut e, &["GET", "dst"]),
        Frame::Bulk(Bytes::from_static(b"\x00\x00\x00"))
    );
    assert_eq!(
        run(&mut e, &["BITOP", "NOT", "dst", "a"]),
        Frame::Integer(3)
    );
    assert!(run(&mut e, &["BITOP", "NOT", "dst", "a", "b"]).is_error());
    // Empty result deletes the destination.
    assert_eq!(
        run(&mut e, &["BITOP", "AND", "dst", "none1", "none2"]),
        Frame::Integer(0)
    );
    assert_eq!(run(&mut e, &["EXISTS", "dst"]), Frame::Integer(0));
    // Bitmaps replicate like any other string write.
    let out = run_full(&mut e, &["SETBIT", "repl", "3", "1"]);
    assert_eq!(out.effects.len(), 1);
    let mut replica = Engine::new(Role::Replica);
    run(&mut e, &["SET", "x", "go"]); // noise
    replica.apply_effect(&out.effects[0]).unwrap();
    let mut s = SessionState::new();
    assert_eq!(
        replica.execute(&mut s, &cmd(["GETBIT", "repl", "3"])).reply,
        Frame::Integer(1)
    );
}

// ---------------------------------------------------------------------------
// Stream consumer groups
// ---------------------------------------------------------------------------

#[test]
fn xgroup_create_and_destroy() {
    let mut e = engine();
    assert!(run(&mut e, &["XGROUP", "CREATE", "st", "g", "$"]).is_error()); // no MKSTREAM
    assert_eq!(
        run(&mut e, &["XGROUP", "CREATE", "st", "g", "$", "MKSTREAM"]),
        Frame::ok()
    );
    match run(&mut e, &["XGROUP", "CREATE", "st", "g", "$"]) {
        Frame::Error(msg) => assert!(msg.starts_with("BUSYGROUP"), "{msg}"),
        other => panic!("expected BUSYGROUP, got {other:?}"),
    }
    assert_eq!(
        run(&mut e, &["XGROUP", "DESTROY", "st", "g"]),
        Frame::Integer(1)
    );
    assert_eq!(
        run(&mut e, &["XGROUP", "DESTROY", "st", "g"]),
        Frame::Integer(0)
    );
}

#[test]
fn xreadgroup_delivers_and_tracks_pel() {
    let mut e = engine();
    run(&mut e, &["XADD", "st", "1-1", "n", "1"]);
    run(&mut e, &["XADD", "st", "2-1", "n", "2"]);
    run(&mut e, &["XGROUP", "CREATE", "st", "g", "0"]);
    // Consumer A reads both new messages.
    let reply = run(
        &mut e,
        &[
            "XREADGROUP",
            "GROUP",
            "g",
            "alice",
            "COUNT",
            "10",
            "STREAMS",
            "st",
            ">",
        ],
    );
    let streams = reply.as_array().unwrap();
    let entries = streams[0].as_array().unwrap()[1].as_array().unwrap();
    assert_eq!(entries.len(), 2);
    // Nothing new remains.
    assert_eq!(
        run(
            &mut e,
            &["XREADGROUP", "GROUP", "g", "alice", "STREAMS", "st", ">"]
        ),
        Frame::Null
    );
    // Pending summary: 2 entries, all alice's.
    let pending = run(&mut e, &["XPENDING", "st", "g"]);
    let summary = pending.as_array().unwrap();
    assert_eq!(summary[0], Frame::Integer(2));
    // History re-read (id 0): alice sees her own PEL.
    let hist = run(
        &mut e,
        &["XREADGROUP", "GROUP", "g", "alice", "STREAMS", "st", "0"],
    );
    let entries = hist.as_array().unwrap()[0].as_array().unwrap()[1]
        .as_array()
        .unwrap();
    assert_eq!(entries.len(), 2);
    // Bob's history is empty.
    let hist = run(
        &mut e,
        &["XREADGROUP", "GROUP", "g", "bob", "STREAMS", "st", "0"],
    );
    let entries = hist.as_array().unwrap()[0].as_array().unwrap()[1]
        .as_array()
        .unwrap();
    assert!(entries.is_empty());
    // ACK one; pending drops to 1.
    assert_eq!(run(&mut e, &["XACK", "st", "g", "1-1"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["XACK", "st", "g", "1-1"]), Frame::Integer(0));
    let pending = run(&mut e, &["XPENDING", "st", "g"]);
    assert_eq!(pending.as_array().unwrap()[0], Frame::Integer(1));
}

#[test]
fn xclaim_moves_ownership() {
    let mut e = engine();
    run(&mut e, &["XADD", "st", "1-1", "n", "1"]);
    run(&mut e, &["XGROUP", "CREATE", "st", "g", "0"]);
    run(
        &mut e,
        &["XREADGROUP", "GROUP", "g", "alice", "STREAMS", "st", ">"],
    );
    // Bob claims alice's pending entry (min-idle 0).
    let reply = run(&mut e, &["XCLAIM", "st", "g", "bob", "0", "1-1"]);
    assert_eq!(reply.as_array().unwrap().len(), 1);
    let rows = run(&mut e, &["XPENDING", "st", "g", "-", "+", "10"]);
    let row = rows.as_array().unwrap()[0].as_array().unwrap();
    assert_eq!(row[1], bulk("bob"));
    assert_eq!(row[3], Frame::Integer(2)); // delivery count bumped
                                           // JUSTID re-claim does not bump the count.
    run(
        &mut e,
        &["XCLAIM", "st", "g", "carol", "0", "1-1", "JUSTID"],
    );
    let rows = run(&mut e, &["XPENDING", "st", "g", "-", "+", "10"]);
    let row = rows.as_array().unwrap()[0].as_array().unwrap();
    assert_eq!(row[1], bulk("carol"));
    assert_eq!(row[3], Frame::Integer(2));
    // min-idle filtering: a fresh entry is not idle enough.
    assert_eq!(
        run(&mut e, &["XCLAIM", "st", "g", "dave", "999999", "1-1"]),
        Frame::Array(vec![])
    );
}

#[test]
fn xinfo_reports_groups() {
    let mut e = engine();
    run(&mut e, &["XADD", "st", "1-1", "n", "1"]);
    run(&mut e, &["XGROUP", "CREATE", "st", "g", "0"]);
    run(
        &mut e,
        &["XREADGROUP", "GROUP", "g", "alice", "STREAMS", "st", ">"],
    );
    let info = run(&mut e, &["XINFO", "GROUPS", "st"]);
    let groups = info.as_array().unwrap();
    assert_eq!(groups.len(), 1);
    let fields = groups[0].as_array().unwrap();
    assert_eq!(fields[1], bulk("g"));
    assert_eq!(fields[3], Frame::Integer(1)); // consumers
    assert_eq!(fields[5], Frame::Integer(1)); // pending
    let stream_info = run(&mut e, &["XINFO", "STREAM", "st"]);
    assert!(stream_info.as_array().unwrap().len() >= 8);
    assert!(run(&mut e, &["XINFO", "STREAM", "missing"]).is_error());
}

#[test]
fn xgroup_delconsumer_drops_pel() {
    let mut e = engine();
    run(&mut e, &["XADD", "st", "1-1", "n", "1"]);
    run(&mut e, &["XADD", "st", "2-1", "n", "2"]);
    run(&mut e, &["XGROUP", "CREATE", "st", "g", "0"]);
    run(
        &mut e,
        &["XREADGROUP", "GROUP", "g", "alice", "STREAMS", "st", ">"],
    );
    assert_eq!(
        run(&mut e, &["XGROUP", "DELCONSUMER", "st", "g", "alice"]),
        Frame::Integer(2)
    );
    let pending = run(&mut e, &["XPENDING", "st", "g"]);
    assert_eq!(pending.as_array().unwrap()[0], Frame::Integer(0));
}

#[test]
fn consumer_group_state_replicates_by_effect() {
    // The crux: XREADGROUP mutates group state non-idempotently; its
    // effects (XCLAIM+SETID) must reproduce that state exactly on replicas.
    let mut primary = Engine::new(Role::Primary);
    primary.set_time_ms(5_000);
    let mut replica = Engine::new(Role::Replica);
    let mut s = SessionState::new();
    let feed = |p: &mut Engine, r: &mut Engine, c: &[Bytes]| {
        let out = {
            let mut sess = SessionState::new();
            p.execute(&mut sess, c)
        };
        assert!(!out.reply.is_error(), "{c:?} -> {:?}", out.reply);
        for eff in &out.effects {
            r.apply_effect(eff).unwrap();
        }
        out
    };
    let _ = &mut s;
    feed(
        &mut primary,
        &mut replica,
        &cmd(["XADD", "st", "1-1", "n", "1"]),
    );
    feed(
        &mut primary,
        &mut replica,
        &cmd(["XADD", "st", "2-1", "n", "2"]),
    );
    feed(
        &mut primary,
        &mut replica,
        &cmd(["XGROUP", "CREATE", "st", "g", "0"]),
    );
    feed(
        &mut primary,
        &mut replica,
        &cmd(["XREADGROUP", "GROUP", "g", "alice", "STREAMS", "st", ">"]),
    );
    feed(&mut primary, &mut replica, &cmd(["XACK", "st", "g", "1-1"]));
    feed(
        &mut primary,
        &mut replica,
        &cmd(["XCLAIM", "st", "g", "bob", "0", "2-1"]),
    );
    feed(
        &mut primary,
        &mut replica,
        &cmd(["XGROUP", "CREATECONSUMER", "st", "g", "carol"]),
    );
    assert_eq!(
        crate::rdb::dump(&primary.db),
        crate::rdb::dump(&replica.db),
        "group state diverged between primary and replica"
    );
    // And snapshots preserve the whole thing.
    let snap = crate::rdb::dump(&primary.db);
    let restored = crate::rdb::load(&snap).unwrap();
    assert_eq!(crate::rdb::dump(&restored), snap);
}

#[test]
fn xreadgroup_noack_advances_without_pel() {
    let mut e = engine();
    run(&mut e, &["XADD", "st", "1-1", "n", "1"]);
    run(&mut e, &["XGROUP", "CREATE", "st", "g", "0"]);
    let out = run_full(
        &mut e,
        &[
            "XREADGROUP",
            "GROUP",
            "g",
            "a",
            "NOACK",
            "STREAMS",
            "st",
            ">",
        ],
    );
    assert!(!out.reply.is_error());
    // No PEL entry, cursor advanced.
    let pending = run(&mut e, &["XPENDING", "st", "g"]);
    assert_eq!(pending.as_array().unwrap()[0], Frame::Integer(0));
    assert_eq!(
        run(
            &mut e,
            &["XREADGROUP", "GROUP", "g", "a", "STREAMS", "st", ">"]
        ),
        Frame::Null
    );
    // Effects: just the SETID (no claim).
    assert_eq!(out.effects.len(), 1);
    assert_eq!(out.effects[0][1], Bytes::from_static(b"SETID"));
}

#[test]
fn scan_type_filter_and_object_encoding() {
    let mut e = engine();
    run(&mut e, &["SET", "s1", "text"]);
    run(&mut e, &["SET", "n1", "42"]);
    run(&mut e, &["RPUSH", "l1", "x"]);
    run(&mut e, &["ZADD", "z1", "1", "m"]);
    let reply = run(&mut e, &["SCAN", "0", "COUNT", "100", "TYPE", "list"]);
    let keys = reply.as_array().unwrap()[1].as_array().unwrap();
    assert_eq!(keys, &[bulk("l1")]);
    let reply = run(&mut e, &["SCAN", "0", "COUNT", "100", "TYPE", "string"]);
    assert_eq!(reply.as_array().unwrap()[1].as_array().unwrap().len(), 2);

    assert_eq!(run(&mut e, &["OBJECT", "ENCODING", "n1"]), bulk("int"));
    assert_eq!(run(&mut e, &["OBJECT", "ENCODING", "s1"]), bulk("embstr"));
    run(&mut e, &["SET", "big", &"x".repeat(100)]);
    assert_eq!(run(&mut e, &["OBJECT", "ENCODING", "big"]), bulk("raw"));
    assert_eq!(run(&mut e, &["OBJECT", "ENCODING", "z1"]), bulk("skiplist"));
    assert_eq!(
        run(&mut e, &["OBJECT", "REFCOUNT", "s1"]),
        Frame::Integer(1)
    );
    assert!(run(&mut e, &["OBJECT", "ENCODING", "missing"]).is_error());
}

// --- cursor & cast audit (SCAN family, bitmaps, lists, hashes) ------------

fn err_text(f: &Frame) -> String {
    match f {
        Frame::Error(e) => e.to_string(),
        other => panic!("expected error frame, got {other:?}"),
    }
}

#[test]
fn scan_family_rejects_negative_cursor() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "v"]);
    run(&mut e, &["HSET", "h", "f", "v"]);
    run(&mut e, &["SADD", "s", "m"]);
    run(&mut e, &["ZADD", "z", "1", "m"]);
    // A negative cursor must not wrap into a huge valid u64 cursor.
    for parts in [
        vec!["SCAN", "-1"],
        vec!["HSCAN", "h", "-1"],
        vec!["SSCAN", "s", "-1"],
        vec!["ZSCAN", "z", "-9223372036854775808"],
        vec!["SCAN", "notanumber"],
    ] {
        assert_eq!(
            err_text(&run(&mut e, &parts)),
            "ERR invalid cursor",
            "for {parts:?}"
        );
    }
    // Valid unsigned cursors still work, including ones above i64::MAX.
    let reply = run(&mut e, &["SCAN", "0", "COUNT", "100"]);
    assert_eq!(reply.as_array().unwrap()[1].as_array().unwrap().len(), 4);
    let reply = run(&mut e, &["SCAN", "18446744073709551615"]);
    assert!(reply.as_array().is_some());
}

#[test]
fn bitpos_honors_bit_unit_ranges() {
    let mut e = engine();
    // Value 0b0001_0000 0b0000_0000: only bit 3 is set.
    run(&mut e, &["SETBIT", "k", "3", "1"]);
    run(&mut e, &["SETBIT", "k", "15", "0"]);
    // BIT-unit range [1,3] contains bit 3; the same numbers as a BYTE
    // range (bytes 1..3 = bits 8..31) do not. Pre-fix the unit argument
    // was silently ignored and this returned -1.
    assert_eq!(
        run(&mut e, &["BITPOS", "k", "1", "1", "3", "BIT"]),
        Frame::Integer(3)
    );
    assert_eq!(
        run(&mut e, &["BITPOS", "k", "1", "1", "3", "BYTE"]),
        Frame::Integer(-1)
    );
    assert_eq!(
        run(&mut e, &["BITPOS", "k", "1", "4", "-1", "BIT"]),
        Frame::Integer(-1)
    );
    assert_eq!(
        run(&mut e, &["BITPOS", "k", "0", "3", "8", "BIT"]),
        Frame::Integer(4)
    );
    // Bad unit / trailing garbage are syntax errors.
    assert!(run(&mut e, &["BITPOS", "k", "1", "0", "-1", "NIBBLE"]).is_error());
    assert!(run(&mut e, &["BITPOS", "k", "1", "0", "-1", "BIT", "x"]).is_error());
}

#[test]
fn bit_range_start_past_end_is_empty() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "ab"]); // 2 bytes, 6 set bits
                                      // A start beyond the value must yield an empty range, not clamp back
                                      // onto the last byte (pre-fix this counted byte 1 / found bit 8).
    assert_eq!(
        run(&mut e, &["BITCOUNT", "k", "5", "10"]),
        Frame::Integer(0)
    );
    assert_eq!(
        run(&mut e, &["BITPOS", "k", "1", "5", "10"]),
        Frame::Integer(-1)
    );
    assert_eq!(
        run(&mut e, &["BITCOUNT", "k", "30", "40", "BIT"]),
        Frame::Integer(0)
    );
    // Both-negative inverted ranges are empty even when both clamp to 0.
    assert_eq!(
        run(&mut e, &["BITCOUNT", "k", "-1", "-10"]),
        Frame::Integer(0)
    );
    assert_eq!(
        run(&mut e, &["BITCOUNT", "k", "-100", "-200"]),
        Frame::Integer(0)
    );
}

#[test]
fn lpop_explicit_zero_count_returns_empty_array() {
    let mut e = engine();
    run(&mut e, &["RPUSH", "l", "a", "b"]);
    // Existing key + count 0: empty array, nothing popped (pre-fix: nil).
    assert_eq!(run(&mut e, &["LPOP", "l", "0"]), Frame::Array(vec![]));
    assert_eq!(run(&mut e, &["RPOP", "l", "0"]), Frame::Array(vec![]));
    assert_eq!(run(&mut e, &["LLEN", "l"]), Frame::Integer(2));
    // Missing key with a count stays nil; negative counts stay errors.
    assert_eq!(run(&mut e, &["LPOP", "missing", "0"]), Frame::Null);
    assert!(run(&mut e, &["LPOP", "l", "-1"]).is_error());
}

/// Reference model for the documented BITCOUNT/BITPOS range semantics:
/// negative offsets count back from the total, underflow clamps to 0,
/// overflow clamps the END only, start past end is empty.
fn model_bit_range(start: i64, end: i64, total: i64) -> Option<(usize, usize)> {
    if total == 0 || (start < 0 && end < 0 && start > end) {
        return None;
    }
    let lo = if start < 0 {
        (total + start).max(0)
    } else {
        start
    };
    let hi = if end < 0 {
        (total + end).max(0)
    } else {
        end.min(total - 1)
    };
    if lo > hi {
        None
    } else {
        Some((lo as usize, hi as usize))
    }
}

fn bits_of(s: &[u8]) -> Vec<u8> {
    s.iter()
        .flat_map(|b| (0..8u8).map(move |i| (b >> (7 - i)) & 1))
        .collect()
}

fn set_raw_string(e: &mut Engine, key: &str, bytes: &[u8]) {
    e.db.set_value(
        Bytes::copy_from_slice(key.as_bytes()),
        crate::value::Value::Str(Bytes::copy_from_slice(bytes)),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn prop_bitcount_matches_bit_model(
        bytes in proptest::collection::vec(any::<u8>(), 0..10),
        start in -90i64..90,
        end in -90i64..90,
        bit_unit in any::<bool>(),
    ) {
        let mut e = engine();
        set_raw_string(&mut e, "k", &bytes);
        let bits = bits_of(&bytes);
        let total = if bit_unit { bits.len() } else { bytes.len() } as i64;
        let expect = match model_bit_range(start, end, total) {
            None => 0,
            Some((lo, hi)) => {
                let (fb, lb) = if bit_unit { (lo, hi) } else { (lo * 8, hi * 8 + 7) };
                bits[fb..=lb].iter().map(|&b| b as i64).sum()
            }
        };
        let unit = if bit_unit { "BIT" } else { "BYTE" };
        let got = run(&mut e, &["BITCOUNT", "k", &start.to_string(), &end.to_string(), unit]);
        prop_assert_eq!(got, Frame::Integer(expect));
    }

    #[test]
    fn prop_bitpos_matches_bit_model(
        bytes in proptest::collection::vec(any::<u8>(), 0..10),
        target in 0u8..2,
        start in -90i64..90,
        end in -90i64..90,
        bit_unit in any::<bool>(),
    ) {
        let mut e = engine();
        set_raw_string(&mut e, "k", &bytes);
        let bits = bits_of(&bytes);
        let total = if bit_unit { bits.len() } else { bytes.len() } as i64;
        let expect = match model_bit_range(start, end, total) {
            None => -1,
            Some((lo, hi)) => {
                let (fb, lb) = if bit_unit { (lo, hi) } else { (lo * 8, hi * 8 + 7) };
                bits[fb..=lb]
                    .iter()
                    .position(|&b| b == target)
                    .map(|p| (fb + p) as i64)
                    .unwrap_or(-1)
            }
        };
        let unit = if bit_unit { "BIT" } else { "BYTE" };
        let got = run(
            &mut e,
            &["BITPOS", "k", &target.to_string(), &start.to_string(), &end.to_string(), unit],
        );
        prop_assert_eq!(got, Frame::Integer(expect));
    }

    #[test]
    fn prop_list_index_casts_match_model(
        items in proptest::collection::vec("[a-c]{1,2}", 1..8),
        i in -12i64..12,
        j in -12i64..12,
        n in 0i64..7,
    ) {
        let mut e = engine();
        let mut parts = vec!["RPUSH".to_string(), "l".to_string()];
        parts.extend(items.iter().cloned());
        let refs: Vec<&str> = parts.iter().map(|s| s.as_str()).collect();
        run(&mut e, &refs);
        let len = items.len() as i64;

        // LRANGE: normalize both ends, clamp, empty when inverted.
        let lo = if i < 0 { (len + i).max(0) } else { i };
        let hi = if j < 0 { len + j } else { j.min(len - 1) };
        let expect: Vec<Frame> = if lo > hi || hi < 0 || lo >= len {
            vec![]
        } else {
            items[lo as usize..=hi as usize]
                .iter()
                .map(|s| bulk(s))
                .collect()
        };
        let got = run(&mut e, &["LRANGE", "l", &i.to_string(), &j.to_string()]);
        prop_assert_eq!(got, Frame::Array(expect));

        // LINDEX: single normalized position or nil.
        let pos = if i < 0 { len + i } else { i };
        let expect = if (0..len).contains(&pos) {
            bulk(&items[pos as usize])
        } else {
            Frame::Null
        };
        prop_assert_eq!(run(&mut e, &["LINDEX", "l", &i.to_string()]), expect);

        // LPOP with a count pops min(n, len) from the front; count 0 is
        // an empty array and mutates nothing.
        let popped = run(&mut e, &["LPOP", "l", &n.to_string()]);
        let take = n.min(len) as usize;
        let expect: Vec<Frame> = items[..take].iter().map(|s| bulk(s)).collect();
        prop_assert_eq!(popped, Frame::Array(expect));
        let left = run(&mut e, &["LLEN", "l"]);
        prop_assert_eq!(left, Frame::Integer(len - take as i64));
    }

    #[test]
    fn prop_hrandfield_counts_match_semantics(
        fields in proptest::collection::vec("[a-f]{1,2}", 1..7),
        n in -9i64..9,
    ) {
        let mut e = engine();
        let mut distinct = fields.clone();
        distinct.sort();
        distinct.dedup();
        for f in &distinct {
            run(&mut e, &["HSET", "h", f, "v"]);
        }
        let reply = run(&mut e, &["HRANDFIELD", "h", &n.to_string()]);
        let got = reply.as_array().expect("array reply").to_vec();
        if n >= 0 {
            // Positive count: min(n, size) DISTINCT existing fields.
            prop_assert_eq!(got.len() as i64, n.min(distinct.len() as i64));
            let mut seen = std::collections::HashSet::new();
            for f in &got {
                prop_assert!(seen.insert(format!("{f:?}")), "duplicate field in {got:?}");
            }
        } else {
            // Negative count: exactly |n| fields, repeats allowed.
            prop_assert_eq!(got.len() as i64, -n);
        }
        for f in &got {
            let name = match f {
                Frame::Bulk(b) => String::from_utf8_lossy(b).to_string(),
                other => panic!("expected bulk field, got {other:?}"),
            };
            prop_assert!(distinct.contains(&name), "unknown field {name}");
        }
    }
}

// ---------------------------------------------------------------------------
// Boundary-offset regressions (ISSUE 4): i64::MAX-adjacent offsets,
// proto-max-bulk-len caps, and overflow-checked expire conversion.
// ---------------------------------------------------------------------------

#[test]
fn setrange_huge_offsets_error_instead_of_allocating() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "abc"]);
    // i64::MAX-adjacent offset: the checked end position must produce a
    // clean error (previously it wrapped / attempted a huge zero-fill).
    let max = i64::MAX.to_string();
    match run(&mut e, &["SETRANGE", "k", &max, "x"]) {
        Frame::Error(msg) => assert!(msg.contains("proto-max-bulk-len"), "{msg}"),
        other => panic!("expected error, got {other:?}"),
    }
    // First offset past the 512 MB cap (end = cap + 1 with a 1-byte patch).
    let over = (512u64 * 1024 * 1024).to_string();
    assert!(run(&mut e, &["SETRANGE", "k", &over, "x"]).is_error());
    // The value is untouched and negative offsets still error.
    assert_eq!(run(&mut e, &["GET", "k"]), bulk("abc"));
    assert!(run(&mut e, &["SETRANGE", "k", "-1", "x"]).is_error());
}

#[test]
fn getrange_i64_extremes_clamp_cleanly() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "hello"]);
    // Regression: `len + i64::MIN` used to overflow in debug builds.
    let min = i64::MIN.to_string();
    assert_eq!(run(&mut e, &["GETRANGE", "k", &min, "-1"]), bulk("hello"));
    assert_eq!(run(&mut e, &["GETRANGE", "k", &min, &min]), bulk("h"));
    let max = i64::MAX.to_string();
    assert_eq!(run(&mut e, &["GETRANGE", "k", "0", &max]), bulk("hello"));
    assert_eq!(run(&mut e, &["GETRANGE", "k", &max, &max]), bulk(""));
}

#[test]
fn setbit_getbit_offsets_capped_at_redis_limit() {
    let mut e = engine();
    // 2^32 is the first illegal bit offset: a 512 MB string holds exactly
    // 2^32 bits. (Regression: a stray x8 in the cap let SETBIT zero-fill
    // a 4 GB buffer.)
    let first_bad = (1u64 << 32).to_string();
    assert!(run(&mut e, &["SETBIT", "k", &first_bad, "1"]).is_error());
    assert!(run(&mut e, &["GETBIT", "k", &first_bad]).is_error());
    let max = i64::MAX.to_string();
    assert!(run(&mut e, &["SETBIT", "k", &max, "1"]).is_error());
    assert!(run(&mut e, &["SETBIT", "k", "-1", "1"]).is_error());
    // Nothing was created by the rejected writes; in-range offsets work.
    assert_eq!(run(&mut e, &["EXISTS", "k"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["SETBIT", "k", "100", "1"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["GETBIT", "k", "100"]), Frame::Integer(1));
    assert_eq!(run(&mut e, &["STRLEN", "k"]), Frame::Integer(13));
}

#[test]
fn expire_overflow_is_error_delete_on_negative_still_works() {
    let mut e = engine();
    run(&mut e, &["SET", "k", "v"]);
    // Seconds beyond i64::MAX / 1000 cannot scale to milliseconds: a typed
    // error (previously a silent saturating clamp), key and TTL untouched.
    let over = (i64::MAX / 1000 + 1).to_string();
    match run(&mut e, &["EXPIRE", "k", &over]) {
        Frame::Error(msg) => {
            assert!(msg.contains("invalid expire time"), "{msg}");
            assert!(msg.contains("expire"), "{msg}");
        }
        other => panic!("expected error, got {other:?}"),
    }
    assert_eq!(run(&mut e, &["GET", "k"]), bulk("v"));
    assert_eq!(run(&mut e, &["TTL", "k"]), Frame::Integer(-1));
    // Negation-side overflow: i64::MIN seconds cannot scale to ms either.
    let min = i64::MIN.to_string();
    assert!(run(&mut e, &["EXPIRE", "k", &min]).is_error());
    assert!(run(&mut e, &["EXPIREAT", "k", &over]).is_error());
    assert_eq!(run(&mut e, &["GET", "k"]), bulk("v"));
    // Redis semantics preserved: a representable negative deletes the key,
    // replicated as a deterministic DEL.
    let out = run_full(&mut e, &["EXPIRE", "k", "-1"]);
    assert_eq!(out.reply, Frame::Integer(1));
    assert_eq!(out.effects, vec![cmd(["DEL", "k"])]);
    assert_eq!(run(&mut e, &["EXISTS", "k"]), Frame::Integer(0));
    // PEXPIREAT at i64::MAX is representable: accepted with the identical
    // absolute record propagated to replicas.
    run(&mut e, &["SET", "k2", "v"]);
    let max = i64::MAX.to_string();
    let out = run_full(&mut e, &["PEXPIREAT", "k2", &max]);
    assert_eq!(out.reply, Frame::Integer(1));
    assert_eq!(out.effects, vec![cmd(["PEXPIREAT", "k2", &max])]);
}

#[test]
fn expire_delete_on_negative_converges_on_replica() {
    assert_replica_convergence(&[cmd(["SET", "k", "v"]), cmd(["EXPIRE", "k", "-5"])]);
    assert_replica_convergence(&[
        cmd(["SET", "k", "v"]),
        cmd(["PEXPIREAT", "k", &i64::MAX.to_string()]),
    ]);
}

#[test]
fn slowlog_and_latency_engine_fallbacks() {
    // The node layer intercepts these with real data; the standalone engine
    // must still answer the documented shapes.
    let mut e = engine();
    assert_eq!(run(&mut e, &["SLOWLOG", "GET"]), Frame::Array(vec![]));
    assert_eq!(run(&mut e, &["SLOWLOG", "LEN"]), Frame::Integer(0));
    assert_eq!(run(&mut e, &["SLOWLOG", "RESET"]), Frame::ok());
    assert!(run(&mut e, &["SLOWLOG", "NOPE"]).is_error());
    assert!(run(&mut e, &["SLOWLOG"]).is_error());
    assert_eq!(run(&mut e, &["LATENCY", "HISTOGRAM"]), Frame::Map(vec![]));
    assert_eq!(run(&mut e, &["LATENCY", "RESET"]), Frame::Integer(0));
    assert!(run(&mut e, &["LATENCY", "NOPE"]).is_error());
}
