//! List commands.

use super::*;
use crate::value::Value;
use std::collections::VecDeque;

fn read_list<'a>(e: &'a Engine, key: &[u8]) -> Result<Option<&'a VecDeque<Bytes>>, ExecOutcome> {
    match e.db.lookup(key, e.now()) {
        Some(Value::List(l)) => Ok(Some(l)),
        Some(_) => Err(wrongtype()),
        None => Ok(None),
    }
}

fn list_mut<'a>(e: &'a mut Engine, key: &Bytes) -> Result<&'a mut VecDeque<Bytes>, ExecOutcome> {
    let now = e.now();
    if let Some(v) = e.db.lookup(key, now) {
        if !matches!(v, Value::List(_)) {
            return Err(wrongtype());
        }
    }
    match e
        .db
        .entry_or_insert_with(key, now, || Value::List(VecDeque::new()))
    {
        Value::List(l) => Ok(l),
        _ => Err(wrongtype()),
    }
}

/// Normalizes a possibly-negative index against a length; may be out of
/// range.
fn norm_index(i: i64, len: usize) -> i64 {
    if i < 0 {
        len as i64 + i
    } else {
        i
    }
}

pub(super) fn push(e: &mut Engine, a: &[Bytes], left: bool, only_existing: bool) -> CmdResult {
    let key = a[1].clone();
    if only_existing && read_list(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let l = list_mut(e, &key)?;
    for item in &a[2..] {
        if left {
            l.push_front(item.clone());
        } else {
            l.push_back(item.clone());
        }
    }
    let len = l.len() as i64;
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::Integer(len), a, vec![key]))
}

pub(super) fn pop(e: &mut Engine, a: &[Bytes], left: bool) -> CmdResult {
    let explicit_count = a.len() == 3;
    let count = if explicit_count {
        let n = p_i64(&a[2])?;
        if n < 0 {
            return Err(ExecOutcome::error(
                "value is out of range, must be positive",
            ));
        }
        n as usize
    } else {
        1
    };
    let key = a[1].clone();
    if read_list(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Null));
    }
    // `LPOP key 0` on an existing key: Redis replies with an empty array
    // (only a missing key yields nil), and nothing is mutated.
    if explicit_count && count == 0 {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    }
    let now = e.now();
    let Some(Value::List(l)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Null));
    };
    let mut popped = Vec::new();
    for _ in 0..count {
        let item = if left { l.pop_front() } else { l.pop_back() };
        match item {
            Some(v) => popped.push(v),
            None => break,
        }
    }
    if popped.is_empty() {
        return Ok(ExecOutcome::read(Frame::Null));
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    // Deterministic: replicate the pop with its realized count.
    let name: &'static [u8] = if left { b"LPOP" } else { b"RPOP" };
    let eff = vec![
        Bytes::from_static(name),
        key.clone(),
        Bytes::from(popped.len().to_string()),
    ];
    let reply = if explicit_count {
        Frame::Array(popped.into_iter().map(Frame::Bulk).collect())
    } else {
        // popped is non-empty (checked above); Null mirrors the empty case.
        popped.into_iter().next().map_or(Frame::Null, Frame::Bulk)
    };
    Ok(effect_write(reply, vec![eff], vec![key]))
}

pub(super) fn llen(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let n = read_list(e, &a[1])?.map_or(0, |l| l.len());
    Ok(ExecOutcome::read(Frame::Integer(n as i64)))
}

pub(super) fn lrange(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let (start, stop) = (p_i64(&a[2])?, p_i64(&a[3])?);
    let Some(l) = read_list(e, &a[1])? else {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    };
    let len = l.len();
    let start = norm_index(start, len).max(0) as usize;
    let stop = norm_index(stop, len);
    if stop < 0 || start >= len || start as i64 > stop {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    }
    let stop = (stop as usize).min(len - 1);
    let out = l
        .iter()
        .skip(start)
        .take(stop - start + 1)
        .cloned()
        .map(Frame::Bulk)
        .collect();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn lindex(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let idx = p_i64(&a[2])?;
    let Some(l) = read_list(e, &a[1])? else {
        return Ok(ExecOutcome::read(Frame::Null));
    };
    let i = norm_index(idx, l.len());
    if i < 0 || i as usize >= l.len() {
        return Ok(ExecOutcome::read(Frame::Null));
    }
    Ok(ExecOutcome::read(Frame::Bulk(l[i as usize].clone())))
}

pub(super) fn lset(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let idx = p_i64(&a[2])?;
    let key = a[1].clone();
    if read_list(e, &key)?.is_none() {
        return Err(ExecOutcome::error("no such key"));
    }
    let now = e.now();
    let Some(Value::List(l)) = e.db.lookup_mut(&key, now) else {
        return Err(ExecOutcome::error("no such key"));
    };
    let i = norm_index(idx, l.len());
    if i < 0 || i as usize >= l.len() {
        return Err(ExecOutcome::error("index out of range"));
    }
    l[i as usize] = a[3].clone();
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::ok(), a, vec![key]))
}

pub(super) fn linsert(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let before = match upper(&a[2]).as_str() {
        "BEFORE" => true,
        "AFTER" => false,
        _ => return Err(ExecOutcome::error("syntax error")),
    };
    let key = a[1].clone();
    if read_list(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let now = e.now();
    let Some(Value::List(l)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let Some(pos) = l.iter().position(|x| x == &a[3]) else {
        return Ok(ExecOutcome::read(Frame::Integer(-1)));
    };
    let insert_at = if before { pos } else { pos + 1 };
    l.insert(insert_at, a[4].clone());
    let len = l.len() as i64;
    e.db.signal_modified(&key);
    Ok(verbatim_write(Frame::Integer(len), a, vec![key]))
}

pub(super) fn lrem(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let count = p_i64(&a[2])?;
    let key = a[1].clone();
    if read_list(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let now = e.now();
    let Some(Value::List(l)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let target = &a[3];
    let mut removed = 0i64;
    if count >= 0 {
        let limit = if count == 0 {
            usize::MAX
        } else {
            count as usize
        };
        let mut i = 0;
        while i < l.len() && (removed as usize) < limit {
            if &l[i] == target {
                l.remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
    } else {
        let limit = count.unsigned_abs() as usize;
        let mut i = l.len();
        while i > 0 && (removed as usize) < limit {
            i -= 1;
            if &l[i] == target {
                l.remove(i);
                removed += 1;
            }
        }
    }
    if removed == 0 {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    Ok(verbatim_write(Frame::Integer(removed), a, vec![key]))
}

pub(super) fn ltrim(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let (start, stop) = (p_i64(&a[2])?, p_i64(&a[3])?);
    let key = a[1].clone();
    if read_list(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::ok()));
    }
    let now = e.now();
    let Some(Value::List(l)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::ok()));
    };
    let len = l.len();
    let start = norm_index(start, len).max(0) as usize;
    let stop = norm_index(stop, len);
    if stop < 0 || start >= len || start as i64 > stop {
        l.clear();
    } else {
        let stop = (stop as usize).min(len - 1);
        l.drain(stop + 1..);
        l.drain(..start);
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    Ok(verbatim_write(Frame::ok(), a, vec![key]))
}

/// `RPOPLPUSH src dst` — legacy alias for `LMOVE src dst RIGHT LEFT`.
pub(super) fn lmove_compat(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let args = vec![
        Bytes::from_static(b"LMOVE"),
        a[1].clone(),
        a[2].clone(),
        Bytes::from_static(b"RIGHT"),
        Bytes::from_static(b"LEFT"),
    ];
    lmove(e, &args)
}

pub(super) fn lmove(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let from_left = match upper(&a[3]).as_str() {
        "LEFT" => true,
        "RIGHT" => false,
        _ => return Err(ExecOutcome::error("syntax error")),
    };
    let to_left = match upper(&a[4]).as_str() {
        "LEFT" => true,
        "RIGHT" => false,
        _ => return Err(ExecOutcome::error("syntax error")),
    };
    let (src, dst) = (a[1].clone(), a[2].clone());
    if read_list(e, &src)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Null));
    }
    // Type-check destination before mutating the source.
    if let Some(v) = e.db.lookup(&dst, e.now()) {
        if !matches!(v, Value::List(_)) {
            return Err(wrongtype());
        }
    }
    let now = e.now();
    let item = {
        let Some(Value::List(l)) = e.db.lookup_mut(&src, now) else {
            return Ok(ExecOutcome::read(Frame::Null));
        };
        let item = if from_left {
            l.pop_front()
        } else {
            l.pop_back()
        };
        let Some(item) = item else {
            return Ok(ExecOutcome::read(Frame::Null));
        };
        item
    };
    e.db.signal_modified(&src);
    e.db.remove_if_empty(&src);
    let d = list_mut(e, &dst)?;
    if to_left {
        d.push_front(item.clone());
    } else {
        d.push_back(item.clone());
    }
    e.db.signal_modified(&dst);
    // The realized move is deterministic given list state; replicate LMOVE
    // verbatim (replicas pop the same element).
    let eff = vec![
        Bytes::from_static(b"LMOVE"),
        src.clone(),
        dst.clone(),
        a[3].clone(),
        a[4].clone(),
    ];
    Ok(effect_write(Frame::Bulk(item), vec![eff], vec![src, dst]))
}

pub(super) fn lpos(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let mut rank = 1i64;
    let mut count: Option<usize> = None;
    let mut i = 3;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "RANK" => {
                rank = p_i64(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?;
                if rank == 0 {
                    return Err(ExecOutcome::error("RANK can't be zero"));
                }
                i += 2;
            }
            "COUNT" => {
                let n = p_i64(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?;
                if n < 0 {
                    return Err(ExecOutcome::error("COUNT can't be negative"));
                }
                count = Some(if n == 0 { usize::MAX } else { n as usize });
                i += 2;
            }
            "MAXLEN" => i += 2,
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let Some(l) = read_list(e, &a[1])? else {
        return Ok(ExecOutcome::read(match count {
            Some(_) => Frame::Array(vec![]),
            None => Frame::Null,
        }));
    };
    let target = &a[2];
    let mut matches: Vec<i64> = Vec::new();
    let want = count.unwrap_or(1);
    if rank > 0 {
        let mut skip = rank - 1;
        for (idx, item) in l.iter().enumerate() {
            if item == target {
                if skip > 0 {
                    skip -= 1;
                    continue;
                }
                matches.push(idx as i64);
                if matches.len() >= want {
                    break;
                }
            }
        }
    } else {
        let mut skip = -rank - 1;
        for (idx, item) in l.iter().enumerate().rev() {
            if item == target {
                if skip > 0 {
                    skip -= 1;
                    continue;
                }
                matches.push(idx as i64);
                if matches.len() >= want {
                    break;
                }
            }
        }
    }
    let reply = match count {
        Some(_) => Frame::Array(matches.into_iter().map(Frame::Integer).collect()),
        None => match matches.first() {
            Some(&idx) => Frame::Integer(idx),
            None => Frame::Null,
        },
    };
    Ok(ExecOutcome::read(reply))
}
