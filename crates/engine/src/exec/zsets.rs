//! Sorted-set commands.

use super::*;
use crate::ds::zset::{LexBound, ScoreBound, ZSet};
use crate::value::Value;
use rand::seq::SliceRandom;
use rand::Rng;

fn read_zset<'a>(e: &'a Engine, key: &[u8]) -> Result<Option<&'a ZSet>, ExecOutcome> {
    match e.db.lookup(key, e.now()) {
        Some(Value::ZSet(z)) => Ok(Some(z)),
        Some(_) => Err(wrongtype()),
        None => Ok(None),
    }
}

fn zset_mut<'a>(e: &'a mut Engine, key: &Bytes) -> Result<&'a mut ZSet, ExecOutcome> {
    let now = e.now();
    if let Some(v) = e.db.lookup(key, now) {
        if !matches!(v, Value::ZSet(_)) {
            return Err(wrongtype());
        }
    }
    match e
        .db
        .entry_or_insert_with(key, now, || Value::ZSet(ZSet::new()))
    {
        Value::ZSet(z) => Ok(z),
        _ => Err(wrongtype()),
    }
}

fn parse_score_bound(arg: &[u8]) -> Result<ScoreBound, ExecOutcome> {
    let s =
        std::str::from_utf8(arg).map_err(|_| ExecOutcome::error("min or max is not a float"))?;
    match s {
        "-inf" | "-Inf" => return Ok(ScoreBound::NegInf),
        "+inf" | "inf" | "+Inf" | "Inf" => return Ok(ScoreBound::PosInf),
        _ => {}
    }
    if let Some(rest) = s.strip_prefix('(') {
        let v: f64 = rest
            .parse()
            .map_err(|_| ExecOutcome::error("min or max is not a float"))?;
        return Ok(ScoreBound::Excl(v));
    }
    let v: f64 = s
        .parse()
        .map_err(|_| ExecOutcome::error("min or max is not a float"))?;
    Ok(ScoreBound::Incl(v))
}

fn parse_lex_bound(arg: &[u8]) -> Result<LexBound, ExecOutcome> {
    match arg {
        b"-" => Ok(LexBound::NegInf),
        b"+" => Ok(LexBound::PosInf),
        _ if arg.starts_with(b"[") => Ok(LexBound::Incl(Bytes::copy_from_slice(&arg[1..]))),
        _ if arg.starts_with(b"(") => Ok(LexBound::Excl(Bytes::copy_from_slice(&arg[1..]))),
        _ => Err(ExecOutcome::error("min or max not valid string range item")),
    }
}

fn pairs_to_frames(pairs: Vec<(Bytes, f64)>, withscores: bool) -> Frame {
    let mut out = Vec::with_capacity(pairs.len() * if withscores { 2 } else { 1 });
    for (m, s) in pairs {
        out.push(Frame::Bulk(m));
        if withscores {
            out.push(Frame::Bulk(Bytes::from(fmt_f64(s))));
        }
    }
    Frame::Array(out)
}

/// `ZADD key [NX|XX] [GT|LT] [CH] [INCR] score member ...`
pub(super) fn zadd(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let mut nx = false;
    let mut xx = false;
    let mut gt = false;
    let mut lt = false;
    let mut ch = false;
    let mut incr = false;
    let mut i = 2;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "NX" => nx = true,
            "XX" => xx = true,
            "GT" => gt = true,
            "LT" => lt = true,
            "CH" => ch = true,
            "INCR" => incr = true,
            _ => break,
        }
        i += 1;
    }
    if nx && (xx || gt || lt) {
        return Err(ExecOutcome::error(
            "GT, LT, and/or NX options at the same time are not compatible",
        ));
    }
    let rest = &a[i..];
    if rest.is_empty() || !rest.len().is_multiple_of(2) {
        return Err(ExecOutcome::error("syntax error"));
    }
    if incr && rest.len() != 2 {
        return Err(ExecOutcome::error(
            "INCR option supports a single increment-element pair",
        ));
    }
    // Parse all scores up front so a bad score mutates nothing.
    let mut pairs: Vec<(f64, Bytes)> = Vec::with_capacity(rest.len() / 2);
    for chunk in rest.chunks(2) {
        pairs.push((p_f64(&chunk[0])?, chunk[1].clone()));
    }

    let key = a[1].clone();
    let z = zset_mut(e, &key)?;
    let mut added = 0i64;
    let mut changed = 0i64;
    let mut incr_result: Option<Option<f64>> = None;
    let mut applied: Vec<(f64, Bytes)> = Vec::new();
    for (score, member) in pairs {
        let existing = z.score(&member);
        let allowed = match existing {
            None => !xx,
            Some(old) => {
                !nx && match (gt, lt) {
                    (true, _) => {
                        if incr {
                            true
                        } else {
                            score > old
                        }
                    }
                    (_, true) => {
                        if incr {
                            true
                        } else {
                            score < old
                        }
                    }
                    _ => true,
                }
            }
        };
        if !allowed {
            if incr {
                incr_result = Some(None);
            }
            continue;
        }
        if incr {
            let old = existing.unwrap_or(0.0);
            let new = old + score;
            if new.is_nan() {
                return Err(ExecOutcome::error("resulting score is not a number (NaN)"));
            }
            // GT/LT with INCR: only apply if the result moves the right way.
            if (gt && existing.is_some() && new <= old) || (lt && existing.is_some() && new >= old)
            {
                incr_result = Some(None);
                continue;
            }
            z.insert(member.clone(), new);
            applied.push((new, member));
            incr_result = Some(Some(new));
            changed += 1;
            if existing.is_none() {
                added += 1;
            }
            continue;
        }
        match existing {
            None => {
                z.insert(member.clone(), score);
                applied.push((score, member));
                added += 1;
                changed += 1;
            }
            Some(old) if old != score => {
                z.insert(member.clone(), score);
                applied.push((score, member));
                changed += 1;
            }
            _ => {}
        }
    }
    let reply = if incr {
        match incr_result {
            Some(Some(v)) => Frame::Bulk(Bytes::from(fmt_f64(v))),
            _ => Frame::Null,
        }
    } else {
        Frame::Integer(if ch { changed } else { added })
    };
    if applied.is_empty() {
        e.db.remove_if_empty(&key);
        return Ok(ExecOutcome::read(reply));
    }
    e.db.signal_modified(&key);
    // Deterministic effect: plain ZADD of the realized (score, member)
    // pairs — conditions and INCR are already resolved.
    let mut eff: EffectCmd = vec![Bytes::from_static(b"ZADD"), key.clone()];
    for (s, m) in applied {
        eff.push(Bytes::from(fmt_f64(s)));
        eff.push(m);
    }
    Ok(effect_write(reply, vec![eff], vec![key]))
}

pub(super) fn zrem(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    if read_zset(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let now = e.now();
    let Some(Value::ZSet(z)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let mut removed = 0i64;
    for m in &a[2..] {
        if z.remove(m).is_some() {
            removed += 1;
        }
    }
    if removed == 0 {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    Ok(verbatim_write(Frame::Integer(removed), a, vec![key]))
}

pub(super) fn zscore(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let v = read_zset(e, &a[1])?.and_then(|z| z.score(&a[2]));
    Ok(ExecOutcome::read(match v {
        Some(s) => Frame::Bulk(Bytes::from(fmt_f64(s))),
        None => Frame::Null,
    }))
}

pub(super) fn zmscore(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let z = read_zset(e, &a[1])?;
    let out = a[2..]
        .iter()
        .map(|m| match z.and_then(|z| z.score(m)) {
            Some(s) => Frame::Bulk(Bytes::from(fmt_f64(s))),
            None => Frame::Null,
        })
        .collect();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn zincrby(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let delta = p_f64(&a[2])?;
    let key = a[1].clone();
    let z = zset_mut(e, &key)?;
    let new = z.incr(a[3].clone(), delta);
    if new.is_nan() {
        z.remove(&a[3]);
        return Err(ExecOutcome::error("resulting score is not a number (NaN)"));
    }
    e.db.signal_modified(&key);
    // Effect rewrite: ZADD of the computed score.
    let eff = vec![
        Bytes::from_static(b"ZADD"),
        key.clone(),
        Bytes::from(fmt_f64(new)),
        a[3].clone(),
    ];
    Ok(effect_write(
        Frame::Bulk(Bytes::from(fmt_f64(new))),
        vec![eff],
        vec![key],
    ))
}

pub(super) fn zcard(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let n = read_zset(e, &a[1])?.map_or(0, |z| z.len());
    Ok(ExecOutcome::read(Frame::Integer(n as i64)))
}

pub(super) fn zcount(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let (min, max) = (parse_score_bound(&a[2])?, parse_score_bound(&a[3])?);
    let n = read_zset(e, &a[1])?.map_or(0, |z| z.count_by_score(&min, &max));
    Ok(ExecOutcome::read(Frame::Integer(n as i64)))
}

pub(super) fn zlexcount(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let (min, max) = (parse_lex_bound(&a[2])?, parse_lex_bound(&a[3])?);
    let n = read_zset(e, &a[1])?.map_or(0, |z| z.range_by_lex(&min, &max).len());
    Ok(ExecOutcome::read(Frame::Integer(n as i64)))
}

/// `ZRANGE key start stop [BYSCORE|BYLEX] [REV] [LIMIT off count] [WITHSCORES]`
pub(super) fn zrange(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let mut byscore = false;
    let mut bylex = false;
    let mut rev = false;
    let mut withscores = false;
    let mut limit: Option<(i64, i64)> = None;
    let mut i = 4;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "BYSCORE" => byscore = true,
            "BYLEX" => bylex = true,
            "REV" => rev = true,
            "WITHSCORES" => withscores = true,
            "LIMIT" => {
                let off = p_i64(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?;
                let cnt = p_i64(
                    a.get(i + 2)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?;
                limit = Some((off, cnt));
                i += 2;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
        i += 1;
    }
    if limit.is_some() && !byscore && !bylex {
        return Err(ExecOutcome::error(
            "syntax error, LIMIT is only supported in combination with either BYSCORE or BYLEX",
        ));
    }
    let Some(z) = read_zset(e, &a[1])? else {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    };
    let mut pairs: Vec<(Bytes, f64)> = if byscore {
        // In REV mode the bounds arrive as (max, min).
        let (lo, hi) = if rev { (&a[3], &a[2]) } else { (&a[2], &a[3]) };
        z.range_by_score(&parse_score_bound(lo)?, &parse_score_bound(hi)?)
    } else if bylex {
        let (lo, hi) = if rev { (&a[3], &a[2]) } else { (&a[2], &a[3]) };
        z.range_by_lex(&parse_lex_bound(lo)?, &parse_lex_bound(hi)?)
    } else {
        let (start, stop) = (p_i64(&a[2])?, p_i64(&a[3])?);
        let len = z.len() as i64;
        let norm = |v: i64| if v < 0 { (len + v).max(0) } else { v };
        let (s, t) = (norm(start), norm(stop).min(len - 1));
        if len == 0 || s > t || s >= len {
            Vec::new()
        } else {
            z.range_by_rank(s as usize, t as usize)
        }
    };
    if rev {
        pairs.reverse();
    }
    if let Some((off, cnt)) = limit {
        let off = off.max(0) as usize;
        pairs = if off >= pairs.len() {
            Vec::new()
        } else if cnt < 0 {
            pairs.split_off(off)
        } else {
            pairs.into_iter().skip(off).take(cnt as usize).collect()
        };
    }
    Ok(ExecOutcome::read(pairs_to_frames(pairs, withscores)))
}

pub(super) fn zrevrange(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let withscores = a.len() == 5 && upper(&a[4]) == "WITHSCORES";
    if a.len() > 5 || (a.len() == 5 && !withscores) {
        return Err(ExecOutcome::error("syntax error"));
    }
    let Some(z) = read_zset(e, &a[1])? else {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    };
    let (start, stop) = (p_i64(&a[2])?, p_i64(&a[3])?);
    let len = z.len() as i64;
    // Reverse-rank window [start, stop] maps to forward window
    // [len-1-stop, len-1-start].
    let norm = |v: i64| if v < 0 { (len + v).max(0) } else { v };
    let (s, t) = (norm(start), norm(stop).min(len - 1));
    if len == 0 || s > t || s >= len {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    }
    let (fs, ft) = ((len - 1 - t).max(0), len - 1 - s);
    let mut pairs = z.range_by_rank(fs as usize, ft as usize);
    pairs.reverse();
    Ok(ExecOutcome::read(pairs_to_frames(pairs, withscores)))
}

pub(super) fn zrangebyscore(e: &mut Engine, a: &[Bytes], rev: bool) -> CmdResult {
    let mut withscores = false;
    let mut limit: Option<(i64, i64)> = None;
    let mut i = 4;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "WITHSCORES" => withscores = true,
            "LIMIT" => {
                let off = p_i64(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?;
                let cnt = p_i64(
                    a.get(i + 2)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?;
                limit = Some((off, cnt));
                i += 2;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
        i += 1;
    }
    let Some(z) = read_zset(e, &a[1])? else {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    };
    let (lo, hi) = if rev { (&a[3], &a[2]) } else { (&a[2], &a[3]) };
    let mut pairs = z.range_by_score(&parse_score_bound(lo)?, &parse_score_bound(hi)?);
    if rev {
        pairs.reverse();
    }
    if let Some((off, cnt)) = limit {
        let off = off.max(0) as usize;
        pairs = if off >= pairs.len() {
            Vec::new()
        } else if cnt < 0 {
            pairs.split_off(off)
        } else {
            pairs.into_iter().skip(off).take(cnt as usize).collect()
        };
    }
    Ok(ExecOutcome::read(pairs_to_frames(pairs, withscores)))
}

pub(super) fn zrangebylex(e: &mut Engine, a: &[Bytes], rev: bool) -> CmdResult {
    let mut limit: Option<(i64, i64)> = None;
    if a.len() > 4 {
        if upper(&a[4]) != "LIMIT" || a.len() != 7 {
            return Err(ExecOutcome::error("syntax error"));
        }
        limit = Some((p_i64(&a[5])?, p_i64(&a[6])?));
    }
    let Some(z) = read_zset(e, &a[1])? else {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    };
    let (lo, hi) = if rev { (&a[3], &a[2]) } else { (&a[2], &a[3]) };
    let mut pairs = z.range_by_lex(&parse_lex_bound(lo)?, &parse_lex_bound(hi)?);
    if rev {
        pairs.reverse();
    }
    if let Some((off, cnt)) = limit {
        let off = off.max(0) as usize;
        pairs = if off >= pairs.len() {
            Vec::new()
        } else if cnt < 0 {
            pairs.split_off(off)
        } else {
            pairs.into_iter().skip(off).take(cnt as usize).collect()
        };
    }
    Ok(ExecOutcome::read(pairs_to_frames(pairs, false)))
}

pub(super) fn zrank(e: &mut Engine, a: &[Bytes], rev: bool) -> CmdResult {
    let withscore = a.len() == 4 && upper(&a[3]) == "WITHSCORE";
    if a.len() > 4 || (a.len() == 4 && !withscore) {
        return Err(ExecOutcome::error("syntax error"));
    }
    let Some(z) = read_zset(e, &a[1])? else {
        return Ok(ExecOutcome::read(Frame::Null));
    };
    let Some(rank) = z.rank(&a[2]) else {
        return Ok(ExecOutcome::read(Frame::Null));
    };
    let rank = if rev { z.len() - 1 - rank } else { rank } as i64;
    if withscore {
        // A ranked member always has a score; Null if it vanished anyway.
        let Some(score) = z.score(&a[2]) else {
            return Ok(ExecOutcome::read(Frame::Null));
        };
        Ok(ExecOutcome::read(Frame::Array(vec![
            Frame::Integer(rank),
            Frame::Bulk(Bytes::from(fmt_f64(score))),
        ])))
    } else {
        Ok(ExecOutcome::read(Frame::Integer(rank)))
    }
}

pub(super) fn zpop(e: &mut Engine, a: &[Bytes], min: bool) -> CmdResult {
    let count = if a.len() == 3 {
        let n = p_i64(&a[2])?;
        if n < 0 {
            return Err(ExecOutcome::error(
                "value is out of range, must be positive",
            ));
        }
        n as usize
    } else {
        1
    };
    let key = a[1].clone();
    if read_zset(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    }
    let now = e.now();
    let Some(Value::ZSet(z)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    };
    let popped = if min {
        z.pop_min(count)
    } else {
        z.pop_max(count)
    };
    if popped.is_empty() {
        return Ok(ExecOutcome::read(Frame::Array(vec![])));
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    // Deterministic effect: explicit ZREM of the popped members.
    let mut eff: EffectCmd = vec![Bytes::from_static(b"ZREM"), key.clone()];
    eff.extend(popped.iter().map(|(m, _)| m.clone()));
    let mut out = Vec::with_capacity(popped.len() * 2);
    for (m, s) in popped {
        out.push(Frame::Bulk(m));
        out.push(Frame::Bulk(Bytes::from(fmt_f64(s))));
    }
    Ok(effect_write(Frame::Array(out), vec![eff], vec![key]))
}

pub(super) fn zrandmember(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let withscores = a.len() == 4 && upper(&a[3]) == "WITHSCORES";
    if a.len() > 4 || (a.len() == 4 && !withscores) {
        return Err(ExecOutcome::error("syntax error"));
    }
    let count = if a.len() >= 3 {
        Some(p_i64(&a[2])?)
    } else {
        None
    };
    let Some(z) = read_zset(e, &a[1])? else {
        return Ok(ExecOutcome::read(match count {
            Some(_) => Frame::Array(vec![]),
            None => Frame::Null,
        }));
    };
    let all: Vec<(Bytes, f64)> = z.iter().map(|(m, s)| (m.clone(), s)).collect();
    match count {
        None => {
            let idx = e.rng().gen_range(0..all.len());
            Ok(ExecOutcome::read(Frame::Bulk(all[idx].0.clone())))
        }
        Some(n) => {
            let chosen: Vec<(Bytes, f64)> = if n >= 0 {
                let mut pool = all;
                pool.shuffle(e.rng());
                pool.truncate(n as usize);
                pool
            } else {
                (0..n.unsigned_abs())
                    .map(|_| {
                        let idx = e.rng().gen_range(0..all.len());
                        all[idx].clone()
                    })
                    .collect()
            };
            let mut out = Vec::new();
            for (m, s) in chosen {
                out.push(Frame::Bulk(m));
                if withscores {
                    out.push(Frame::Bulk(Bytes::from(fmt_f64(s))));
                }
            }
            Ok(ExecOutcome::read(Frame::Array(out)))
        }
    }
}

pub(super) fn zremrangebyrank(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let (start, stop) = (p_i64(&a[2])?, p_i64(&a[3])?);
    let key = a[1].clone();
    if read_zset(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let now = e.now();
    let Some(Value::ZSet(z)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let len = z.len() as i64;
    let norm = |v: i64| if v < 0 { (len + v).max(0) } else { v };
    let (s, t) = (norm(start), norm(stop).min(len - 1));
    if len == 0 || s > t || s >= len {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let removed = z.remove_range_by_rank(s as usize, t as usize);
    remove_effect(e, a, key, removed)
}

pub(super) fn zremrangebyscore(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let (min, max) = (parse_score_bound(&a[2])?, parse_score_bound(&a[3])?);
    let key = a[1].clone();
    if read_zset(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let now = e.now();
    let Some(Value::ZSet(z)) = e.db.lookup_mut(&key, now) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let removed = z.remove_range_by_score(&min, &max);
    remove_effect(e, a, key, removed)
}

pub(super) fn zremrangebylex(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let (min, max) = (parse_lex_bound(&a[2])?, parse_lex_bound(&a[3])?);
    let key = a[1].clone();
    if read_zset(e, &key)?.is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let victims: Vec<Bytes> = {
        let Some(z) = read_zset(e, &key)? else {
            return Ok(ExecOutcome::read(Frame::Integer(0)));
        };
        z.range_by_lex(&min, &max)
            .into_iter()
            .map(|(m, _)| m)
            .collect()
    };
    let now = e.now();
    let mut removed = Vec::new();
    if let Some(Value::ZSet(z)) = e.db.lookup_mut(&key, now) {
        for m in victims {
            if let Some(s) = z.remove(&m) {
                removed.push((m, s));
            }
        }
    }
    remove_effect(e, a, key, removed)
}

/// Shared tail for ZREMRANGEBY*: signals, prunes, and emits a ZREM effect.
fn remove_effect(
    e: &mut Engine,
    _a: &[Bytes],
    key: Bytes,
    removed: Vec<(Bytes, f64)>,
) -> CmdResult {
    if removed.is_empty() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    e.db.remove_if_empty(&key);
    let mut eff: EffectCmd = vec![Bytes::from_static(b"ZREM"), key.clone()];
    eff.extend(removed.iter().map(|(m, _)| m.clone()));
    Ok(effect_write(
        Frame::Integer(removed.len() as i64),
        vec![eff],
        vec![key],
    ))
}

/// Which aggregate operation a ZSTORE performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ZOp {
    /// Union with score aggregation.
    Union,
    /// Intersection with score aggregation.
    Inter,
    /// First minus the rest (scores from the first).
    Diff,
}

/// Parses the `[WEIGHTS w...] [AGGREGATE SUM|MIN|MAX] [WITHSCORES]` tail
/// shared by the Z-set algebra commands. Returns (weights, aggregate,
/// withscores).
fn parse_zop_tail(
    a: &[Bytes],
    mut i: usize,
    nk: usize,
    op: ZOp,
    allow_withscores: bool,
) -> Result<(Vec<f64>, String, bool), ExecOutcome> {
    let mut weights = vec![1.0f64; nk];
    let mut aggregate = "SUM".to_string();
    let mut withscores = false;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "WEIGHTS" => {
                if op == ZOp::Diff {
                    return Err(ExecOutcome::error("syntax error"));
                }
                if a.len() < i + 1 + nk {
                    return Err(ExecOutcome::error("syntax error"));
                }
                for (w, arg) in weights.iter_mut().zip(&a[i + 1..i + 1 + nk]) {
                    *w = p_f64(arg)?;
                }
                i += 1 + nk;
            }
            "AGGREGATE" => {
                if op == ZOp::Diff {
                    return Err(ExecOutcome::error("syntax error"));
                }
                aggregate = upper(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                );
                if !matches!(aggregate.as_str(), "SUM" | "MIN" | "MAX") {
                    return Err(ExecOutcome::error("syntax error"));
                }
                i += 2;
            }
            "WITHSCORES" if allow_withscores => {
                withscores = true;
                i += 1;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    Ok((weights, aggregate, withscores))
}

/// Loads the (zset-or-set) sources for a Z-set algebra command.
fn load_zop_sources(e: &Engine, keys: &[Bytes]) -> Result<Vec<Vec<(Bytes, f64)>>, ExecOutcome> {
    let mut sources = Vec::with_capacity(keys.len());
    for key in keys {
        let pairs = match e.db.lookup(key, e.now()) {
            Some(Value::ZSet(z)) => z.iter().map(|(m, s)| (m.clone(), s)).collect(),
            Some(Value::Set(s)) => s.iter().map(|m| (m.clone(), 1.0)).collect(),
            Some(_) => return Err(wrongtype()),
            None => Vec::new(),
        };
        sources.push(pairs);
    }
    Ok(sources)
}

/// The union/inter/diff aggregation shared by the read and STORE variants.
fn aggregate_zop(
    sources: &[Vec<(Bytes, f64)>],
    weights: &[f64],
    aggregate: &str,
    op: ZOp,
) -> std::collections::HashMap<Bytes, f64> {
    let mut acc: std::collections::HashMap<Bytes, f64> = std::collections::HashMap::new();
    match op {
        ZOp::Union => {
            for (idx, src) in sources.iter().enumerate() {
                for (m, s) in src {
                    let w = s * weights[idx];
                    acc.entry(m.clone())
                        .and_modify(|cur| {
                            *cur = match aggregate {
                                "MIN" => cur.min(w),
                                "MAX" => cur.max(w),
                                _ => *cur + w,
                            }
                        })
                        .or_insert(w);
                }
            }
        }
        ZOp::Inter => {
            if let Some(first) = sources.first() {
                'member: for (m, s0) in first {
                    let mut agg = s0 * weights[0];
                    for (idx, src) in sources.iter().enumerate().skip(1) {
                        match src.iter().find(|(mm, _)| mm == m) {
                            Some((_, s)) => {
                                let w = s * weights[idx];
                                agg = match aggregate {
                                    "MIN" => agg.min(w),
                                    "MAX" => agg.max(w),
                                    _ => agg + w,
                                };
                            }
                            None => continue 'member,
                        }
                    }
                    acc.insert(m.clone(), agg);
                }
            }
        }
        ZOp::Diff => {
            if let Some(first) = sources.first() {
                for (m, s) in first {
                    if !sources[1..]
                        .iter()
                        .any(|src| src.iter().any(|(mm, _)| mm == m))
                    {
                        acc.insert(m.clone(), *s);
                    }
                }
            }
        }
    }

    acc
}

/// `Z{UNION,INTER,DIFF}STORE dest numkeys key... [WEIGHTS ...] [AGGREGATE ...]`
pub(super) fn zstore(e: &mut Engine, a: &[Bytes], op: ZOp) -> CmdResult {
    let nk = p_i64(&a[2])?;
    if nk <= 0 {
        return Err(ExecOutcome::error(
            "at least 1 input key is needed for ZUNIONSTORE/ZINTERSTORE",
        ));
    }
    let nk = nk as usize;
    if a.len() < 3 + nk {
        return Err(ExecOutcome::error("syntax error"));
    }
    let (weights, aggregate, _) = parse_zop_tail(a, 3 + nk, nk, op, false)?;
    let sources = load_zop_sources(e, &a[3..3 + nk])?;
    let acc = aggregate_zop(&sources, &weights, &aggregate, op);

    let dest = a[1].clone();
    let n = acc.len() as i64;
    if acc.is_empty() {
        if e.db.exists(&dest, e.now()) {
            e.db.remove(&dest);
            let eff = vec![Bytes::from_static(b"DEL"), dest.clone()];
            return Ok(effect_write(Frame::Integer(0), vec![eff], vec![dest]));
        }
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let mut z = ZSet::new();
    // NaN can arise from inf + -inf with SUM; Redis stores 0 in that case.
    for (m, s) in acc {
        z.insert(m, if s.is_nan() { 0.0 } else { s });
    }
    // Deterministic effect: ZADD of the realized result (sorted for a
    // canonical stream), replacing the destination.
    let mut eff: EffectCmd = vec![Bytes::from_static(b"ZADD"), dest.clone()];
    for (m, s) in z.iter() {
        eff.push(Bytes::from(fmt_f64(s)));
        eff.push(m.clone());
    }
    let existed = e.db.exists(&dest, e.now());
    e.db.set_value(dest.clone(), Value::ZSet(z));
    let mut effects = Vec::new();
    if existed {
        effects.push(vec![Bytes::from_static(b"DEL"), dest.clone()]);
    }
    effects.push(eff);
    Ok(effect_write(Frame::Integer(n), effects, vec![dest]))
}

/// `Z{UNION,INTER,DIFF} numkeys key... [WEIGHTS ...] [AGGREGATE ...] [WITHSCORES]`
/// — the read-only variants (Redis 6.2+).
pub(super) fn zread_op(e: &mut Engine, a: &[Bytes], op: ZOp) -> CmdResult {
    let nk = p_i64(&a[1])?;
    if nk <= 0 {
        return Err(ExecOutcome::error("at least 1 input key is needed"));
    }
    let nk = nk as usize;
    if a.len() < 2 + nk {
        return Err(ExecOutcome::error("syntax error"));
    }
    let (weights, aggregate, withscores) = parse_zop_tail(a, 2 + nk, nk, op, true)?;
    let sources = load_zop_sources(e, &a[2..2 + nk])?;
    let acc = aggregate_zop(&sources, &weights, &aggregate, op);
    // Reply in (score, member) order like a materialized zset would be.
    let mut pairs: Vec<(Bytes, f64)> = acc
        .into_iter()
        .map(|(m, s)| (m, if s.is_nan() { 0.0 } else { s }))
        .collect();
    // NaN was normalized to 0.0 above; total_cmp agrees with partial_cmp
    // on every non-NaN pair and never panics.
    pairs.sort_by(|x, y| x.1.total_cmp(&y.1).then_with(|| x.0.cmp(&y.0)));
    Ok(ExecOutcome::read(pairs_to_frames(pairs, withscores)))
}

pub(super) fn zscan(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let _cursor = p_cursor(&a[2])?;
    let mut pattern: Option<Bytes> = None;
    let mut i = 3;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "MATCH" => {
                pattern = Some(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?
                        .clone(),
                );
                i += 2;
            }
            "COUNT" => i += 2,
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let mut out = Vec::new();
    if let Some(z) = read_zset(e, &a[1])? {
        for (m, s) in z.iter() {
            if pattern
                .as_deref()
                .is_none_or(|p| crate::db::glob_match(p, m))
            {
                out.push(Frame::Bulk(m.clone()));
                out.push(Frame::Bulk(Bytes::from(fmt_f64(s))));
            }
        }
    }
    Ok(ExecOutcome::read(Frame::Array(vec![
        Frame::Bulk(Bytes::from_static(b"0")),
        Frame::Array(out),
    ])))
}
