//! Generic key-space commands: deletion, expiry, renaming, scanning.

use super::*;
use rand::Rng;

pub(super) fn del(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let mut removed = Vec::new();
    for key in &a[1..] {
        if e.db.exists(key, e.now()) && e.db.remove(key).is_some() {
            removed.push(key.clone());
        }
    }
    if removed.is_empty() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let mut eff: EffectCmd = vec![Bytes::from_static(b"DEL")];
    eff.extend(removed.iter().cloned());
    Ok(effect_write(
        Frame::Integer(removed.len() as i64),
        vec![eff],
        removed,
    ))
}

pub(super) fn exists(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let count = a[1..].iter().filter(|k| e.db.exists(k, e.now())).count();
    Ok(ExecOutcome::read(Frame::Integer(count as i64)))
}

pub(super) fn type_cmd(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let name = match e.db.lookup(&a[1], e.now()) {
        Some(v) => v.type_name(),
        None => "none",
    };
    Ok(ExecOutcome::read(Frame::Simple(name.into())))
}

/// Shared implementation of EXPIRE/PEXPIRE/EXPIREAT/PEXPIREAT.
///
/// `unit_ms` converts the argument to milliseconds; `absolute` selects the
/// `*AT` variants. The effect is always a deterministic `PEXPIREAT`.
pub(super) fn expire_generic(
    e: &mut Engine,
    a: &[Bytes],
    unit_ms: u64,
    absolute: bool,
) -> CmdResult {
    let n = p_i64(&a[2])?;
    // Optional NX/XX/GT/LT flag (Redis 7).
    let flag = a.get(3).map(|f| upper(f));
    if a.len() > 4 {
        return Err(ExecOutcome::error("syntax error"));
    }
    if !e.db.exists(&a[1], e.now()) {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    // Overflow-checked conversion to absolute ms (Redis semantics): a value
    // whose magnitude cannot be scaled to milliseconds — seconds beyond
    // `i64::MAX / 1000` in either direction — is an "invalid expire time"
    // error, never a silent clamp; a representable negative or past time
    // falls through to the delete-on-past path below.
    let overflow = || {
        let cmd = String::from_utf8_lossy(&a[0]).to_lowercase();
        ExecOutcome::error(format!("invalid expire time in '{cmd}' command"))
    };
    let scaled = n.checked_mul(unit_ms as i64).ok_or_else(overflow)?;
    let at: i64 = if absolute {
        scaled
    } else {
        (e.now() as i64).checked_add(scaled).ok_or_else(overflow)?
    };
    let current = e.db.expiry(&a[1]);
    let allowed = match flag.as_deref() {
        None => true,
        Some("NX") => current.is_none(),
        Some("XX") => current.is_some(),
        Some("GT") => current.is_some_and(|c| (at.max(0) as u64) > c),
        Some("LT") => current.is_none_or(|c| (at.max(0) as u64) < c),
        Some(_) => return Err(ExecOutcome::error("Unsupported option")),
    };
    if !allowed {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    if at <= e.now() as i64 {
        // Expiring in the past deletes the key immediately.
        e.db.remove(&a[1]);
        let eff = vec![Bytes::from_static(b"DEL"), a[1].clone()];
        return Ok(effect_write(
            Frame::Integer(1),
            vec![eff],
            vec![a[1].clone()],
        ));
    }
    e.db.set_expiry(&a[1], Some(at as u64));
    let eff = vec![
        Bytes::from_static(b"PEXPIREAT"),
        a[1].clone(),
        Bytes::from(at.to_string()),
    ];
    Ok(effect_write(
        Frame::Integer(1),
        vec![eff],
        vec![a[1].clone()],
    ))
}

pub(super) fn ttl(e: &mut Engine, a: &[Bytes], unit_ms: u64) -> CmdResult {
    if !e.db.exists(&a[1], e.now()) {
        return Ok(ExecOutcome::read(Frame::Integer(-2)));
    }
    let reply = match e.db.expiry(&a[1]) {
        None => -1,
        // 128-bit ceil-division: EXPIREAT accepts timestamps up to i64::MAX
        // seconds, so the remaining-ms arithmetic can exceed i64.
        Some(at) => {
            let remaining = (at - e.now()) as i128;
            let unit = unit_ms as i128;
            ((remaining + unit - 1) / unit).min(i64::MAX as i128) as i64
        }
    };
    Ok(ExecOutcome::read(Frame::Integer(reply)))
}

pub(super) fn expiretime(e: &mut Engine, a: &[Bytes], unit_ms: u64) -> CmdResult {
    if !e.db.exists(&a[1], e.now()) {
        return Ok(ExecOutcome::read(Frame::Integer(-2)));
    }
    let reply = match e.db.expiry(&a[1]) {
        None => -1,
        Some(at) => (at / unit_ms) as i64,
    };
    Ok(ExecOutcome::read(Frame::Integer(reply)))
}

pub(super) fn persist(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    if !e.db.exists(&a[1], e.now()) || e.db.expiry(&a[1]).is_none() {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.set_expiry(&a[1], None);
    Ok(verbatim_write(Frame::Integer(1), a, vec![a[1].clone()]))
}

pub(super) fn keys(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let now = e.now();
    let out: Vec<Frame> =
        e.db.keys_matching(&a[1])
            .into_iter()
            .filter(|k| e.db.exists(k, now))
            .map(Frame::Bulk)
            .collect();
    Ok(ExecOutcome::read(Frame::Array(out)))
}

pub(super) fn scan(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let cursor = p_cursor(&a[1])?;
    let mut count = 10usize;
    let mut pattern: Option<Bytes> = None;
    let mut type_filter: Option<String> = None;
    let mut i = 2;
    while i < a.len() {
        match upper(&a[i]).as_str() {
            "COUNT" => {
                count = p_i64(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                )?
                .max(1) as usize;
                i += 2;
            }
            "MATCH" => {
                pattern = Some(
                    a.get(i + 1)
                        .ok_or_else(|| ExecOutcome::error("syntax error"))?
                        .clone(),
                );
                i += 2;
            }
            "TYPE" => {
                type_filter = Some(
                    String::from_utf8_lossy(
                        a.get(i + 1)
                            .ok_or_else(|| ExecOutcome::error("syntax error"))?,
                    )
                    .to_lowercase(),
                );
                i += 2;
            }
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let now = e.now();
    let (next, keys) = e.db.scan(cursor, count, pattern.as_deref());
    let items: Vec<Frame> = keys
        .into_iter()
        .filter(|k| match (e.db.lookup(k, now), &type_filter) {
            (Some(v), Some(want)) => v.type_name() == want,
            (Some(_), None) => true,
            (None, _) => false,
        })
        .map(Frame::Bulk)
        .collect();
    Ok(ExecOutcome::read(Frame::Array(vec![
        Frame::Bulk(Bytes::from(next.to_string())),
        Frame::Array(items),
    ])))
}

pub(super) fn randomkey(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let _ = a;
    // A few attempts to dodge logically-expired keys, like Redis.
    for _ in 0..16 {
        let idx: usize = e.rng().gen();
        let Some(key) = e.db.random_key(idx).cloned() else {
            return Ok(ExecOutcome::read(Frame::Null));
        };
        if e.db.exists(&key, e.now()) {
            return Ok(ExecOutcome::read(Frame::Bulk(key)));
        }
    }
    Ok(ExecOutcome::read(Frame::Null))
}

pub(super) fn rename(e: &mut Engine, a: &[Bytes], nx: bool) -> CmdResult {
    if !e.db.exists(&a[1], e.now()) {
        return Err(ExecOutcome::error("no such key"));
    }
    if nx && e.db.exists(&a[2], e.now()) {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    if a[1] == a[2] {
        let reply = if nx { Frame::Integer(0) } else { Frame::ok() };
        return Ok(ExecOutcome::read(reply));
    }
    let expiry = e.db.expiry(&a[1]);
    let Some(value) = e.db.remove(&a[1]) else {
        // Existence was checked above; treat a vanished key as "no such key".
        return Err(ExecOutcome::error("no such key"));
    };
    e.db.set_value(a[2].clone(), value);
    e.db.set_expiry(&a[2], expiry);
    let reply = if nx { Frame::Integer(1) } else { Frame::ok() };
    Ok(verbatim_write(reply, a, vec![a[1].clone(), a[2].clone()]))
}

pub(super) fn copy(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let mut replace = false;
    for opt in &a[3..] {
        match upper(opt).as_str() {
            "REPLACE" => replace = true,
            "DB" => return Err(ExecOutcome::error("COPY DB is not supported")),
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    let Some(value) = e.db.lookup(&a[1], e.now()).cloned() else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    if !replace && e.db.exists(&a[2], e.now()) {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    let expiry = e.db.expiry(&a[1]);
    e.db.set_value(a[2].clone(), value);
    e.db.set_expiry(&a[2], expiry);
    Ok(verbatim_write(Frame::Integer(1), a, vec![a[2].clone()]))
}

/// `RESTORE key ttl serialized-value [REPLACE] [ABSTTL]`
///
/// The payload is the [`crate::rdb::serialize_entry`] form (which embeds the
/// absolute expiry, so `ttl` is normally 0). This is the transport primitive
/// slot migration uses to move keys between shards (paper §5.2): the source
/// serializes each key and the target commits a `RESTORE` effect to its own
/// transaction log, letting its replicas converge on the same state.
pub(super) fn restore(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let ttl = p_i64(&a[2])?;
    let mut replace = false;
    let mut absttl = false;
    for opt in &a[4..] {
        match upper(opt).as_str() {
            "REPLACE" => replace = true,
            "ABSTTL" => absttl = true,
            _ => return Err(ExecOutcome::error("syntax error")),
        }
    }
    if ttl < 0 {
        return Err(ExecOutcome::error("Invalid TTL value, must be >= 0"));
    }
    if !replace && e.db.exists(&a[1], e.now()) {
        return Err(ExecOutcome::read(Frame::Error(
            "BUSYKEY Target key name already exists.".into(),
        )));
    }
    let (value, embedded_expiry) = crate::rdb::deserialize_entry(&a[3])
        .map_err(|_| ExecOutcome::error("DUMP payload version or checksum are wrong"))?;
    e.db.set_value(a[1].clone(), value);
    let expiry = if ttl > 0 {
        Some(if absttl {
            ttl as u64
        } else {
            e.now().saturating_add(ttl as u64)
        })
    } else {
        embedded_expiry
    };
    if expiry.is_some() {
        e.db.set_expiry(&a[1], expiry);
    }
    // Rewrite to a canonical deterministic form: absolute TTL, REPLACE.
    let mut eff: EffectCmd = vec![
        Bytes::from_static(b"RESTORE"),
        a[1].clone(),
        Bytes::from_static(b"0"),
        a[3].clone(),
        Bytes::from_static(b"REPLACE"),
    ];
    if let Some(at) = expiry {
        eff[2] = Bytes::from(at.to_string());
        eff.push(Bytes::from_static(b"ABSTTL"));
    }
    Ok(effect_write(Frame::ok(), vec![eff], vec![a[1].clone()]))
}

pub(super) fn dbsize(e: &mut Engine, _a: &[Bytes]) -> CmdResult {
    Ok(ExecOutcome::read(Frame::Integer(e.db.len() as i64)))
}

pub(super) fn flushall(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    // ASYNC/SYNC accepted and ignored; our flush is immediate.
    if e.db.is_empty() {
        return Ok(ExecOutcome::read(Frame::ok()));
    }
    e.db.flush();
    Ok(ExecOutcome::write(
        Frame::ok(),
        vec![vec![a[0].clone()]],
        DirtySet::All,
    ))
}

pub(super) fn touch(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let count = a[1..].iter().filter(|k| e.db.exists(k, e.now())).count();
    Ok(ExecOutcome::read(Frame::Integer(count as i64)))
}
