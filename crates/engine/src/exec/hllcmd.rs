//! HyperLogLog commands.
//!
//! `PFADD`/`PFMERGE` are deterministic given the fixed hash function, so
//! verbatim replication suffices; the resulting registers are identical on
//! every replica.

use super::*;
use crate::ds::hll::Hll;
use crate::value::Value;

fn read_hll<'a>(e: &'a Engine, key: &[u8]) -> Result<Option<&'a Hll>, ExecOutcome> {
    match e.db.lookup(key, e.now()) {
        Some(Value::Hll(h)) => Ok(Some(h)),
        Some(_) => Err(ExecOutcome::read(Frame::Error(
            "WRONGTYPE Key is not a valid HyperLogLog string value.".into(),
        ))),
        None => Ok(None),
    }
}

fn hll_mut<'a>(e: &'a mut Engine, key: &Bytes) -> Result<&'a mut Hll, ExecOutcome> {
    let now = e.now();
    if let Some(v) = e.db.lookup(key, now) {
        if !matches!(v, Value::Hll(_)) {
            return Err(ExecOutcome::read(Frame::Error(
                "WRONGTYPE Key is not a valid HyperLogLog string value.".into(),
            )));
        }
    }
    match e
        .db
        .entry_or_insert_with(key, now, || Value::Hll(Hll::new()))
    {
        Value::Hll(h) => Ok(h),
        // Type pre-checked above; answer WRONGTYPE rather than panic if the
        // entry changed shape underneath us.
        _ => Err(ExecOutcome::read(Frame::Error(
            "WRONGTYPE Key is not a valid HyperLogLog string value.".into(),
        ))),
    }
}

pub(super) fn pfadd(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let key = a[1].clone();
    let existed = e.db.exists(&key, e.now());
    let h = hll_mut(e, &key)?;
    let mut changed = false;
    for el in &a[2..] {
        changed |= h.add(el);
    }
    let created = !existed;
    if !changed && !created {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.signal_modified(&key);
    Ok(verbatim_write(
        Frame::Integer((changed || created) as i64),
        a,
        vec![key],
    ))
}

pub(super) fn pfcount(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    if a.len() == 2 {
        let n = read_hll(e, &a[1])?.map_or(0, |h| h.count());
        return Ok(ExecOutcome::read(Frame::Integer(n as i64)));
    }
    // Multi-key: count of the union.
    let mut merged = Hll::new();
    for key in &a[1..] {
        if let Some(h) = read_hll(e, key)? {
            merged.merge(h);
        }
    }
    Ok(ExecOutcome::read(Frame::Integer(merged.count() as i64)))
}

pub(super) fn pfmerge(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let dest = a[1].clone();
    let mut merged = match read_hll(e, &dest)? {
        Some(h) => h.clone(),
        None => Hll::new(),
    };
    for key in &a[2..] {
        if let Some(h) = read_hll(e, key)? {
            merged.merge(h);
        }
    }
    e.db.set_value_keep_ttl(dest.clone(), Value::Hll(merged));
    Ok(verbatim_write(Frame::ok(), a, vec![dest]))
}
