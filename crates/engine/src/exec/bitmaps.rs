//! Bitmap commands (bit operations over string values).

use super::*;
use crate::value::Value;

fn read_str<'a>(e: &'a Engine, key: &[u8]) -> Result<Option<&'a Bytes>, ExecOutcome> {
    match e.db.lookup(key, e.now()) {
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(_) => Err(wrongtype()),
        None => Ok(None),
    }
}

// 2^32 - 1: bit offsets address at most a 512 MB string, the Redis limit.
// (A stray ×8 here once allowed SETBIT to zero-fill a 4 GB buffer.)
const MAX_BIT_OFFSET: i64 = 4 * 1024 * 1024 * 1024 - 1;

/// Normalizes a `[start, end]` range (in bytes or bits, per the caller's
/// `total`) exactly the way Redis does for BITCOUNT/BITPOS: negative
/// offsets count back from `total`, underflow clamps to 0, overflow clamps
/// to `total - 1` **for the end only** — a start past the end is an empty
/// range, never wrapped or clamped back inside. Returns `None` for empty.
fn redis_bit_range(start: i64, end: i64, total: i64) -> Option<(i64, i64)> {
    if total == 0 {
        return None;
    }
    // Both negative and inverted: empty even though both would clamp to 0.
    if start < 0 && end < 0 && start > end {
        return None;
    }
    let lo = if start < 0 {
        (total + start).max(0)
    } else {
        start
    };
    let hi = if end < 0 {
        (total + end).max(0)
    } else {
        end.min(total - 1)
    };
    if lo > hi {
        return None;
    }
    Some((lo, hi))
}

/// `SETBIT key offset 0|1`
pub(super) fn setbit(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let offset = p_i64(&a[2])?;
    if !(0..=MAX_BIT_OFFSET).contains(&offset) {
        return Err(ExecOutcome::error(
            "bit offset is not an integer or out of range",
        ));
    }
    let bit = match a[3].as_ref() {
        b"0" => 0u8,
        b"1" => 1u8,
        _ => return Err(ExecOutcome::error("bit is not an integer or out of range")),
    };
    let byte_idx = (offset / 8) as usize;
    let bit_idx = 7 - (offset % 8) as u8; // Redis bit order: MSB first
    let existing = read_str(e, &a[1])?.cloned().unwrap_or_default();
    let mut buf = existing.to_vec();
    if buf.len() <= byte_idx {
        buf.resize(byte_idx + 1, 0);
    }
    let old = (buf[byte_idx] >> bit_idx) & 1;
    if bit == 1 {
        buf[byte_idx] |= 1 << bit_idx;
    } else {
        buf[byte_idx] &= !(1 << bit_idx);
    }
    e.db.set_value_keep_ttl(a[1].clone(), Value::Str(Bytes::from(buf)));
    Ok(verbatim_write(
        Frame::Integer(old as i64),
        a,
        vec![a[1].clone()],
    ))
}

/// `GETBIT key offset`
pub(super) fn getbit(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let offset = p_i64(&a[2])?;
    if !(0..=MAX_BIT_OFFSET).contains(&offset) {
        return Err(ExecOutcome::error(
            "bit offset is not an integer or out of range",
        ));
    }
    let byte_idx = (offset / 8) as usize;
    let bit_idx = 7 - (offset % 8) as u8;
    let bit = read_str(e, &a[1])?
        .and_then(|s| s.get(byte_idx).copied())
        .map(|byte| (byte >> bit_idx) & 1)
        .unwrap_or(0);
    Ok(ExecOutcome::read(Frame::Integer(bit as i64)))
}

/// `BITCOUNT key [start end [BYTE|BIT]]`
pub(super) fn bitcount(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let Some(s) = read_str(e, &a[1])?.cloned() else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    if a.len() == 2 {
        let count: u32 = s.iter().map(|b| b.count_ones()).sum();
        return Ok(ExecOutcome::read(Frame::Integer(count as i64)));
    }
    if a.len() < 4 || a.len() > 5 {
        return Err(ExecOutcome::error("syntax error"));
    }
    let (start, end) = (p_i64(&a[2])?, p_i64(&a[3])?);
    let bit_mode = match a.get(4).map(|m| upper(m)) {
        None => false,
        Some(m) if m == "BYTE" => false,
        Some(m) if m == "BIT" => true,
        Some(_) => return Err(ExecOutcome::error("syntax error")),
    };
    let total = if bit_mode {
        s.len() as i64 * 8
    } else {
        s.len() as i64
    };
    let Some((lo, hi)) = redis_bit_range(start, end, total) else {
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    };
    let count: i64 = if bit_mode {
        (lo..=hi)
            .filter(|&bit| {
                let byte = (bit / 8) as usize;
                let idx = 7 - (bit % 8) as u8;
                s.get(byte).is_some_and(|b| (b >> idx) & 1 == 1)
            })
            .count() as i64
    } else {
        s[lo as usize..=(hi as usize)]
            .iter()
            .map(|b| b.count_ones() as i64)
            .sum()
    };
    Ok(ExecOutcome::read(Frame::Integer(count)))
}

/// `BITPOS key bit [start [end [BYTE|BIT]]]`
pub(super) fn bitpos(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let target = match a[2].as_ref() {
        b"0" => 0u8,
        b"1" => 1u8,
        _ => return Err(ExecOutcome::error("The bit argument must be 1 or 0.")),
    };
    // The unit only ever accompanies an explicit start AND end.
    if a.len() > 6 {
        return Err(ExecOutcome::error("syntax error"));
    }
    let bit_mode = match a.get(5).map(|m| upper(m)) {
        None => false,
        Some(m) if m == "BYTE" => false,
        Some(m) if m == "BIT" => true,
        Some(_) => return Err(ExecOutcome::error("syntax error")),
    };
    let Some(s) = read_str(e, &a[1])?.cloned() else {
        // Missing key: looking for 1 finds nothing; looking for 0 finds
        // position 0 (an empty string is "all zeroes" conceptually... Redis
        // returns 0 for bit=0 with no range, -1 for bit=1).
        return Ok(ExecOutcome::read(Frame::Integer(if target == 0 {
            0
        } else {
            -1
        })));
    };
    let len = s.len() as i64;
    let explicit_end = a.len() >= 5;
    let start = if a.len() >= 4 { p_i64(&a[3])? } else { 0 };
    // Range endpoints are in the range unit: bytes by default, bits with
    // BIT — negative offsets count back from the same unit's total.
    let total = if bit_mode { len * 8 } else { len };
    let end = if explicit_end {
        p_i64(&a[4])?
    } else {
        total - 1
    };
    let Some((lo, hi)) = redis_bit_range(start, end, total) else {
        return Ok(ExecOutcome::read(Frame::Integer(-1)));
    };
    let (first_bit, last_bit) = if bit_mode {
        (lo, hi)
    } else {
        (lo * 8, hi * 8 + 7)
    };
    for pos in first_bit..=last_bit {
        let b = s[(pos / 8) as usize];
        if (b >> (7 - (pos % 8) as u8)) & 1 == target {
            return Ok(ExecOutcome::read(Frame::Integer(pos)));
        }
    }
    // Searching for 0 past the end of the string: the "virtual" zeroes
    // count only when no explicit end was given (Redis semantics).
    if target == 0 && !explicit_end {
        return Ok(ExecOutcome::read(Frame::Integer(len * 8)));
    }
    Ok(ExecOutcome::read(Frame::Integer(-1)))
}

/// `BITOP AND|OR|XOR|NOT dest src...`
pub(super) fn bitop(e: &mut Engine, a: &[Bytes]) -> CmdResult {
    let op = upper(&a[1]);
    let dest = a[2].clone();
    let srcs = &a[3..];
    if op == "NOT" && srcs.len() != 1 {
        return Err(ExecOutcome::error(
            "BITOP NOT must be called with a single source key.",
        ));
    }
    if srcs.is_empty() {
        return Err(wrong_arity("bitop"));
    }
    let mut inputs: Vec<Bytes> = Vec::with_capacity(srcs.len());
    for key in srcs {
        inputs.push(read_str(e, key)?.cloned().unwrap_or_default());
    }
    let max_len = inputs.iter().map(|b| b.len()).max().unwrap_or(0);
    let result: Vec<u8> = match op.as_str() {
        "NOT" => inputs[0].iter().map(|b| !b).collect(),
        "AND" | "OR" | "XOR" => {
            let mut out = vec![0u8; max_len];
            for (i, slot) in out.iter_mut().enumerate() {
                let mut acc: Option<u8> = None;
                for input in &inputs {
                    let byte = input.get(i).copied().unwrap_or(0);
                    acc = Some(match (acc, op.as_str()) {
                        (None, _) => byte,
                        (Some(x), "AND") => x & byte,
                        (Some(x), "OR") => x | byte,
                        (Some(x), _) => x ^ byte,
                    });
                }
                *slot = acc.unwrap_or(0);
            }
            out
        }
        _ => return Err(ExecOutcome::error("syntax error")),
    };
    let result_len = result.len() as i64;
    if result.is_empty() {
        let existed = e.db.exists(&dest, e.now());
        if existed {
            e.db.remove(&dest);
            let eff = vec![Bytes::from_static(b"DEL"), dest.clone()];
            return Ok(effect_write(Frame::Integer(0), vec![eff], vec![dest]));
        }
        return Ok(ExecOutcome::read(Frame::Integer(0)));
    }
    e.db.set_value(dest.clone(), Value::Str(Bytes::from(result)));
    Ok(verbatim_write(Frame::Integer(result_len), a, vec![dest]))
}
