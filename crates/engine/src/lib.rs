//! # memorydb-engine — the in-memory execution engine
//!
//! A from-scratch, Redis-compatible data-structure store. MemoryDB (the
//! paper's contribution, in `memorydb-core`) uses this crate exactly the way
//! the real service uses OSS Redis: as a single-threaded in-memory execution
//! engine whose **replication stream of deterministic effects** is
//! intercepted and redirected into a durable transaction log (paper §3.1).
//!
//! ## What the engine provides
//!
//! * The data structures: strings, lists, hashes, sets, sorted sets (a
//!   from-scratch skiplist with rank spans, like Redis), streams, and
//!   HyperLogLog.
//! * A command executor ([`Engine::execute`]) covering the commonly used
//!   Redis command surface, returning a RESP reply plus the command's
//!   **effects**.
//! * Effect-based replication (paper §2.1): non-deterministic commands are
//!   rewritten into deterministic effects — `SPOP` becomes an `SREM` of the
//!   chosen members, `EXPIRE` becomes an absolute `PEXPIREAT`, `INCRBYFLOAT`
//!   becomes a `SET` of the result, `XADD key *` becomes an `XADD` with the
//!   concrete id. Applying the effect stream to a fresh engine reproduces
//!   the primary's state.
//! * Key expiration with primary/replica discipline: only a primary turns an
//!   expired key into an explicit `DEL` effect; replicas treat logically
//!   expired keys as missing and wait for the primary's `DEL` (Redis
//!   semantics, required for deterministic replication).
//! * `MULTI`/`EXEC`/`DISCARD`/`WATCH` transactions, executed atomically with
//!   their effects grouped.
//! * Cluster key-space plumbing: CRC16 key→slot mapping over 16384 slots
//!   with hash-tag support, and a per-slot key index used by slot migration.
//! * An RDB-like binary snapshot format ([`rdb`]) with CRC64 integrity.
//!
//! ## Determinism
//!
//! All internal randomness (e.g. `SPOP`, skiplist level choice) comes from a
//! seedable RNG, and the engine's clock is injected by the caller, so a
//! primary's execution is reproducible in tests and in the deterministic
//! simulator.

pub mod command;
pub mod db;
pub mod ds;
pub mod effects;
pub mod exec;
pub mod rdb;
pub mod script;
pub mod slots;
pub mod value;
pub mod version;

pub use command::{command_spec, for_each_key, keys_for, CmdName, CommandFlags, CommandSpec};
pub use db::Db;
pub use effects::{DirtySet, EffectCmd, ExecOutcome};
pub use exec::{Engine, SessionState};
pub use memorydb_resp::Frame;
pub use script::{eval_on_host, ScriptHost};
pub use slots::{key_hash_slot, NUM_SLOTS};
pub use value::Value;
pub use version::EngineVersion;

/// Convenience: builds a command argument vector from string-likes, the form
/// accepted by [`Engine::execute`].
pub fn cmd<I, S>(parts: I) -> Vec<bytes::Bytes>
where
    I: IntoIterator<Item = S>,
    S: Into<Vec<u8>>,
{
    parts
        .into_iter()
        .map(|s| bytes::Bytes::from(s.into()))
        .collect()
}
