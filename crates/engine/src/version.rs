//! Engine versioning for the upgrade-protection mechanism (paper §7.1).
//!
//! During an N+1 rolling upgrade a cluster transiently runs mixed engine
//! versions. MemoryDB stamps the replication stream with the engine version
//! that produced it; a replica running an **older** engine that observes a
//! stream from a **newer** engine stops consuming the transaction log rather
//! than risk misinterpreting commands it does not know.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A `major.minor.patch` engine version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EngineVersion {
    /// Major version.
    pub major: u16,
    /// Minor version.
    pub minor: u16,
    /// Patch version.
    pub patch: u16,
}

impl EngineVersion {
    /// Builds a version.
    pub const fn new(major: u16, minor: u16, patch: u16) -> EngineVersion {
        EngineVersion {
            major,
            minor,
            patch,
        }
    }

    /// The version this reproduction models: OSS Redis 7.0.7, the engine
    /// version the paper benchmarks.
    pub const CURRENT: EngineVersion = EngineVersion::new(7, 0, 7);

    /// Can an engine at `self` safely consume a replication stream produced
    /// by `producer`? (Only same-or-older producers are safe.)
    pub fn can_consume_stream_from(self, producer: EngineVersion) -> bool {
        producer <= self
    }
}

impl fmt::Display for EngineVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
    }
}

/// Error parsing an engine version string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVersionError;

impl FromStr for EngineVersion {
    type Err = ParseVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split('.');
        let major = it
            .next()
            .ok_or(ParseVersionError)?
            .parse()
            .map_err(|_| ParseVersionError)?;
        let minor = it
            .next()
            .ok_or(ParseVersionError)?
            .parse()
            .map_err(|_| ParseVersionError)?;
        let patch = it
            .next()
            .ok_or(ParseVersionError)?
            .parse()
            .map_err(|_| ParseVersionError)?;
        if it.next().is_some() {
            return Err(ParseVersionError);
        }
        Ok(EngineVersion {
            major,
            minor,
            patch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_semver_like() {
        let v707 = EngineVersion::new(7, 0, 7);
        let v710 = EngineVersion::new(7, 1, 0);
        let v800 = EngineVersion::new(8, 0, 0);
        assert!(v707 < v710);
        assert!(v710 < v800);
        assert!(v707 < v800);
    }

    #[test]
    fn stream_consumption_rule() {
        let old = EngineVersion::new(7, 0, 7);
        let new = EngineVersion::new(7, 1, 0);
        // Old replica must NOT consume a new primary's stream.
        assert!(!old.can_consume_stream_from(new));
        // New replica can consume an old stream, and same-version is fine.
        assert!(new.can_consume_stream_from(old));
        assert!(old.can_consume_stream_from(old));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let v: EngineVersion = "7.0.7".parse().unwrap();
        assert_eq!(v, EngineVersion::CURRENT);
        assert_eq!(v.to_string(), "7.0.7");
        assert!("7.0".parse::<EngineVersion>().is_err());
        assert!("7.0.7.1".parse::<EngineVersion>().is_err());
        assert!("a.b.c".parse::<EngineVersion>().is_err());
    }
}
