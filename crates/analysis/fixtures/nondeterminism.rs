// Fixture: sim-determinism lint. Linted as if it were chaos/DES code.
// Positive cases: Instant::now, SystemTime::now, thread_rng, from_entropy.
// Negative cases: seeded rngs, tick counting, test-gated wall clock.

pub fn positive_instant_now() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn positive_system_time() -> std::time::SystemTime {
    SystemTime::now()
}

pub fn positive_thread_rng() -> u64 {
    thread_rng().next_u64()
}

pub fn positive_from_entropy() -> StdRng {
    StdRng::from_entropy()
}

pub fn negative_seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn negative_tick_budget(mut ticks: u32) -> u32 {
    while ticks > 0 {
        ticks -= 1;
    }
    ticks
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_tests_may_use_wall_clock() {
        let _t = std::time::Instant::now();
    }
}
