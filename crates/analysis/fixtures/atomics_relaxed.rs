// Fixture: atomics-ordering lint (total Ordering::Relaxed census).
// Positive cases: Relaxed on a handoff flag load/store and on a
// compare_exchange failure ordering — anything that gates cross-thread
// handoff.
// Negative cases: counter RMW (fetch_add family), non-Relaxed orderings,
// Relaxed inside test code, and "Relaxed" appearing in a string literal.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn positive_handoff_load(ready: &AtomicBool) -> bool {
    ready.load(Ordering::Relaxed)
}

pub fn positive_handoff_store(ready: &AtomicBool) {
    ready.store(true, Ordering::Relaxed);
}

pub fn positive_cas_failure_ordering(released: &AtomicBool) -> bool {
    released
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
}

pub fn negative_counter_rmw(hits: &AtomicU64) -> u64 {
    hits.fetch_add(1, Ordering::Relaxed)
}

pub fn negative_acquire_release(ready: &AtomicBool) -> bool {
    ready.store(true, Ordering::Release);
    ready.load(Ordering::Acquire)
}

pub fn negative_string_literal() -> &'static str {
    "Ordering::Relaxed in prose is not a site"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_tests_may_use_relaxed() {
        let b = AtomicBool::new(false);
        b.store(true, Ordering::Relaxed);
        assert!(b.load(Ordering::Relaxed));
    }
}
