// Fixture: lock-discipline lint (workspace-wide).
// Positive cases: a let-bound guard live across wait_durable /
// wait_for_entries / put / append_after.
// Negative cases: guard dropped first, block-scoped guard, temporary guard,
// io::Read::read (argument list non-empty => not a lock method).

pub fn positive_guard_across_wait(node: &FakeNode) {
    let st = node.st.lock();
    node.log.wait_durable(st.applied);
}

pub fn positive_guard_across_put(node: &FakeNode) {
    let mut engine = node.engine.lock();
    node.store.put(engine.snapshot());
}

pub fn positive_guard_across_append(node: &FakeNode) {
    let st = node.st.lock();
    let _ = node.log.append_after(st.applied);
}

pub fn negative_guard_dropped_first(node: &FakeNode) {
    let st = node.st.lock();
    let pos = st.applied;
    drop(st);
    node.log.wait_durable(pos);
}

pub fn negative_block_scoped_guard(node: &FakeNode) {
    let pos = {
        let st = node.st.lock();
        st.applied
    };
    node.log.wait_durable(pos);
}

pub fn negative_temporary_guard(node: &FakeNode) {
    let pos = node.st.lock().applied;
    node.log.wait_durable(pos);
}

pub fn negative_io_read_is_not_a_guard(node: &FakeNode, f: &mut impl std::io::Read) {
    let mut buf = [0u8; 8];
    let _n = f.read(&mut buf);
    node.log.wait_durable(0);
}
