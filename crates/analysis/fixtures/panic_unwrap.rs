// Fixture: panic-freedom lint. Linted as if it were a serving-path file.
// Positive cases (must be flagged): unwrap, expect, panic!, unreachable!,
// and — on the wire/log layer — direct indexing.
// Negative cases (must NOT be flagged): test-gated code, unwrap_or family,
// idents inside strings and comments.

pub fn positive_unwrap(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn positive_expect(x: Option<u8>) -> u8 {
    x.expect("boom")
}

pub fn positive_panic_macro(flag: bool) {
    if flag {
        panic!("explicit panic");
    }
}

pub fn positive_unreachable(v: u8) -> u8 {
    match v {
        0 => 1,
        _ => unreachable!("covered"),
    }
}

pub fn positive_indexing(buf: &[u8]) -> u8 {
    buf[0]
}

pub fn negative_unwrap_or(x: Option<u8>) -> u8 {
    // "call x.unwrap() here" — lint must ignore strings and comments.
    let _s = "x.unwrap() inside a string";
    x.unwrap_or(0)
}

pub fn negative_get(buf: &[u8]) -> u8 {
    buf.get(0).copied().unwrap_or_default()
}

pub fn negative_slice_type(frames: &mut [u8]) -> usize {
    frames.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn negative_test_code_may_unwrap() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let buf = [1u8, 2];
        assert_eq!(buf[1], 2);
    }
}
