// Fixture: sync-primitives lint (workspace-wide).
// Positive cases: std::sync::Mutex / RwLock / Condvar via use-tree or path.
// Negative cases: Arc, atomics, Barrier, parking_lot, test-gated use.

use std::sync::{Arc, Mutex};
use std::sync::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

pub fn positive_path_expr() -> std::sync::Mutex<u8> {
    std::sync::Mutex::new(0)
}

pub fn negative_arc(v: u8) -> Arc<u8> {
    Arc::new(v)
}

pub fn negative_atomic(a: &AtomicU64) -> u64 {
    // fetch_add keeps this negative for atomics-ordering too (counter RMW);
    // scrutinized Relaxed cases live in atomics_relaxed.rs.
    a.fetch_add(1, Ordering::Relaxed)
}

pub fn negative_parking_lot(m: &parking_lot::Mutex<u8>) -> u8 {
    *m.lock()
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex as NegativeTestMutex;

    #[test]
    fn negative_tests_may_use_std_sync() {
        let m = NegativeTestMutex::new(1);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
