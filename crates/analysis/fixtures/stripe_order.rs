// Fixture: stripe-order lint (workspace-wide outside the stripes module)
// plus the stripe-guard cases of lock-discipline.
// Positive cases: nested stripe acquisition while a stripe guard is live,
// raw stripe-mutex bypass, and a stripe guard held across a blocking wait.
// Negative cases: guard dropped before reacquisition, block-scoped guard,
// single acquisition with the blocking call after the drop.

pub fn positive_nested_lock_all(node: &FakeNode) {
    let guards = node.stripes.lock_one(0);
    let more = node.stripes.lock_all();
}

pub fn positive_nested_lock_one(node: &FakeNode) {
    let mut guards = node.stripes.lock_all();
    let one = node.stripes.lock_one(3);
}

pub fn positive_raw_mutex_bypass(node: &FakeNode) {
    let g = node.stripes.lock_counting(&node.stripes.first);
}

pub fn positive_stripe_guard_across_wait(node: &FakeNode) {
    let guards = node.stripes.lock_one(2);
    node.log.wait_durable(0);
}

pub fn positive_lock_all_across_put(node: &FakeNode) {
    let mut guards = node.stripes.lock_all();
    node.store.put(guards.first_ref().snapshot());
}

pub fn negative_dropped_then_reacquire(node: &FakeNode) {
    let guards = node.stripes.lock_one(0);
    drop(guards);
    let more = node.stripes.lock_all();
}

pub fn negative_block_scoped_guard(node: &FakeNode) {
    let len = {
        let guards = node.stripes.lock_one(0);
        guards.first_ref().len()
    };
    let more = node.stripes.lock_all();
}

pub fn negative_wait_after_drop(node: &FakeNode) {
    let mut guards = node.stripes.lock_all();
    let id = guards.first_ref().version();
    drop(guards);
    node.log.wait_durable(id);
}
