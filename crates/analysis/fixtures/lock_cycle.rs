// Fixture: lock-order graph (whole-workspace cycle detection).
// Positive cases: an A->B / B->A acquisition inversion split across two
// functions, plus a direct re-acquisition self-loop.
// Negative cases: same-order acquisitions, guard dropped before the second
// lock, and a stripes lock_all followed by another lock (stripes collapse
// to one node, so the canonical ascending order is not a cycle).

pub fn positive_ab(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}

pub fn positive_ba(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
    drop(a);
    drop(b);
}

pub fn positive_self_reacquire(&self) {
    let g1 = self.gamma.lock();
    let g2 = self.gamma.lock();
    drop(g2);
    drop(g1);
}

pub fn negative_same_order_again(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}

pub fn negative_drop_between(&self) {
    let b = self.beta.lock();
    drop(b);
    let a = self.alpha.lock();
    drop(a);
}

pub fn negative_stripes_then_state(&self) {
    let guards = self.stripes.lock_all();
    let st = self.delta.lock();
    drop(st);
    drop(guards);
}
