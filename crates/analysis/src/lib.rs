//! Workspace invariant analyzer for the MemoryDB reproduction.
//!
//! Nine lint families, each protecting one leg of the paper's
//! consistency/availability argument (see DESIGN.md "Enforced invariants"):
//!
//! 1. **panic-freedom** — no `unwrap`/`expect`/panic macros/direct indexing
//!    in non-test serving and apply paths. A primary panic forfeits its
//!    lease and forces failover (paper §5).
//! 2. **lock-discipline** — no lock guard live across a blocking durability
//!    or storage wait (`wait_durable`, `wait_for_entries`, `ObjectStore::put`);
//!    ordered txlog appends under the engine lock are the intentional
//!    log-order = execution-order contract and must be baselined per site.
//! 3. **sim-determinism** — no wall clock or ambient entropy in chaos-plan
//!    and DES code; plans must be pure functions of (schedule, seed).
//! 4. **sync-primitives** — `std::sync::{Mutex,RwLock,Condvar}` forbidden in
//!    non-test code; the workspace mandates `parking_lot`.
//! 5. **durability-wait** — no blocking durability wait in the server crate:
//!    a multiplexed IO thread that blocks in `wait_durable`/`wait_finish`
//!    stalls every connection it sweeps; replies must park on commit tickets
//!    instead (DESIGN.md §11). Intentional sites (the thread-per-connection
//!    settle) are baselined per site.
//! 6. **stripe-order** — no nested stripe-lock acquisition (a further
//!    `lock_one`/`lock_all` while a stripe guard is live) and no raw
//!    stripe-mutex use outside the stripes module; multi-stripe work must
//!    take one `lock_all()` in canonical ascending order (DESIGN.md §12).
//!    The stripe guards also feed lint 2: none may be held across a
//!    blocking durability or storage wait.
//! 7. **atomics-ordering** — every `Ordering::Relaxed` site is classified:
//!    metrics/bench scopes and pure counter RMW (`fetch_add` family) are
//!    allowed; `Relaxed` on anything else gates a cross-thread handoff
//!    (released flags, watermark reads, in-flight window observations) and
//!    is a finding unless baselined with a written justification. There is
//!    no silent third bucket: the census in [`WorkspaceAnalysis::atomics`]
//!    is total over sites.
//! 8. **lock-order** — the whole-workspace acquisition graph built by
//!    [`lockgraph`] must be acyclic; each cycle is one potential-deadlock
//!    finding naming the full lock path.
//! 9. **zero-copy** — on the serve-path files (the server's parse→submit
//!    pipeline and the RESP decoder), no `.to_vec()` and no `.clone()` of
//!    command-argument vectors or wire buffers: each copies bytes the
//!    borrowed decode deliberately shares and regresses the allocation
//!    census budget (DESIGN.md §15). Intentional copies are baselined.
//!
//! Exceptions live in the checked-in `analysis.toml` baseline; every entry
//! carries a justification, matches at least one finding (else it is
//! *stale* and the gate fails), and may cap how many findings it absorbs
//! (the ratchet).
//!
//! Dependency-free by design: the hermetic offline build has no `syn` or
//! `toml`, so the analyzer carries its own token scanner and TOML-subset
//! reader. It runs as `cargo run -p memorydb-analysis` and as the tier-1
//! gate in `tests/analysis.rs`.

pub mod baseline;
pub mod lexer;
mod lints;
pub mod lockgraph;

pub use baseline::{parse_baseline, AllowEntry};
pub use lints::{AtomicClass, AtomicSite};
pub use lockgraph::LockGraph;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint hit, attached to a workspace-relative file.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint family name ("panic-freedom", "lock-discipline",
    /// "sim-determinism", "sync-primitives", "durability-wait",
    /// "stripe-order", "atomics-ordering", "lock-order").
    pub lint: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Trimmed source line text (what baseline `contains` matches against).
    pub snippet: String,
    /// Human diagnostic including the paper property at stake.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    | {}",
            self.file, self.line, self.lint, self.message, self.snippet
        )
    }
}

/// Lints one source file. `rel` must be the workspace-relative path with
/// forward slashes (it selects which scoped lints apply).
pub fn analyze_source(rel: &str, src: &str) -> Vec<Finding> {
    let toks = lexer::scan(src);
    let lines: Vec<&str> = src.lines().collect();
    lints::lint_tokens(rel, &toks)
        .into_iter()
        .map(|raw| Finding {
            lint: raw.lint,
            file: rel.to_string(),
            line: raw.line,
            snippet: lines
                .get(raw.line.saturating_sub(1) as usize)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            message: raw.message,
        })
        .collect()
}

/// Directories never descended into: build output, VCS, vendored fixtures,
/// and test-only trees (the lints target non-test code by definition).
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "tests", "benches", "examples"];

/// Walks the workspace and lints every non-test `.rs` file. Files are
/// visited in sorted order so output is deterministic.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(analyze_source(rel, &src));
    }
    Ok(findings)
}

/// Whole-workspace analysis: per-file findings plus the cross-file results
/// (lock-order graph, total `Ordering::Relaxed` census).
pub struct WorkspaceAnalysis {
    /// Per-file lint findings plus one "lock-order" finding per graph cycle.
    pub findings: Vec<Finding>,
    /// The acquisition-order graph (render with `to_dot`/`to_toml`).
    pub graph: LockGraph,
    /// Every non-test `Ordering::Relaxed` site as `(file, site)`, including
    /// the allowed classes — the census is total, nothing passes silently.
    pub atomics: Vec<(String, AtomicSite)>,
}

/// Walks the workspace once and runs everything: per-file lints, the
/// lock-order graph (cycles become findings), and the atomics census.
pub fn analyze_workspace_full(root: &Path) -> std::io::Result<WorkspaceAnalysis> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        sources.push((rel, src));
    }
    let mut findings = Vec::new();
    let mut atomics = Vec::new();
    for (rel, src) in &sources {
        findings.extend(analyze_source(rel, src));
        let toks = lexer::scan(src);
        atomics.extend(
            lints::classify_relaxed_sites(rel, &toks)
                .into_iter()
                .map(|s| (rel.clone(), s)),
        );
    }
    let graph = LockGraph::build(&sources);
    findings.extend(graph.cycle_findings());
    Ok(WorkspaceAnalysis {
        findings,
        graph,
        atomics,
    })
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") && name != "tests.rs" {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Result of applying the baseline to a set of findings.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings absorbed by a baseline entry (entry index attached).
    pub allowed: Vec<(Finding, usize)>,
    /// Findings no entry absorbs — these fail the gate.
    pub violations: Vec<Finding>,
    /// Baseline entries that matched nothing — stale, these fail the gate
    /// too (the ratchet: fixing code must also shrink the baseline).
    pub stale: Vec<AllowEntry>,
}

impl Outcome {
    /// True when the gate passes.
    pub fn is_green(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Matches findings against `[[allow]]` entries. First matching entry wins;
/// an entry with `count = N` absorbs at most N findings, the rest stay
/// violations.
pub fn apply_baseline(findings: Vec<Finding>, entries: &[AllowEntry]) -> Outcome {
    let mut used = vec![0usize; entries.len()];
    let mut out = Outcome::default();
    for f in findings {
        let slot = entries.iter().enumerate().position(|(idx, e)| {
            e.lint == f.lint
                && e.path == f.file
                && e.contains
                    .as_deref()
                    .is_none_or(|c| f.snippet.contains(c) || f.message.contains(c))
                && e.count.is_none_or(|cap| used[idx] < cap)
        });
        match slot {
            Some(idx) => {
                used[idx] += 1;
                out.allowed.push((f, idx));
            }
            None => out.violations.push(f),
        }
    }
    for (idx, e) in entries.iter().enumerate() {
        if used[idx] == 0 {
            out.stale.push(e.clone());
        }
    }
    out
}

/// The workspace root, assuming this crate lives at `<root>/crates/analysis`.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Convenience: run the full gate (workspace lints + lock-order graph +
/// baseline) from `root`. Returns the outcome, or error strings when the
/// baseline itself is broken or the tree is unreadable.
pub fn run_gate(root: &Path) -> Result<Outcome, Vec<String>> {
    run_gate_full(root).map(|(outcome, _)| outcome)
}

/// [`run_gate`] plus the cross-file artifacts (graph, atomics census) for
/// callers that render or assert on them.
pub fn run_gate_full(root: &Path) -> Result<(Outcome, WorkspaceAnalysis), Vec<String>> {
    let baseline_path = root.join("analysis.toml");
    let entries = if baseline_path.exists() {
        let src = std::fs::read_to_string(&baseline_path)
            .map_err(|e| vec![format!("cannot read {}: {e}", baseline_path.display())])?;
        parse_baseline(&src)?
    } else {
        Vec::new()
    };
    let analysis = analyze_workspace_full(root)
        .map_err(|e| vec![format!("cannot walk workspace at {}: {e}", root.display())])?;
    let outcome = apply_baseline(analysis.findings.clone(), &entries);
    Ok((outcome, analysis))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line: 1,
            snippet: snippet.to_string(),
            message: String::new(),
        }
    }

    fn entry(lint: &str, path: &str, contains: Option<&str>, count: Option<usize>) -> AllowEntry {
        AllowEntry {
            lint: lint.to_string(),
            path: path.to_string(),
            contains: contains.map(str::to_string),
            count,
            reason: "test".to_string(),
            decl_line: 1,
        }
    }

    #[test]
    fn count_caps_matches_and_ratchets() {
        let entries = vec![entry("panic-freedom", "a.rs", None, Some(1))];
        let out = apply_baseline(
            vec![
                finding("panic-freedom", "a.rs", "x.unwrap()"),
                finding("panic-freedom", "a.rs", "y.unwrap()"),
            ],
            &entries,
        );
        assert_eq!(out.allowed.len(), 1);
        assert_eq!(out.violations.len(), 1);
        assert!(out.stale.is_empty());
        assert!(!out.is_green());
    }

    #[test]
    fn unmatched_entry_is_stale() {
        let entries = vec![entry("panic-freedom", "gone.rs", None, None)];
        let out = apply_baseline(vec![], &entries);
        assert_eq!(out.stale.len(), 1);
        assert!(!out.is_green());
    }

    #[test]
    fn contains_filters_snippet() {
        let entries = vec![entry(
            "panic-freedom",
            "a.rs",
            Some("spawn committer"),
            None,
        )];
        let out = apply_baseline(
            vec![
                finding("panic-freedom", "a.rs", ".expect(\"spawn committer\")"),
                finding("panic-freedom", "a.rs", ".expect(\"other\")"),
            ],
            &entries,
        );
        assert_eq!(out.allowed.len(), 1);
        assert_eq!(out.violations.len(), 1);
    }
}
