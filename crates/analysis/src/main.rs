//! `cargo run -p memorydb-analysis [workspace-root]`
//!
//! Runs the invariant gate and prints every violation with file:line, the
//! invariant family, and the paper property it protects. Exit status is
//! nonzero when any violation exists, when the baseline has stale entries,
//! or when analysis.toml cannot be parsed — the same condition enforced in
//! tier-1 by `tests/analysis.rs`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(memorydb_analysis::workspace_root);

    let outcome = match memorydb_analysis::run_gate(&root) {
        Ok(o) => o,
        Err(errors) => {
            for e in errors {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    if !outcome.allowed.is_empty() {
        println!(
            "{} finding(s) absorbed by the analysis.toml baseline:",
            outcome.allowed.len()
        );
        for (f, idx) in &outcome.allowed {
            println!(
                "  allowed [{}] {}:{} (entry #{})",
                f.lint,
                f.file,
                f.line,
                idx + 1
            );
        }
        println!();
    }

    for f in &outcome.violations {
        println!("violation: {f}");
    }
    for e in &outcome.stale {
        println!(
            "stale baseline entry (matches nothing — remove it): \
             analysis.toml:{} [{}] {} ({})",
            e.decl_line, e.lint, e.path, e.reason
        );
    }

    if outcome.is_green() {
        println!(
            "analysis: OK — 0 violations, {} baselined exception(s), 0 stale entries",
            outcome.allowed.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "analysis: FAIL — {} violation(s), {} stale baseline entr(y/ies)",
            outcome.violations.len(),
            outcome.stale.len()
        );
        ExitCode::FAILURE
    }
}
