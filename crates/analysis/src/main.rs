//! `cargo run -p memorydb-analysis [workspace-root] [--lockgraph-dot PATH]
//! [--lockgraph-toml PATH]`
//!
//! Runs the invariant gate and prints every violation with file:line, the
//! invariant family, and the paper property it protects, plus the
//! `Ordering::Relaxed` census (total: every site is printed with its class)
//! and a lock-order graph summary. The optional flags write the acquisition
//! graph as Graphviz dot / TOML artifacts. Exit status is nonzero when any
//! violation exists, when the baseline has stale entries, or when
//! analysis.toml cannot be parsed — the same condition enforced in tier-1 by
//! `tests/analysis.rs`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut dot_path: Option<PathBuf> = None;
    let mut toml_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--lockgraph-dot" => match args.next() {
                Some(p) => dot_path = Some(PathBuf::from(p)),
                None => return usage("--lockgraph-dot needs a path"),
            },
            "--lockgraph-toml" => match args.next() {
                Some(p) => toml_path = Some(PathBuf::from(p)),
                None => return usage("--lockgraph-toml needs a path"),
            },
            _ if a.starts_with('-') => return usage(&format!("unknown flag {a}")),
            _ => root = Some(PathBuf::from(a)),
        }
    }
    let root = root.unwrap_or_else(memorydb_analysis::workspace_root);

    let (outcome, analysis) = match memorydb_analysis::run_gate_full(&root) {
        Ok(pair) => pair,
        Err(errors) => {
            for e in errors {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    if !analysis.atomics.is_empty() {
        println!(
            "Ordering::Relaxed census ({} site(s), total — every site classified):",
            analysis.atomics.len()
        );
        for (file, site) in &analysis.atomics {
            println!(
                "  [{}] {}:{} {}.{}",
                site.class.label(),
                file,
                site.line,
                site.receiver,
                site.method
            );
        }
        println!();
    }

    println!(
        "lock-order graph: {} node(s), {} edge(s), {} cycle(s)",
        analysis.graph.nodes.len(),
        analysis.graph.edges.len(),
        analysis.graph.cycles().len()
    );
    for (path, contents) in [
        (&dot_path, analysis.graph.to_dot()),
        (&toml_path, analysis.graph.to_toml()),
    ] {
        if let Some(p) = path {
            if let Err(e) = std::fs::write(p, contents) {
                eprintln!("error: cannot write {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
            println!("  wrote {}", p.display());
        }
    }
    println!();

    if !outcome.allowed.is_empty() {
        println!(
            "{} finding(s) absorbed by the analysis.toml baseline:",
            outcome.allowed.len()
        );
        for (f, idx) in &outcome.allowed {
            println!(
                "  allowed [{}] {}:{} (entry #{})",
                f.lint,
                f.file,
                f.line,
                idx + 1
            );
        }
        println!();
    }

    for f in &outcome.violations {
        println!("violation: {f}");
    }
    for e in &outcome.stale {
        println!(
            "stale baseline entry (matches nothing — remove it): {} ({})",
            e.describe(),
            e.reason
        );
    }

    if outcome.is_green() {
        println!(
            "analysis: OK — 0 violations, {} baselined exception(s), 0 stale entries",
            outcome.allowed.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "analysis: FAIL — {} violation(s), {} stale baseline entr(y/ies)",
            outcome.violations.len(),
            outcome.stale.len()
        );
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "error: {err}\nusage: memorydb-analysis [workspace-root] \
         [--lockgraph-dot PATH] [--lockgraph-toml PATH]"
    );
    ExitCode::FAILURE
}
