//! The six invariant families. Each lint is a pass over the token stream
//! from [`crate::lexer`]; scopes are hardcoded here (the baseline file only
//! holds *exceptions*, never scope). Every diagnostic names the part of the
//! MemoryDB argument it protects, so a violation reads as "which paper
//! property would this break", not just "style nit".

use crate::lexer::Tok;
use crate::lexer::TokKind::{Ident, Punct};

/// A lint hit before file/snippet attachment (done by the caller).
pub(crate) struct RawFinding {
    pub lint: &'static str,
    pub line: u32,
    pub message: String,
}

/// Serving/apply paths where a panic kills the primary mid-lease.
/// Entries ending in `/` are directory prefixes, others exact files.
const PANIC_SCOPE: &[&str] = &[
    "crates/engine/src/exec/",
    "crates/engine/src/command.rs",
    "crates/engine/src/ds/",
    "crates/core/src/apply.rs",
    "crates/core/src/node.rs",
    "crates/core/src/stripes.rs",
    "crates/txlog/src/service.rs",
    "crates/resp/src/decode.rs",
];

/// Wire/log-input layer where direct indexing is forbidden outright.
/// The exec and ds layers are excluded: exec's ~400 `args[i]` sites are all
/// behind arity validation in the command table, and ds's skiplist/HLL
/// indices are internal arena handles — the panic-freedom lint above still
/// forbids unwrap/expect/panic in both. Decode, apply, the node frontend and
/// the log service, by contrast, face untrusted socket/log bytes and must
/// reject rather than crash.
const INDEX_SCOPE: &[&str] = &[
    "crates/core/src/apply.rs",
    "crates/core/src/node.rs",
    "crates/core/src/stripes.rs",
    "crates/txlog/src/service.rs",
    "crates/resp/src/decode.rs",
];

/// Deterministic-simulation code: chaos plan construction and the DES core.
const DETERMINISM_SCOPE: &[&str] = &["crates/sim/src/chaos.rs", "crates/sim/src/des.rs"];

/// The server crate, whose multiplexed IO threads sweep many connections
/// each. A durability wait here stalls every connection sharing the thread.
const SERVER_SCOPE: &[&str] = &["crates/server/"];

/// Calls that block the caller until commit durability (or a resolved
/// commit ticket): the raw log waits plus the node-level blocking finisher.
const DURABILITY_WAIT_METHODS: &[&str] = &[
    "wait_durable",
    "wait_committed_at_least",
    "wait_for_entries",
    "wait_finish",
];

/// Final-call methods in a `let` initializer that make the binding a guard.
/// These must have an *empty* argument list (so `io::Read::read(&mut buf)`
/// is not mistaken for a lock).
const GUARD_METHODS: &[&str] = &["lock", "read", "write", "upgradable_read", "lock_all"];

/// Guard-returning methods that take arguments (`lock_one(idx)` returns the
/// stripe guard set for one stripe).
const GUARD_METHODS_WITH_ARGS: &[&str] = &["lock_one"];

/// Stripe-guard constructors: the only sanctioned stripe-lock acquisition
/// paths. Acquiring another stripe guard while one is live violates the
/// canonical ascending-order acquisition (`EngineStripes::lock_all`) that
/// makes multi-stripe locking deadlock-free (DESIGN.md §12).
const STRIPE_GUARD_METHODS: &[&str] = &["lock_one", "lock_all"];

/// The one module allowed to touch the raw stripe mutexes; everywhere else
/// must go through `lock_one`/`lock_all`.
const STRIPE_MODULE: &str = "crates/core/src/stripes.rs";

/// Methods that block on remote durability / storage while running:
/// holding any lock guard across these defeats PR-1 group commit and stalls
/// the engine for a multi-AZ round trip. Always a violation.
/// `flush_inline_idle` is the §13 idle fast path — a *blocking* flush-token
/// acquire plus a log append on the submitting connection's thread, so
/// holding a stripe guard (or `st`) across it would serialize every other
/// stripe behind one connection's append.
const BLOCKING_METHODS: &[&str] = &[
    "wait_durable",
    "wait_for_entries",
    "put",
    "flush_inline_idle",
];

/// Non-blocking ordered-append calls into the txlog. Holding the engine/state
/// lock across these is the *intentional* ordering contract (log order =
/// execution order, MemoryDB §3.2) — each such site must be explicitly
/// baselined in analysis.toml with a justification, so new ones are caught.
const ORDERED_APPEND_METHODS: &[&str] = &["append_after", "append_batch_after"];

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|s| {
        if s.ends_with('/') {
            rel.starts_with(s)
        } else {
            rel == *s
        }
    })
}

/// Runs every lint applicable to `rel` over its token stream.
pub(crate) fn lint_tokens(rel: &str, toks: &[Tok]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    if in_scope(rel, PANIC_SCOPE) {
        panic_freedom(toks, &mut out);
    }
    if in_scope(rel, INDEX_SCOPE) {
        index_freedom(toks, &mut out);
    }
    if in_scope(rel, DETERMINISM_SCOPE) {
        determinism(toks, &mut out);
    }
    if in_scope(rel, SERVER_SCOPE) {
        durability_wait(toks, &mut out);
    }
    // Workspace-wide passes.
    lock_discipline(toks, &mut out);
    sync_primitives(toks, &mut out);
    if rel != STRIPE_MODULE {
        stripe_order(toks, &mut out);
    }
    out.sort_by_key(|f| f.line);
    out
}

/// (1) panic-freedom: `.unwrap()` / `.expect(` method calls and
/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros.
fn panic_freedom(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        match id {
            "unwrap" | "expect" => {
                let prev_dot = i > 0 && toks[i - 1].is_punct('.');
                let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if prev_dot && next_paren {
                    out.push(RawFinding {
                        lint: "panic-freedom",
                        line: t.line,
                        message: format!(
                            "`.{id}()` can panic in the serving/apply path \
                             (MemoryDB availability argument: a primary panic forfeits \
                             its lease and forces failover, paper \u{a7}5)"
                        ),
                    });
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(RawFinding {
                    lint: "panic-freedom",
                    line: t.line,
                    message: format!(
                        "`{id}!` in the serving/apply path \
                         (MemoryDB availability argument: a primary panic forfeits \
                         its lease and forces failover, paper \u{a7}5)"
                    ),
                });
            }
            _ => {}
        }
    }
}

/// (1b) indexing sub-lint: `expr[...]` indexing/slicing on the wire/log-input
/// layer, where the indexed data came off a socket or the transaction log.
fn index_freedom(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_punct('[') || i == 0 {
            continue;
        }
        let indexes_expr = match &toks[i - 1].kind {
            // A keyword before `[` means an array/slice type or literal
            // (`&mut [Frame]`, `return [0; 4]`), not an index expression.
            Ident(id) => !matches!(
                id.as_str(),
                "mut" | "ref" | "dyn" | "return" | "break" | "else" | "in" | "match"
            ),
            Punct(')') | Punct(']') => true,
            _ => false,
        };
        if indexes_expr {
            out.push(RawFinding {
                lint: "panic-freedom",
                line: t.line,
                message: "direct index/slice can panic on malformed wire/log input; \
                          decode and apply must reject bad input, not crash the \
                          primary (paper \u{a7}3.1, \u{a7}5)"
                    .to_string(),
            });
        }
    }
}

/// (3) sim determinism: no wall clock or ambient entropy in chaos-plan /
/// DES code. Convergence-deadline helpers are allowlisted via analysis.toml.
fn determinism(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        let hit = match id {
            "thread_rng" | "from_entropy" => Some(id.to_string()),
            "now" => {
                let path_now = i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && matches!(toks[i - 3].ident(), Some("Instant") | Some("SystemTime"));
                if path_now {
                    toks[i - 3].ident().map(|p| format!("{p}::now"))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = hit {
            out.push(RawFinding {
                lint: "sim-determinism",
                line: t.line,
                message: format!(
                    "`{what}` in deterministic simulation code; chaos plans and DES \
                     scheduling must be pure functions of (schedule, seed) so every \
                     failure reproduces (DESIGN.md \u{a7}8)"
                ),
            });
        }
    }
}

/// (5) durability-wait: in the server crate, any call that blocks on commit
/// durability is a finding, guard or no guard. The multiplexed IO threads
/// sweep whole connection sets; one blocked sweep stalls every connection on
/// that thread, which is exactly the head-of-line blocking the commit
/// pipeline's deferred replies remove (DESIGN.md §11). The sweep must park
/// replies on the commit ticket and let the completer wake the connection.
/// The one intentional blocking site — the thread-per-connection settle,
/// which also serves already-complete tickets on the drain path — is
/// baselined in analysis.toml; new sites must be justified there one by one.
fn durability_wait(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_punct('.') {
            continue;
        }
        let method = toks
            .get(i + 1)
            .and_then(|n| n.ident())
            .filter(|_| toks.get(i + 2).is_some_and(|n| n.is_punct('(')));
        if let Some(m) = method.filter(|m| DURABILITY_WAIT_METHODS.contains(m)) {
            let line = toks.get(i + 1).map_or(t.line, |n| n.line);
            out.push(RawFinding {
                lint: "durability-wait",
                line,
                message: format!(
                    "`.{m}()` blocks a server IO thread on commit durability; \
                     the multiplexed sweep must park replies on the commit \
                     ticket and let the completer wake the connection \
                     (DESIGN.md \u{a7}11, paper \u{a7}6 Enhanced-IO)"
                ),
            });
        }
    }
}

/// (4) concurrency-primitive consistency: `std::sync::Mutex` / `RwLock`
/// paths and use-trees anywhere in non-test code. The workspace mandates
/// parking_lot — no lock poisoning on the serving path, smaller guards.
fn sync_primitives(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let starts_std_sync = !t.in_test
            && t.ident() == Some("std")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).and_then(|n| n.ident()) == Some("sync");
        if !starts_std_sync {
            i += 1;
            continue;
        }
        // Walk the rest of the path / use-tree: idents, `::`, `{`, `}`,
        // `,`, `*`, stopping at `;` or anything else (e.g. `(`).
        let mut j = i + 4;
        while let Some(n) = toks.get(j) {
            match &n.kind {
                Ident(id) if id == "Mutex" || id == "RwLock" || id == "Condvar" => {
                    out.push(RawFinding {
                        lint: "sync-primitives",
                        line: n.line,
                        message: format!(
                            "`std::sync::{id}` in non-test code; the workspace mandates \
                             parking_lot (no poisoning to handle on the serving path, \
                             guards are Send-friendly and smaller)"
                        ),
                    });
                    j += 1;
                }
                Ident(_) | Punct(':') | Punct('{') | Punct('}') | Punct(',') | Punct('*') => {
                    j += 1;
                }
                _ => break,
            }
        }
        i = j;
    }
}

/// A live lock guard: `let`-bound, final call in its initializer was a
/// guard-returning method (empty argument list, or `lock_one(idx)`).
#[derive(Clone)]
struct Guard {
    name: String,
    depth: i32,
}

/// (2) lock discipline: heuristic dataflow over `let`-bound guards. A guard
/// dies when its enclosing block closes or on `drop(name)`. While any guard
/// is live, a call to a blocking durability/storage method is a violation;
/// a call to an ordered-append method is a finding that must be baselined.
fn lock_discipline(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    // Guards activate only after their `let` statement's semicolon.
    let mut pending: Vec<(usize, Guard)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        pending.retain(|(at, g)| {
            if *at <= i {
                guards.push(g.clone());
                false
            } else {
                true
            }
        });

        let t = &toks[i];
        match &t.kind {
            Punct('{') => depth += 1,
            Punct('}') => {
                depth -= 1;
                let d = depth;
                guards.retain(|g| g.depth <= d);
                pending.retain(|(_, g)| g.depth <= d);
            }
            Ident(id) if id == "let" && !t.in_test => {
                if let Some((name, semi, method, empty_args)) = parse_let_final_call(toks, i) {
                    let is_guard = (empty_args && GUARD_METHODS.contains(&method.as_str()))
                        || GUARD_METHODS_WITH_ARGS.contains(&method.as_str());
                    if is_guard {
                        pending.push((semi + 1, Guard { name, depth }));
                    }
                }
            }
            Ident(id) if id == "drop" && !t.in_test => {
                // `drop(name)` releases the guard early.
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.is_punct('('))
                    .and_then(|_| toks.get(i + 2))
                    .and_then(|n| n.ident())
                    .filter(|_| toks.get(i + 3).is_some_and(|n| n.is_punct(')')));
                if let Some(name) = name {
                    guards.retain(|g| g.name != name);
                    pending.retain(|(_, g)| g.name != name);
                }
            }
            Punct('.') if !t.in_test && !guards.is_empty() => {
                let method = toks
                    .get(i + 1)
                    .and_then(|n| n.ident())
                    .filter(|_| toks.get(i + 2).is_some_and(|n| n.is_punct('(')));
                if let Some(m) = method {
                    let names: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                    let names = names.join(", ");
                    let line = toks.get(i + 1).map_or(t.line, |n| n.line);
                    if BLOCKING_METHODS.contains(&m) {
                        out.push(RawFinding {
                            lint: "lock-discipline",
                            line,
                            message: format!(
                                "lock guard(s) `{names}` held across blocking `.{m}()`; \
                                 the engine must never stall on a multi-AZ durability or \
                                 storage wait while locked — drop guards first \
                                 (paper \u{a7}3.2/\u{a7}6, PR-1 group commit)"
                            ),
                        });
                    } else if ORDERED_APPEND_METHODS.contains(&m) {
                        out.push(RawFinding {
                            lint: "lock-discipline",
                            line,
                            message: format!(
                                "lock guard(s) `{names}` held across ordered `.{m}()`; \
                                 append under the engine lock is the log-order = \
                                 execution-order contract (paper \u{a7}3.2) and each site \
                                 must be individually justified in analysis.toml"
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// (6) stripe-order: the only sanctioned multi-stripe acquisition is one
/// `lock_all()` (canonical ascending order); acquiring any further stripe
/// guard while one is live can deadlock against a concurrent `lock_all`.
/// Raw stripe mutexes (`lock_counting`) are private to the stripes module —
/// mentioning them anywhere else means someone is bypassing the helpers.
fn stripe_order(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    let mut pending: Vec<(usize, Guard)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        pending.retain(|(at, g)| {
            if *at <= i {
                guards.push(g.clone());
                false
            } else {
                true
            }
        });

        let t = &toks[i];
        match &t.kind {
            Punct('{') => depth += 1,
            Punct('}') => {
                depth -= 1;
                let d = depth;
                guards.retain(|g| g.depth <= d);
                pending.retain(|(_, g)| g.depth <= d);
            }
            Ident(id) if id == "lock_counting" && !t.in_test => {
                out.push(RawFinding {
                    lint: "stripe-order",
                    line: t.line,
                    message: "raw stripe-mutex acquisition outside the stripes module; \
                              all stripe locking must go through \
                              `EngineStripes::lock_one`/`lock_all` so acquisition \
                              order stays canonical (DESIGN.md \u{a7}12)"
                        .to_string(),
                });
            }
            Ident(id) if id == "let" && !t.in_test => {
                if let Some((name, semi, method, _)) = parse_let_final_call(toks, i) {
                    if STRIPE_GUARD_METHODS.contains(&method.as_str()) {
                        pending.push((semi + 1, Guard { name, depth }));
                    }
                }
            }
            Ident(id) if id == "drop" && !t.in_test => {
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.is_punct('('))
                    .and_then(|_| toks.get(i + 2))
                    .and_then(|n| n.ident())
                    .filter(|_| toks.get(i + 3).is_some_and(|n| n.is_punct(')')));
                if let Some(name) = name {
                    guards.retain(|g| g.name != name);
                    pending.retain(|(_, g)| g.name != name);
                }
            }
            Punct('.') if !t.in_test && !guards.is_empty() => {
                let method = toks
                    .get(i + 1)
                    .and_then(|n| n.ident())
                    .filter(|_| toks.get(i + 2).is_some_and(|n| n.is_punct('(')));
                if let Some(m) = method.filter(|m| STRIPE_GUARD_METHODS.contains(m)) {
                    let names: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                    let names = names.join(", ");
                    let line = toks.get(i + 1).map_or(t.line, |n| n.line);
                    out.push(RawFinding {
                        lint: "stripe-order",
                        line,
                        message: format!(
                            "`.{m}()` while stripe guard(s) `{names}` are live; nested \
                             stripe acquisition breaks the canonical ascending lock \
                             order that makes `lock_all` deadlock-free — take one \
                             `lock_all()` up front instead (DESIGN.md \u{a7}12)"
                        ),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Recognises `let [mut] NAME = <expr ending in .method(...)>;` and returns
/// (NAME, index of the terminating `;`, method, whether the final argument
/// list is empty). The call must be the *final* expression — this rejects
/// `let role = { let st = self.st.lock(); st.role };` (guard scoped to the
/// block) and `let x = self.st.lock().role;` (guard is a temporary); callers
/// decide guard-ness from the method name and arity (so io::Read's
/// `file.read(&mut buf)` is not mistaken for a lock).
fn parse_let_final_call(toks: &[Tok], let_idx: usize) -> Option<(String, usize, String, bool)> {
    let mut j = let_idx + 1;
    if toks.get(j).and_then(|t| t.ident()) == Some("mut") {
        j += 1;
    }
    let name = toks.get(j).and_then(|t| t.ident())?;
    if name == "_" {
        return None; // `let _ = ...` drops immediately.
    }
    j += 1;
    if !toks.get(j)?.is_punct('=') {
        return None; // patterns, type ascription, let-else: not handled.
    }
    let init_start = j + 1;
    // Find the terminating `;` at relative bracket depth 0.
    let mut depth = 0i32;
    let mut semi = None;
    let mut k = init_start;
    while let Some(t) = toks.get(k) {
        match &t.kind {
            Punct('(') | Punct('[') | Punct('{') => depth += 1,
            Punct(')') | Punct(']') | Punct('}') => depth -= 1,
            Punct(';') if depth == 0 => {
                semi = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    let semi = semi?;
    let tail = &toks[init_start..semi];
    let tail = match tail.last() {
        Some(t) if t.is_punct('?') => &tail[..tail.len() - 1],
        _ => tail,
    };
    if !tail.last()?.is_punct(')') {
        return None;
    }
    // Walk back to the `(` matching the final `)`; the tokens before it must
    // be `.method`, making the call the initializer's final expression.
    let mut depth = 0i32;
    let mut open = None;
    for (idx, t) in tail.iter().enumerate().rev() {
        match &t.kind {
            Punct(')') | Punct(']') | Punct('}') => depth += 1,
            Punct('(') | Punct('[') | Punct('{') => {
                depth -= 1;
                if depth == 0 {
                    open = Some(idx);
                    break;
                }
            }
            _ => {}
        }
    }
    let open = open?;
    if open < 2 {
        return None;
    }
    let method = tail.get(open - 1)?.ident()?;
    if !tail.get(open - 2)?.is_punct('.') {
        return None;
    }
    let empty_args = open + 1 == tail.len() - 1;
    Some((name.to_string(), semi, method.to_string(), empty_args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn lints_for(rel: &str, src: &str) -> Vec<String> {
        lint_tokens(rel, &scan(src))
            .into_iter()
            .map(|f| format!("{}:{}", f.lint, f.line))
            .collect()
    }

    #[test]
    fn unwrap_in_scope_is_flagged_tests_are_not() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }\n";
        let hits = lints_for("crates/core/src/apply.rs", src);
        assert_eq!(hits, vec!["panic-freedom:1"]);
        // Same code out of scope: nothing.
        assert!(lints_for("crates/core/src/lease.rs", src).is_empty());
    }

    #[test]
    fn indexing_only_on_wire_layer() {
        let src = "fn f(a: &[u8]) -> u8 { a[0] }\n";
        assert_eq!(
            lints_for("crates/resp/src/decode.rs", src),
            vec!["panic-freedom:1"]
        );
        assert!(lints_for("crates/engine/src/exec/strings.rs", src).is_empty());
    }

    #[test]
    fn guard_across_blocking_wait() {
        let src = "fn f(&self) {\n\
                   let st = self.st.lock();\n\
                   self.log.wait_durable(st.id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3"]
        );
    }

    #[test]
    fn dropped_guard_is_fine() {
        let src = "fn f(&self) {\n\
                   let st = self.st.lock();\n\
                   let id = st.id;\n\
                   drop(st);\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn guard_scoped_to_block_is_fine() {
        let src = "fn f(&self) {\n\
                   let id = { let st = self.st.lock(); st.id };\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn temporary_guard_is_fine() {
        let src = "fn f(&self) {\n\
                   let id = self.st.lock().id;\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_a_guard() {
        let src = "fn f(&self, f: &mut impl std::io::Read, buf: &mut [u8]) {\n\
                   let n = f.read(buf);\n\
                   self.log.wait_durable(0);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn append_under_guard_is_reported() {
        let src = "fn f(&self) {\n\
                   let mut st = self.st.lock();\n\
                   let ids = self.log.append_after(st.pos, vec![]);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3"]
        );
    }

    #[test]
    fn determinism_scope() {
        let src = "fn gen() { let t = Instant::now(); let r = thread_rng(); }\n";
        assert_eq!(
            lints_for("crates/sim/src/chaos.rs", src),
            vec!["sim-determinism:1", "sim-determinism:1"]
        );
        assert!(lints_for("crates/sim/src/workload.rs", src).is_empty());
    }

    #[test]
    fn durability_wait_flagged_in_server_scope_only() {
        // No guard anywhere — lock-discipline stays silent, but in the
        // server crate the bare blocking call is still a finding.
        let src = "fn settle(&self) {\n\
                   let rs = node.wait_finish(sb);\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/server/src/lib.rs", src),
            vec!["durability-wait:2", "durability-wait:3"]
        );
        // The same code outside the server crate is not this lint's business.
        assert!(lints_for("crates/core/src/lease.rs", src).is_empty());
    }

    #[test]
    fn durability_wait_ignores_tests_and_nonblocking_calls() {
        let src = "fn sweep(&self) { let r = node.try_finish(sb); }\n\
                   #[cfg(test)]\nmod tests { fn t() { log.wait_durable(0); } }\n";
        assert!(lints_for("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn inline_idle_flush_under_guard_is_reported() {
        // The §13 idle fast path blocks on the flush token and the log
        // append; calling it with a stripe guard live is a violation, and
        // calling it after the guards drop is the sanctioned shape.
        let src = "fn f(&self) {\n\
                   let guards = self.stripes.lock_one(idx);\n\
                   self.flush_inline_idle();\n\
                   }\n\
                   fn g(&self) {\n\
                   let guards = self.stripes.lock_one(idx);\n\
                   drop(guards);\n\
                   self.flush_inline_idle();\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3"]
        );
    }

    #[test]
    fn stripe_guard_across_blocking_wait() {
        // `lock_all()` (empty args) and `lock_one(idx)` (with args) both
        // register as guards for the lock-discipline pass.
        let src = "fn f(&self) {\n\
                   let mut guards = self.stripes.lock_all();\n\
                   self.log.wait_durable(id);\n\
                   }\n\
                   fn g(&self, idx: usize) {\n\
                   let guards = self.stripes.lock_one(idx);\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3", "lock-discipline:7"]
        );
    }

    #[test]
    fn nested_stripe_acquisition_is_flagged() {
        let src = "fn f(&self) {\n\
                   let mut guards = self.stripes.lock_one(0);\n\
                   let more = self.stripes.lock_all();\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["stripe-order:3"]
        );
        // The stripes module itself (lock_all's own implementation calls
        // lock_counting per stripe) is exempt.
        assert!(lints_for("crates/core/src/stripes.rs", src).is_empty());
    }

    #[test]
    fn dropped_stripe_guard_allows_reacquisition() {
        let src = "fn f(&self) {\n\
                   let guards = self.stripes.lock_one(0);\n\
                   drop(guards);\n\
                   let more = self.stripes.lock_all();\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_stripe_mutex_use_is_flagged_outside_module() {
        let src = "fn f(&self) { let g = self.stripes.lock_counting(&m); }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["stripe-order:1"]
        );
    }

    #[test]
    fn std_sync_mutex_flagged_atomics_fine() {
        let hits = lints_for(
            "crates/core/src/monitor.rs",
            "use std::sync::{Arc, Mutex};\nuse std::sync::atomic::AtomicU64;\n",
        );
        assert_eq!(hits, vec!["sync-primitives:1"]);
    }
}
