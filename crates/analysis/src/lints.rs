//! The per-file invariant families. Each lint is a pass over the token
//! stream from [`crate::lexer`]; scopes are hardcoded here (the baseline
//! file only holds *exceptions*, never scope). Every diagnostic names the
//! part of the MemoryDB argument it protects, so a violation reads as
//! "which paper property would this break", not just "style nit".
//!
//! The whole-workspace lock-order graph (lint family "lock-order") lives in
//! [`crate::lockgraph`]; it shares the guard parser defined here.

use crate::lexer::Tok;
use crate::lexer::TokKind::{Ident, Punct};

/// A lint hit before file/snippet attachment (done by the caller).
pub(crate) struct RawFinding {
    pub lint: &'static str,
    pub line: u32,
    pub message: String,
}

/// Serving/apply paths where a panic kills the primary mid-lease.
/// Entries ending in `/` are directory prefixes, others exact files.
const PANIC_SCOPE: &[&str] = &[
    "crates/engine/src/exec/",
    "crates/engine/src/command.rs",
    "crates/engine/src/ds/",
    "crates/core/src/apply.rs",
    "crates/core/src/node.rs",
    "crates/core/src/stripes.rs",
    "crates/txlog/src/service.rs",
    "crates/resp/src/decode.rs",
];

/// Wire/log-input layer where direct indexing is forbidden outright.
/// The exec and ds layers are excluded: exec's ~400 `args[i]` sites are all
/// behind arity validation in the command table, and ds's skiplist/HLL
/// indices are internal arena handles — the panic-freedom lint above still
/// forbids unwrap/expect/panic in both. Decode, apply, the node frontend and
/// the log service, by contrast, face untrusted socket/log bytes and must
/// reject rather than crash.
const INDEX_SCOPE: &[&str] = &[
    "crates/core/src/apply.rs",
    "crates/core/src/node.rs",
    "crates/core/src/stripes.rs",
    "crates/txlog/src/service.rs",
    "crates/resp/src/decode.rs",
];

/// Deterministic-simulation code: chaos plan construction and the DES core.
const DETERMINISM_SCOPE: &[&str] = &["crates/sim/src/chaos.rs", "crates/sim/src/des.rs"];

/// The zero-copy serve path (DESIGN.md §15): parse → submit must hand
/// command bytes around as refcounted slices of the input chunk, never as
/// fresh copies. These are the files where the allocation census's
/// per-command budget is won or lost.
const ZERO_COPY_SCOPE: &[&str] = &["crates/server/src/lib.rs", "crates/resp/src/decode.rs"];

/// Identifiers that name command-argument vectors or wire buffers on the
/// serve path. `.clone()` with one of these as receiver (directly or via
/// an index expression like `cmds[i]`) deep-copies bytes the zero-copy
/// path deliberately borrows.
const CMD_BYTES_IDENTS: &[&str] = &["args", "arg", "cmds", "cmd", "batch", "raw", "buf", "out"];

/// The server crate, whose multiplexed IO threads sweep many connections
/// each. A durability wait here stalls every connection sharing the thread.
const SERVER_SCOPE: &[&str] = &["crates/server/"];

/// Calls that block the caller until commit durability (or a resolved
/// commit ticket): the raw log waits plus the node-level blocking finisher.
const DURABILITY_WAIT_METHODS: &[&str] = &[
    "wait_durable",
    "wait_committed_at_least",
    "wait_for_entries",
    "wait_finish",
];

/// Final-call methods in a `let` initializer that make the binding a guard.
/// These must have an *empty* argument list (so `io::Read::read(&mut buf)`
/// is not mistaken for a lock). `try_lock` guards arrive through
/// `if let Some(g) = m.try_lock()` / `let Some(g) = m.try_lock() else`
/// bindings, which [`parse_guard_binding`] also understands.
const GUARD_METHODS: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "write",
    "upgradable_read",
    "lock_all",
];

/// Guard-returning methods that take arguments (`lock_one(idx)` returns the
/// stripe guard set for one stripe).
const GUARD_METHODS_WITH_ARGS: &[&str] = &["lock_one"];

/// Stripe-guard constructors: the only sanctioned stripe-lock acquisition
/// paths. Acquiring another stripe guard while one is live violates the
/// canonical ascending-order acquisition (`EngineStripes::lock_all`) that
/// makes multi-stripe locking deadlock-free (DESIGN.md §12).
const STRIPE_GUARD_METHODS: &[&str] = &["lock_one", "lock_all"];

/// The one module allowed to touch the raw stripe mutexes; everywhere else
/// must go through `lock_one`/`lock_all`.
const STRIPE_MODULE: &str = "crates/core/src/stripes.rs";

/// Methods that block on remote durability / storage while running:
/// holding any lock guard across these defeats PR-1 group commit and stalls
/// the engine for a multi-AZ round trip. Always a violation.
/// `flush_inline_idle` is the §13 idle fast path — a *blocking* flush-token
/// acquire plus a log append on the submitting connection's thread, so
/// holding a stripe guard (or `st`) across it would serialize every other
/// stripe behind one connection's append.
const BLOCKING_METHODS: &[&str] = &[
    "wait_durable",
    "wait_for_entries",
    "put",
    "flush_inline_idle",
];

/// Non-blocking ordered-append calls into the txlog. Holding the engine/state
/// lock across these is the *intentional* ordering contract (log order =
/// execution order, MemoryDB §3.2) — each such site must be explicitly
/// baselined in analysis.toml with a justification, so new ones are caught.
const ORDERED_APPEND_METHODS: &[&str] = &["append_after", "append_batch_after"];

fn in_scope(rel: &str, scope: &[&str]) -> bool {
    scope.iter().any(|s| {
        if s.ends_with('/') {
            rel.starts_with(s)
        } else {
            rel == *s
        }
    })
}

/// Runs every lint applicable to `rel` over its token stream.
pub(crate) fn lint_tokens(rel: &str, toks: &[Tok]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    if in_scope(rel, PANIC_SCOPE) {
        panic_freedom(toks, &mut out);
    }
    if in_scope(rel, INDEX_SCOPE) {
        index_freedom(toks, &mut out);
    }
    if in_scope(rel, DETERMINISM_SCOPE) {
        determinism(toks, &mut out);
    }
    if in_scope(rel, SERVER_SCOPE) {
        durability_wait(toks, &mut out);
    }
    if in_scope(rel, ZERO_COPY_SCOPE) {
        zero_copy(toks, &mut out);
    }
    // Workspace-wide passes.
    lock_discipline(toks, &mut out);
    sync_primitives(toks, &mut out);
    atomics_ordering(rel, toks, &mut out);
    if rel != STRIPE_MODULE {
        stripe_order(toks, &mut out);
    }
    out.sort_by_key(|f| f.line);
    out
}

/// (1) panic-freedom: `.unwrap()` / `.expect(` method calls and
/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros.
fn panic_freedom(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        match id {
            "unwrap" | "expect" => {
                let prev_dot = i > 0 && toks[i - 1].is_punct('.');
                let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if prev_dot && next_paren {
                    out.push(RawFinding {
                        lint: "panic-freedom",
                        line: t.line,
                        message: format!(
                            "`.{id}()` can panic in the serving/apply path \
                             (MemoryDB availability argument: a primary panic forfeits \
                             its lease and forces failover, paper \u{a7}5)"
                        ),
                    });
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                out.push(RawFinding {
                    lint: "panic-freedom",
                    line: t.line,
                    message: format!(
                        "`{id}!` in the serving/apply path \
                         (MemoryDB availability argument: a primary panic forfeits \
                         its lease and forces failover, paper \u{a7}5)"
                    ),
                });
            }
            _ => {}
        }
    }
}

/// (1b) indexing sub-lint: `expr[...]` indexing/slicing on the wire/log-input
/// layer, where the indexed data came off a socket or the transaction log.
fn index_freedom(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_punct('[') || i == 0 {
            continue;
        }
        let indexes_expr = match &toks[i - 1].kind {
            // A keyword before `[` means an array/slice type or literal
            // (`&mut [Frame]`, `return [0; 4]`), not an index expression.
            Ident(id) => !matches!(
                id.as_str(),
                "mut" | "ref" | "dyn" | "return" | "break" | "else" | "in" | "match"
            ),
            Punct(')') | Punct(']') => true,
            _ => false,
        };
        if indexes_expr {
            out.push(RawFinding {
                lint: "panic-freedom",
                line: t.line,
                message: "direct index/slice can panic on malformed wire/log input; \
                          decode and apply must reject bad input, not crash the \
                          primary (paper \u{a7}3.1, \u{a7}5)"
                    .to_string(),
            });
        }
    }
}

/// (3) sim determinism: no wall clock or ambient entropy in chaos-plan /
/// DES code. Convergence-deadline helpers are allowlisted via analysis.toml.
fn determinism(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(id) = t.ident() else { continue };
        let hit = match id {
            "thread_rng" | "from_entropy" => Some(id.to_string()),
            "now" => {
                let path_now = i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && matches!(toks[i - 3].ident(), Some("Instant") | Some("SystemTime"));
                if path_now {
                    toks[i - 3].ident().map(|p| format!("{p}::now"))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(what) = hit {
            out.push(RawFinding {
                lint: "sim-determinism",
                line: t.line,
                message: format!(
                    "`{what}` in deterministic simulation code; chaos plans and DES \
                     scheduling must be pure functions of (schedule, seed) so every \
                     failure reproduces (DESIGN.md \u{a7}8)"
                ),
            });
        }
    }
}

/// (5) durability-wait: in the server crate, any call that blocks on commit
/// durability is a finding, guard or no guard. The multiplexed IO threads
/// sweep whole connection sets; one blocked sweep stalls every connection on
/// that thread, which is exactly the head-of-line blocking the commit
/// pipeline's deferred replies remove (DESIGN.md §11). The sweep must park
/// replies on the commit ticket and let the completer wake the connection.
/// The one intentional blocking site — the thread-per-connection settle,
/// which also serves already-complete tickets on the drain path — is
/// baselined in analysis.toml; new sites must be justified there one by one.
fn durability_wait(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_punct('.') {
            continue;
        }
        let method = toks
            .get(i + 1)
            .and_then(|n| n.ident())
            .filter(|_| toks.get(i + 2).is_some_and(|n| n.is_punct('(')));
        if let Some(m) = method.filter(|m| DURABILITY_WAIT_METHODS.contains(m)) {
            let line = toks.get(i + 1).map_or(t.line, |n| n.line);
            out.push(RawFinding {
                lint: "durability-wait",
                line,
                message: format!(
                    "`.{m}()` blocks a server IO thread on commit durability; \
                     the multiplexed sweep must park replies on the commit \
                     ticket and let the completer wake the connection \
                     (DESIGN.md \u{a7}11, paper \u{a7}6 Enhanced-IO)"
                ),
            });
        }
    }
}

/// (9) zero-copy: on the serve-path files, `.to_vec()` anywhere and
/// `.clone()` whose receiver is a command-argument vector or wire buffer
/// ([`CMD_BYTES_IDENTS`], directly or through an index expression) are
/// findings. Each copies bytes the borrowed-decode path deliberately
/// shares, regressing the allocation census (DESIGN.md §15) one
/// "harmless" clone at a time. Intentional copies must be baselined in
/// analysis.toml with a written justification.
fn zero_copy(toks: &[Tok], out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_punct('.') || i == 0 {
            continue;
        }
        let method = toks
            .get(i + 1)
            .and_then(|n| n.ident())
            .filter(|_| toks.get(i + 2).is_some_and(|n| n.is_punct('(')));
        let Some(m) = method else { continue };
        let line = toks.get(i + 1).map_or(t.line, |n| n.line);
        if m == "to_vec" {
            out.push(RawFinding {
                lint: "zero-copy",
                line,
                message: "`.to_vec()` on the zero-copy serve path copies wire bytes \
                          the borrowed decode deliberately shares; pass `Bytes` \
                          slices through instead (DESIGN.md \u{a7}15)"
                    .to_string(),
            });
            continue;
        }
        if m != "clone" {
            continue;
        }
        // Receiver ident: the token before `.`, walking an index
        // expression (`cmds[i].clone()`) back through its brackets.
        let recv = match &toks[i - 1].kind {
            Ident(id) => Some(id.as_str()),
            Punct(']') => {
                let mut d = 0i32;
                let mut j = i - 1;
                loop {
                    match &toks[j].kind {
                        Punct(']') => d += 1,
                        Punct('[') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
                (j > 0).then(|| toks[j - 1].ident()).flatten()
            }
            _ => None,
        };
        if let Some(r) = recv.filter(|r| CMD_BYTES_IDENTS.contains(r)) {
            out.push(RawFinding {
                lint: "zero-copy",
                line,
                message: format!(
                    "`{r}.clone()` deep-copies command bytes on the serve path; \
                     the parse\u{2192}submit pipeline hands arguments around by \
                     reference (refcounted slices of the input chunk) so per-command \
                     allocations stay within the census budget (DESIGN.md \u{a7}15)"
                ),
            });
        }
    }
}

/// (4) concurrency-primitive consistency: `std::sync::Mutex` / `RwLock`
/// paths and use-trees anywhere in non-test code. The workspace mandates
/// parking_lot — no lock poisoning on the serving path, smaller guards.
fn sync_primitives(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let starts_std_sync = !t.in_test
            && t.ident() == Some("std")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).and_then(|n| n.ident()) == Some("sync");
        if !starts_std_sync {
            i += 1;
            continue;
        }
        // Walk the rest of the path / use-tree: idents, `::`, `{`, `}`,
        // `,`, `*`, stopping at `;` or anything else (e.g. `(`).
        let mut j = i + 4;
        while let Some(n) = toks.get(j) {
            match &n.kind {
                Ident(id) if id == "Mutex" || id == "RwLock" || id == "Condvar" => {
                    out.push(RawFinding {
                        lint: "sync-primitives",
                        line: n.line,
                        message: format!(
                            "`std::sync::{id}` in non-test code; the workspace mandates \
                             parking_lot (no poisoning to handle on the serving path, \
                             guards are Send-friendly and smaller)"
                        ),
                    });
                    j += 1;
                }
                Ident(_) | Punct(':') | Punct('{') | Punct('}') | Punct(',') | Punct('*') => {
                    j += 1;
                }
                _ => break,
            }
        }
        i = j;
    }
}

/// A live lock guard: `let`-bound, final call in its initializer was a
/// guard-returning method (empty argument list, or `lock_one(idx)`).
#[derive(Clone)]
struct Guard {
    name: String,
    depth: i32,
}

/// (2) lock discipline: heuristic dataflow over `let`-bound guards. A guard
/// dies when its enclosing block closes or on `drop(name)`. While any guard
/// is live, a call to a blocking durability/storage method is a violation;
/// a call to an ordered-append method is a finding that must be baselined.
fn lock_discipline(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    // Guards activate only after their `let` statement's semicolon.
    let mut pending: Vec<(usize, Guard)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        pending.retain(|(at, g)| {
            if *at <= i {
                guards.push(g.clone());
                false
            } else {
                true
            }
        });

        let t = &toks[i];
        match &t.kind {
            Punct('{') => depth += 1,
            Punct('}') => {
                depth -= 1;
                let d = depth;
                guards.retain(|g| g.depth <= d);
                pending.retain(|(_, g)| g.depth <= d);
            }
            Ident(id) if id == "let" && !t.in_test => {
                if let Some(gb) = parse_guard_binding(toks, i, depth) {
                    if gb.is_lock_guard() {
                        pending.push((
                            gb.activate_at,
                            Guard {
                                name: gb.name,
                                depth: gb.guard_depth,
                            },
                        ));
                    }
                }
            }
            Ident(id) if id == "drop" && !t.in_test => {
                // `drop(name)` releases the guard early.
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.is_punct('('))
                    .and_then(|_| toks.get(i + 2))
                    .and_then(|n| n.ident())
                    .filter(|_| toks.get(i + 3).is_some_and(|n| n.is_punct(')')));
                if let Some(name) = name {
                    guards.retain(|g| g.name != name);
                    pending.retain(|(_, g)| g.name != name);
                }
            }
            Punct('.') if !t.in_test && !guards.is_empty() => {
                let method = toks
                    .get(i + 1)
                    .and_then(|n| n.ident())
                    .filter(|_| toks.get(i + 2).is_some_and(|n| n.is_punct('(')));
                if let Some(m) = method {
                    let names: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                    let names = names.join(", ");
                    let line = toks.get(i + 1).map_or(t.line, |n| n.line);
                    if BLOCKING_METHODS.contains(&m) {
                        out.push(RawFinding {
                            lint: "lock-discipline",
                            line,
                            message: format!(
                                "lock guard(s) `{names}` held across blocking `.{m}()`; \
                                 the engine must never stall on a multi-AZ durability or \
                                 storage wait while locked — drop guards first \
                                 (paper \u{a7}3.2/\u{a7}6, PR-1 group commit)"
                            ),
                        });
                    } else if ORDERED_APPEND_METHODS.contains(&m) {
                        out.push(RawFinding {
                            lint: "lock-discipline",
                            line,
                            message: format!(
                                "lock guard(s) `{names}` held across ordered `.{m}()`; \
                                 append under the engine lock is the log-order = \
                                 execution-order contract (paper \u{a7}3.2) and each site \
                                 must be individually justified in analysis.toml"
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// (6) stripe-order: the only sanctioned multi-stripe acquisition is one
/// `lock_all()` (canonical ascending order); acquiring any further stripe
/// guard while one is live can deadlock against a concurrent `lock_all`.
/// Raw stripe mutexes (`lock_counting`) are private to the stripes module —
/// mentioning them anywhere else means someone is bypassing the helpers.
fn stripe_order(toks: &[Tok], out: &mut Vec<RawFinding>) {
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    let mut pending: Vec<(usize, Guard)> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        pending.retain(|(at, g)| {
            if *at <= i {
                guards.push(g.clone());
                false
            } else {
                true
            }
        });

        let t = &toks[i];
        match &t.kind {
            Punct('{') => depth += 1,
            Punct('}') => {
                depth -= 1;
                let d = depth;
                guards.retain(|g| g.depth <= d);
                pending.retain(|(_, g)| g.depth <= d);
            }
            Ident(id) if id == "lock_counting" && !t.in_test => {
                out.push(RawFinding {
                    lint: "stripe-order",
                    line: t.line,
                    message: "raw stripe-mutex acquisition outside the stripes module; \
                              all stripe locking must go through \
                              `EngineStripes::lock_one`/`lock_all` so acquisition \
                              order stays canonical (DESIGN.md \u{a7}12)"
                        .to_string(),
                });
            }
            Ident(id) if id == "let" && !t.in_test => {
                if let Some(gb) = parse_guard_binding(toks, i, depth) {
                    if STRIPE_GUARD_METHODS.contains(&gb.method.as_str()) {
                        pending.push((
                            gb.activate_at,
                            Guard {
                                name: gb.name,
                                depth: gb.guard_depth,
                            },
                        ));
                    }
                }
            }
            Ident(id) if id == "drop" && !t.in_test => {
                let name = toks
                    .get(i + 1)
                    .filter(|n| n.is_punct('('))
                    .and_then(|_| toks.get(i + 2))
                    .and_then(|n| n.ident())
                    .filter(|_| toks.get(i + 3).is_some_and(|n| n.is_punct(')')));
                if let Some(name) = name {
                    guards.retain(|g| g.name != name);
                    pending.retain(|(_, g)| g.name != name);
                }
            }
            Punct('.') if !t.in_test && !guards.is_empty() => {
                let method = toks
                    .get(i + 1)
                    .and_then(|n| n.ident())
                    .filter(|_| toks.get(i + 2).is_some_and(|n| n.is_punct('(')));
                if let Some(m) = method.filter(|m| STRIPE_GUARD_METHODS.contains(m)) {
                    let names: Vec<&str> = guards.iter().map(|g| g.name.as_str()).collect();
                    let names = names.join(", ");
                    let line = toks.get(i + 1).map_or(t.line, |n| n.line);
                    out.push(RawFinding {
                        lint: "stripe-order",
                        line,
                        message: format!(
                            "`.{m}()` while stripe guard(s) `{names}` are live; nested \
                             stripe acquisition breaks the canonical ascending lock \
                             order that makes `lock_all` deadlock-free — take one \
                             `lock_all()` up front instead (DESIGN.md \u{a7}12)"
                        ),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// A parsed guard-producing binding. Three shapes are recognised:
///
/// * `let [mut] NAME = <expr ending in .method(...)>;` — live after the `;`.
/// * `let Some(NAME) = <expr>.method(...) else { ... };` — live after the
///   diverging else block's `;` (the else path never sees the guard).
/// * `if let Some(NAME) = <expr>.method(...) {` (also `while let`, and `Ok`
///   as the wrapper) — live only inside the then-block, so `guard_depth` is
///   one deeper than the `let` itself.
///
/// The call must be the *final* expression — this rejects
/// `let role = { let st = self.st.lock(); st.role };` (guard scoped to the
/// block) and `let x = self.st.lock().role;` (guard is a temporary); callers
/// decide guard-ness from the method name and arity (so io::Read's
/// `file.read(&mut buf)` is not mistaken for a lock).
pub(crate) struct GuardBinding {
    pub name: String,
    /// Token index from which the binding is live.
    pub activate_at: usize,
    /// Block depth the guard belongs to, relative to the caller's counter
    /// at the `let` token (if/while-let guards live one level deeper).
    pub guard_depth: i32,
    /// Final method call of the initializer.
    pub method: String,
    /// Absolute token index of that method's ident (so whole-graph passes
    /// can mark the acquisition site as consumed by this binding).
    pub method_idx: usize,
    /// Whether the final call's argument list is empty.
    pub empty_args: bool,
    /// Last path ident before `.method(`, e.g. `self.st.lock()` → `st`.
    pub receiver: Option<String>,
}

impl GuardBinding {
    /// Does this binding hold a lock guard (by method name and arity)?
    pub(crate) fn is_lock_guard(&self) -> bool {
        (self.empty_args && GUARD_METHODS.contains(&self.method.as_str()))
            || GUARD_METHODS_WITH_ARGS.contains(&self.method.as_str())
    }
}

/// How a binding's initializer expression ends.
enum InitEnd {
    /// Plain `let`: `;` at this index.
    Semi(usize),
    /// `let ... else`: the `else` ident at this index.
    Else(usize),
    /// `if let` / `while let` condition: the then-block `{` at this index.
    Brace(usize),
}

pub(crate) fn parse_guard_binding(
    toks: &[Tok],
    let_idx: usize,
    depth: i32,
) -> Option<GuardBinding> {
    let in_cond = let_idx > 0 && matches!(toks[let_idx - 1].ident(), Some("if") | Some("while"));
    let mut j = let_idx + 1;
    if toks.get(j).and_then(|t| t.ident()) == Some("mut") {
        j += 1;
    }
    let first = toks.get(j).and_then(|t| t.ident())?;
    let wrapper =
        matches!(first, "Some" | "Ok") && toks.get(j + 1).is_some_and(|t| t.is_punct('('));
    let (name, eq_idx) = if wrapper {
        let mut k = j + 2;
        if toks.get(k).and_then(|t| t.ident()) == Some("mut") {
            k += 1;
        }
        let n = toks.get(k).and_then(|t| t.ident())?;
        if !toks.get(k + 1)?.is_punct(')') {
            return None; // nested patterns: not handled.
        }
        (n, k + 2)
    } else {
        if in_cond {
            return None; // `if let <other pattern>` never binds a guard here.
        }
        (first, j + 1)
    };
    if name == "_" {
        return None; // `let _ = ...` drops immediately.
    }
    if !toks.get(eq_idx)?.is_punct('=') {
        return None; // tuple patterns, type ascription: not handled.
    }
    let init_start = eq_idx + 1;
    // Find where the initializer ends, at relative bracket depth 0.
    let mut d = 0i32;
    let mut k = init_start;
    let end = loop {
        let t = toks.get(k)?;
        match &t.kind {
            Punct('{') if d == 0 && in_cond => break InitEnd::Brace(k),
            Punct('(') | Punct('[') | Punct('{') => d += 1,
            Punct(')') | Punct(']') | Punct('}') => d -= 1,
            Punct(';') if d == 0 => break InitEnd::Semi(k),
            Ident(id) if d == 0 && id == "else" && !in_cond => break InitEnd::Else(k),
            _ => {}
        }
        k += 1;
    };
    let (tail_end, activate_at, guard_depth) = match end {
        InitEnd::Semi(semi) => {
            if wrapper {
                return None; // refutable pattern without else: not valid Rust.
            }
            (semi, semi + 1, depth)
        }
        InitEnd::Else(els) => {
            if !wrapper {
                return None;
            }
            // Skip the diverging else block, then the terminating `;`.
            if !toks.get(els + 1)?.is_punct('{') {
                return None;
            }
            let mut bd = 0i32;
            let mut m = els + 1;
            let close = loop {
                let t = toks.get(m)?;
                if t.is_punct('{') {
                    bd += 1;
                } else if t.is_punct('}') {
                    bd -= 1;
                    if bd == 0 {
                        break m;
                    }
                }
                m += 1;
            };
            let after = if toks.get(close + 1).is_some_and(|t| t.is_punct(';')) {
                close + 2
            } else {
                close + 1
            };
            (els, after, depth)
        }
        InitEnd::Brace(brace) => {
            if !wrapper {
                return None;
            }
            (brace, brace + 1, depth + 1)
        }
    };
    let tail = &toks[init_start..tail_end];
    let (method, rel_idx, empty_args, receiver) = final_method_call(tail)?;
    Some(GuardBinding {
        name: name.to_string(),
        activate_at,
        guard_depth,
        method,
        method_idx: init_start + rel_idx,
        empty_args,
        receiver,
    })
}

/// If `tail` ends in `.method(...)` (optionally followed by `?`), returns
/// (method, tail-relative index of the method ident, empty-args, receiver
/// ident directly before the `.`, if it is a plain ident).
fn final_method_call(tail: &[Tok]) -> Option<(String, usize, bool, Option<String>)> {
    let tail = match tail.last() {
        Some(t) if t.is_punct('?') => &tail[..tail.len() - 1],
        _ => tail,
    };
    if !tail.last()?.is_punct(')') {
        return None;
    }
    // Walk back to the `(` matching the final `)`; the tokens before it must
    // be `.method`, making the call the initializer's final expression.
    let mut depth = 0i32;
    let mut open = None;
    for (idx, t) in tail.iter().enumerate().rev() {
        match &t.kind {
            Punct(')') | Punct(']') | Punct('}') => depth += 1,
            Punct('(') | Punct('[') | Punct('{') => {
                depth -= 1;
                if depth == 0 {
                    open = Some(idx);
                    break;
                }
            }
            _ => {}
        }
    }
    let open = open?;
    if open < 2 {
        return None;
    }
    let method = tail.get(open - 1)?.ident()?;
    if !tail.get(open - 2)?.is_punct('.') {
        return None;
    }
    let receiver = if open >= 3 {
        tail.get(open - 3)
            .and_then(|t| t.ident())
            .map(str::to_string)
    } else {
        None
    };
    let empty_args = open + 1 == tail.len() - 1;
    Some((method.to_string(), open - 1, empty_args, receiver))
}

// ---------------------------------------------------------------------------
// (7) atomics-ordering
// ---------------------------------------------------------------------------

/// Atomic RMW methods whose `Relaxed` use is always a counter/gauge update:
/// the modification itself is atomic and no cross-thread control flow hangs
/// off the ordering of a statistics increment.
const RELAXED_OK_RMW: &[&str] = &["fetch_add", "fetch_sub", "fetch_max", "fetch_min"];

/// Crates that are statistics/observability or load-driver code by
/// construction — off the serving path, so `Relaxed` is categorically fine.
const RELAXED_OK_SCOPES: &[&str] = &["crates/metrics/", "crates/bench/"];

/// How one `Ordering::Relaxed` site is classified. The census is total:
/// every site in non-test workspace code gets exactly one class, and every
/// `Scrutinized` site is either baselined with a written justification in
/// analysis.toml or a gate-failing finding — no silent passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicClass {
    /// In a stats/bench crate ([`RELAXED_OK_SCOPES`]).
    StatsScope,
    /// A counter/gauge RMW ([`RELAXED_OK_RMW`]).
    CounterRmw,
    /// A load/store/swap/CAS that may gate a cross-thread handoff.
    Scrutinized,
}

impl AtomicClass {
    /// Short census label.
    pub fn label(self) -> &'static str {
        match self {
            AtomicClass::StatsScope => "stats-scope",
            AtomicClass::CounterRmw => "counter-rmw",
            AtomicClass::Scrutinized => "scrutinized",
        }
    }
}

/// One `Ordering::Relaxed` site found in non-test code.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// 1-based source line of the `Relaxed` token.
    pub line: u32,
    /// Receiver ident before `.method(`, or `<expr>` when it is not a plain
    /// ident (chained call, free function).
    pub receiver: String,
    /// The atomic method the ordering parameterizes.
    pub method: String,
    /// Classification (total — every site gets one).
    pub class: AtomicClass,
}

/// Classifies every `Ordering::Relaxed` token in `toks` (non-test code).
pub(crate) fn classify_relaxed_sites(rel: &str, toks: &[Tok]) -> Vec<AtomicSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.ident() != Some("Relaxed") {
            continue;
        }
        let qualified = i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].ident() == Some("Ordering");
        if !qualified {
            continue;
        }
        let (method, receiver) = enclosing_atomic_call(toks, i - 3)
            .unwrap_or_else(|| ("<unknown>".to_string(), "<expr>".to_string()));
        let class = if RELAXED_OK_SCOPES.iter().any(|s| rel.starts_with(s)) {
            AtomicClass::StatsScope
        } else if RELAXED_OK_RMW.contains(&method.as_str()) {
            AtomicClass::CounterRmw
        } else {
            AtomicClass::Scrutinized
        };
        out.push(AtomicSite {
            line: t.line,
            receiver,
            method,
            class,
        });
    }
    out
}

/// Walks backwards from the `Ordering` ident to the innermost enclosing call
/// and returns (method, receiver). Stops at a statement boundary.
fn enclosing_atomic_call(toks: &[Tok], ord_idx: usize) -> Option<(String, String)> {
    let mut depth = 0i32;
    let mut j = ord_idx;
    while j > 1 {
        j -= 1;
        match &toks[j].kind {
            Punct(')') | Punct(']') => depth += 1,
            Punct('(') | Punct('[') if depth > 0 => depth -= 1,
            Punct('(') => {
                if let Some(m) = toks[j - 1].ident() {
                    let receiver = (j >= 3 && toks[j - 2].is_punct('.'))
                        .then(|| toks[j - 3].ident())
                        .flatten()
                        .unwrap_or("<expr>");
                    return Some((m.to_string(), receiver.to_string()));
                }
                // A grouping paren, not a call — keep walking outward.
            }
            Punct(';') | Punct('{') | Punct('}') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// (7) atomics-ordering: every `Ordering::Relaxed` outside the stats crates
/// must be a counter RMW; loads/stores/swaps/CAS become findings that need
/// a written justification in analysis.toml (or a stronger ordering).
fn atomics_ordering(rel: &str, toks: &[Tok], out: &mut Vec<RawFinding>) {
    for site in classify_relaxed_sites(rel, toks) {
        if site.class == AtomicClass::Scrutinized {
            out.push(RawFinding {
                lint: "atomics-ordering",
                line: site.line,
                message: format!(
                    "`Ordering::Relaxed` on `{}.{}`: an atomic that gates a \
                     cross-thread handoff needs Release/Acquire so the writer's \
                     prior stores happen-before the reader's loads (the \
                     reply-after-durable chain, DESIGN.md \u{a7}9); counters may \
                     stay Relaxed, every other site needs a written \
                     justification in analysis.toml",
                    site.receiver, site.method
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn lints_for(rel: &str, src: &str) -> Vec<String> {
        lint_tokens(rel, &scan(src))
            .into_iter()
            .map(|f| format!("{}:{}", f.lint, f.line))
            .collect()
    }

    #[test]
    fn unwrap_in_scope_is_flagged_tests_are_not() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn t() { Some(1).unwrap(); } }\n";
        let hits = lints_for("crates/core/src/apply.rs", src);
        assert_eq!(hits, vec!["panic-freedom:1"]);
        // Same code out of scope: nothing.
        assert!(lints_for("crates/core/src/lease.rs", src).is_empty());
    }

    #[test]
    fn indexing_only_on_wire_layer() {
        let src = "fn f(a: &[u8]) -> u8 { a[0] }\n";
        assert_eq!(
            lints_for("crates/resp/src/decode.rs", src),
            vec!["panic-freedom:1"]
        );
        assert!(lints_for("crates/engine/src/exec/strings.rs", src).is_empty());
    }

    #[test]
    fn guard_across_blocking_wait() {
        let src = "fn f(&self) {\n\
                   let st = self.st.lock();\n\
                   self.log.wait_durable(st.id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3"]
        );
    }

    #[test]
    fn dropped_guard_is_fine() {
        let src = "fn f(&self) {\n\
                   let st = self.st.lock();\n\
                   let id = st.id;\n\
                   drop(st);\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn guard_scoped_to_block_is_fine() {
        let src = "fn f(&self) {\n\
                   let id = { let st = self.st.lock(); st.id };\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn temporary_guard_is_fine() {
        let src = "fn f(&self) {\n\
                   let id = self.st.lock().id;\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn io_read_with_args_is_not_a_guard() {
        let src = "fn f(&self, f: &mut impl std::io::Read, buf: &mut [u8]) {\n\
                   let n = f.read(buf);\n\
                   self.log.wait_durable(0);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn append_under_guard_is_reported() {
        let src = "fn f(&self) {\n\
                   let mut st = self.st.lock();\n\
                   let ids = self.log.append_after(st.pos, vec![]);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3"]
        );
    }

    #[test]
    fn determinism_scope() {
        let src = "fn gen() { let t = Instant::now(); let r = thread_rng(); }\n";
        assert_eq!(
            lints_for("crates/sim/src/chaos.rs", src),
            vec!["sim-determinism:1", "sim-determinism:1"]
        );
        assert!(lints_for("crates/sim/src/workload.rs", src).is_empty());
    }

    #[test]
    fn durability_wait_flagged_in_server_scope_only() {
        // No guard anywhere — lock-discipline stays silent, but in the
        // server crate the bare blocking call is still a finding.
        let src = "fn settle(&self) {\n\
                   let rs = node.wait_finish(sb);\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/server/src/lib.rs", src),
            vec!["durability-wait:2", "durability-wait:3"]
        );
        // The same code outside the server crate is not this lint's business.
        assert!(lints_for("crates/core/src/lease.rs", src).is_empty());
    }

    #[test]
    fn durability_wait_ignores_tests_and_nonblocking_calls() {
        let src = "fn sweep(&self) { let r = node.try_finish(sb); }\n\
                   #[cfg(test)]\nmod tests { fn t() { log.wait_durable(0); } }\n";
        assert!(lints_for("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn inline_idle_flush_under_guard_is_reported() {
        // The §13 idle fast path blocks on the flush token and the log
        // append; calling it with a stripe guard live is a violation, and
        // calling it after the guards drop is the sanctioned shape.
        let src = "fn f(&self) {\n\
                   let guards = self.stripes.lock_one(idx);\n\
                   self.flush_inline_idle();\n\
                   }\n\
                   fn g(&self) {\n\
                   let guards = self.stripes.lock_one(idx);\n\
                   drop(guards);\n\
                   self.flush_inline_idle();\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3"]
        );
    }

    #[test]
    fn stripe_guard_across_blocking_wait() {
        // `lock_all()` (empty args) and `lock_one(idx)` (with args) both
        // register as guards for the lock-discipline pass.
        let src = "fn f(&self) {\n\
                   let mut guards = self.stripes.lock_all();\n\
                   self.log.wait_durable(id);\n\
                   }\n\
                   fn g(&self, idx: usize) {\n\
                   let guards = self.stripes.lock_one(idx);\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3", "lock-discipline:7"]
        );
    }

    #[test]
    fn nested_stripe_acquisition_is_flagged() {
        let src = "fn f(&self) {\n\
                   let mut guards = self.stripes.lock_one(0);\n\
                   let more = self.stripes.lock_all();\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["stripe-order:3"]
        );
        // The stripes module itself (lock_all's own implementation calls
        // lock_counting per stripe) is exempt.
        assert!(lints_for("crates/core/src/stripes.rs", src).is_empty());
    }

    #[test]
    fn dropped_stripe_guard_allows_reacquisition() {
        let src = "fn f(&self) {\n\
                   let guards = self.stripes.lock_one(0);\n\
                   drop(guards);\n\
                   let more = self.stripes.lock_all();\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_stripe_mutex_use_is_flagged_outside_module() {
        let src = "fn f(&self) { let g = self.stripes.lock_counting(&m); }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["stripe-order:1"]
        );
    }

    #[test]
    fn if_let_try_lock_binding_is_a_guard_inside_its_block_only() {
        // `if let Some(g) = m.try_lock()` guards the then-block; after the
        // block closes the same blocking call is fine.
        let src = "fn f(&self) {\n\
                   if let Some(token) = self.flush_token.try_lock() {\n\
                   self.log.wait_durable(id);\n\
                   }\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:3"]
        );
    }

    #[test]
    fn let_else_try_lock_binding_is_a_guard_after_the_else_block() {
        let src = "fn f(&self) {\n\
                   let Some(token) = self.flush_token.try_lock() else {\n\
                   return;\n\
                   };\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:5"]
        );
        // The diverging else path itself never holds the guard.
        let src_ok = "fn f(&self) {\n\
                      let Some(token) = self.flush_token.try_lock() else {\n\
                      self.log.wait_durable(id);\n\
                      return;\n\
                      };\n\
                      }\n";
        assert!(lints_for("crates/core/src/x.rs", src_ok).is_empty());
    }

    #[test]
    fn if_let_non_guard_patterns_are_ignored() {
        // `if let Some(v) = map.get(&k)` must not register a guard, and
        // tuple-pattern lets must stay unparsed (no false guards).
        let src = "fn f(&self) {\n\
                   if let Some(v) = self.map.get(&k) {\n\
                   self.log.wait_durable(v);\n\
                   }\n\
                   let (a, b) = self.pair.lock_parts();\n\
                   self.log.wait_durable(a);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn multi_line_chain_and_turbofish_still_bind_guards() {
        // The guard parser sees tokens, not lines: a chained multi-line
        // `.lock()` and a turbofish with nested generics in the initializer
        // both still end in a guard method call.
        let src = "fn f(&self) {\n\
                   let st = self\n\
                   .state::<Vec<Arc<Inner>>>()\n\
                   .lock();\n\
                   self.log.wait_durable(st.id);\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["lock-discipline:5"]
        );
    }

    #[test]
    fn raw_string_lock_text_does_not_bind_a_guard() {
        let src = "fn f(&self) {\n\
                   let msg = r#\"call .lock() and wait_durable( now\"#;\n\
                   self.log.wait_durable(id);\n\
                   }\n";
        assert!(lints_for("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_counter_rmw_allowed_handoff_flagged() {
        let src = "fn f(&self) {\n\
                   self.ops.fetch_add(1, Ordering::Relaxed);\n\
                   self.shutdown.store(true, Ordering::Relaxed);\n\
                   if self.shutdown.load(Ordering::Relaxed) { return; }\n\
                   }\n";
        assert_eq!(
            lints_for("crates/core/src/x.rs", src),
            vec!["atomics-ordering:3", "atomics-ordering:4"]
        );
        // The same source inside the stats scopes is categorically fine.
        assert!(lints_for("crates/metrics/src/lib.rs", src).is_empty());
        assert!(lints_for("crates/bench/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn relaxed_census_is_total_over_sites() {
        let src = "fn f(&self) {\n\
                   self.ops.fetch_add(1, Ordering::Relaxed);\n\
                   self.flag.swap(true, Ordering::Relaxed);\n\
                   self.seq.load(Ordering::SeqCst);\n\
                   }\n";
        let sites = classify_relaxed_sites("crates/core/src/x.rs", &scan(src));
        assert_eq!(sites.len(), 2, "{sites:#?}");
        assert_eq!(sites[0].class, AtomicClass::CounterRmw);
        assert_eq!(sites[0].receiver, "ops");
        assert_eq!(sites[1].class, AtomicClass::Scrutinized);
        assert_eq!(
            (sites[1].receiver.as_str(), sites[1].method.as_str()),
            ("flag", "swap")
        );
    }

    #[test]
    fn serve_path_clone_and_to_vec_flagged_in_scope_only() {
        let src = "fn f(&self) {\n\
                   let owned = cmds[i].clone();\n\
                   let a = args.clone();\n\
                   let v = payload.to_vec();\n\
                   let tx2 = tx.clone();\n\
                   let r2 = run.clone();\n\
                   }\n";
        assert_eq!(
            lints_for("crates/server/src/lib.rs", src),
            vec!["zero-copy:2", "zero-copy:3", "zero-copy:4"]
        );
        // The same code off the serve path is not this lint's business.
        assert!(lints_for("crates/core/src/lease.rs", src).is_empty());
    }

    #[test]
    fn serve_path_clone_lint_skips_tests() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let c = cmds[0].clone(); } }\n";
        assert!(lints_for("crates/resp/src/decode.rs", src).is_empty());
    }

    #[test]
    fn std_sync_mutex_flagged_atomics_fine() {
        let hits = lints_for(
            "crates/core/src/monitor.rs",
            "use std::sync::{Arc, Mutex};\nuse std::sync::atomic::AtomicU64;\n",
        );
        assert_eq!(hits, vec!["sync-primitives:1"]);
    }
}
