//! Whole-workspace lock-order graph (lint family "lock-order").
//!
//! Every lock acquisition in non-test code becomes a node named after the
//! lock it takes (`node.st`, `pipeline.q`, `txlog.inner`, `core.stripes`,
//! ...), and an edge `A -> B` is recorded whenever `B` is acquired — either
//! directly or transitively through a call chain — while `A` is held. A
//! cycle in that graph is a potential deadlock: two threads can enter the
//! cycle at different nodes and wait on each other forever, which on the
//! serving path means the primary stops acking inside its lease and forfeits
//! leadership (paper §5). Cycle findings carry lint `lock-order` and must be
//! fixed or individually baselined in analysis.toml.
//!
//! Approximations, documented because this is a token-level analysis, not a
//! type checker:
//!
//! * **Lock identity is nominal.** A lock is identified by (file, receiver
//!   ident, method); the table in [`lock_node`] maps the workspace's known
//!   serving-path locks to stable names and everything else to
//!   `<crate>.<file-stem>.<receiver>`. Two different mutexes reached through
//!   the same receiver name in one file collapse into one node (safe: it can
//!   only create extra edges, never hide one).
//! * **Calls resolve by name.** A call `f()` under a held lock links to every
//!   workspace `fn f`, same-crate definitions preferred. Collisions can
//!   create spurious edges; ubiquitous names ([`CALL_DENYLIST`]) are skipped,
//!   and self-edges are only believed when the *same function* re-acquires
//!   the node directly (a call-propagated `A -> A` is far more likely a
//!   name collision than a real recursive acquisition).
//! * **Stripes are one node.** `lock_one`/`lock_all`/`lock_counting` all map
//!   to `core.stripes`, and a stripe acquisition made while stripes are
//!   already held is skipped: the canonical ascending acquisition order
//!   inside `EngineStripes::lock_all` is deadlock-free by construction
//!   (DESIGN.md §12) and nested acquisition *outside* it is the
//!   stripe-order lint's finding, not this graph's.

use crate::lexer::{scan, Tok, TokKind};
use crate::lints::{parse_guard_binding, GuardBinding};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The single graph node for the slot-range stripe set.
pub const STRIPES_NODE: &str = "core.stripes";

/// Methods that acquire a lock when called with an empty argument list.
const ACQUIRE_EMPTY: &[&str] = &["lock", "try_lock", "read", "write", "upgradable_read"];

/// Stripe acquisition paths (any arity).
const ACQUIRE_STRIPE: &[&str] = &["lock_one", "lock_all", "lock_counting"];

/// Function names never treated as call-graph edges: ubiquitous names whose
/// workspace definitions would be linked from nearly every call site. Most
/// are std trait/inherent methods a workspace `fn` happens to shadow — e.g.
/// every `atomic.load(..)` would otherwise resolve to `rdb::load`, every
/// `Iterator::count`/`::position` to `Histogram::count`/`Node::position`,
/// and `debug_struct(..).finish()` to the consistency checker's `finish`.
const CALL_DENYLIST: &[&str] = &[
    "new",
    "clone",
    "drop",
    "default",
    "from",
    "into",
    "get",
    "set",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "iter",
    "next",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "as_ref",
    "as_mut",
    "to_string",
    "to_vec",
    "contains",
    "clear",
    "take",
    "with_capacity",
    "extend",
    "write_all",
    "flush",
    "read_exact",
    "send",
    "recv",
    "run",
    "main",
    "join",
    "split",
    "parse",
    "encode",
    "decode",
    "execute",
    "finish",
    "load",
    "store",
    "count",
    "position",
    "notify_all",
    "notify_one",
    "wait",
    "wake",
    "lock",
    "try_lock",
    "read",
    "write",
    "upgradable_read",
    "lock_one",
    "lock_all",
    "lock_counting",
];

/// Known serving-path locks: (file, receiver) → stable node name. Everything
/// else falls back to `<crate>[.<file-stem>].<receiver>`.
const KNOWN_LOCKS: &[(&str, &str, &str)] = &[
    ("crates/core/src/node.rs", "st", "node.st"),
    ("crates/core/src/node.rs", "flush_token", "node.flush_token"),
    ("crates/core/src/pipeline.rs", "q", "pipeline.q"),
    ("crates/core/src/pipeline.rs", "cq", "pipeline.cq"),
    ("crates/core/src/pipeline.rs", "inner", "ticket.inner"),
    ("crates/txlog/src/service.rs", "inner", "txlog.inner"),
];

/// Names the lock a call site acquires. `None` receiver means the receiver
/// was not a plain ident (a chained call) — named `anon`.
fn lock_node(rel: &str, receiver: Option<&str>, method: &str) -> String {
    if ACQUIRE_STRIPE.contains(&method) || rel == "crates/core/src/stripes.rs" {
        return STRIPES_NODE.to_string();
    }
    let recv = receiver.unwrap_or("anon");
    for (file, r, name) in KNOWN_LOCKS {
        if *file == rel && *r == recv {
            return (*name).to_string();
        }
    }
    // crates/<crate>/src/<stem>.rs → "<crate>.<stem>.<recv>", with the stem
    // dropped for lib.rs/mod.rs ("server.conn_threads", not "server.lib...").
    let mut segs = rel.split('/');
    let krate = match (segs.next(), segs.next()) {
        (Some("crates"), Some(k)) => k,
        _ => "ws",
    };
    let stem = rel
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("file");
    if stem == "lib" || stem == "mod" {
        format!("{krate}.{recv}")
    } else {
        format!("{krate}.{stem}.{recv}")
    }
}

/// One lock acquisition inside a function body.
struct Acquire {
    line: u32,
    node: String,
    /// Lock nodes already held at this point (innermost function only).
    held: Vec<String>,
}

/// One call to a workspace `fn` name.
struct CallSite {
    line: u32,
    callee: String,
    held: Vec<String>,
}

/// Per-function extraction result.
struct FnInfo {
    name: String,
    file: String,
    krate: String,
    acquires: Vec<Acquire>,
    calls: Vec<CallSite>,
}

/// Where one graph edge was first observed.
#[derive(Debug, Clone)]
pub struct EdgeOrigin {
    pub file: String,
    pub line: u32,
    /// Present when the edge was inferred through a call chain; names the
    /// callee through which the later lock is reachable.
    pub via: Option<String>,
}

/// The acquisition-order graph over named lock nodes.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// `(held, acquired)` → first origin observed (files visited in sorted
    /// order, so the origin is deterministic).
    pub edges: BTreeMap<(String, String), EdgeOrigin>,
    /// Every lock node seen, including isolated ones.
    pub nodes: BTreeSet<String>,
}

impl LockGraph {
    /// Builds the graph from `(workspace-relative path, source)` pairs.
    /// Callers must pass files in a deterministic order for stable origins.
    pub fn build(files: &[(String, String)]) -> LockGraph {
        let mut fns: Vec<FnInfo> = Vec::new();
        for (rel, src) in files {
            extract_fns(rel, &scan(src), &mut fns);
        }
        // Name → defining fn indices, for call resolution.
        let mut defs: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            defs.entry(f.name.as_str()).or_default().push(i);
        }
        let resolve = |caller: &FnInfo, callee: &str| -> Vec<usize> {
            let Some(cands) = defs.get(callee) else {
                return Vec::new();
            };
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| fns[i].krate == caller.krate)
                .collect();
            if same_crate.is_empty() {
                cands.clone()
            } else {
                same_crate
            }
        };
        // Transitive lock closure: reach[f] = locks f (or any callee chain)
        // can acquire. Fixpoint over the call-graph approximation.
        let mut reach: Vec<BTreeSet<String>> = fns
            .iter()
            .map(|f| f.acquires.iter().map(|a| a.node.clone()).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..fns.len() {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for c in &fns[i].calls {
                    for j in resolve(&fns[i], &c.callee) {
                        for n in &reach[j] {
                            if !reach[i].contains(n) {
                                add.insert(n.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    reach[i].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Edges: direct acquisitions under held locks, plus call-propagated
        // ones (skipping self-edges there — likely name collisions).
        let mut g = LockGraph::default();
        for f in &fns {
            for a in &f.acquires {
                g.nodes.insert(a.node.clone());
                for h in &a.held {
                    if h == STRIPES_NODE && a.node == STRIPES_NODE {
                        continue; // canonical ascending order inside lock_all
                    }
                    g.add_edge(h, &a.node, f, a.line, None);
                }
            }
            for c in &f.calls {
                if c.held.is_empty() {
                    continue;
                }
                let mut reachable: BTreeSet<&str> = BTreeSet::new();
                for j in resolve(f, &c.callee) {
                    reachable.extend(reach[j].iter().map(String::as_str));
                }
                for h in &c.held {
                    for b in &reachable {
                        if h == b {
                            continue; // call-propagated self-edge: collision tolerance
                        }
                        if h == STRIPES_NODE && *b == STRIPES_NODE {
                            continue;
                        }
                        g.add_edge(h, b, f, c.line, Some(c.callee.as_str()));
                    }
                }
            }
        }
        g
    }

    fn add_edge(&mut self, from: &str, to: &str, f: &FnInfo, line: u32, via: Option<&str>) {
        self.nodes.insert(from.to_string());
        self.nodes.insert(to.to_string());
        self.edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| EdgeOrigin {
                file: f.file.clone(),
                line,
                via: via.map(str::to_string),
            });
    }

    /// Every cycle, one representative per strongly connected component
    /// (plus direct self-loops), as closed node paths `[a, b, ..., a]`.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (from, to) in self.edges.keys() {
            adj.entry(from).or_default().insert(to);
        }
        let mut out = Vec::new();
        for (from, to) in self.edges.keys() {
            if from == to {
                out.push(vec![from.clone(), to.clone()]);
            }
        }
        for scc in sccs(&adj) {
            if scc.len() < 2 {
                continue;
            }
            if let Some(path) = shortest_cycle_through(&adj, &scc) {
                out.push(path);
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Cycle findings for the gate, one per cycle, anchored at the origin of
    /// the cycle's first edge so they can be baselined per file.
    pub fn cycle_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for path in self.cycles() {
            let origin = self
                .edges
                .get(&(path[0].clone(), path[1].clone()))
                .cloned()
                .unwrap_or(EdgeOrigin {
                    file: "<unknown>".to_string(),
                    line: 0,
                    via: None,
                });
            let legs: Vec<String> = path
                .windows(2)
                .map(|w| {
                    let o = self.edges.get(&(w[0].clone(), w[1].clone()));
                    match o {
                        Some(o) => match &o.via {
                            Some(v) => {
                                format!("{} -> {} ({}:{} via {v})", w[0], w[1], o.file, o.line)
                            }
                            None => format!("{} -> {} ({}:{})", w[0], w[1], o.file, o.line),
                        },
                        None => format!("{} -> {}", w[0], w[1]),
                    }
                })
                .collect();
            out.push(Finding {
                lint: "lock-order",
                file: origin.file.clone(),
                line: origin.line,
                snippet: path.join(" -> "),
                message: format!(
                    "potential deadlock: lock acquisition cycle {} — two threads \
                     entering at different nodes can block each other forever, \
                     stalling the primary past its lease (paper \u{a7}5); break the \
                     cycle or justify it in analysis.toml [edges: {}]",
                    path.join(" -> "),
                    legs.join("; ")
                ),
            });
        }
        out
    }

    /// Graphviz dot rendering of the acquisition graph.
    pub fn to_dot(&self) -> String {
        let mut s = String::from(
            "// Lock acquisition order, generated by memorydb-analysis --lockgraph-dot.\n\
             // An edge A -> B means B is acquired while A is held.\n\
             digraph lock_order {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n",
        );
        for n in &self.nodes {
            s.push_str(&format!("  \"{n}\";\n"));
        }
        for ((from, to), o) in &self.edges {
            let label = match &o.via {
                Some(v) => format!("{}:{} via {v}", o.file, o.line),
                None => format!("{}:{}", o.file, o.line),
            };
            s.push_str(&format!("  \"{from}\" -> \"{to}\" [label=\"{label}\"];\n"));
        }
        s.push_str("}\n");
        s
    }

    /// TOML rendering (same subset the baseline reader speaks).
    pub fn to_toml(&self) -> String {
        let mut s = String::from(
            "# Lock acquisition order, generated by memorydb-analysis --lockgraph-toml.\n\
             # An [[edge]] from/to pair means `to` is acquired while `from` is held.\n",
        );
        for ((from, to), o) in &self.edges {
            s.push_str(&format!(
                "\n[[edge]]\nfrom = \"{from}\"\nto = \"{to}\"\nfile = \"{}\"\nline = {}\n",
                o.file, o.line
            ));
            if let Some(v) = &o.via {
                s.push_str(&format!("via = \"{v}\"\n"));
            }
        }
        s
    }
}

/// Strongly connected components (iterative Kosaraju) over the adjacency
/// map; returns each component as a sorted node list.
fn sccs<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (k, vs) in adj {
        nodes.insert(k);
        nodes.extend(vs.iter());
    }
    // Pass 1: finish order.
    let mut finished: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if seen.contains(start) {
            continue;
        }
        // (node, child iterator position) explicit DFS stack.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(
            start,
            adj.get(start)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default(),
        )];
        seen.insert(start);
        while let Some((n, children)) = stack.last_mut() {
            if let Some(c) = children.pop() {
                if !seen.contains(c) {
                    seen.insert(c);
                    let grand = adj
                        .get(c)
                        .map(|s| s.iter().copied().collect())
                        .unwrap_or_default();
                    stack.push((c, grand));
                }
            } else {
                finished.push(n);
                stack.pop();
            }
        }
    }
    // Pass 2: reverse graph, peel components in reverse finish order.
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, tos) in adj {
        for to in tos {
            radj.entry(to).or_default().insert(from);
        }
    }
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut comps: Vec<Vec<String>> = Vec::new();
    for &n in finished.iter().rev() {
        if comp.contains_key(n) {
            continue;
        }
        let id = comps.len();
        let mut members = Vec::new();
        let mut stack = vec![n];
        comp.insert(n, id);
        while let Some(x) = stack.pop() {
            members.push(x.to_string());
            for &p in radj.get(x).into_iter().flatten() {
                if !comp.contains_key(p) {
                    comp.insert(p, id);
                    stack.push(p);
                }
            }
        }
        members.sort();
        comps.push(members);
    }
    comps
}

/// Shortest closed path through the component's smallest node, constrained
/// to component members (BFS).
fn shortest_cycle_through(
    adj: &BTreeMap<&str, BTreeSet<&str>>,
    scc: &[String],
) -> Option<Vec<String>> {
    let members: BTreeSet<&str> = scc.iter().map(String::as_str).collect();
    let start = scc.first()?.as_str();
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<&str> = Default::default();
    for &n in adj.get(start).into_iter().flatten() {
        if members.contains(n) && !prev.contains_key(n) {
            prev.insert(n, start);
            queue.push_back(n);
        }
    }
    while let Some(n) = queue.pop_front() {
        if n == start {
            break;
        }
        for &m in adj.get(n).into_iter().flatten() {
            if members.contains(m) && !prev.contains_key(m) {
                prev.insert(m, n);
                queue.push_back(m);
            }
        }
    }
    if !prev.contains_key(start) {
        return None; // self-loops handled separately
    }
    let mut path = vec![start.to_string()];
    let mut cur = start;
    loop {
        cur = prev.get(cur)?;
        path.push(cur.to_string());
        if cur == start {
            break;
        }
    }
    path.reverse();
    Some(path)
}

/// Extracts per-function acquisition and call events from one file's tokens.
fn extract_fns(rel: &str, toks: &[Tok], out: &mut Vec<FnInfo>) {
    // Locate every fn body span (skipping test code), innermost-wins.
    struct Span {
        name: String,
        body: (usize, usize),
    }
    let mut spans: Vec<Span> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_fn = toks[i].ident() == Some("fn") && !toks[i].in_test;
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        // Scan the signature for the body `{` (or `;` for bodyless decls).
        let mut j = i + 2;
        let mut body_start = None;
        while let Some(t) = toks.get(j) {
            match &t.kind {
                TokKind::Punct('{') => {
                    body_start = Some(j);
                    break;
                }
                TokKind::Punct(';') => break,
                _ => {}
            }
            j += 1;
        }
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        // Matching close brace.
        let mut depth = 0i32;
        let mut k = start;
        let mut end = None;
        while let Some(t) = toks.get(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    end = Some(k);
                    break;
                }
            }
            k += 1;
        }
        let Some(end) = end else { break };
        spans.push(Span {
            name: name.to_string(),
            body: (start, end),
        });
        i += 2; // continue inside: nested fns get their own spans
    }
    // Innermost owner per token.
    let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
    for (si, s) in spans.iter().enumerate() {
        for slot in owner.iter_mut().take(s.body.1 + 1).skip(s.body.0) {
            *slot = Some(si);
        }
    }
    let krate = {
        let mut segs = rel.split('/');
        match (segs.next(), segs.next()) {
            (Some("crates"), Some(k)) => k.to_string(),
            _ => "ws".to_string(),
        }
    };
    for (si, s) in spans.iter().enumerate() {
        let mut info = FnInfo {
            name: s.name.clone(),
            file: rel.to_string(),
            krate: krate.clone(),
            acquires: Vec::new(),
            calls: Vec::new(),
        };
        let mut depth = 0i32;
        let mut guards: Vec<LiveGuard> = Vec::new();
        let mut pending: Vec<(usize, LiveGuard)> = Vec::new();
        let mut consumed: BTreeSet<usize> = BTreeSet::new();
        let mut i = s.body.0;
        while i <= s.body.1 {
            if owner[i] != Some(si) {
                i += 1; // nested fn's tokens: its own pass handles them
                continue;
            }
            let t = &toks[i];
            match &t.kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    let d = depth;
                    guards.retain(|g| g.depth <= d);
                    pending.retain(|(_, g)| g.depth <= d);
                }
                TokKind::Ident(id) if id == "fn" => {
                    i += 2; // skip nested fn keyword + name
                    continue;
                }
                TokKind::Ident(id) if id == "let" && !t.in_test => {
                    if let Some(gb) = parse_guard_binding(toks, i, depth) {
                        if is_acquire(&gb) {
                            let node = lock_node(rel, gb.receiver.as_deref(), gb.method.as_str());
                            record_acquire(&mut info, toks[gb.method_idx].line, &node, &guards);
                            consumed.insert(gb.method_idx);
                            pending.push((
                                gb.activate_at,
                                LiveGuard {
                                    name: gb.name,
                                    node,
                                    depth: gb.guard_depth,
                                },
                            ));
                        }
                    }
                }
                TokKind::Ident(id) if id == "drop" && !t.in_test => {
                    let name = toks
                        .get(i + 1)
                        .filter(|n| n.is_punct('('))
                        .and_then(|_| toks.get(i + 2))
                        .and_then(|n| n.ident())
                        .filter(|_| toks.get(i + 3).is_some_and(|n| n.is_punct(')')));
                    if let Some(name) = name {
                        guards.retain(|g| g.name != name);
                        pending.retain(|(_, g)| g.name != name);
                    }
                }
                TokKind::Punct('.') if !t.in_test => {
                    // Temporary (non-let-bound) lock acquisition.
                    let m_idx = i + 1;
                    let method = toks
                        .get(m_idx)
                        .and_then(|n| n.ident())
                        .filter(|_| toks.get(i + 2).is_some_and(|n| n.is_punct('(')));
                    if let Some(m) = method {
                        let empty = toks.get(i + 3).is_some_and(|n| n.is_punct(')'));
                        let acquires = !consumed.contains(&m_idx)
                            && ((empty && ACQUIRE_EMPTY.contains(&m))
                                || ACQUIRE_STRIPE.contains(&m));
                        if acquires {
                            let recv = i.checked_sub(1).and_then(|p| toks[p].ident());
                            let node = lock_node(rel, recv, m);
                            record_acquire(&mut info, toks[m_idx].line, &node, &guards);
                            consumed.insert(m_idx);
                        }
                    }
                }
                TokKind::Ident(callee) if !t.in_test => {
                    // Call-graph event: ident followed by `(`, not a macro,
                    // not a denylisted or acquisition method.
                    let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                        && !CALL_DENYLIST.contains(&callee.as_str())
                        && i > 0
                        && toks[i - 1].ident() != Some("fn");
                    if is_call {
                        info.calls.push(CallSite {
                            line: t.line,
                            callee: callee.clone(),
                            held: guards.iter().map(|g| g.node.clone()).collect(),
                        });
                    }
                }
                _ => {}
            }
            // Activate pending guards whose activation point has passed.
            let mut a = 0;
            while a < pending.len() {
                if pending[a].0 <= i + 1 {
                    let (_, g) = pending.remove(a);
                    guards.push(g);
                } else {
                    a += 1;
                }
            }
            i += 1;
        }
        if !info.acquires.is_empty() || !info.calls.is_empty() {
            out.push(info);
        }
    }
}

/// A guard variable currently live in the scanned function body.
struct LiveGuard {
    name: String,
    node: String,
    depth: i32,
}

fn is_acquire(gb: &GuardBinding) -> bool {
    (gb.empty_args && ACQUIRE_EMPTY.contains(&gb.method.as_str()))
        || ACQUIRE_STRIPE.contains(&gb.method.as_str())
}

fn record_acquire(info: &mut FnInfo, line: u32, node: &str, guards: &[LiveGuard]) {
    info.acquires.push(Acquire {
        line,
        node: node.to_string(),
        held: guards.iter().map(|g| g.node.clone()).collect(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> LockGraph {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        LockGraph::build(&owned)
    }

    #[test]
    fn direct_nested_acquisition_is_an_edge() {
        let g = graph(&[(
            "crates/demo/src/a.rs",
            "pub fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n    drop(b);\n    drop(a);\n}\n",
        )]);
        assert!(g
            .edges
            .contains_key(&("demo.a.alpha".to_string(), "demo.a.beta".to_string())));
        assert!(!g
            .edges
            .contains_key(&("demo.a.beta".to_string(), "demo.a.alpha".to_string())));
        assert!(g.cycles().is_empty());
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle_finding() {
        let g = graph(&[(
            "crates/demo/src/a.rs",
            "pub fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\npub fn g(&self) {\n    let b = self.beta.lock();\n    let a = self.alpha.lock();\n}\n",
        )]);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1, "one SCC cycle expected: {cycles:?}");
        let f = g.cycle_findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "lock-order");
        assert!(f[0].message.contains("demo.a.alpha"));
        assert!(f[0].message.contains("demo.a.beta"));
    }

    #[test]
    fn guard_dropped_before_second_lock_is_not_an_edge() {
        let g = graph(&[(
            "crates/demo/src/a.rs",
            "pub fn f(&self) {\n    let a = self.alpha.lock();\n    drop(a);\n    let b = self.beta.lock();\n}\n",
        )]);
        assert!(g.edges.is_empty(), "edges: {:?}", g.edges);
    }

    #[test]
    fn block_scope_ends_the_hold() {
        let g = graph(&[(
            "crates/demo/src/a.rs",
            "pub fn f(&self) {\n    {\n        let a = self.alpha.lock();\n    }\n    let b = self.beta.lock();\n}\n",
        )]);
        assert!(g.edges.is_empty(), "edges: {:?}", g.edges);
    }

    #[test]
    fn call_chain_propagates_the_edge() {
        let g = graph(&[(
            "crates/demo/src/a.rs",
            "pub fn outer(&self) {\n    let a = self.alpha.lock();\n    self.helper();\n}\nfn helper(&self) {\n    let b = self.beta.lock();\n}\n",
        )]);
        let key = ("demo.a.alpha".to_string(), "demo.a.beta".to_string());
        let origin = g.edges.get(&key).expect("call-propagated edge");
        assert_eq!(origin.via.as_deref(), Some("helper"));
    }

    #[test]
    fn stripes_lock_all_is_one_node_and_no_self_edge() {
        let g = graph(&[
            (
                "crates/core/src/stripes.rs",
                "pub fn lock_all(&self) {\n    for m in &self.stripes {\n        let g = m.lock();\n    }\n}\n",
            ),
            (
                "crates/demo/src/a.rs",
                "pub fn f(&self) {\n    let guards = self.stripes.lock_all();\n    let s = self.state.lock();\n}\n",
            ),
        ]);
        assert!(g.nodes.contains(STRIPES_NODE));
        assert!(!g
            .edges
            .contains_key(&(STRIPES_NODE.to_string(), STRIPES_NODE.to_string())));
        assert!(g
            .edges
            .contains_key(&(STRIPES_NODE.to_string(), "demo.a.state".to_string())));
        assert!(g.cycles().is_empty(), "cycles: {:?}", g.cycles());
    }

    #[test]
    fn direct_self_reacquisition_is_a_self_loop_cycle() {
        let g = graph(&[(
            "crates/demo/src/a.rs",
            "pub fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.alpha.lock();\n}\n",
        )]);
        let cycles = g.cycles();
        assert_eq!(
            cycles,
            vec![vec!["demo.a.alpha".to_string(), "demo.a.alpha".to_string()]]
        );
    }

    #[test]
    fn test_code_is_skipped() {
        let g = graph(&[(
            "crates/demo/src/a.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let a = M.lock();\n        let b = N.lock();\n    }\n}\n",
        )]);
        assert!(g.edges.is_empty() && g.nodes.is_empty(), "{:?}", g.nodes);
    }

    #[test]
    fn dot_and_toml_render_the_edge() {
        let g = graph(&[(
            "crates/demo/src/a.rs",
            "pub fn f(&self) {\n    let a = self.alpha.lock();\n    let b = self.beta.lock();\n}\n",
        )]);
        let dot = g.to_dot();
        assert!(dot.contains("\"demo.a.alpha\" -> \"demo.a.beta\""));
        assert!(dot.contains("crates/demo/src/a.rs:3"));
        let toml = g.to_toml();
        assert!(toml.contains("from = \"demo.a.alpha\""));
        assert!(toml.contains("to = \"demo.a.beta\""));
    }

    #[test]
    fn known_lock_table_names_serving_path_nodes() {
        assert_eq!(
            lock_node("crates/core/src/node.rs", Some("st"), "lock"),
            "node.st"
        );
        assert_eq!(
            lock_node("crates/core/src/node.rs", Some("flush_token"), "try_lock"),
            "node.flush_token"
        );
        assert_eq!(
            lock_node("crates/txlog/src/service.rs", Some("inner"), "lock"),
            "txlog.inner"
        );
        assert_eq!(
            lock_node("crates/core/src/stripes.rs", Some("m"), "lock"),
            STRIPES_NODE
        );
        assert_eq!(
            lock_node("crates/server/src/lib.rs", Some("conn_threads"), "lock"),
            "server.conn_threads"
        );
        assert_eq!(
            lock_node("crates/demo/src/a.rs", None, "lock"),
            "demo.a.anon"
        );
    }
}
