//! Reader for `analysis.toml`, the checked-in exception baseline. The file
//! holds `[[allow]]` tables only — lint scopes live in the analyzer source,
//! so the baseline can ratchet down but never silently widen a scope.
//!
//! Parsed with a deliberate TOML subset (the workspace has no `toml` crate
//! and the hermetic build forbids adding one): `[[allow]]` headers,
//! `key = "string"` / `key = integer` pairs, `#` comments. Anything else is
//! a hard error — the analyzer exits nonzero on an unreadable baseline
//! rather than ignoring exceptions it could not understand.

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint family the exception applies to (e.g. "lock-discipline").
    pub lint: String,
    /// Exact workspace-relative file the exception applies to.
    pub path: String,
    /// Optional substring that must appear in the finding's source line.
    pub contains: Option<String>,
    /// Optional cap: at most this many findings may match; extras are
    /// violations (the ratchet). `None` = any number.
    pub count: Option<usize>,
    /// Mandatory one-line justification.
    pub reason: String,
    /// 1-based line in analysis.toml, for stale-entry reporting.
    pub decl_line: u32,
}

impl AllowEntry {
    /// The entry's key fields verbatim, as they appear in analysis.toml —
    /// stale-entry errors print this so the offending `[[allow]]` block can
    /// be located by exact text search, not just by line number.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "analysis.toml:{}: lint = \"{}\", path = \"{}\"",
            self.decl_line, self.lint, self.path
        );
        if let Some(c) = &self.contains {
            s.push_str(&format!(", contains = \"{c}\""));
        }
        if let Some(n) = self.count {
            s.push_str(&format!(", count = {n}"));
        }
        s
    }
}

/// Parses the baseline. Returns either the entries or a list of errors
/// (every error carries its analysis.toml line number).
pub fn parse_baseline(src: &str) -> Result<Vec<AllowEntry>, Vec<String>> {
    struct Partial {
        lint: Option<String>,
        path: Option<String>,
        contains: Option<String>,
        count: Option<usize>,
        reason: Option<String>,
        decl_line: u32,
    }

    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut cur: Option<Partial> = None;

    let mut finish = |cur: &mut Option<Partial>, errors: &mut Vec<String>| {
        if let Some(p) = cur.take() {
            match (p.lint, p.path, p.reason) {
                (Some(lint), Some(path), Some(reason)) => entries.push(AllowEntry {
                    lint,
                    path,
                    contains: p.contains,
                    count: p.count,
                    reason,
                    decl_line: p.decl_line,
                }),
                (lint, path, reason) => {
                    let mut missing = Vec::new();
                    if lint.is_none() {
                        missing.push("lint");
                    }
                    if path.is_none() {
                        missing.push("path");
                    }
                    if reason.is_none() {
                        missing.push("reason");
                    }
                    errors.push(format!(
                        "analysis.toml:{}: [[allow]] entry missing required key(s): {}",
                        p.decl_line,
                        missing.join(", ")
                    ));
                }
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut cur, &mut errors);
            cur = Some(Partial {
                lint: None,
                path: None,
                contains: None,
                count: None,
                reason: None,
                decl_line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            errors.push(format!(
                "analysis.toml:{lineno}: expected `[[allow]]` or `key = value`, got: {line}"
            ));
            continue;
        };
        let Some(p) = cur.as_mut() else {
            errors.push(format!(
                "analysis.toml:{lineno}: key outside any [[allow]] entry"
            ));
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        match key {
            "lint" | "path" | "contains" | "reason" => match parse_string(value) {
                Some(s) => {
                    let slot = match key {
                        "lint" => &mut p.lint,
                        "path" => &mut p.path,
                        "contains" => &mut p.contains,
                        _ => &mut p.reason,
                    };
                    if slot.is_some() {
                        errors.push(format!(
                            "analysis.toml:{lineno}: duplicate key `{key}`"
                        ));
                    }
                    *slot = Some(s);
                }
                None => errors.push(format!(
                    "analysis.toml:{lineno}: `{key}` must be a \"quoted string\""
                )),
            },
            "count" => match value.parse::<usize>() {
                Ok(n) if n > 0 => p.count = Some(n),
                _ => errors.push(format!(
                    "analysis.toml:{lineno}: `count` must be a positive integer"
                )),
            },
            other => errors.push(format!(
                "analysis.toml:{lineno}: unknown key `{other}` (allowed: lint, path, contains, count, reason)"
            )),
        }
    }
    finish(&mut cur, &mut errors);

    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// `"..."` with `\"` and `\\` escapes; trailing `#` comments after the
/// closing quote are tolerated.
fn parse_string(value: &str) -> Option<String> {
    let rest = value.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '\\' => out.push(chars.next()?),
            '"' => break,
            c => out.push(c),
        }
    }
    let trailing = chars.as_str().trim();
    if trailing.is_empty() || trailing.starts_with('#') {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_entry() {
        let src = r#"
# comment
[[allow]]
lint = "lock-discipline"
path = "crates/core/src/node.rs"
contains = "append_batch_after"
count = 2
reason = "log order = execution order"
"#;
        let entries = parse_baseline(src).expect("parses");
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.lint, "lock-discipline");
        assert_eq!(e.contains.as_deref(), Some("append_batch_after"));
        assert_eq!(e.count, Some(2));
        assert_eq!(e.decl_line, 3);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let src = "[[allow]]\nlint = \"x\"\npath = \"y\"\n";
        let errs = parse_baseline(src).expect_err("must fail");
        assert!(errs[0].contains("reason"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let src = "[[allow]]\nlint = \"x\"\npath = \"y\"\nreason = \"z\"\nscope = \"w\"\n";
        assert!(parse_baseline(src).is_err());
    }

    #[test]
    fn empty_file_is_ok() {
        assert_eq!(parse_baseline("# nothing\n").expect("ok"), vec![]);
    }

    #[test]
    fn describe_reports_key_fields_verbatim() {
        let src = "[[allow]]\nlint = \"atomics-ordering\"\npath = \"crates/txlog/src/service.rs\"\ncontains = \"append_calls.load\"\ncount = 1\nreason = \"monotone counter\"\n";
        let entries = parse_baseline(src).expect("parses");
        let d = entries[0].describe();
        assert_eq!(
            d,
            "analysis.toml:1: lint = \"atomics-ordering\", \
             path = \"crates/txlog/src/service.rs\", \
             contains = \"append_calls.load\", count = 1"
        );
    }

    #[test]
    fn describe_omits_absent_optionals() {
        let src = "[[allow]]\nlint = \"x\"\npath = \"y\"\nreason = \"needed here\"\n";
        let entries = parse_baseline(src).expect("parses");
        assert_eq!(
            entries[0].describe(),
            "analysis.toml:1: lint = \"x\", path = \"y\""
        );
    }
}
