//! A small Rust token scanner — just enough fidelity for the invariant
//! lints: comments, string/char literals, and lifetimes are consumed (so
//! `".unwrap()"` inside a string can never trip a lint), identifiers and
//! punctuation come out with line numbers, and `#[cfg(test)]` / `#[test]`
//! items are marked so test code is exempt.
//!
//! This is deliberately not a parser. The lints over it are heuristic and
//! documented as such in DESIGN.md; the checked-in baseline (analysis.toml)
//! absorbs the intentional exceptions.

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal (opaque).
    Num,
    /// String / char / byte literal (contents dropped).
    Lit,
    /// Lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// Any single punctuation character: `{ } ( ) [ ] . , ; : ! # = & ...`.
    Punct(char),
}

/// A token with its source line and test-code marking.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based source line.
    pub line: u32,
    /// What it is.
    pub kind: TokKind,
    /// True when the token sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Is this exactly the punctuation `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Scans Rust source into tokens. Never panics on malformed input.
pub fn scan(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks: Vec<Tok> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($range:expr) => {
            for &c in b.get($range).unwrap_or(&[]) {
                if c == b'\n' {
                    line += 1;
                }
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment: skip to newline.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let mut depth = 1usize;
                let start = i;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(start..i);
            }
            b'"' => {
                let end = skip_string(b, i);
                bump_lines!(i..end);
                toks.push(Tok {
                    line,
                    kind: TokKind::Lit,
                    in_test: false,
                });
                i = end;
            }
            b'\'' => {
                // Lifetime vs char literal.
                let next = b.get(i + 1).copied();
                match next {
                    Some(n)
                        if (n.is_ascii_alphabetic() || n == b'_')
                            && b.get(i + 2) != Some(&b'\'') =>
                    {
                        // `'a`, `'static`, `'_` — a lifetime.
                        i += 1;
                        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                            i += 1;
                        }
                        toks.push(Tok {
                            line,
                            kind: TokKind::Lifetime,
                            in_test: false,
                        });
                    }
                    _ => {
                        // Char literal: consume to the closing quote,
                        // honouring escapes.
                        let start = i;
                        i += 1;
                        while i < b.len() {
                            if b[i] == b'\\' {
                                i += 2;
                            } else if b[i] == b'\'' {
                                i += 1;
                                break;
                            } else {
                                i += 1;
                            }
                        }
                        bump_lines!(start..i);
                        toks.push(Tok {
                            line,
                            kind: TokKind::Lit,
                            in_test: false,
                        });
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // Raw / byte string prefixes: `r"..."`, `r#"..."#`, `b"..."`,
                // `br#"..."#` — the "identifier" is really a literal prefix.
                let is_str_prefix = matches!(word, "r" | "b" | "br" | "rb")
                    && matches!(b.get(i), Some(&b'"') | Some(&b'#'));
                if is_str_prefix && looks_like_raw_string(b, i) {
                    let end = skip_maybe_raw_string(b, i);
                    bump_lines!(i..end);
                    toks.push(Tok {
                        line,
                        kind: TokKind::Lit,
                        in_test: false,
                    });
                    i = end;
                } else {
                    toks.push(Tok {
                        line,
                        kind: TokKind::Ident(word.to_string()),
                        in_test: false,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) {
                        // `1.5` continues the number; `0..n` does not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Num,
                    in_test: false,
                });
            }
            c => {
                toks.push(Tok {
                    line,
                    kind: TokKind::Punct(c as char),
                    in_test: false,
                });
                i += 1;
            }
        }
    }

    mark_test_regions(&mut toks);
    toks
}

/// After a `r`/`b`/`br` prefix, is this actually a (raw) string literal?
fn looks_like_raw_string(b: &[u8], mut i: usize) -> bool {
    while b.get(i) == Some(&b'#') {
        i += 1;
    }
    b.get(i) == Some(&b'"')
}

/// Skips a regular (escaped) string literal starting at the `"`; returns the
/// index one past the closing quote.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw (`r#"..."#`) or plain string starting at the first `#` or `"`
/// after a prefix; returns the index one past the end.
fn skip_maybe_raw_string(b: &[u8], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        return i;
    }
    if hashes == 0 {
        return skip_string(b, i);
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Marks every token belonging to a `#[cfg(test)]`- or `#[test]`-gated item
/// (including whole `mod tests { ... }` bodies) as test code.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, is_test_attr) = scan_attribute(toks, i);
            if is_test_attr {
                // Cover the attribute itself, any further attributes, and
                // the item that follows.
                let item_end = skip_item(toks, attr_end);
                for t in toks.iter_mut().take(item_end).skip(i) {
                    t.in_test = true;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
}

/// Scans one `#[...]` attribute starting at the `#`; returns (index one past
/// the closing `]`, whether it gates test code).
fn scan_attribute(toks: &[Tok], start: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg = false;
    let mut i = start + 1; // at '['
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, is_test);
            }
        } else if let Some(id) = t.ident() {
            match id {
                "cfg" | "cfg_attr" => saw_cfg = true,
                // `#[test]` directly, or `test` anywhere inside `cfg(...)`.
                "test" if depth == 1 && !saw_cfg => is_test = true,
                "test" if saw_cfg => is_test = true,
                _ => {}
            }
        }
        i += 1;
    }
    (i, is_test)
}

/// Skips one item starting at `start` (past its attributes): consumes any
/// further `#[...]` attributes, then either a `;`-terminated item or a
/// braced item body (to the matching `}`), whichever comes first.
fn skip_item(toks: &[Tok], mut start: usize) -> usize {
    while start < toks.len()
        && toks[start].is_punct('#')
        && toks.get(start + 1).is_some_and(|t| t.is_punct('['))
    {
        let (end, _) = scan_attribute(toks, start);
        start = end;
    }
    let mut i = start;
    let mut brace = 0usize;
    let mut paren = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => {
                brace = brace.saturating_sub(1);
                if brace == 0 {
                    return i + 1;
                }
            }
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren = paren.saturating_sub(1),
            TokKind::Punct(';') if brace == 0 && paren == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // x.unwrap() in a comment
            /* and /* nested */ here x.unwrap() */
            let s = "call .unwrap() now";
            let r = r#"raw .unwrap()"#;
            let b = b"bytes .unwrap()";
            let c = '\'';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(ids.contains(&"trim".to_string()));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = scan("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = r#"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
            fn live_again() { z.trim(); }
        "#;
        let toks = scan(src);
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.ident() == Some("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let trim = toks.iter().find(|t| t.ident() == Some("trim"));
        assert!(trim.is_some_and(|t| !t.in_test));
    }

    #[test]
    fn raw_strings_containing_lock_calls_yield_no_idents() {
        // A raw string whose *content* looks like lock acquisition must be
        // opaque to every token consumer (the guard parser and the lock
        // graph both key off `lock`/`try_lock` idents).
        let src = r####"
            let msg = r#"call m.lock() then q.try_lock() here"#;
            let hashy = r##"even r#"nested"# m.lock() text"##;
            real.try_lock();
        "####;
        let toks = scan(src);
        let locks: Vec<u32> = toks
            .iter()
            .filter(|t| matches!(t.ident(), Some("lock" | "try_lock")))
            .map(|t| t.line)
            .collect();
        assert_eq!(locks, vec![4], "only the real call may survive: {locks:?}");
    }

    #[test]
    fn turbofish_with_nested_generics_keeps_surrounding_calls() {
        // `::<Vec<Arc<Mutex<T>>>>` must not unbalance anything: the method
        // idents on both sides of the turbofish stay visible with correct
        // lines.
        let src = "let g = m.lock();\nlet v = it.collect::<Vec<Arc<Mutex<u8>>>>();\nq.try_lock();";
        let toks = scan(src);
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.ident() == Some(name))
                .map(|t| t.line)
        };
        assert_eq!(find("lock"), Some(1));
        assert_eq!(find("collect"), Some(2));
        assert_eq!(find("try_lock"), Some(3));
    }

    #[test]
    fn if_let_try_lock_tokens_survive_with_lines() {
        let src = "if let Some(g) = m.try_lock() {\n    g.push(1);\n}";
        let toks = scan(src);
        let tl = toks.iter().find(|t| t.ident() == Some("try_lock")).unwrap();
        assert_eq!(tl.line, 1);
        assert!(!tl.in_test);
        // The binding ident and the Some wrapper are both present for the
        // guard parser to consume.
        assert!(toks.iter().any(|t| t.ident() == Some("Some")));
        assert!(toks.iter().filter(|t| t.ident() == Some("g")).count() >= 2);
    }

    #[test]
    fn multi_line_method_chains_report_per_line_positions() {
        let src = "let g = self\n    .inner\n    .lock();\nuse_it(g);";
        let toks = scan(src);
        let lock = toks.iter().find(|t| t.ident() == Some("lock")).unwrap();
        assert_eq!(lock.line, 3, "chain segments keep their own lines");
        let inner = toks.iter().find(|t| t.ident() == Some("inner")).unwrap();
        assert_eq!(inner.line, 2);
    }

    #[test]
    fn test_attribute_marks_single_fn() {
        let src = r#"
            #[test]
            fn a_test() { q.unwrap(); }
            fn live() { r.unwrap(); }
        "#;
        let toks = scan(src);
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.ident() == Some("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }
}
