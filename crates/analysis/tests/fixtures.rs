//! Tests the analyzer against the checked-in fixtures: every `positive_*`
//! case must be flagged, every `negative_*` case must stay clean. The
//! fixtures are plain text fed to `analyze_source` under a scoped path —
//! they are never compiled, so they can reference types that do not exist.

use memorydb_analysis::analyze_source;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Every finding must land inside a `positive_*` item; anything else means
/// the lint flagged a negative case.
fn assert_only_positives(findings: &[memorydb_analysis::Finding], src: &str) {
    // Map each line to the most recent `pub fn` name at or above it.
    let mut owner: Vec<Option<&str>> = Vec::new();
    let mut current: Option<&str> = None;
    for line in src.lines() {
        if let Some(rest) = line.trim().strip_prefix("pub fn ") {
            current = rest.split('(').next();
        } else if line.trim().starts_with("#[cfg(test)]") {
            current = Some("test_region");
        }
        owner.push(current);
    }
    for f in findings {
        let who = owner
            .get(f.line.saturating_sub(1) as usize)
            .copied()
            .flatten()
            .unwrap_or("<file header>");
        assert!(
            who.starts_with("positive_"),
            "lint {} flagged line {} inside `{}`: {}",
            f.lint,
            f.line,
            who,
            f.snippet
        );
    }
}

#[test]
fn panic_fixture_flags_all_positive_cases() {
    let src = fixture("panic_unwrap.rs");
    // Linted under a wire-layer path so both the panic and indexing
    // sub-lints apply.
    let findings = analyze_source("crates/resp/src/decode.rs", &src);
    assert_eq!(
        findings.len(),
        5,
        "expected unwrap, expect, panic!, unreachable!, and indexing:\n{findings:#?}"
    );
    assert!(findings.iter().all(|f| f.lint == "panic-freedom"));
    assert_only_positives(&findings, &src);
}

#[test]
fn panic_fixture_indexing_not_flagged_outside_wire_layer() {
    let src = fixture("panic_unwrap.rs");
    // Under an exec path the indexing sub-lint is out of scope: one fewer
    // finding, everything else identical.
    let findings = analyze_source("crates/engine/src/exec/strings.rs", &src);
    assert_eq!(findings.len(), 4, "{findings:#?}");
}

#[test]
fn panic_fixture_silent_outside_any_scope() {
    let src = fixture("panic_unwrap.rs");
    let findings = analyze_source("crates/bench/src/extras.rs", &src);
    assert!(
        findings.is_empty(),
        "panic lints must not fire outside the serving path:\n{findings:#?}"
    );
}

#[test]
fn lock_fixture_flags_guards_across_waits() {
    let src = fixture("lock_across_wait.rs");
    // Lock discipline is workspace-wide: any path works.
    let findings = analyze_source("crates/core/src/anywhere.rs", &src);
    assert_eq!(
        findings.len(),
        3,
        "expected wait_durable, put, and append_after under a live guard:\n{findings:#?}"
    );
    assert!(findings.iter().all(|f| f.lint == "lock-discipline"));
    assert_only_positives(&findings, &src);
}

#[test]
fn stripe_fixture_flags_nested_acquisition_and_guarded_waits() {
    let src = fixture("stripe_order.rs");
    // Both passes are workspace-wide: any non-stripes path works.
    let findings = analyze_source("crates/core/src/anywhere.rs", &src);
    let stripe: Vec<_> = findings
        .iter()
        .filter(|f| f.lint == "stripe-order")
        .collect();
    let lockd: Vec<_> = findings
        .iter()
        .filter(|f| f.lint == "lock-discipline")
        .collect();
    assert_eq!(
        stripe.len(),
        3,
        "expected nested lock_all, nested lock_one, raw bypass:\n{findings:#?}"
    );
    assert_eq!(
        lockd.len(),
        2,
        "expected wait_durable and put under stripe guards:\n{findings:#?}"
    );
    assert_eq!(findings.len(), 5, "{findings:#?}");
    assert_only_positives(&findings, &src);

    // The stripes module itself implements lock_one/lock_all over the raw
    // mutexes; the stripe-order lint must not fire there.
    let in_module = analyze_source("crates/core/src/stripes.rs", &src);
    assert!(in_module.iter().all(|f| f.lint != "stripe-order"));
}

#[test]
fn determinism_fixture_flags_wall_clock_and_entropy() {
    let src = fixture("nondeterminism.rs");
    let findings = analyze_source("crates/sim/src/chaos.rs", &src);
    assert_eq!(
        findings.len(),
        4,
        "expected Instant::now, SystemTime::now, thread_rng, from_entropy:\n{findings:#?}"
    );
    assert!(findings.iter().all(|f| f.lint == "sim-determinism"));
    assert_only_positives(&findings, &src);

    // The same source is legal outside the deterministic-sim scope.
    assert!(analyze_source("crates/sim/src/workload.rs", &src).is_empty());
}

#[test]
fn std_sync_fixture_flags_mutex_and_rwlock() {
    let src = fixture("std_sync.rs");
    let findings = analyze_source("crates/core/src/monitor.rs", &src);
    // use Mutex, use RwLock, and the two std::sync::Mutex path expressions.
    assert_eq!(findings.len(), 4, "{findings:#?}");
    assert!(findings.iter().all(|f| f.lint == "sync-primitives"));
    // Arc/atomic imports on the same lines as nothing; ensure no finding
    // mentions them.
    assert!(findings.iter().all(|f| !f.snippet.contains("Atomic")));
}

#[test]
fn atomics_fixture_classifies_every_relaxed_site() {
    let src = fixture("atomics_relaxed.rs");
    // Workspace-wide outside the stats scopes.
    let findings = analyze_source("crates/core/src/anywhere.rs", &src);
    let atomics: Vec<_> = findings
        .iter()
        .filter(|f| f.lint == "atomics-ordering")
        .collect();
    assert_eq!(
        atomics.len(),
        3,
        "expected handoff load, handoff store, CAS failure ordering:\n{findings:#?}"
    );
    assert_eq!(
        findings.len(),
        3,
        "no other lint may fire here:\n{findings:#?}"
    );
    assert_only_positives(&findings, &src);

    // The same source inside a stats scope is all allowed.
    assert!(
        analyze_source("crates/metrics/src/extra.rs", &src).is_empty(),
        "metrics scope must absorb every Relaxed site"
    );
}

#[test]
fn lock_cycle_fixture_is_flagged_by_the_lockgraph() {
    let src = fixture("lock_cycle.rs");
    let g =
        memorydb_analysis::LockGraph::build(&[("crates/core/src/anywhere.rs".to_string(), src)]);
    let findings = g.cycle_findings();
    // One SCC cycle (alpha <-> beta) + one direct self-loop (gamma).
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().all(|f| f.lint == "lock-order"));
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("alpha") && f.message.contains("beta")),
        "{findings:#?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.snippet.contains("gamma -> core.anywhere.gamma")),
        "{findings:#?}"
    );
    // The stripes special case: lock_all then another lock is a plain edge
    // out of the single stripes node, never a cycle.
    let stripes_edge = (
        memorydb_analysis::lockgraph::STRIPES_NODE.to_string(),
        "core.anywhere.delta".to_string(),
    );
    assert!(g.edges.contains_key(&stripes_edge), "{:?}", g.edges.keys());
    assert!(!g
        .cycles()
        .iter()
        .any(|c| c.contains(&memorydb_analysis::lockgraph::STRIPES_NODE.to_string())));
}

#[test]
fn fixtures_are_excluded_from_the_workspace_walk() {
    let root = memorydb_analysis::workspace_root();
    let findings = memorydb_analysis::analyze_workspace(&root).expect("walk workspace");
    assert!(
        findings.iter().all(|f| !f.file.contains("fixtures/")),
        "fixture files must never reach the real gate"
    );
}
