//! The log service implementation.
// Serving/apply path: panic-freedom is an enforced invariant (DESIGN.md §9;
// `cargo run -p memorydb-analysis`). Keep clippy aligned with the analyzer.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use bytes::Bytes;
use memorydb_metrics::{CounterId, GaugeId, Registry, StageId};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifier of a log entry: a dense 1-based sequence number. `EntryId::ZERO`
/// denotes the tail of an empty log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EntryId(pub u64);

impl EntryId {
    /// The "nothing appended yet" position.
    pub const ZERO: EntryId = EntryId(0);

    /// The id following this one.
    pub fn next(self) -> EntryId {
        EntryId(self.0 + 1)
    }
}

impl std::fmt::Display for EntryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier the service uses to tell writers/readers apart for fault
/// injection (each node in a shard uses its own client id).
pub type ClientId = u64;

/// One committed log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Sequence id (dense, 1-based).
    pub id: EntryId,
    /// Opaque payload — MemoryDB's core serializes its record format here.
    pub payload: Bytes,
    /// Chained checksum over all payloads up to and including this entry
    /// (supports snapshot verification, paper §7.2.1).
    pub chain_checksum: u64,
}

/// Commit latency model: quorum acknowledgement takes
/// `base + U(0, jitter)`. Zero for unit tests; ~2 ms for multi-AZ realism.
#[derive(Debug, Clone, Copy)]
pub struct CommitLatency {
    /// Fixed floor for a quorum round trip + fsync.
    pub base: Duration,
    /// Additional uniform jitter.
    pub jitter: Duration,
}

impl CommitLatency {
    /// No artificial latency (unit tests).
    pub const ZERO: CommitLatency = CommitLatency {
        base: Duration::ZERO,
        jitter: Duration::ZERO,
    };

    /// A realistic multi-AZ profile: ~1.2 ms base, up to 0.8 ms jitter
    /// (inter-AZ RTT ≈ 0.8 ms + storage fsync), yielding the paper's
    /// single-digit-millisecond write latencies.
    pub fn multi_az() -> CommitLatency {
        CommitLatency {
            base: Duration::from_micros(1200),
            jitter: Duration::from_micros(800),
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Number of simulated AZ replicas (paper: 3).
    pub num_azs: usize,
    /// Replicas that must durably store an entry before commit (paper: 2).
    pub quorum: usize,
    /// Commit latency model.
    pub latency: CommitLatency,
    /// RNG seed for latency jitter.
    pub seed: u64,
    /// Pipelined quorum (BtrLog-style): max appended batches whose quorum
    /// ack is still outstanding before `append_batch_after` blocks the
    /// appender. Replicas ack out of order; the committer advances the
    /// commit watermark strictly in order. `1` restores stop-and-wait.
    pub quorum_pipeline_depth: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            num_azs: 3,
            quorum: 2,
            latency: CommitLatency::ZERO,
            seed: 7,
            quorum_pipeline_depth: 4,
        }
    }
}

impl LogConfig {
    /// Zero-latency config for tests.
    pub fn instant() -> LogConfig {
        LogConfig::default()
    }

    /// Multi-AZ latency profile.
    pub fn multi_az() -> LogConfig {
        LogConfig {
            latency: CommitLatency::multi_az(),
            ..LogConfig::default()
        }
    }
}

/// Errors from [`LogService::append_after`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppendError {
    /// The precondition failed: the log tail is not the id the caller
    /// expected. Carries the actual assigned tail.
    Conflict {
        /// The tail the caller claimed to follow.
        expected: EntryId,
        /// The actual current tail.
        actual: EntryId,
    },
    /// The calling client is network-partitioned from the service.
    Partitioned,
}

impl std::fmt::Display for AppendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppendError::Conflict { expected, actual } => {
                write!(
                    f,
                    "conditional append conflict: expected tail {expected}, actual {actual}"
                )
            }
            AppendError::Partitioned => write!(f, "client partitioned from log service"),
        }
    }
}

impl std::error::Error for AppendError {}

/// Errors from read paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The requested position was trimmed away; restore from a snapshot.
    Trimmed {
        /// First id still available.
        first_available: EntryId,
    },
    /// The calling client is network-partitioned from the service.
    Partitioned,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Trimmed { first_available } => {
                write!(
                    f,
                    "log prefix trimmed; first available entry is {first_available}"
                )
            }
            ReadError::Partitioned => write!(f, "client partitioned from log service"),
        }
    }
}

impl std::error::Error for ReadError {}

pub(crate) fn fnv1a_chain(prev: u64, payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for b in prev.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

struct Pending {
    payload: Bytes,
    /// Per-AZ replica ack deadline, sampled when the batch is sent. `None`
    /// while that AZ is down or the send is stalled: the AZ acks with
    /// fresh latency after healing. Acks land out of order across batches;
    /// `promote_ready` still advances the commit watermark strictly in
    /// sequence order (pipelined quorum).
    acks: Vec<Option<Instant>>,
    /// Registry time (µs) when the append was accepted — the start of the
    /// `quorum_ack` stage recorded at commit.
    accepted_us: u64,
}

/// When a quorum of AZs will have acked (`quorum`-th smallest ack
/// deadline); `None` while fewer than `quorum` AZs have a scheduled ack.
fn quorum_deadline(acks: &[Option<Instant>], quorum: usize) -> Option<Instant> {
    let mut acked: Vec<Instant> = acks.iter().flatten().copied().collect();
    if acked.len() < quorum || quorum == 0 {
        return None;
    }
    acked.sort_unstable();
    acked.get(quorum - 1).copied()
}

impl Pending {
    /// See [`quorum_deadline`].
    fn ready_at(&self, quorum: usize) -> Option<Instant> {
        quorum_deadline(&self.acks, quorum)
    }

    /// How many AZ acks have already landed by `now`.
    fn acks_landed(&self, now: Instant) -> usize {
        self.acks.iter().flatten().filter(|t| **t <= now).count()
    }
}

struct Inner {
    /// Committed entries; `committed[i]` has id `trim_base + i + 1`.
    committed: Vec<LogEntry>,
    /// Id of the last entry removed by trimming (0 = nothing trimmed).
    trim_base: u64,
    /// Accepted-but-not-committed appends keyed by sequence.
    pending: BTreeMap<u64, Pending>,
    /// Last sequence of each appended batch whose quorum ack is still
    /// outstanding — the pipelined-quorum in-flight window. A batch
    /// retires when the commit watermark passes its tail.
    batch_tails: std::collections::BTreeSet<u64>,
    /// Highest assigned sequence (committed or pending).
    assigned_tail: u64,
    /// Chained checksum at the committed tail. Kept separately from the
    /// entries so trimming the whole log cannot reset the chain (§7.2.1
    /// verification depends on the chain being a pure function of the
    /// payload sequence since the log's creation).
    committed_chain: u64,
    /// Per-AZ health.
    az_up: Vec<bool>,
    /// Clients currently partitioned from the service.
    partitioned: std::collections::HashSet<ClientId>,
    /// Per-client read-side delay (fault injection: a slow replication
    /// link). Applied before every `read_committed_from` by that client.
    read_delay: std::collections::HashMap<ClientId, Duration>,
    /// While true the committer is frozen: accepted appends stay pending
    /// regardless of AZ health (fault injection: the log service's
    /// commit pipeline crashed; clearing it models the restart).
    commits_suspended: bool,
    rng: StdRng,
}

impl Inner {
    fn committed_tail(&self) -> u64 {
        self.trim_base + self.committed.len() as u64
    }

    fn sample_quorum_latency(&mut self, cfg: &LogConfig) -> Duration {
        let jitter_us = cfg.latency.jitter.as_micros() as u64;
        let extra = if jitter_us == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.rng.gen_range(0..=jitter_us))
        };
        cfg.latency.base + extra
    }

    /// Samples one replica-ack deadline per AZ for a freshly sent batch:
    /// up AZs ack after independent latency draws, down AZs don't ack until
    /// they heal. One send per batch — every entry in the batch shares the
    /// same per-AZ ack schedule.
    fn sample_batch_acks(&mut self, cfg: &LogConfig, now: Instant) -> Vec<Option<Instant>> {
        (0..cfg.num_azs)
            .map(|az| {
                if self.az_up.get(az).copied().unwrap_or(false) {
                    let lat = self.sample_quorum_latency(cfg);
                    Some(now + lat)
                } else {
                    None
                }
            })
            .collect()
    }
}

/// The transaction log service. Cheap to share: wrap in [`Arc`].
///
/// A background committer thread promotes accepted appends to committed once
/// their quorum latency has elapsed (strictly in sequence order) and wakes
/// blocked readers and writers.
pub struct LogService {
    cfg: LogConfig,
    inner: Mutex<Inner>,
    /// Signalled whenever the committed tail advances or faults change.
    commit_cv: Condvar,
    /// Signalled to wake the committer thread (new pending work / faults).
    work_cv: Condvar,
    shutdown: AtomicBool,
    /// Append API invocations (each one models a quorum round trip). A
    /// batched append counts once — the observable that group commit
    /// amortizes the per-append quorum latency.
    append_calls: AtomicU64,
    /// Durability-path metrics: append/quorum-ack/read stages, trim and
    /// fault-hook trip counters, log-position gauges.
    metrics: Arc<Registry>,
}

impl std::fmt::Debug for LogService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("LogService")
            .field("committed_tail", &inner.committed_tail())
            .field("assigned_tail", &inner.assigned_tail)
            .field("pending", &inner.pending.len())
            .finish()
    }
}

impl LogService {
    /// Creates the service and spawns its committer thread.
    pub fn new(cfg: LogConfig) -> Arc<LogService> {
        let svc = Arc::new(LogService {
            inner: Mutex::new(Inner {
                committed: Vec::new(),
                trim_base: 0,
                pending: BTreeMap::new(),
                batch_tails: Default::default(),
                assigned_tail: 0,
                committed_chain: 0,
                az_up: vec![true; cfg.num_azs],
                partitioned: Default::default(),
                read_delay: Default::default(),
                commits_suspended: false,
                rng: StdRng::seed_from_u64(cfg.seed),
            }),
            cfg,
            commit_cv: Condvar::new(),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            append_calls: AtomicU64::new(0),
            metrics: Arc::new(Registry::new()),
        });
        svc.metrics
            .set_gauge(GaugeId::AzUpCount, svc.cfg.num_azs as i64);
        svc.metrics.set_gauge(GaugeId::LogFirstAvailable, 1);
        let weak = Arc::downgrade(&svc);
        // Baselined in analysis.toml: failing to spawn at service startup is
        // a boot error, before any append could be accepted or acked.
        #[allow(clippy::expect_used)]
        std::thread::Builder::new()
            .name("txlog-committer".into())
            .spawn(move || {
                while let Some(svc) = weak.upgrade() {
                    if svc.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    svc.committer_step();
                    // Drop the Arc before sleeping so the service can die.
                }
            })
            .expect("spawn committer");
        svc
    }

    /// Promotes every pending entry whose quorum deadline has passed,
    /// strictly in sequence order, waking blocked readers when the tail
    /// advances. Caller holds `inner`.
    fn promote_ready(&self, inner: &mut Inner, now: Instant) {
        let mut advanced = false;
        while !inner.commits_suspended {
            let next_seq = inner.committed_tail() + 1;
            let Some(p) = inner.pending.get(&next_seq) else {
                break;
            };
            // A later batch's acks may all have landed already (out-of-order
            // acks); the watermark still only advances once THIS entry has a
            // quorum — pipelined sends, in-order commit.
            match p.ready_at(self.cfg.quorum) {
                Some(t) if t <= now => {
                    let Some(p) = inner.pending.remove(&next_seq) else {
                        break;
                    };
                    // Accept → quorum commit, per entry (paper §3.2's
                    // durability wait is dominated by this stage).
                    self.metrics.record_stage(
                        StageId::QuorumAck,
                        self.metrics.now_us().saturating_sub(p.accepted_us),
                    );
                    let chain = fnv1a_chain(inner.committed_chain, &p.payload);
                    inner.committed_chain = chain;
                    let entry = LogEntry {
                        id: EntryId(next_seq),
                        chain_checksum: chain,
                        payload: p.payload,
                    };
                    inner.committed.push(entry);
                    // Retire the batch once the watermark passes its tail,
                    // opening a pipeline slot for a blocked appender.
                    inner.batch_tails.remove(&next_seq);
                    advanced = true;
                }
                _ => break,
            }
        }
        if advanced {
            self.metrics
                .set_gauge(GaugeId::LogCommittedTail, inner.committed_tail() as i64);
            self.metrics
                .set_gauge(GaugeId::LogPendingEntries, inner.pending.len() as i64);
            self.metrics
                .set_gauge(GaugeId::QuorumInflight, inner.batch_tails.len() as i64);
            self.commit_cv.notify_all();
        }
    }

    /// One committer iteration: commit everything ready, then sleep until
    /// the next deadline or a wakeup.
    fn committer_step(&self) {
        let mut inner = self.inner.lock();
        self.promote_ready(&mut inner, Instant::now());
        // Sleep until the next pending deadline (or a nudge).
        let next_seq = inner.committed_tail() + 1;
        let deadline = if inner.commits_suspended {
            None
        } else {
            inner
                .pending
                .get(&next_seq)
                .and_then(|p| p.ready_at(self.cfg.quorum))
        };
        match deadline {
            Some(t) => {
                let now = Instant::now();
                if t > now {
                    self.work_cv.wait_for(&mut inner, t - now);
                }
            }
            None => {
                self.work_cv.wait_for(&mut inner, Duration::from_millis(50));
            }
        }
    }

    /// Conditionally appends `payload` after `expected_tail`.
    ///
    /// On success the entry is **accepted** and its id returned; it becomes
    /// durable (committed) asynchronously — poll with
    /// [`LogService::is_durable`] or block with [`LogService::wait_durable`].
    /// This split is what lets MemoryDB's primary keep executing other
    /// commands while replies wait in the tracker (paper §3.2).
    pub fn append_after(
        &self,
        client: ClientId,
        expected_tail: EntryId,
        payload: Bytes,
    ) -> Result<EntryId, AppendError> {
        // A successful single-payload batch always yields the dense id right
        // after the expected tail; never index into the reply.
        self.append_batch_after(client, expected_tail, std::slice::from_ref(&payload))
            .map(|ids| {
                ids.into_iter()
                    .next()
                    .unwrap_or_else(|| expected_tail.next())
            })
    }

    /// Conditionally appends a whole batch of payloads after `expected_tail`
    /// — MemoryDB-style group commit. The batch is all-or-nothing: either
    /// every payload is accepted with dense consecutive ids (returned in
    /// order) or the precondition fails and nothing is appended.
    ///
    /// Each entry keeps its own id and chained checksum exactly as if the
    /// payloads had been appended one at a time, but the *whole batch shares
    /// one quorum round trip*: every entry shares the batch's per-AZ ack
    /// schedule, so the last entry of the batch becomes durable at the same
    /// instant as the first. One [`LogService::wait_durable`] on the final id
    /// therefore releases a whole pipeline of client replies (paper §3.2;
    /// BtrLog-style group commit).
    ///
    /// Appends are **pipelined**: the call does not wait for earlier batches
    /// to be acked, up to `quorum_pipeline_depth` outstanding batches. AZ
    /// acks land out of order across batches; the commit watermark still
    /// advances strictly in sequence order.
    ///
    /// An empty batch is a no-op that still checks the precondition and
    /// returns an empty id list.
    pub fn append_batch_after(
        &self,
        client: ClientId,
        expected_tail: EntryId,
        payloads: &[Bytes],
    ) -> Result<Vec<EntryId>, AppendError> {
        let accept_start_us = self.metrics.now_us();
        let depth = self.cfg.quorum_pipeline_depth.max(1);
        let mut inner = self.inner.lock();
        loop {
            if inner.partitioned.contains(&client) {
                self.metrics.incr(CounterId::PartitionRejections);
                return Err(AppendError::Partitioned);
            }
            if inner.assigned_tail != expected_tail.0 {
                self.metrics.incr(CounterId::AppendConflicts);
                return Err(AppendError::Conflict {
                    expected: expected_tail,
                    actual: EntryId(inner.assigned_tail),
                });
            }
            // Pipelined quorum: keep streaming batches without waiting for
            // earlier acks, up to `quorum_pipeline_depth` outstanding. At
            // the cap, block until the watermark retires a batch — and
            // re-check fencing/partition on every wakeup, since both can
            // change while parked.
            if payloads.is_empty() || inner.batch_tails.len() < depth {
                break;
            }
            self.commit_cv
                .wait_for(&mut inner, Duration::from_millis(50));
        }
        self.append_calls.fetch_add(1, Ordering::Relaxed);
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        // One send per batch: each AZ replica acks after its own latency
        // draw (out-of-order across batches); the quorum deadline is the
        // quorum-th earliest ack.
        let acks = inner.sample_batch_acks(&self.cfg, Instant::now());
        let accepted_us = self.metrics.now_us();
        let mut ids = Vec::with_capacity(payloads.len());
        for payload in payloads {
            let seq = inner.assigned_tail + 1;
            inner.assigned_tail = seq;
            inner.pending.insert(
                seq,
                Pending {
                    payload: payload.clone(),
                    acks: acks.clone(),
                    accepted_us,
                },
            );
            ids.push(EntryId(seq));
        }
        if let Some(last) = ids.last() {
            inner.batch_tails.insert(last.0);
        }
        self.metrics
            .set_gauge(GaugeId::LogPendingEntries, inner.pending.len() as i64);
        self.metrics
            .set_gauge(GaugeId::QuorumInflight, inner.batch_tails.len() as i64);
        // Already-elapsed quorum deadlines (zero-latency configs) commit
        // inline: promoting them here spares a scheduler round trip through
        // the committer thread per group-commit flush, which dominates on
        // small hosts. Future deadlines still go through the committer.
        let now = Instant::now();
        if quorum_deadline(&acks, self.cfg.quorum).is_some_and(|t| t <= now) {
            self.promote_ready(&mut inner, now);
        }
        let committer_has_work = !inner.pending.is_empty();
        drop(inner);
        // The synchronous accept span (the quorum wait is `quorum_ack`).
        self.metrics.record_stage(
            StageId::LogAppend,
            accepted_us.saturating_sub(accept_start_us),
        );
        if committer_has_work {
            self.work_cv.notify_all();
        }
        Ok(ids)
    }

    /// Number of append API calls accepted so far (conditional, batched, or
    /// unconditional — each models one quorum round trip). The ratio of
    /// entries appended to calls made is the group-commit amortization
    /// factor.
    pub fn append_calls(&self) -> u64 {
        self.append_calls.load(Ordering::Relaxed)
    }

    /// Unconditional append: follows whatever the current tail is. Used by
    /// writers that serialize externally (e.g. the slot-migration target,
    /// which is the only writer of its shard's log during a migration).
    pub fn append(&self, client: ClientId, payload: Bytes) -> Result<EntryId, AppendError> {
        let tail = {
            let inner = self.inner.lock();
            if inner.partitioned.contains(&client) {
                return Err(AppendError::Partitioned);
            }
            EntryId(inner.assigned_tail)
        };
        self.append_after(client, tail, payload)
    }

    /// Has `id` committed (durably stored on a quorum)?
    pub fn is_durable(&self, id: EntryId) -> bool {
        let inner = self.inner.lock();
        id.0 <= inner.committed_tail()
    }

    /// Blocks until `id` commits or `timeout` elapses. Returns whether it
    /// committed.
    pub fn wait_durable(&self, id: EntryId, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if id.0 <= inner.committed_tail() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.commit_cv.wait_for(&mut inner, deadline - now);
        }
    }

    /// Number of AZ replicas that have acknowledged `id` so far — the
    /// observable behind `WAIT`'s "replicas achieved" reply when the wait
    /// times out before commit. Committed entries count every up AZ (never
    /// below the quorum that committed them); pending entries count the
    /// acks that have landed; unassigned ids count zero.
    pub fn acked_count(&self, id: EntryId) -> usize {
        let inner = self.inner.lock();
        if id.0 > inner.assigned_tail {
            return 0;
        }
        if id.0 <= inner.committed_tail() {
            let up = inner.az_up.iter().filter(|&&u| u).count();
            return up.max(self.cfg.quorum);
        }
        inner
            .pending
            .get(&id.0)
            .map_or(0, |p| p.acks_landed(Instant::now()))
    }

    /// Blocks until the committed tail reaches at least `target` (or
    /// `timeout` elapses) and returns the tail observed at wakeup.
    ///
    /// This is the batched-wakeup primitive behind the commit pipeline's
    /// completer thread: one waiter parks on the *minimum* outstanding
    /// ticket and resolves every ticket at-or-below the returned watermark,
    /// so N in-flight connections cost one condvar wait, not N.
    pub fn wait_committed_at_least(&self, target: EntryId, timeout: Duration) -> EntryId {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            let tail = inner.committed_tail();
            if tail >= target.0 {
                return EntryId(tail);
            }
            let now = Instant::now();
            if now >= deadline {
                return EntryId(tail);
            }
            self.commit_cv.wait_for(&mut inner, deadline - now);
        }
    }

    /// Id of the last committed entry.
    pub fn committed_tail(&self) -> EntryId {
        EntryId(self.inner.lock().committed_tail())
    }

    /// Id of the last accepted (possibly uncommitted) entry — the value a
    /// conditional append must name to win.
    pub fn assigned_tail(&self) -> EntryId {
        EntryId(self.inner.lock().assigned_tail)
    }

    /// Chained checksum at a committed position (0 = empty prefix).
    ///
    /// Returns `None` if `upto` exceeds the committed tail or was trimmed.
    pub fn chain_checksum_at(&self, upto: EntryId) -> Option<u64> {
        if upto == EntryId::ZERO {
            return Some(0);
        }
        let inner = self.inner.lock();
        if upto.0 <= inner.trim_base || upto.0 > inner.committed_tail() {
            return None;
        }
        let idx = (upto.0 - inner.trim_base - 1) as usize;
        inner.committed.get(idx).map(|e| e.chain_checksum)
    }

    /// Reads up to `max` committed entries with id > `after`.
    pub fn read_committed_from(
        &self,
        client: ClientId,
        after: EntryId,
        max: usize,
    ) -> Result<Vec<LogEntry>, ReadError> {
        let read_start_us = self.metrics.now_us();
        // Injected read-side latency happens outside the lock: a slow link
        // delays this reader without stalling the service for anyone else.
        let delay = { self.inner.lock().read_delay.get(&client).copied() };
        if let Some(d) = delay {
            self.metrics
                .record_stage(StageId::ReadDelay, d.as_micros() as u64);
            std::thread::sleep(d);
        }
        let inner = self.inner.lock();
        if inner.partitioned.contains(&client) {
            self.metrics.incr(CounterId::PartitionRejections);
            return Err(ReadError::Partitioned);
        }
        if after.0 < inner.trim_base {
            self.metrics.incr(CounterId::ReadsTrimmed);
            return Err(ReadError::Trimmed {
                first_available: EntryId(inner.trim_base + 1),
            });
        }
        let start_idx = (after.0 - inner.trim_base) as usize;
        let out: Vec<LogEntry> = inner
            .committed
            .iter()
            .skip(start_idx)
            .take(max)
            .cloned()
            .collect();
        drop(inner);
        self.metrics.record_stage(
            StageId::LogRead,
            self.metrics.now_us().saturating_sub(read_start_us),
        );
        Ok(out)
    }

    /// Long-poll: like [`LogService::read_committed_from`] but blocks up to
    /// `timeout` waiting for at least one entry.
    pub fn wait_for_entries(
        &self,
        client: ClientId,
        after: EntryId,
        max: usize,
        timeout: Duration,
    ) -> Result<Vec<LogEntry>, ReadError> {
        let deadline = Instant::now() + timeout;
        loop {
            let out = self.read_committed_from(client, after, max)?;
            if !out.is_empty() {
                return Ok(out);
            }
            let mut inner = self.inner.lock();
            // Re-check the trim boundary under the same lock as the
            // emptiness decision: a reader whose position a concurrent trim
            // overtook must surface `Trimmed`, never an empty-but-OK
            // timeout. (A trim implies the tail moved first, so the
            // top-of-loop read would also catch it on the next pass — this
            // makes the contract local rather than emergent, and together
            // with `trim_prefix`'s wakeup it fires before the timeout.)
            if after.0 < inner.trim_base {
                self.metrics.incr(CounterId::ReadsTrimmed);
                return Err(ReadError::Trimmed {
                    first_available: EntryId(inner.trim_base + 1),
                });
            }
            // Re-check the tail under the lock to avoid a lost wakeup.
            if inner.committed_tail() > after.0 {
                continue;
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(Vec::new());
            }
            self.commit_cv.wait_for(&mut inner, deadline - now);
        }
    }

    /// Trims every entry with id ≤ `upto` (they are covered by a verified
    /// snapshot, paper §4.2.3). Trimming beyond the committed tail is
    /// clamped.
    pub fn trim_prefix(&self, upto: EntryId) {
        let mut inner = self.inner.lock();
        let upto = upto.0.min(inner.committed_tail());
        if upto <= inner.trim_base {
            return;
        }
        let drop_count = (upto - inner.trim_base) as usize;
        inner.committed.drain(..drop_count);
        inner.trim_base = upto;
        self.metrics
            .set_gauge(GaugeId::LogFirstAvailable, (upto + 1) as i64);
        drop(inner);
        // Wake long-pollers so a reader parked below the new boundary
        // observes `Trimmed` promptly instead of sleeping to its timeout.
        self.commit_cv.notify_all();
    }

    /// First id still readable (after trimming); `ZERO.next()` on a fresh log.
    pub fn first_available(&self) -> EntryId {
        EntryId(self.inner.lock().trim_base + 1)
    }

    /// Durability-path metrics registry: append/quorum-ack/read stage
    /// histograms, fault-hook trip counters, and log-position gauges.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    // --- fault injection ---------------------------------------------------

    /// Marks an AZ up or down. While fewer than `quorum` AZs are up, accepted
    /// appends stall; they commit (with fresh latency) once a quorum returns.
    pub fn set_az_up(&self, az: usize, up: bool) {
        self.metrics.incr(CounterId::FaultAzFlips);
        let mut inner = self.inner.lock();
        self.apply_az_up(&mut inner, az, up);
        drop(inner);
        self.work_cv.notify_all();
        self.commit_cv.notify_all();
    }

    /// Shared body of [`Self::set_az_up`] and [`Self::clear_faults`]: flips
    /// the AZ and re-schedules (or stalls) pending appends. Split out so the
    /// heal path does not route through the public hook and double-count the
    /// `FaultAzFlips` trip counter.
    fn apply_az_up(&self, inner: &mut Inner, az: usize, up: bool) {
        let Some(slot) = inner.az_up.get_mut(az) else {
            return; // unknown AZ index: nothing to flip
        };
        *slot = up;
        let up_count = inner.az_up.iter().filter(|&&u| u).count();
        self.metrics.set_gauge(GaugeId::AzUpCount, up_count as i64);
        if up {
            // The healed AZ (re)acks every in-flight entry with fresh
            // latency; entries stalled below a quorum become committable.
            self.reschedule_missing_acks(inner);
        } else {
            // A downed AZ's outstanding acks are lost.
            for p in inner.pending.values_mut() {
                if let Some(ack) = p.acks.get_mut(az) {
                    *ack = None;
                }
            }
        }
    }

    /// Assigns fresh ack deadlines for every (pending entry, up AZ) pair
    /// whose ack is missing — the heal/restart path for both AZ recovery
    /// and commit-pipeline restart. Caller holds `inner`.
    fn reschedule_missing_acks(&self, inner: &mut Inner) {
        let now = Instant::now();
        let mut fills: Vec<(u64, usize)> = Vec::new();
        for (&seq, p) in inner.pending.iter() {
            for (az, ack) in p.acks.iter().enumerate() {
                if ack.is_none() && inner.az_up.get(az).copied().unwrap_or(false) {
                    fills.push((seq, az));
                }
            }
        }
        for (seq, az) in fills {
            let lat = inner.sample_quorum_latency(&self.cfg);
            if let Some(p) = inner.pending.get_mut(&seq) {
                if let Some(ack) = p.acks.get_mut(az) {
                    *ack = Some(now + lat);
                }
            }
        }
    }

    /// Partitions (or heals) a client from the service.
    pub fn set_client_partitioned(&self, client: ClientId, partitioned: bool) {
        self.metrics.incr(CounterId::FaultPartitionFlips);
        let mut inner = self.inner.lock();
        if partitioned {
            inner.partitioned.insert(client);
        } else {
            inner.partitioned.remove(&client);
        }
        drop(inner);
        self.commit_cv.notify_all();
    }

    /// Injects (or with `None` clears) a fixed delay before every log read
    /// this client makes — a deterministic slow replication/restore link.
    pub fn set_read_delay(&self, client: ClientId, delay: Option<Duration>) {
        self.metrics.incr(CounterId::FaultReadDelaySets);
        let mut inner = self.inner.lock();
        match delay {
            Some(d) => {
                inner.read_delay.insert(client, d);
            }
            None => {
                inner.read_delay.remove(&client);
            }
        }
    }

    /// Freezes (or restarts) the commit pipeline. While suspended, accepted
    /// appends pile up as pending regardless of AZ health — the log
    /// service's crash/restart hook. On restart every stalled append is
    /// re-scheduled with fresh quorum latency.
    pub fn set_commits_suspended(&self, suspended: bool) {
        self.metrics.incr(CounterId::FaultCommitSuspendFlips);
        let mut inner = self.inner.lock();
        inner.commits_suspended = suspended;
        if !suspended {
            // Restart: anything whose acks were lost while frozen gets a
            // fresh schedule from every up AZ.
            self.reschedule_missing_acks(&mut inner);
        }
        drop(inner);
        self.work_cv.notify_all();
        self.commit_cv.notify_all();
    }

    /// Clears every injected fault at once: all AZs healthy, no client
    /// partitions, no read delays, commits running. The chaos harness's
    /// heal step between fault injection and invariant checking.
    pub fn clear_faults(&self) {
        self.metrics.incr(CounterId::FaultClears);
        let mut inner = self.inner.lock();
        inner.partitioned.clear();
        inner.read_delay.clear();
        inner.commits_suspended = false;
        for up in inner.az_up.iter_mut() {
            *up = true;
        }
        // Re-schedule anything stalled by the faults just cleared. Goes via
        // the private helper so the heal does not count as a fault flip.
        self.apply_az_up(&mut inner, 0, true);
        drop(inner);
        self.work_cv.notify_all();
        self.commit_cv.notify_all();
    }

    /// Stops the committer thread (used by tests; dropping all Arcs also
    /// ends it).
    pub fn shutdown(&self) {
        // Release pairs with the committer loop's Acquire load.
        self.shutdown.store(true, Ordering::Release);
        self.work_cv.notify_all();
    }
}
