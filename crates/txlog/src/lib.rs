//! # memorydb-txlog — the multi-AZ durable transaction log service
//!
//! A library-scale reproduction of the internal AWS transaction log service
//! MemoryDB offloads durability to (paper §3). The interface is exactly what
//! the paper's consistency argument needs:
//!
//! * **Conditional append** ([`LogService::append_after`]): every append
//!   names the entry id it intends to follow; a mismatch is rejected. This
//!   single primitive provides the fencing that leader election is built on
//!   (§4.1.1): only a fully caught-up replica can successfully append a
//!   leadership claim, and a successful claim invalidates every concurrent
//!   competitor.
//! * **Quorum durability**: an append is *accepted* immediately (ordered,
//!   sequence assigned) but only becomes *committed* — visible to readers
//!   and acknowledged to the writer — once a quorum (2 of 3) of simulated
//!   AZ replicas has durably stored it. Commit is strictly in sequence
//!   order.
//! * **Sequential readers** ([`LogService::read_committed_from`],
//!   [`LogService::wait_for_entries`]): replicas stream committed entries;
//!   a long-poll form supports the paper's "caught-up" notification.
//! * **Fault injection**: AZ outages (commit stalls when a quorum is
//!   unreachable and resumes on recovery) and per-client network partitions
//!   (a partitioned primary's appends fail — the trigger for lease-expiry
//!   self-demotion, §4.1.3).
//! * **Prefix trimming** once a verified snapshot covers a prefix (§4.2.3),
//!   and a **chained checksum** per entry supporting snapshot verification
//!   (§7.2.1).
//!
//! The real service replicates with a consensus protocol verified in TLA+;
//! here the service process itself is assumed reliable (it *is* the spec of
//! the log) and we reproduce its latency and failure semantics, which is
//! what MemoryDB's correctness depends on.

mod service;

pub use service::{
    AppendError, ClientId, CommitLatency, EntryId, LogConfig, LogEntry, LogService, ReadError,
};

#[cfg(test)]
pub(crate) use service::fnv1a_chain as service_chain_for_test;

#[cfg(test)]
mod tests;
