use crate::*;
use bytes::Bytes;
use std::sync::Arc;
use std::time::Duration;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn svc() -> Arc<LogService> {
    LogService::new(LogConfig::instant())
}

const T: Duration = Duration::from_secs(2);

#[test]
fn append_and_read_in_order() {
    let log = svc();
    let id1 = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    let id2 = log.append_after(1, id1, b("b")).unwrap();
    assert_eq!(id1, EntryId(1));
    assert_eq!(id2, EntryId(2));
    assert!(log.wait_durable(id2, T));
    let entries = log.read_committed_from(2, EntryId::ZERO, 10).unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].payload, b("a"));
    assert_eq!(entries[1].payload, b("b"));
    // Partial read.
    let tail = log.read_committed_from(2, EntryId(1), 10).unwrap();
    assert_eq!(tail.len(), 1);
    assert_eq!(tail[0].id, EntryId(2));
}

#[test]
fn conditional_append_rejects_stale_tail() {
    let log = svc();
    let id1 = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    // A competitor that has not observed id1 must fail...
    let err = log.append_after(2, EntryId::ZERO, b("x")).unwrap_err();
    assert_eq!(
        err,
        AppendError::Conflict {
            expected: EntryId::ZERO,
            actual: id1
        }
    );
    // ...and the winner proceeds.
    assert!(log.append_after(1, id1, b("b")).is_ok());
}

#[test]
fn fencing_only_one_contender_wins() {
    // The §4.1.2 scenario: multiple caught-up replicas race to claim
    // leadership; exactly one conditional append can succeed.
    let log = svc();
    let tail = log.append_after(9, EntryId::ZERO, b("data")).unwrap();
    assert!(log.wait_durable(tail, T));
    let mut wins = 0;
    for client in 0..5u64 {
        if log
            .append_after(client, tail, b(&format!("claim-{client}")))
            .is_ok()
        {
            wins += 1;
        }
    }
    assert_eq!(wins, 1);
}

#[test]
fn precondition_covers_accepted_not_just_committed() {
    // An accepted-but-uncommitted entry still advances the tail contenders
    // must name — stale writers are fenced even mid-commit.
    let log = LogService::new(LogConfig {
        latency: CommitLatency {
            base: Duration::from_millis(20),
            jitter: Duration::ZERO,
        },
        ..LogConfig::default()
    });
    let id1 = log.append_after(1, EntryId::ZERO, b("slow")).unwrap();
    assert!(!log.is_durable(id1));
    let err = log
        .append_after(2, EntryId::ZERO, b("usurper"))
        .unwrap_err();
    assert!(matches!(err, AppendError::Conflict { .. }));
    assert!(log.wait_durable(id1, T));
}

#[test]
fn commit_is_in_sequence_order() {
    let log = LogService::new(LogConfig {
        latency: CommitLatency {
            base: Duration::from_millis(1),
            jitter: Duration::from_millis(3),
        },
        ..LogConfig::default()
    });
    let mut last = EntryId::ZERO;
    for i in 0..20 {
        last = log.append_after(1, last, b(&format!("e{i}"))).unwrap();
    }
    assert!(log.wait_durable(last, T));
    let entries = log.read_committed_from(2, EntryId::ZERO, 100).unwrap();
    assert_eq!(entries.len(), 20);
    for (i, e) in entries.iter().enumerate() {
        assert_eq!(e.id, EntryId(i as u64 + 1));
    }
}

#[test]
fn durability_visible_only_after_commit() {
    let log = LogService::new(LogConfig {
        latency: CommitLatency {
            base: Duration::from_millis(30),
            jitter: Duration::ZERO,
        },
        ..LogConfig::default()
    });
    let id = log.append_after(1, EntryId::ZERO, b("x")).unwrap();
    // Immediately after accept: not durable, not readable.
    assert!(!log.is_durable(id));
    assert!(log
        .read_committed_from(2, EntryId::ZERO, 10)
        .unwrap()
        .is_empty());
    assert!(log.wait_durable(id, T));
    assert_eq!(
        log.read_committed_from(2, EntryId::ZERO, 10).unwrap().len(),
        1
    );
}

#[test]
fn az_outage_stalls_and_recovers() {
    let log = svc();
    // Take down 2 of 3 AZs: quorum (2) unreachable.
    log.set_az_up(0, false);
    log.set_az_up(1, false);
    let id = log.append_after(1, EntryId::ZERO, b("stalled")).unwrap();
    assert!(!log.wait_durable(id, Duration::from_millis(50)));
    // One AZ returns: quorum restored, entry commits.
    log.set_az_up(0, true);
    assert!(log.wait_durable(id, T));
    // Single-AZ outage does not stall at all (AZs 0 and 1 up, 2 down).
    log.set_az_up(1, true);
    log.set_az_up(2, false);
    let id2 = log.append_after(1, id, b("fine")).unwrap();
    assert!(log.wait_durable(id2, T));
}

#[test]
fn partitioned_client_cannot_append_or_read() {
    let log = svc();
    log.set_client_partitioned(1, true);
    assert_eq!(
        log.append_after(1, EntryId::ZERO, b("x")).unwrap_err(),
        AppendError::Partitioned
    );
    assert_eq!(
        log.read_committed_from(1, EntryId::ZERO, 10).unwrap_err(),
        ReadError::Partitioned
    );
    // Other clients are unaffected.
    assert!(log.append_after(2, EntryId::ZERO, b("y")).is_ok());
    // Healing restores access.
    log.set_client_partitioned(1, false);
    assert!(log.read_committed_from(1, EntryId::ZERO, 10).is_ok());
}

#[test]
fn long_poll_wakes_on_commit() {
    let log = svc();
    let log2 = log.clone();
    let reader = std::thread::spawn(move || {
        log2.wait_for_entries(2, EntryId::ZERO, 10, Duration::from_secs(5))
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(20));
    log.append_after(1, EntryId::ZERO, b("wake")).unwrap();
    let got = reader.join().unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].payload, b("wake"));
}

#[test]
fn long_poll_times_out_empty() {
    let log = svc();
    let got = log
        .wait_for_entries(2, EntryId::ZERO, 10, Duration::from_millis(30))
        .unwrap();
    assert!(got.is_empty());
}

#[test]
fn trim_prefix_and_trimmed_reads() {
    let log = svc();
    let mut last = EntryId::ZERO;
    for i in 0..10 {
        last = log.append_after(1, last, b(&format!("e{i}"))).unwrap();
    }
    assert!(log.wait_durable(last, T));
    log.trim_prefix(EntryId(4));
    assert_eq!(log.first_available(), EntryId(5));
    // Reading from within the trimmed region fails with the restore hint.
    let err = log.read_committed_from(2, EntryId(2), 10).unwrap_err();
    assert_eq!(
        err,
        ReadError::Trimmed {
            first_available: EntryId(5)
        }
    );
    // Reading exactly from the trim point works.
    let entries = log.read_committed_from(2, EntryId(4), 100).unwrap();
    assert_eq!(entries.len(), 6);
    assert_eq!(entries[0].id, EntryId(5));
    // Double-trim and over-trim are safe.
    log.trim_prefix(EntryId(4));
    log.trim_prefix(EntryId(99));
    assert_eq!(log.first_available(), EntryId(11));
}

#[test]
fn chain_checksum_is_prefix_sensitive() {
    let log = svc();
    let id1 = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    let id2 = log.append_after(1, id1, b("b")).unwrap();
    assert!(log.wait_durable(id2, T));
    let c0 = log.chain_checksum_at(EntryId::ZERO).unwrap();
    let c1 = log.chain_checksum_at(id1).unwrap();
    let c2 = log.chain_checksum_at(id2).unwrap();
    assert_eq!(c0, 0);
    assert_ne!(c1, c2);
    assert!(log.chain_checksum_at(EntryId(99)).is_none());

    // The same payloads on a fresh log give the same chain — it is a pure
    // function of the payload sequence (snapshot verification relies on
    // this, §7.2.1).
    let log2 = svc();
    let j1 = log2.append_after(1, EntryId::ZERO, b("a")).unwrap();
    let j2 = log2.append_after(1, j1, b("b")).unwrap();
    assert!(log2.wait_durable(j2, T));
    assert_eq!(log2.chain_checksum_at(j2), Some(c2));
    // Different order → different chain.
    let log3 = svc();
    let k1 = log3.append_after(1, EntryId::ZERO, b("b")).unwrap();
    let k2 = log3.append_after(1, k1, b("a")).unwrap();
    assert!(log3.wait_durable(k2, T));
    assert_ne!(log3.chain_checksum_at(k2), Some(c2));
}

#[test]
fn concurrent_writers_serialize_without_loss() {
    // Writers retry on conflict; every payload must land exactly once.
    let log = svc();
    let mut handles = Vec::new();
    for w in 0..4u64 {
        let log = log.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let payload = b(&format!("w{w}-{i}"));
                loop {
                    let tail = log.assigned_tail();
                    match log.append_after(w, tail, payload.clone()) {
                        Ok(_) => break,
                        Err(AppendError::Conflict { .. }) => continue,
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let tail = log.assigned_tail();
    assert_eq!(tail, EntryId(200));
    assert!(log.wait_durable(tail, T));
    let entries = log.read_committed_from(9, EntryId::ZERO, 1000).unwrap();
    assert_eq!(entries.len(), 200);
    let mut seen: std::collections::HashSet<Bytes> =
        entries.iter().map(|e| e.payload.clone()).collect();
    assert_eq!(seen.len(), 200);
    for w in 0..4 {
        for i in 0..50 {
            assert!(seen.remove(&b(&format!("w{w}-{i}"))));
        }
    }
}

#[test]
fn unconditional_append_follows_tail() {
    let log = svc();
    let a = log.append(1, b("one")).unwrap();
    let bb = log.append(1, b("two")).unwrap();
    assert_eq!(a, EntryId(1));
    assert_eq!(bb, EntryId(2));
    log.set_client_partitioned(1, true);
    assert_eq!(
        log.append(1, b("no")).unwrap_err(),
        AppendError::Partitioned
    );
}

#[test]
fn append_batch_assigns_dense_ids_and_matches_sequential_chain() {
    // A batch must be byte-for-byte indistinguishable (ids + chained
    // checksums) from the same payloads appended one at a time.
    let batched = svc();
    let ids = batched
        .append_batch_after(1, EntryId::ZERO, &[b("a"), b("b"), b("c")])
        .unwrap();
    assert_eq!(ids, vec![EntryId(1), EntryId(2), EntryId(3)]);
    assert!(batched.wait_durable(EntryId(3), T));

    let sequential = svc();
    let mut tail = EntryId::ZERO;
    for p in ["a", "b", "c"] {
        tail = sequential.append_after(1, tail, b(p)).unwrap();
    }
    assert!(sequential.wait_durable(tail, T));

    for id in 1..=3u64 {
        assert_eq!(
            batched.chain_checksum_at(EntryId(id)),
            sequential.chain_checksum_at(EntryId(id))
        );
    }
    let got = batched.read_committed_from(2, EntryId::ZERO, 10).unwrap();
    assert_eq!(got.len(), 3);
    assert_eq!(got[1].payload, b("b"));
}

#[test]
fn append_batch_conflict_is_atomic() {
    let log = svc();
    let id1 = log.append_after(1, EntryId::ZERO, b("x")).unwrap();
    // Stale precondition: nothing from the batch lands.
    let err = log
        .append_batch_after(2, EntryId::ZERO, &[b("a"), b("b")])
        .unwrap_err();
    assert!(matches!(err, AppendError::Conflict { .. }));
    assert_eq!(log.assigned_tail(), id1);
    // The correctly-conditioned batch proceeds.
    let ids = log.append_batch_after(2, id1, &[b("a"), b("b")]).unwrap();
    assert_eq!(ids, vec![EntryId(2), EntryId(3)]);
    assert!(log.wait_durable(EntryId(3), T));
}

#[test]
fn append_batch_is_one_quorum_ack() {
    // With real commit latency, a 16-entry batch becomes durable as one
    // unit: once the last entry commits, waiting took ~one latency sample,
    // and exactly one append call was recorded.
    let log = LogService::new(LogConfig {
        latency: CommitLatency {
            base: Duration::from_millis(10),
            jitter: Duration::ZERO,
        },
        ..LogConfig::default()
    });
    let payloads: Vec<Bytes> = (0..16).map(|i| b(&format!("p{i}"))).collect();
    assert_eq!(log.append_calls(), 0);
    let t0 = std::time::Instant::now();
    let ids = log.append_batch_after(1, EntryId::ZERO, &payloads).unwrap();
    assert!(log.wait_durable(*ids.last().unwrap(), T));
    let elapsed = t0.elapsed();
    assert_eq!(log.append_calls(), 1);
    // 16 sequential appends would take ≥160 ms; one group commit takes ~10.
    assert!(
        elapsed < Duration::from_millis(120),
        "batch did not group-commit: {elapsed:?}"
    );
    // All entries commit together and in order.
    let entries = log.read_committed_from(2, EntryId::ZERO, 100).unwrap();
    assert_eq!(entries.len(), 16);
}

#[test]
fn append_batch_empty_checks_precondition_only() {
    let log = svc();
    assert_eq!(
        log.append_batch_after(1, EntryId::ZERO, &[]).unwrap(),
        Vec::new()
    );
    let id1 = log.append_after(1, EntryId::ZERO, b("x")).unwrap();
    let err = log.append_batch_after(1, EntryId::ZERO, &[]).unwrap_err();
    assert!(matches!(err, AppendError::Conflict { .. }));
    assert_eq!(log.assigned_tail(), id1);
}

#[test]
fn append_batch_partitioned_client_rejected() {
    let log = svc();
    log.set_client_partitioned(1, true);
    assert_eq!(
        log.append_batch_after(1, EntryId::ZERO, &[b("x")])
            .unwrap_err(),
        AppendError::Partitioned
    );
    assert_eq!(log.assigned_tail(), EntryId::ZERO);
}

#[test]
fn append_batch_stalls_and_recovers_with_az_outage() {
    let log = svc();
    log.set_az_up(0, false);
    log.set_az_up(1, false);
    let ids = log
        .append_batch_after(1, EntryId::ZERO, &[b("a"), b("b")])
        .unwrap();
    assert!(!log.wait_durable(ids[1], Duration::from_millis(50)));
    log.set_az_up(0, true);
    assert!(log.wait_durable(ids[1], T));
}

#[test]
fn entry_ids_are_dense_and_display() {
    assert_eq!(EntryId::ZERO.next(), EntryId(1));
    assert_eq!(EntryId(41).next(), EntryId(42));
    assert_eq!(format!("{}", EntryId(7)), "#7");
}

// ---------------------------------------------------------------------------
// Model-based property test: the service must agree with a simple Vec model
// under arbitrary interleavings of appends, trims, and reads.
// ---------------------------------------------------------------------------

mod model_props {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Append(u8),
        AppendStaleTail(u8),
        AppendBatch(Vec<u8>),
        AppendBatchStaleTail(Vec<u8>),
        Trim(u8),
        Read { after: u8, max: u8 },
        Checksum(u8),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u8>().prop_map(Op::Append),
            any::<u8>().prop_map(Op::AppendStaleTail),
            proptest::collection::vec(any::<u8>(), 0..6).prop_map(Op::AppendBatch),
            proptest::collection::vec(any::<u8>(), 1..4).prop_map(Op::AppendBatchStaleTail),
            any::<u8>().prop_map(Op::Trim),
            (any::<u8>(), 1u8..16).prop_map(|(after, max)| Op::Read { after, max }),
            any::<u8>().prop_map(Op::Checksum),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_log_matches_vec_model(ops in proptest::collection::vec(arb_op(), 1..60)) {
            let log = LogService::new(LogConfig::instant());
            let mut model: Vec<Bytes> = Vec::new(); // model[i] = payload of entry i+1
            let mut trimmed: u64 = 0;
            for op in ops {
                match op {
                    Op::Append(v) => {
                        let payload = Bytes::from(vec![v]);
                        let tail = EntryId(model.len() as u64);
                        let id = log.append_after(1, tail, payload.clone()).unwrap();
                        prop_assert_eq!(id, EntryId(model.len() as u64 + 1));
                        model.push(payload);
                        prop_assert!(log.wait_durable(id, Duration::from_secs(2)));
                    }
                    Op::AppendStaleTail(v) => {
                        // Any tail other than the true one must conflict.
                        let stale = EntryId((model.len() as u64).wrapping_add(1 + v as u64 % 7));
                        let r = log.append_after(1, stale, Bytes::from(vec![v]));
                        let is_conflict = matches!(r, Err(AppendError::Conflict { .. }));
                        prop_assert!(is_conflict);
                    }
                    Op::AppendBatch(vals) => {
                        // A batched append behaves exactly like that many
                        // sequential appends: dense ids, same chain.
                        let payloads: Vec<Bytes> =
                            vals.iter().map(|&v| Bytes::from(vec![v])).collect();
                        let tail = EntryId(model.len() as u64);
                        let ids = log.append_batch_after(1, tail, &payloads).unwrap();
                        prop_assert_eq!(ids.len(), payloads.len());
                        for (i, id) in ids.iter().enumerate() {
                            prop_assert_eq!(*id, EntryId(model.len() as u64 + i as u64 + 1));
                        }
                        model.extend(payloads);
                        if let Some(last) = ids.last() {
                            prop_assert!(log.wait_durable(*last, Duration::from_secs(2)));
                        }
                    }
                    Op::AppendBatchStaleTail(vals) => {
                        // A conflicted batch must leave the log untouched.
                        let payloads: Vec<Bytes> =
                            vals.iter().map(|&v| Bytes::from(vec![v])).collect();
                        let stale = EntryId(
                            (model.len() as u64).wrapping_add(1 + vals[0] as u64 % 7),
                        );
                        let r = log.append_batch_after(1, stale, &payloads);
                        let is_conflict = matches!(r, Err(AppendError::Conflict { .. }));
                        prop_assert!(is_conflict);
                        prop_assert_eq!(log.assigned_tail(), EntryId(model.len() as u64));
                    }
                    Op::Trim(upto) => {
                        let upto = (upto as u64).min(model.len() as u64);
                        log.trim_prefix(EntryId(upto));
                        trimmed = trimmed.max(upto);
                        prop_assert_eq!(log.first_available(), EntryId(trimmed + 1));
                    }
                    Op::Read { after, max } => {
                        let after = after as u64 % (model.len() as u64 + 1);
                        let result = log.read_committed_from(2, EntryId(after), max as usize);
                        if after < trimmed {
                            let is_trimmed = matches!(result, Err(ReadError::Trimmed { .. }));
                            prop_assert!(is_trimmed);
                        } else {
                            let got = result.unwrap();
                            let expect: Vec<&Bytes> = model
                                .iter()
                                .skip(after as usize)
                                .take(max as usize)
                                .collect();
                            prop_assert_eq!(got.len(), expect.len());
                            for (g, e) in got.iter().zip(expect) {
                                prop_assert_eq!(&g.payload, e);
                            }
                            // Ids are dense and correct.
                            for (i, g) in got.iter().enumerate() {
                                prop_assert_eq!(g.id, EntryId(after + i as u64 + 1));
                            }
                        }
                    }
                    Op::Checksum(at) => {
                        let at = at as u64 % (model.len() as u64 + 1);
                        let c = log.chain_checksum_at(EntryId(at));
                        if at == 0 {
                            prop_assert_eq!(c, Some(0));
                        } else if at <= trimmed {
                            prop_assert!(c.is_none());
                        } else {
                            // Recompute from the model.
                            let mut chain = 0u64;
                            for p in &model[..at as usize] {
                                chain = super::super::service_chain_for_test(chain, p);
                            }
                            prop_assert_eq!(c, Some(chain));
                        }
                    }
                }
                prop_assert_eq!(log.committed_tail(), EntryId(model.len() as u64));
            }
        }
    }
}

#[test]
fn commit_suspension_stalls_and_restart_recovers() {
    let log = svc();
    log.set_commits_suspended(true);
    let id = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    // Accepted but frozen: never durable while suspended.
    assert!(!log.wait_durable(id, Duration::from_millis(60)));
    assert_eq!(log.committed_tail(), EntryId::ZERO);
    // Restarting the commit pipeline drains the backlog in order.
    log.set_commits_suspended(false);
    assert!(log.wait_durable(id, T));
    let entries = log.read_committed_from(2, EntryId::ZERO, 10).unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].payload, b("a"));
}

#[test]
fn commit_restart_reschedules_appends_stalled_by_az_outage() {
    let log = svc();
    // Quorum lost AND commits suspended: the append stalls with no deadline.
    log.set_az_up(0, false);
    log.set_az_up(1, false);
    log.set_commits_suspended(true);
    let id = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    // AZs return while still suspended: nothing commits yet.
    log.set_az_up(0, true);
    log.set_az_up(1, true);
    assert!(!log.wait_durable(id, Duration::from_millis(60)));
    // Restart re-schedules the stalled entry with fresh quorum latency.
    log.set_commits_suspended(false);
    assert!(log.wait_durable(id, T));
}

#[test]
fn read_delay_slows_one_client_only() {
    let log = svc();
    let id = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    assert!(log.wait_durable(id, T));
    log.set_read_delay(7, Some(Duration::from_millis(80)));
    let t0 = std::time::Instant::now();
    let slow = log.read_committed_from(7, EntryId::ZERO, 10).unwrap();
    assert!(t0.elapsed() >= Duration::from_millis(80));
    assert_eq!(slow.len(), 1);
    // Other clients are unaffected.
    let t0 = std::time::Instant::now();
    let fast = log.read_committed_from(8, EntryId::ZERO, 10).unwrap();
    assert!(t0.elapsed() < Duration::from_millis(50));
    assert_eq!(fast.len(), 1);
    // Clearing removes the delay.
    log.set_read_delay(7, None);
    let t0 = std::time::Instant::now();
    log.read_committed_from(7, EntryId::ZERO, 10).unwrap();
    assert!(t0.elapsed() < Duration::from_millis(50));
}

// ---------------------------------------------------------------------------
// Trim/read boundary pins (ISSUE 4 satellite): a reader racing a concurrent
// trim must observe `Trimmed`, never an empty-but-OK read.
// ---------------------------------------------------------------------------

#[test]
fn read_at_exact_trim_boundary_is_ok_one_below_is_trimmed() {
    let log = svc();
    let mut tail = EntryId::ZERO;
    for i in 0..5 {
        tail = log.append_after(1, tail, b(&format!("e{i}"))).unwrap();
    }
    assert!(log.wait_durable(tail, T));
    log.trim_prefix(EntryId(3));
    assert_eq!(log.first_available(), EntryId(4));
    // A reader positioned exactly at `first_available - 1` is legal and sees
    // the surviving suffix...
    let ok = log.read_committed_from(2, EntryId(3), 10).unwrap();
    assert_eq!(ok.len(), 2);
    assert_eq!(ok[0].id, EntryId(4));
    // ...one position below must surface `Trimmed`, never empty-but-OK.
    let err = log.read_committed_from(2, EntryId(2), 10).unwrap_err();
    assert_eq!(
        err,
        ReadError::Trimmed {
            first_available: EntryId(4)
        }
    );
    // Trimming to the committed tail leaves `tail` itself a legal (empty)
    // read position: nothing was trimmed past it.
    log.trim_prefix(tail);
    let empty = log.read_committed_from(2, tail, 10).unwrap();
    assert!(empty.is_empty());
}

#[test]
fn long_poll_racing_trim_observes_trimmed_not_empty_ok() {
    // The reader's injected read delay deterministically sequences the
    // interleaving: while the reader is inside its delayed read, the writer
    // commits three entries and trims them all away. The reader's position
    // (ZERO) is now below the trim boundary, so the long poll must end in
    // `Trimmed` — an empty-but-OK timeout would silently skip entries.
    let log = svc();
    log.set_read_delay(7, Some(Duration::from_millis(80)));
    let log2 = log.clone();
    let reader = std::thread::spawn(move || {
        log2.wait_for_entries(7, EntryId::ZERO, 10, Duration::from_secs(5))
    });
    std::thread::sleep(Duration::from_millis(20));
    let mut tail = EntryId::ZERO;
    for i in 0..3 {
        tail = log.append_after(1, tail, b(&format!("e{i}"))).unwrap();
    }
    assert!(log.wait_durable(tail, T));
    log.trim_prefix(tail);
    let got = reader.join().unwrap();
    assert_eq!(
        got.unwrap_err(),
        ReadError::Trimmed {
            first_available: EntryId(4)
        }
    );
}

#[test]
fn seeded_trim_read_interleavings_never_yield_empty_ok() {
    // Sweep deterministic per-seed offsets between the reader's delayed read
    // and the writer's commit+trim. Depending on who wins, the reader may
    // legally see entries (read completed before the trim) or `Trimmed`
    // (trim overtook its position) — but never an empty OK result.
    for seed in 0u64..8 {
        let log = svc();
        let delay_ms = 5 + (seed * 11) % 45;
        let racer_sleep_ms = (seed * 7) % 30;
        log.set_read_delay(7, Some(Duration::from_millis(delay_ms)));
        let log2 = log.clone();
        let reader = std::thread::spawn(move || {
            log2.wait_for_entries(7, EntryId::ZERO, 10, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(racer_sleep_ms));
        let mut tail = EntryId::ZERO;
        for i in 0..3 {
            tail = log.append_after(1, tail, b(&format!("e{i}"))).unwrap();
        }
        assert!(log.wait_durable(tail, T));
        log.trim_prefix(tail);
        match reader.join().unwrap() {
            Ok(entries) => assert!(
                !entries.is_empty(),
                "seed {seed}: empty-but-OK read past a concurrent trim"
            ),
            Err(e) => assert_eq!(
                e,
                ReadError::Trimmed {
                    first_available: EntryId(4)
                },
                "seed {seed}"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics: stage histograms, fault-hook trip counters, log-position gauges.
// ---------------------------------------------------------------------------

#[test]
fn metrics_record_append_quorum_and_read_stages() {
    use memorydb_metrics::{CounterId, GaugeId, StageId};
    let log = svc();
    let id = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    assert!(log.wait_durable(id, T));
    log.read_committed_from(2, EntryId::ZERO, 10).unwrap();
    let m = log.metrics();
    assert_eq!(m.stage(StageId::LogAppend).count(), 1);
    assert_eq!(m.stage(StageId::QuorumAck).count(), 1);
    assert_eq!(m.stage(StageId::LogRead).count(), 1);
    assert_eq!(m.stage(StageId::ReadDelay).count(), 0);
    assert_eq!(m.gauge(GaugeId::LogCommittedTail), 1);
    assert_eq!(m.gauge(GaugeId::LogPendingEntries), 0);
    assert_eq!(m.gauge(GaugeId::LogFirstAvailable), 1);
    // An injected read delay is attributed to its own stage.
    log.set_read_delay(2, Some(Duration::from_millis(5)));
    log.read_committed_from(2, EntryId::ZERO, 10).unwrap();
    assert_eq!(m.stage(StageId::ReadDelay).count(), 1);
    assert!(m.stage(StageId::ReadDelay).max_us() >= 5_000);
    // Trim moves the first-available gauge and trimmed reads count.
    log.trim_prefix(id);
    assert_eq!(m.gauge(GaugeId::LogFirstAvailable), 2);
    assert!(log.read_committed_from(3, EntryId::ZERO, 10).is_err());
    assert_eq!(m.counter(CounterId::ReadsTrimmed), 1);
}

#[test]
fn metrics_count_conflicts_and_partition_rejections() {
    use memorydb_metrics::CounterId;
    let log = svc();
    let id = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    assert!(log.wait_durable(id, T));
    assert!(log.append_after(2, EntryId::ZERO, b("x")).is_err());
    let m = log.metrics();
    assert_eq!(m.counter(CounterId::AppendConflicts), 1);
    log.set_client_partitioned(3, true);
    assert!(log.append_after(3, id, b("y")).is_err());
    assert!(log.read_committed_from(3, EntryId::ZERO, 10).is_err());
    assert_eq!(m.counter(CounterId::PartitionRejections), 2);
}

#[test]
fn fault_hook_trip_counters_count_each_public_call_once() {
    use memorydb_metrics::{CounterId, GaugeId};
    let log = svc();
    log.set_az_up(0, false);
    log.set_az_up(0, true);
    log.set_client_partitioned(1, true);
    log.set_client_partitioned(1, false);
    log.set_read_delay(2, Some(Duration::from_millis(1)));
    log.set_read_delay(2, None);
    log.set_commits_suspended(true);
    log.set_commits_suspended(false);
    log.clear_faults();
    let m = log.metrics();
    // `clear_faults` heals through a private path: it must count exactly one
    // clear and must NOT inflate the az-flip counter.
    assert_eq!(m.counter(CounterId::FaultAzFlips), 2);
    assert_eq!(m.counter(CounterId::FaultPartitionFlips), 2);
    assert_eq!(m.counter(CounterId::FaultReadDelaySets), 2);
    assert_eq!(m.counter(CounterId::FaultCommitSuspendFlips), 2);
    assert_eq!(m.counter(CounterId::FaultClears), 1);
    assert_eq!(m.gauge(GaugeId::AzUpCount), 3);
    log.set_az_up(1, false);
    assert_eq!(m.gauge(GaugeId::AzUpCount), 2);
}

#[test]
fn clear_faults_heals_everything_at_once() {
    let log = svc();
    log.set_az_up(0, false);
    log.set_az_up(1, false);
    log.set_client_partitioned(1, true);
    log.set_read_delay(1, Some(Duration::from_millis(500)));
    log.set_commits_suspended(true);
    assert!(log.append_after(1, EntryId::ZERO, b("x")).is_err());
    let id = log.append_after(2, EntryId::ZERO, b("a")).unwrap();
    assert!(!log.is_durable(id));
    log.clear_faults();
    // Client 1 can append and read again with no delay, and the stalled
    // entry commits.
    assert!(log.wait_durable(id, T));
    let id2 = log.append_after(1, id, b("b")).unwrap();
    assert!(log.wait_durable(id2, T));
    let t0 = std::time::Instant::now();
    let entries = log.read_committed_from(1, EntryId::ZERO, 10).unwrap();
    assert!(t0.elapsed() < Duration::from_millis(100));
    assert_eq!(entries.len(), 2);
}

#[test]
fn wait_committed_at_least_returns_watermark() {
    let log = svc();
    let id1 = log.append_after(1, EntryId::ZERO, b("a")).unwrap();
    let id2 = log.append_after(1, id1, b("b")).unwrap();
    // Already-committed target: returns immediately with the full tail.
    assert!(log.wait_durable(id2, T));
    assert_eq!(log.wait_committed_at_least(id1, T), id2);
    // A waiter parked below the watermark wakes when the commit lands.
    let log2 = log.clone();
    let waiter = std::thread::spawn(move || log2.wait_committed_at_least(EntryId(3), T));
    std::thread::sleep(Duration::from_millis(20));
    log.append_after(1, id2, b("c")).unwrap();
    assert!(waiter.join().unwrap() >= EntryId(3));
}

#[test]
fn wait_committed_at_least_times_out_with_current_tail() {
    let log = svc();
    log.set_commits_suspended(true);
    let id = log.append_after(1, EntryId::ZERO, b("stalled")).unwrap();
    let tail = log.wait_committed_at_least(id, Duration::from_millis(30));
    assert_eq!(tail, EntryId::ZERO);
    log.clear_faults();
    assert!(log.wait_durable(id, T));
}

#[test]
fn pipelined_appends_block_at_depth_cap() {
    // Depth 2: two batches stream without waiting for acks; the third
    // append parks until the watermark retires the first batch.
    let log = LogService::new(LogConfig {
        latency: CommitLatency {
            base: Duration::from_millis(40),
            jitter: Duration::ZERO,
        },
        quorum_pipeline_depth: 2,
        ..LogConfig::default()
    });
    let t0 = std::time::Instant::now();
    let id1 = log.append_after(1, EntryId::ZERO, b("b1")).unwrap();
    let id2 = log.append_after(1, id1, b("b2")).unwrap();
    let streamed = t0.elapsed();
    assert!(
        streamed < Duration::from_millis(35),
        "first two batches must not wait for acks, took {streamed:?}"
    );
    let id3 = log.append_after(1, id2, b("b3")).unwrap();
    assert!(
        t0.elapsed() >= Duration::from_millis(35),
        "third batch must park until a pipeline slot opens"
    );
    assert!(log.wait_durable(id3, T));
    let entries = log.read_committed_from(2, EntryId::ZERO, 10).unwrap();
    assert_eq!(entries.len(), 3);
}

#[test]
fn acked_count_reports_partial_acks_before_commit() {
    let log = svc();
    // Freeze the commit watermark; with instant latency every up AZ's ack
    // lands immediately, but nothing commits.
    log.set_commits_suspended(true);
    let id = log.append_after(1, EntryId::ZERO, b("parked")).unwrap();
    assert!(!log.is_durable(id));
    assert_eq!(log.acked_count(id), 3);
    // A downed AZ loses its outstanding ack.
    log.set_az_up(2, false);
    assert_eq!(log.acked_count(id), 2);
    // Unassigned ids have no acks.
    assert_eq!(log.acked_count(EntryId(99)), 0);
    log.set_commits_suspended(false);
    assert!(log.wait_durable(id, T));
    // Committed: counts every up AZ, never below quorum.
    assert_eq!(log.acked_count(id), 2);
    log.set_az_up(2, true);
    assert_eq!(log.acked_count(id), 3);
}

#[test]
fn parked_appender_observes_partition() {
    // An appender parked at the pipeline depth cap must notice it got
    // partitioned while waiting, not sail through after the heal.
    let log = LogService::new(LogConfig {
        quorum_pipeline_depth: 1,
        ..LogConfig::default()
    });
    log.set_commits_suspended(true);
    let id1 = log.append_after(1, EntryId::ZERO, b("inflight")).unwrap();
    let log2 = log.clone();
    let parked = std::thread::spawn(move || log2.append_after(5, id1, b("parked")));
    std::thread::sleep(Duration::from_millis(30));
    log.set_client_partitioned(5, true);
    assert_eq!(parked.join().unwrap(), Err(AppendError::Partitioned));
    log.clear_faults();
    assert!(log.wait_durable(id1, T));
}

#[test]
fn watermark_holds_while_earlier_batch_lacks_quorum() {
    // Two pipelined batches are in flight during an outage that leaves
    // each with a single AZ ack — below quorum, so the watermark must not
    // move even though acks have landed. The heal re-acks both and the
    // watermark advances strictly in sequence order.
    let log = LogService::new(LogConfig {
        quorum_pipeline_depth: 4,
        ..LogConfig::default()
    });
    log.set_az_up(0, false);
    log.set_az_up(1, false);
    let id1 = log.append_after(1, EntryId::ZERO, b("first")).unwrap();
    let id2 = log.append_after(1, id1, b("second")).unwrap();
    assert_eq!(log.acked_count(id1), 1);
    assert_eq!(log.acked_count(id2), 1);
    assert!(!log.is_durable(id1));
    assert_eq!(log.committed_tail(), EntryId::ZERO);
    log.set_az_up(0, true);
    assert!(log.wait_durable(id2, T));
    let entries = log.read_committed_from(2, EntryId::ZERO, 10).unwrap();
    assert_eq!(entries[0].id, EntryId(1));
    assert_eq!(entries[1].id, EntryId(2));
    assert_eq!(entries[0].payload, b("first"));
}
