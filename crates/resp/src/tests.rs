use crate::{
    decode, decode_command, encode, encoded_len, tokenize, CommandParse, DecodeError, Decoder,
    Frame, TokenizeError, MAX_DEPTH,
};
use bytes::{Bytes, BytesMut};
use proptest::prelude::*;

fn enc(frame: &Frame) -> Vec<u8> {
    let mut buf = BytesMut::new();
    encode(frame, &mut buf);
    buf.to_vec()
}

fn dec_full(data: &[u8]) -> Frame {
    let (frame, used) = decode(data).expect("decode ok").expect("complete frame");
    assert_eq!(used, data.len(), "must consume entire input");
    frame
}

#[test]
fn simple_string_roundtrip() {
    let f = Frame::Simple("OK".into());
    assert_eq!(enc(&f), b"+OK\r\n");
    assert_eq!(dec_full(b"+OK\r\n"), f);
}

#[test]
fn error_roundtrip() {
    let f = Frame::Error("ERR unknown command".into());
    assert_eq!(enc(&f), b"-ERR unknown command\r\n");
    assert_eq!(dec_full(b"-ERR unknown command\r\n"), f);
}

#[test]
fn error_helper_adds_prefix_only_when_missing() {
    assert_eq!(
        Frame::error("bad thing"),
        Frame::Error("ERR bad thing".into())
    );
    assert_eq!(
        Frame::error("WRONGTYPE bad thing"),
        Frame::Error("WRONGTYPE bad thing".into())
    );
    assert_eq!(
        Frame::error("MOVED 3999 10.0.0.1:6379"),
        Frame::Error("MOVED 3999 10.0.0.1:6379".into())
    );
}

#[test]
fn integer_roundtrip() {
    for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1000] {
        let f = Frame::Integer(v);
        assert_eq!(dec_full(&enc(&f)), f);
    }
}

#[test]
fn bulk_roundtrip_binary_safe() {
    let payload: Vec<u8> = (0..=255u8).collect();
    let f = Frame::Bulk(Bytes::from(payload));
    assert_eq!(dec_full(&enc(&f)), f);
}

#[test]
fn empty_bulk() {
    let f = Frame::Bulk(Bytes::new());
    assert_eq!(enc(&f), b"$0\r\n\r\n");
    assert_eq!(dec_full(b"$0\r\n\r\n"), f);
}

#[test]
fn null_encodes_as_resp2_and_decodes_both_forms() {
    assert_eq!(enc(&Frame::Null), b"$-1\r\n");
    assert_eq!(dec_full(b"$-1\r\n"), Frame::Null);
    assert_eq!(dec_full(b"*-1\r\n"), Frame::Null);
    assert_eq!(dec_full(b"_\r\n"), Frame::Null);
}

#[test]
fn nested_array_roundtrip() {
    let f = Frame::Array(vec![
        Frame::Integer(1),
        Frame::Array(vec![Frame::bulk("a"), Frame::Null]),
        Frame::Simple("x".into()),
    ]);
    assert_eq!(dec_full(&enc(&f)), f);
}

#[test]
fn empty_array() {
    let f = Frame::Array(vec![]);
    assert_eq!(enc(&f), b"*0\r\n");
    assert_eq!(dec_full(b"*0\r\n"), f);
}

#[test]
fn double_roundtrip() {
    for v in [
        0.0f64,
        1.5,
        -2.25,
        3.0,
        1e100,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ] {
        let f = Frame::Double(v);
        match dec_full(&enc(&f)) {
            Frame::Double(d) => assert_eq!(d, v),
            other => panic!("expected double, got {other:?}"),
        }
    }
}

#[test]
fn double_nan_roundtrip() {
    match dec_full(&enc(&Frame::Double(f64::NAN))) {
        Frame::Double(d) => assert!(d.is_nan()),
        other => panic!("expected double, got {other:?}"),
    }
}

#[test]
fn boolean_roundtrip() {
    assert_eq!(dec_full(b"#t\r\n"), Frame::Boolean(true));
    assert_eq!(dec_full(b"#f\r\n"), Frame::Boolean(false));
    assert_eq!(enc(&Frame::Boolean(true)), b"#t\r\n");
}

#[test]
fn map_roundtrip() {
    let f = Frame::Map(vec![
        (Frame::bulk("k1"), Frame::Integer(1)),
        (Frame::bulk("k2"), Frame::Null),
    ]);
    assert_eq!(dec_full(&enc(&f)), f);
}

#[test]
fn verbatim_roundtrip() {
    let f = Frame::Verbatim("txt".into(), Bytes::from_static(b"hello"));
    assert_eq!(enc(&f), b"=9\r\ntxt:hello\r\n");
    assert_eq!(dec_full(b"=9\r\ntxt:hello\r\n"), f);
}

/// Panic-freedom regression (analyzer invariant 1): malformed verbatim
/// frames must come back as protocol errors through the fallible slicing
/// paths — direct `payload[3]`-style indexing here used to be one bad
/// length away from a panic on attacker-controlled wire input.
#[test]
fn verbatim_malformed_inputs_are_protocol_errors_not_panics() {
    // Shortest legal frame: kind + separator, empty body.
    assert_eq!(
        dec_full(b"=4\r\ntxt:\r\n"),
        Frame::Verbatim("txt".into(), Bytes::new())
    );
    // Declared length below the 4-byte "kkk:" header.
    assert!(matches!(
        decode(b"=3\r\nab:\r\n"),
        Err(DecodeError::Protocol(_))
    ));
    assert!(matches!(
        decode(b"=0\r\n\r\n"),
        Err(DecodeError::Protocol(_))
    ));
    // Wrong separator where ':' must be.
    assert!(matches!(
        decode(b"=9\r\ntxtXhello\r\n"),
        Err(DecodeError::Protocol(_))
    ));
    // Non-utf8 kind bytes.
    assert!(matches!(
        decode(b"=9\r\n\xff\xfe\xfd:hello\r\n"),
        Err(DecodeError::Protocol(_))
    ));
}

#[test]
fn incremental_decoder_handles_partial_frames() {
    let f = Frame::Array(vec![
        Frame::bulk("SET"),
        Frame::bulk("key"),
        Frame::bulk("value"),
    ]);
    let encoded = enc(&f);
    let mut d = Decoder::new();
    // Feed one byte at a time; only the final byte completes the frame.
    for (i, b) in encoded.iter().enumerate() {
        d.feed(&[*b]);
        let got = d.next_frame().expect("no decode error");
        if i + 1 < encoded.len() {
            assert!(got.is_none(), "frame complete too early at byte {i}");
        } else {
            assert_eq!(got, Some(f.clone()));
        }
    }
    assert_eq!(d.buffered(), 0);
}

#[test]
fn decoder_yields_multiple_pipelined_frames() {
    let mut stream = Vec::new();
    let frames = vec![
        Frame::command(["PING"]),
        Frame::command(["GET", "x"]),
        Frame::command(["SET", "x", "1"]),
    ];
    for f in &frames {
        stream.extend_from_slice(&enc(f));
    }
    let mut d = Decoder::new();
    d.feed(&stream);
    for f in &frames {
        assert_eq!(d.next_frame().unwrap(), Some(f.clone()));
    }
    assert_eq!(d.next_frame().unwrap(), None);
}

#[test]
fn protocol_error_on_unknown_tag() {
    assert!(matches!(
        decode(b"!oops\r\n"),
        Err(DecodeError::Protocol(_))
    ));
}

#[test]
fn protocol_error_on_bad_integer() {
    assert!(matches!(decode(b":12a\r\n"), Err(DecodeError::Protocol(_))));
}

#[test]
fn protocol_error_on_negative_length() {
    assert!(matches!(decode(b"$-2\r\n"), Err(DecodeError::Protocol(_))));
}

#[test]
fn too_large_declared_length_rejected() {
    let mut d = Decoder::with_max_len(16);
    d.feed(b"$100\r\n");
    assert!(matches!(
        d.next_frame(),
        Err(DecodeError::TooLarge {
            declared: 100,
            limit: 16
        })
    ));
}

#[test]
fn bulk_missing_trailing_crlf_is_protocol_error() {
    assert!(matches!(
        decode(b"$2\r\nabXX"),
        Err(DecodeError::Protocol(_))
    ));
}

#[test]
fn into_command_args_normalizes_scalars() {
    let f = Frame::Array(vec![
        Frame::bulk("SET"),
        Frame::Integer(5),
        Frame::Simple("v".into()),
    ]);
    let args = f.into_command_args().unwrap();
    assert_eq!(
        args,
        vec![Bytes::from("SET"), Bytes::from("5"), Bytes::from("v")]
    );
    assert!(Frame::Integer(1).into_command_args().is_none());
}

#[test]
fn tokenize_plain_and_quoted() {
    let toks = tokenize(r#"SET key "hello world""#).unwrap();
    assert_eq!(
        toks,
        vec![
            Bytes::from("SET"),
            Bytes::from("key"),
            Bytes::from("hello world")
        ]
    );
}

#[test]
fn tokenize_escapes() {
    let toks = tokenize(r#"SET k "a\r\n\x41""#).unwrap();
    assert_eq!(toks[2], Bytes::from_static(b"a\r\nA"));
}

#[test]
fn tokenize_single_quotes_literal() {
    let toks = tokenize(r#"SET k 'a\nb'"#).unwrap();
    // Single quotes do not process escapes other than \'.
    assert_eq!(toks[2], Bytes::from_static(b"a\\nb"));
}

#[test]
fn tokenize_unbalanced_quote_error() {
    assert_eq!(
        tokenize(r#"SET k "oops"#),
        Err(TokenizeError::UnbalancedQuotes)
    );
    assert_eq!(
        tokenize(r#"SET k "a"b"#),
        Err(TokenizeError::UnbalancedQuotes)
    );
}

#[test]
fn tokenize_empty_line() {
    assert!(tokenize("   ").unwrap().is_empty());
}

// ------------------------------------------------------------------------
// Property tests: arbitrary frames roundtrip, encoded_len is exact, and the
// incremental decoder agrees with the one-shot decoder under arbitrary
// chunking.
// ------------------------------------------------------------------------

fn arb_frame() -> impl Strategy<Value = Frame> {
    let leaf = prop_oneof![
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| Frame::Simple(s.into())),
        "[A-Z]{3,8} [a-z ]{0,10}".prop_map(|s| Frame::Error(s.into())),
        any::<i64>().prop_map(Frame::Integer),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|v| Frame::Bulk(Bytes::from(v))),
        Just(Frame::Null),
        any::<bool>().prop_map(Frame::Boolean),
        // Finite doubles only: NaN breaks PartialEq-based comparison.
        (-1e15f64..1e15).prop_map(Frame::Double),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Frame::Array),
            proptest::collection::vec((inner.clone(), inner), 0..3).prop_map(Frame::Map),
        ]
    })
}

proptest! {
    #[test]
    fn prop_roundtrip(f in arb_frame()) {
        let bytes = enc(&f);
        let (decoded, used) = decode(&bytes).unwrap().expect("complete");
        prop_assert_eq!(used, bytes.len());
        // Doubles may lose their exact textual form but must stay equal in
        // value; Frame's PartialEq compares f64 by value, which suffices for
        // the finite doubles we generate.
        prop_assert_eq!(decoded, f);
    }

    #[test]
    fn prop_encoded_len_exact(f in arb_frame()) {
        prop_assert_eq!(encoded_len(&f), enc(&f).len());
    }

    #[test]
    fn prop_incremental_matches_oneshot(f in arb_frame(), chunk in 1usize..7) {
        let bytes = enc(&f);
        let mut d = Decoder::new();
        let mut got = None;
        for piece in bytes.chunks(chunk) {
            d.feed(piece);
            if let Some(frame) = d.next_frame().unwrap() {
                got = Some(frame);
            }
        }
        prop_assert_eq!(got, Some(f));
    }

    #[test]
    fn prop_decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut d = Decoder::new();
        d.feed(&data);
        // Drain until error or exhaustion; must never panic or loop forever.
        for _ in 0..data.len() + 1 {
            match d.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregate nesting depth (ISSUE 4 satellite): crafted deep nesting must be
// a typed protocol error, not unbounded recursion.
// ---------------------------------------------------------------------------

#[test]
fn ten_thousand_deep_array_nesting_is_a_typed_error_not_a_stack_overflow() {
    let mut buf = Vec::new();
    for _ in 0..10_000 {
        buf.extend_from_slice(b"*1\r\n");
    }
    buf.extend_from_slice(b"$1\r\na\r\n");
    assert_eq!(
        decode(&buf).unwrap_err(),
        DecodeError::TooDeep { limit: MAX_DEPTH }
    );
    // Same through the incremental decoder.
    let mut d = Decoder::new();
    d.feed(&buf);
    assert_eq!(
        d.next_frame().unwrap_err(),
        DecodeError::TooDeep { limit: MAX_DEPTH }
    );
}

#[test]
fn ten_thousand_deep_map_nesting_is_a_typed_error() {
    // Each level is a one-pair map whose value is the next level down.
    let mut buf = Vec::new();
    for _ in 0..10_000 {
        buf.extend_from_slice(b"%1\r\n+k\r\n");
    }
    buf.extend_from_slice(b"+v\r\n");
    assert_eq!(
        decode(&buf).unwrap_err(),
        DecodeError::TooDeep { limit: MAX_DEPTH }
    );
}

#[test]
fn nesting_exactly_at_the_depth_limit_still_parses() {
    let mut buf = Vec::new();
    for _ in 0..MAX_DEPTH {
        buf.extend_from_slice(b"*1\r\n");
    }
    buf.extend_from_slice(b":7\r\n");
    let (frame, used) = decode(&buf).unwrap().unwrap();
    assert_eq!(used, buf.len());
    let mut f = &frame;
    for _ in 0..MAX_DEPTH {
        match f {
            Frame::Array(items) => f = &items[0],
            other => panic!("expected array, got {other:?}"),
        }
    }
    assert_eq!(f, &Frame::Integer(7));

    // One level deeper fails.
    let mut buf = Vec::new();
    for _ in 0..=MAX_DEPTH {
        buf.extend_from_slice(b"*1\r\n");
    }
    buf.extend_from_slice(b":7\r\n");
    assert_eq!(
        decode(&buf).unwrap_err(),
        DecodeError::TooDeep { limit: MAX_DEPTH }
    );
}

#[test]
fn too_deep_error_display_is_descriptive() {
    let msg = DecodeError::TooDeep { limit: MAX_DEPTH }.to_string();
    assert!(msg.contains("nesting"), "{msg}");
    assert!(msg.contains("32"), "{msg}");
}

// ---------------------------------------------------------------------------
// Borrowed command decode (ISSUE 10): the zero-copy fast path must be
// observationally identical to the generic decode → into_command_args
// pipeline — same commands, same argument bytes, same protocol errors —
// under arbitrary pipelining and arbitrary read-boundary splits. (Inline
// commands never reach `decode_command`; the server routes non-'*' leading
// bytes through `tokenize`, and its own equivalence test covers that.)
// ---------------------------------------------------------------------------

/// What one drain step of either decode path observed.
#[derive(Debug, PartialEq, Clone)]
enum CmdOut {
    Cmd(Vec<Vec<u8>>),
    NotCommand,
    Err(String),
}

/// Reference model: the pre-fast-path serve loop — one-shot [`decode`] over
/// the remaining bytes, then [`Frame::into_command_args`].
fn reference_outs(data: &[u8]) -> Vec<CmdOut> {
    let mut pos = 0;
    let mut outs = Vec::new();
    loop {
        match decode(&data[pos..]) {
            Ok(Some((frame, used))) => {
                pos += used;
                outs.push(match frame.into_command_args() {
                    Some(args) => CmdOut::Cmd(args.iter().map(|b| b.to_vec()).collect()),
                    None => CmdOut::NotCommand,
                });
            }
            Ok(None) => break,
            Err(e) => {
                outs.push(CmdOut::Err(e.to_string()));
                break;
            }
        }
    }
    outs
}

/// The new path: feed `data` into a `BytesMut` in `chunk`-byte pieces and
/// drain [`decode_command`] after every feed, exactly like the server's
/// sweep loop. Errors are terminal (the server closes the connection).
fn incremental_outs(data: &[u8], chunk: usize) -> Vec<CmdOut> {
    let mut buf = BytesMut::new();
    let mut outs = Vec::new();
    'feed: for piece in data.chunks(chunk.max(1)) {
        buf.extend_from_slice(piece);
        loop {
            match decode_command(&mut buf) {
                Ok(CommandParse::Cmd(args)) => {
                    outs.push(CmdOut::Cmd(args.iter().map(|b| b.to_vec()).collect()));
                }
                Ok(CommandParse::NotCommand) => outs.push(CmdOut::NotCommand),
                Ok(CommandParse::Incomplete) => break,
                Err(e) => {
                    outs.push(CmdOut::Err(e.to_string()));
                    break 'feed;
                }
            }
        }
    }
    outs
}

/// One wire message for the pipeline: mostly flat commands (the fast path),
/// plus every fallback shape — null/empty arrays, normalized non-bulk
/// arguments, non-command frames, and outright protocol errors.
fn arb_wire_msg() -> impl Strategy<Value = Vec<u8>> {
    fn flat_cmd() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..12), 1..5)
            .prop_map(|args| enc(&Frame::command(args)))
    }
    prop_oneof![
        flat_cmd(),
        flat_cmd(),
        flat_cmd(),
        flat_cmd(),
        Just(b"*0\r\n".to_vec()),
        Just(b"*-1\r\n".to_vec()),
        Just(b"*3\r\n$3\r\nSET\r\n:42\r\n+ok\r\n".to_vec()),
        Just(b"*2\r\n$4\r\nPING\r\n$-1\r\n".to_vec()),
        Just(b"*1\r\n*1\r\n$1\r\na\r\n".to_vec()),
        Just(b":123\r\n".to_vec()),
        Just(b"+OK\r\n".to_vec()),
        Just(b"$3\r\nGET\r\n".to_vec()),
        Just(b"*2\r\n$x\r\n".to_vec()),
        Just(b"!oops\r\n".to_vec()),
        Just(b"*1\r\n$-2\r\n".to_vec()),
    ]
}

proptest! {
    #[test]
    fn prop_borrowed_decode_matches_generic_path(
        msgs in proptest::collection::vec(arb_wire_msg(), 0..6),
        chunk in 1usize..9,
    ) {
        let pipeline: Vec<u8> = msgs.concat();
        let want = reference_outs(&pipeline);
        // Byte-at-a-time exercises every split boundary; the random chunk
        // size exercises multi-command reads landing in one sweep.
        prop_assert_eq!(incremental_outs(&pipeline, 1), want.clone());
        prop_assert_eq!(incremental_outs(&pipeline, chunk), want);
    }
}

#[test]
fn decode_command_flat_path_slices_one_shared_chunk() {
    let mut buf = BytesMut::new();
    buf.extend_from_slice(b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nvv\r\n*1\r\n$4\r\nPING");
    let args = match decode_command(&mut buf).unwrap() {
        CommandParse::Cmd(args) => args,
        other => panic!("expected command, got {other:?}"),
    };
    assert_eq!(
        args,
        vec![Bytes::from("SET"), Bytes::from("k"), Bytes::from("vv")]
    );
    // Exactly the first command's bytes were consumed.
    assert_eq!(buf.as_ref(), b"*1\r\n$4\r\nPING");
    // And the rest is an incomplete frame until its CRLF arrives.
    assert_eq!(decode_command(&mut buf).unwrap(), CommandParse::Incomplete);
    buf.extend_from_slice(b"\r\n");
    assert_eq!(
        decode_command(&mut buf).unwrap(),
        CommandParse::Cmd(vec![Bytes::from("PING")])
    );
    assert!(buf.is_empty());
}
