//! RESP frame encoder.

use crate::Frame;
use bytes::{BufMut, BytesMut};

/// Encodes a frame onto the end of `out`.
///
/// Emits RESP2-compatible encodings where one exists (`Null` as `$-1\r\n`)
/// so that RESP2-only clients can parse every reply our server produces;
/// RESP3-only types (`Double`, `Boolean`, `Map`, `Verbatim`) use their RESP3
/// encodings.
pub fn encode(frame: &Frame, out: &mut BytesMut) {
    match frame {
        Frame::Simple(s) => {
            out.put_u8(b'+');
            out.put_slice(s.as_bytes());
            out.put_slice(b"\r\n");
        }
        Frame::Error(s) => {
            out.put_u8(b'-');
            out.put_slice(s.as_bytes());
            out.put_slice(b"\r\n");
        }
        Frame::Integer(i) => {
            out.put_u8(b':');
            put_i64(out, *i);
            out.put_slice(b"\r\n");
        }
        Frame::Bulk(b) => {
            out.put_u8(b'$');
            put_usize(out, b.len());
            out.put_slice(b"\r\n");
            out.put_slice(b);
            out.put_slice(b"\r\n");
        }
        Frame::Null => out.put_slice(b"$-1\r\n"),
        Frame::Array(items) => {
            out.put_u8(b'*');
            put_usize(out, items.len());
            out.put_slice(b"\r\n");
            for item in items {
                encode(item, out);
            }
        }
        Frame::Double(d) => {
            out.put_u8(b',');
            if d.is_nan() {
                out.put_slice(b"nan");
            } else if d.is_infinite() {
                out.put_slice(if *d > 0.0 { b"inf" } else { b"-inf" });
            } else {
                out.put_slice(format_double(*d).as_bytes());
            }
            out.put_slice(b"\r\n");
        }
        Frame::Boolean(b) => {
            out.put_slice(if *b { b"#t\r\n" } else { b"#f\r\n" });
        }
        Frame::Map(pairs) => {
            out.put_u8(b'%');
            put_usize(out, pairs.len());
            out.put_slice(b"\r\n");
            for (k, v) in pairs {
                encode(k, out);
                encode(v, out);
            }
        }
        Frame::Verbatim(kind, b) => {
            out.put_u8(b'=');
            put_usize(out, b.len() + 4);
            out.put_slice(b"\r\n");
            out.put_slice(kind.as_bytes());
            out.put_u8(b':');
            out.put_slice(b);
            out.put_slice(b"\r\n");
        }
    }
}

/// Writes a decimal `usize` digit by digit from a stack buffer. The encoder
/// runs once per reply frame on the serve path; `to_string()` here was one
/// heap allocation per integer/bulk/array header.
fn put_usize(out: &mut BytesMut, n: usize) {
    let mut buf = [0u8; 20]; // u64::MAX has 20 digits
    let mut n = n;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.put_slice(&buf[i..]);
}

/// Signed companion of [`put_usize`].
fn put_i64(out: &mut BytesMut, v: i64) {
    if v < 0 {
        out.put_u8(b'-');
    }
    put_usize(out, v.unsigned_abs() as usize);
}

/// Formats a double the way Redis does: integers without a fractional part,
/// otherwise shortest roundtrip representation.
fn format_double(d: f64) -> String {
    if d == d.trunc() && d.abs() < 1e17 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

/// Returns the exact number of bytes [`encode`] would write for `frame`.
pub fn encoded_len(frame: &Frame) -> usize {
    // Cheap to compute by encoding into a scratch buffer for the rare
    // variable-width cases; the common cases are computed directly.
    fn digits(mut n: usize) -> usize {
        let mut d = 1;
        while n >= 10 {
            n /= 10;
            d += 1;
        }
        d
    }
    match frame {
        Frame::Simple(s) | Frame::Error(s) => 1 + s.len() + 2,
        Frame::Integer(i) => {
            let sign = usize::from(*i < 0);
            1 + sign + digits(i.unsigned_abs() as usize) + 2
        }
        Frame::Bulk(b) => 1 + digits(b.len()) + 2 + b.len() + 2,
        Frame::Null => 5,
        Frame::Array(items) => {
            1 + digits(items.len()) + 2 + items.iter().map(encoded_len).sum::<usize>()
        }
        Frame::Double(_) | Frame::Boolean(_) | Frame::Map(_) | Frame::Verbatim(..) => {
            let mut buf = BytesMut::new();
            encode(frame, &mut buf);
            buf.len()
        }
    }
}
