//! RESP (REdis Serialization Protocol) codec.
//!
//! MemoryDB is wire-compatible with Redis, so every client-facing surface in
//! this reproduction speaks RESP. This crate implements the protocol from
//! scratch on top of [`bytes`]:
//!
//! * [`Frame`] — the value model (RESP2 plus the RESP3 types our server
//!   emits: doubles, booleans, maps, nulls, verbatim strings).
//! * [`Decoder`] — an incremental, allocation-light frame decoder that copes
//!   with partial reads from a TCP stream.
//! * [`decode_command`] — the server's zero-copy fast path: flat command
//!   arrays decode to refcounted slices of the input buffer instead of
//!   per-argument copies.
//! * [`encode`] — the matching encoder.
//! * [`tokenize`] — inline-command tokenizer (the `PING\r\n` style accepted
//!   by redis-cli), used by tests and the interactive examples.
//!
//! The codec is deliberately independent of the engine: it knows nothing
//! about commands, only about frames.

mod decode;
mod encode;
mod frame;
mod tokenize;

pub use decode::{
    decode, decode_command, CommandParse, DecodeError, Decoder, DEFAULT_MAX_LEN, MAX_DEPTH,
};
pub use encode::{encode, encoded_len};
pub use frame::{Frame, FrameStr};
pub use tokenize::{tokenize, TokenizeError};

#[cfg(test)]
mod tests;
