//! Inline-command tokenizer.
//!
//! Splits a command line the way `redis-cli` does: whitespace-separated
//! tokens with single/double quoting and the usual backslash escapes inside
//! double quotes. Used by tests, examples, and the interactive shell in the
//! server crate.

use bytes::Bytes;
use std::fmt;

/// Errors produced while tokenizing an inline command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenizeError {
    /// A quote was opened but never closed.
    UnbalancedQuotes,
    /// A trailing backslash with nothing to escape.
    TrailingEscape,
}

impl fmt::Display for TokenizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenizeError::UnbalancedQuotes => write!(f, "unbalanced quotes in request"),
            TokenizeError::TrailingEscape => write!(f, "trailing escape character"),
        }
    }
}

impl std::error::Error for TokenizeError {}

/// Tokenizes an inline command line into argument byte strings.
pub fn tokenize(line: &str) -> Result<Vec<Bytes>, TokenizeError> {
    let mut args = Vec::new();
    let mut chars = line.chars().peekable();

    loop {
        // Skip leading whitespace.
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }

        let mut token = Vec::new();
        match *chars.peek().expect("peeked above") {
            '"' => {
                chars.next();
                loop {
                    match chars.next() {
                        None => return Err(TokenizeError::UnbalancedQuotes),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            None => return Err(TokenizeError::TrailingEscape),
                            Some('n') => token.push(b'\n'),
                            Some('r') => token.push(b'\r'),
                            Some('t') => token.push(b'\t'),
                            Some('b') => token.push(0x08),
                            Some('a') => token.push(0x07),
                            Some('x') => {
                                let hi = chars.next().and_then(|c| c.to_digit(16));
                                let lo = chars.next().and_then(|c| c.to_digit(16));
                                match (hi, lo) {
                                    (Some(h), Some(l)) => token.push((h * 16 + l) as u8),
                                    _ => return Err(TokenizeError::TrailingEscape),
                                }
                            }
                            Some(other) => {
                                let mut buf = [0u8; 4];
                                token.extend_from_slice(other.encode_utf8(&mut buf).as_bytes());
                            }
                        },
                        Some(c) => {
                            let mut buf = [0u8; 4];
                            token.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                    }
                }
                // A closing quote must be followed by whitespace or EOL.
                if matches!(chars.peek(), Some(c) if !c.is_whitespace()) {
                    return Err(TokenizeError::UnbalancedQuotes);
                }
            }
            '\'' => {
                chars.next();
                loop {
                    match chars.next() {
                        None => return Err(TokenizeError::UnbalancedQuotes),
                        Some('\'') => break,
                        Some('\\') if chars.peek() == Some(&'\'') => {
                            chars.next();
                            token.push(b'\'');
                        }
                        Some(c) => {
                            let mut buf = [0u8; 4];
                            token.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                    }
                }
                if matches!(chars.peek(), Some(c) if !c.is_whitespace()) {
                    return Err(TokenizeError::UnbalancedQuotes);
                }
            }
            _ => {
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    let mut buf = [0u8; 4];
                    token.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    chars.next();
                }
            }
        }
        args.push(Bytes::from(token));
    }

    Ok(args)
}
