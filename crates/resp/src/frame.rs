//! The RESP value model.

use bytes::Bytes;
use std::fmt;
use std::ops::Deref;

/// The payload of a simple-string or error frame.
///
/// The serve path emits the same handful of fixed replies (`+OK`, `+PONG`,
/// `+QUEUED`, canned `-ERR ...` messages) millions of times; materializing a
/// fresh heap `String` for each one is pure allocator traffic. `Static`
/// carries an interned `&'static str` at zero cost, `Owned` keeps the
/// general case (formatted errors, decoded peer replies). The type derefs
/// to `str`, compares by content across variants, and converts from string
/// literals and `String` via `From`, so construction sites read exactly as
/// they did when the payload was a plain `String`.
#[derive(Clone)]
pub enum FrameStr {
    /// An interned constant — no allocation, no refcount.
    Static(&'static str),
    /// A heap-owned string for dynamically built payloads.
    Owned(String),
}

impl FrameStr {
    /// The payload as a string slice.
    pub fn as_str(&self) -> &str {
        match self {
            FrameStr::Static(s) => s,
            FrameStr::Owned(s) => s,
        }
    }

    /// Converts into reference-counted bytes. The static variant still
    /// costs nothing extra beyond what [`Bytes::from_static`] charges.
    pub fn into_bytes(self) -> Bytes {
        match self {
            FrameStr::Static(s) => Bytes::from_static(s.as_bytes()),
            FrameStr::Owned(s) => Bytes::from(s),
        }
    }
}

impl Deref for FrameStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for FrameStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for FrameStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for FrameStr {
    // Render as a bare quoted string (exactly how the old `String` payload
    // printed) so `Frame`'s Debug output is unchanged.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl PartialEq for FrameStr {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for FrameStr {}

impl PartialEq<str> for FrameStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}
impl PartialEq<&str> for FrameStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}
impl PartialEq<String> for FrameStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}
impl PartialEq<FrameStr> for str {
    fn eq(&self, other: &FrameStr) -> bool {
        self == other.as_str()
    }
}
impl PartialEq<FrameStr> for &str {
    fn eq(&self, other: &FrameStr) -> bool {
        *self == other.as_str()
    }
}

impl From<&'static str> for FrameStr {
    fn from(s: &'static str) -> Self {
        FrameStr::Static(s)
    }
}
impl From<String> for FrameStr {
    fn from(s: String) -> Self {
        FrameStr::Owned(s)
    }
}
impl From<FrameStr> for String {
    fn from(s: FrameStr) -> Self {
        match s {
            FrameStr::Static(s) => s.to_string(),
            FrameStr::Owned(s) => s,
        }
    }
}
impl From<FrameStr> for Bytes {
    fn from(s: FrameStr) -> Self {
        s.into_bytes()
    }
}

/// A single RESP frame.
///
/// Covers RESP2 (`+ - : $ *`) plus the RESP3 types this reproduction's
/// server emits (`_ , # = %`). Frames are cheap to clone: bulk payloads are
/// reference-counted [`Bytes`] and fixed simple/error strings are interned
/// [`FrameStr::Static`] constants.
#[derive(Clone, PartialEq)]
pub enum Frame {
    /// `+OK\r\n` — a simple (non-binary-safe) string.
    Simple(FrameStr),
    /// `-ERR ...\r\n` — an error reply.
    Error(FrameStr),
    /// `:123\r\n` — a signed 64-bit integer.
    Integer(i64),
    /// `$5\r\nhello\r\n` — a binary-safe bulk string.
    Bulk(Bytes),
    /// `$-1\r\n` (RESP2) / `_\r\n` (RESP3) — absence of a value.
    Null,
    /// `*N\r\n...` — an array of frames.
    Array(Vec<Frame>),
    /// `,3.14\r\n` — an IEEE double (RESP3).
    Double(f64),
    /// `#t\r\n` — a boolean (RESP3).
    Boolean(bool),
    /// `%N\r\n...` — a map of frame pairs (RESP3).
    Map(Vec<(Frame, Frame)>),
    /// `=N\r\ntxt:...\r\n` — a verbatim string (RESP3).
    Verbatim(String, Bytes),
}

impl Frame {
    /// A conventional `+OK` reply. Allocation-free: the payload is the
    /// interned [`FrameStr::Static`] constant.
    pub fn ok() -> Frame {
        Frame::Simple(FrameStr::Static("OK"))
    }

    /// Builds a bulk frame from anything byte-like.
    pub fn bulk(data: impl Into<Bytes>) -> Frame {
        Frame::Bulk(data.into())
    }

    /// Builds an error frame with the conventional `ERR` prefix unless the
    /// message already carries an error code (all-caps first word). A
    /// `&'static str` message that already has a code stays interned.
    pub fn error(msg: impl Into<FrameStr>) -> Frame {
        let msg = msg.into();
        let has_code = msg
            .split_whitespace()
            .next()
            .is_some_and(|w| w.len() > 2 && w.chars().all(|c| c.is_ascii_uppercase()));
        if has_code {
            Frame::Error(msg)
        } else {
            Frame::Error(FrameStr::Owned(format!("ERR {}", msg.as_str())))
        }
    }

    /// An array of bulk strings — the shape of every Redis command.
    pub fn command<I, B>(parts: I) -> Frame
    where
        I: IntoIterator<Item = B>,
        B: Into<Bytes>,
    {
        Frame::Array(parts.into_iter().map(Frame::bulk).collect())
    }

    /// Returns the bulk payload if this frame is a bulk string.
    pub fn as_bulk(&self) -> Option<&Bytes> {
        match self {
            Frame::Bulk(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the integer if this frame is an integer.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            Frame::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the array elements if this frame is an array.
    pub fn as_array(&self) -> Option<&[Frame]> {
        match self {
            Frame::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True if the frame is an error reply.
    pub fn is_error(&self) -> bool {
        matches!(self, Frame::Error(_))
    }

    /// Interprets the frame as a command: an array of bulk strings.
    ///
    /// Returns the raw argument vector, or `None` if the frame has another
    /// shape (the server replies with a protocol error in that case).
    pub fn into_command_args(self) -> Option<Vec<Bytes>> {
        match self {
            Frame::Array(items) => items
                .into_iter()
                .map(|f| match f {
                    Frame::Bulk(b) => Some(b),
                    // Clients are allowed to send integers/simple strings as
                    // command arguments; normalize to their textual form.
                    Frame::Integer(i) => Some(Bytes::from(i.to_string())),
                    Frame::Simple(s) => Some(Bytes::from(s)),
                    _ => None,
                })
                .collect(),
            _ => None,
        }
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Frame::Simple(s) => write!(f, "Simple({s:?})"),
            Frame::Error(s) => write!(f, "Error({s:?})"),
            Frame::Integer(i) => write!(f, "Integer({i})"),
            Frame::Bulk(b) => match std::str::from_utf8(b) {
                Ok(s) => write!(f, "Bulk({s:?})"),
                Err(_) => write!(f, "Bulk({} bytes)", b.len()),
            },
            Frame::Null => write!(f, "Null"),
            Frame::Array(items) => f.debug_list().entries(items).finish(),
            Frame::Double(d) => write!(f, "Double({d})"),
            Frame::Boolean(b) => write!(f, "Boolean({b})"),
            Frame::Map(pairs) => f
                .debug_map()
                .entries(pairs.iter().map(|(k, v)| (k, v)))
                .finish(),
            Frame::Verbatim(kind, b) => write!(f, "Verbatim({kind}, {} bytes)", b.len()),
        }
    }
}

impl From<i64> for Frame {
    fn from(v: i64) -> Self {
        Frame::Integer(v)
    }
}

impl From<&str> for Frame {
    fn from(v: &str) -> Self {
        Frame::Bulk(Bytes::copy_from_slice(v.as_bytes()))
    }
}

impl From<String> for Frame {
    fn from(v: String) -> Self {
        Frame::Bulk(Bytes::from(v))
    }
}

impl From<Bytes> for Frame {
    fn from(v: Bytes) -> Self {
        Frame::Bulk(v)
    }
}

impl From<Vec<Frame>> for Frame {
    fn from(v: Vec<Frame>) -> Self {
        Frame::Array(v)
    }
}
