//! Incremental RESP frame decoder.
// Serving/apply path: panic-freedom is an enforced invariant (DESIGN.md §9;
// `cargo run -p memorydb-analysis`). Keep clippy aligned with the analyzer.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use crate::Frame;
use bytes::{Buf, Bytes, BytesMut};
use std::fmt;

/// Errors produced while decoding a RESP stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream is not valid RESP (with a human-readable reason).
    Protocol(String),
    /// A declared length exceeds the decoder's configured limit.
    TooLarge { declared: usize, limit: usize },
    /// Aggregate nesting (arrays/maps) exceeds [`MAX_DEPTH`].
    TooDeep { limit: usize },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            DecodeError::TooLarge { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            DecodeError::TooDeep { limit } => {
                write!(f, "aggregate nesting exceeds depth limit {limit}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Default cap on any single declared bulk/array length (512 MB, the Redis
/// proto-max-bulk-len default).
pub const DEFAULT_MAX_LEN: usize = 512 * 1024 * 1024;

/// Max aggregate (array/map) nesting depth. Real commands are one array of
/// bulk strings; anything deeper than this is a crafted frame, and the
/// recursive parser must reject it with a typed error instead of riding the
/// recursion to a stack overflow.
pub const MAX_DEPTH: usize = 32;

/// A stateful decoder that accumulates bytes from a stream and yields
/// complete frames.
///
/// Feed bytes with [`Decoder::feed`] and drain frames with
/// [`Decoder::next_frame`]; partial frames stay buffered until enough bytes
/// arrive.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: BytesMut,
    max_len: usize,
}

impl Decoder {
    /// Creates a decoder with the default length limit.
    pub fn new() -> Decoder {
        Decoder {
            buf: BytesMut::new(),
            max_len: DEFAULT_MAX_LEN,
        }
    }

    /// Creates a decoder with a custom per-element length limit.
    pub fn with_max_len(max_len: usize) -> Decoder {
        Decoder {
            buf: BytesMut::new(),
            max_len,
        }
    }

    /// Appends raw bytes received from the transport.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Number of bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, DecodeError> {
        let mut cursor = Cursor {
            data: &self.buf,
            pos: 0,
            max_len: self.max_len,
        };
        match parse_frame(&mut cursor, 0) {
            Ok(frame) => {
                let consumed = cursor.pos;
                self.buf.advance(consumed);
                Ok(Some(frame))
            }
            Err(ParseOutcome::Incomplete) => Ok(None),
            Err(ParseOutcome::Error(e)) => Err(e),
        }
    }
}

/// One-shot convenience: decodes a single frame from a byte slice, returning
/// the frame and the number of bytes consumed. `Ok(None)` means the slice
/// holds only a partial frame.
pub fn decode(data: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
    let mut cursor = Cursor {
        data,
        pos: 0,
        max_len: DEFAULT_MAX_LEN,
    };
    match parse_frame(&mut cursor, 0) {
        Ok(frame) => Ok(Some((frame, cursor.pos))),
        Err(ParseOutcome::Incomplete) => Ok(None),
        Err(ParseOutcome::Error(e)) => Err(e),
    }
}

/// Result of [`decode_command`]: one attempt to pull a command off the
/// front of a connection's input buffer.
#[derive(Debug, PartialEq)]
pub enum CommandParse {
    /// A complete command: the argument vector. On the flat fast path each
    /// [`Bytes`] is a zero-copy slice of one shared buffer region.
    Cmd(Vec<Bytes>),
    /// A complete frame that is not an array of bulk-string-likes (the
    /// server answers with a protocol error). The frame's bytes have been
    /// consumed from the buffer.
    NotCommand,
    /// The buffer holds only a partial frame; feed more bytes and retry.
    Incomplete,
}

/// Decodes one command from the front of `buf`, consuming exactly the bytes
/// of that command (nothing on `Incomplete` or `Err`).
///
/// The hot path — a flat `*N` array whose elements are all plain bulk
/// strings, i.e. every real client command — is parsed **borrowed**: the
/// consumed region is split off and frozen once, and each argument is an
/// `O(1)` refcounted slice of it, so argument payloads are never copied
/// out one by one. Anything else (null arrays, nested or non-bulk
/// elements, every other frame tag) falls back to the generic
/// [`decode`]+[`Frame::into_command_args`] pipeline, which also keeps
/// protocol-error messages byte-identical to the pre-fast-path decoder:
/// both paths report errors through the same cursor helpers.
pub fn decode_command(buf: &mut BytesMut) -> Result<CommandParse, DecodeError> {
    if buf.first() == Some(&b'*') {
        match flat_command_ranges(buf.as_ref()) {
            Ok(Some((ranges, used))) => {
                let chunk = buf.split_to(used).freeze();
                let args = ranges
                    .iter()
                    .map(|&(start, len)| chunk.slice(start..start + len))
                    .collect();
                return Ok(CommandParse::Cmd(args));
            }
            Ok(None) => {} // legal but not flat — generic path below
            Err(ParseOutcome::Incomplete) => return Ok(CommandParse::Incomplete),
            Err(ParseOutcome::Error(e)) => return Err(e),
        }
    }
    match decode(buf.as_ref())? {
        None => Ok(CommandParse::Incomplete),
        Some((frame, used)) => {
            buf.advance(used);
            match frame.into_command_args() {
                Some(args) => Ok(CommandParse::Cmd(args)),
                None => Ok(CommandParse::NotCommand),
            }
        }
    }
}

/// Scans a flat command array without materializing frames: returns the
/// `(start, len)` payload ranges of each bulk-string element plus the total
/// bytes consumed, or `Ok(None)` when the frame is legal RESP but not a
/// flat array of non-null bulk strings (caller falls back to [`decode`]).
/// Errors are produced by the same helpers as the generic parser, so the
/// two paths emit identical protocol-error messages.
#[allow(clippy::type_complexity)]
fn flat_command_ranges(data: &[u8]) -> Result<Option<(Vec<(usize, usize)>, usize)>, ParseOutcome> {
    let mut c = Cursor {
        data,
        pos: 0,
        max_len: DEFAULT_MAX_LEN,
    };
    c.take()?; // the caller checked the '*' tag
    let header = c.line()?;
    let Some(n) = parse_len(header, c.max_len)? else {
        return Ok(None); // `*-1` null array — generic path decodes Frame::Null
    };
    let mut ranges = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        match c.peek() {
            Some(b'$') => {}
            // Integer / simple-string elements are legal command arguments
            // (normalized by `into_command_args`); other tags are either
            // protocol errors or non-command shapes. Either way the generic
            // path owns the answer.
            Some(_) => return Ok(None),
            None => return Err(ParseOutcome::Incomplete),
        }
        c.take()?;
        let line = c.line()?;
        let Some(len) = parse_len(line, c.max_len)? else {
            return Ok(None); // `$-1` element — generic path maps it to Null
        };
        let start = c.pos;
        c.exact(len)?;
        c.crlf()?;
        ranges.push((start, len));
    }
    Ok(Some((ranges, c.pos)))
}

enum ParseOutcome {
    Incomplete,
    Error(DecodeError),
}

impl From<DecodeError> for ParseOutcome {
    fn from(e: DecodeError) -> Self {
        ParseOutcome::Error(e)
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    max_len: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.data.get(self.pos).copied()
    }

    fn take(&mut self) -> Result<u8, ParseOutcome> {
        let b = self.peek().ok_or(ParseOutcome::Incomplete)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads up to and including the next CRLF, returning the line body.
    fn line(&mut self) -> Result<&'a [u8], ParseOutcome> {
        let start = self.pos;
        let rest = self.data.get(start..).unwrap_or(&[]);
        match rest.windows(2).position(|w| w == b"\r\n") {
            Some(idx) => {
                self.pos = start + idx + 2;
                rest.get(..idx).ok_or(ParseOutcome::Incomplete)
            }
            None => Err(ParseOutcome::Incomplete),
        }
    }

    fn exact(&mut self, n: usize) -> Result<&'a [u8], ParseOutcome> {
        let end = self.pos.checked_add(n).ok_or(ParseOutcome::Incomplete)?;
        let out = self
            .data
            .get(self.pos..end)
            .ok_or(ParseOutcome::Incomplete)?;
        self.pos = end;
        Ok(out)
    }

    fn crlf(&mut self) -> Result<(), ParseOutcome> {
        let b = self.exact(2)?;
        if b != b"\r\n" {
            return Err(protocol("expected CRLF"));
        }
        Ok(())
    }
}

fn protocol(msg: impl Into<String>) -> ParseOutcome {
    ParseOutcome::Error(DecodeError::Protocol(msg.into()))
}

fn parse_int(line: &[u8]) -> Result<i64, ParseOutcome> {
    let s = std::str::from_utf8(line).map_err(|_| protocol("non-utf8 integer"))?;
    s.parse::<i64>()
        .map_err(|_| protocol(format!("invalid integer {s:?}")))
}

fn parse_len(line: &[u8], max: usize) -> Result<Option<usize>, ParseOutcome> {
    let n = parse_int(line)?;
    if n == -1 {
        return Ok(None); // RESP2 null
    }
    if n < 0 {
        return Err(protocol("negative length"));
    }
    let n = n as usize;
    if n > max {
        return Err(ParseOutcome::Error(DecodeError::TooLarge {
            declared: n,
            limit: max,
        }));
    }
    Ok(Some(n))
}

fn parse_frame(c: &mut Cursor<'_>, depth: usize) -> Result<Frame, ParseOutcome> {
    let tag = c.take()?;
    match tag {
        b'+' => {
            let line = c.line()?;
            let s = std::str::from_utf8(line)
                .map_err(|_| protocol("non-utf8 simple string"))?
                .to_string();
            Ok(Frame::Simple(s.into()))
        }
        b'-' => {
            let line = c.line()?;
            let s = std::str::from_utf8(line)
                .map_err(|_| protocol("non-utf8 error string"))?
                .to_string();
            Ok(Frame::Error(s.into()))
        }
        b':' => {
            let line = c.line()?;
            Ok(Frame::Integer(parse_int(line)?))
        }
        b'$' => {
            let line = c.line()?;
            match parse_len(line, c.max_len)? {
                None => Ok(Frame::Null),
                Some(n) => {
                    let payload = c.exact(n)?;
                    let bytes = Bytes::copy_from_slice(payload);
                    c.crlf()?;
                    Ok(Frame::Bulk(bytes))
                }
            }
        }
        b'*' => {
            let line = c.line()?;
            match parse_len(line, c.max_len)? {
                None => Ok(Frame::Null),
                Some(n) => {
                    if depth >= MAX_DEPTH {
                        return Err(ParseOutcome::Error(DecodeError::TooDeep {
                            limit: MAX_DEPTH,
                        }));
                    }
                    let mut items = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        items.push(parse_frame(c, depth + 1)?);
                    }
                    Ok(Frame::Array(items))
                }
            }
        }
        b'_' => {
            let line = c.line()?;
            if !line.is_empty() {
                return Err(protocol("null frame with payload"));
            }
            Ok(Frame::Null)
        }
        b',' => {
            let line = c.line()?;
            let s = std::str::from_utf8(line).map_err(|_| protocol("non-utf8 double"))?;
            let d = match s {
                "inf" => f64::INFINITY,
                "-inf" => f64::NEG_INFINITY,
                "nan" => f64::NAN,
                _ => s
                    .parse::<f64>()
                    .map_err(|_| protocol(format!("invalid double {s:?}")))?,
            };
            Ok(Frame::Double(d))
        }
        b'#' => {
            let line = c.line()?;
            match line {
                b"t" => Ok(Frame::Boolean(true)),
                b"f" => Ok(Frame::Boolean(false)),
                _ => Err(protocol("invalid boolean")),
            }
        }
        b'%' => {
            let line = c.line()?;
            let n = parse_len(line, c.max_len)?.ok_or_else(|| protocol("null map length"))?;
            if depth >= MAX_DEPTH {
                return Err(ParseOutcome::Error(DecodeError::TooDeep {
                    limit: MAX_DEPTH,
                }));
            }
            let mut pairs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let k = parse_frame(c, depth + 1)?;
                let v = parse_frame(c, depth + 1)?;
                pairs.push((k, v));
            }
            Ok(Frame::Map(pairs))
        }
        b'=' => {
            let line = c.line()?;
            let n = parse_len(line, c.max_len)?.ok_or_else(|| protocol("null verbatim"))?;
            if n < 4 {
                return Err(protocol("verbatim string too short"));
            }
            let payload = c.exact(n)?;
            c.crlf()?;
            let (kind_bytes, sep, body) = match (payload.get(..3), payload.get(3), payload.get(4..))
            {
                (Some(k), Some(&s), Some(b)) => (k, s, b),
                _ => return Err(protocol("verbatim string too short")),
            };
            if sep != b':' {
                return Err(protocol("verbatim string missing kind separator"));
            }
            let kind = std::str::from_utf8(kind_bytes)
                .map_err(|_| protocol("non-utf8 verbatim kind"))?
                .to_string();
            Ok(Frame::Verbatim(kind, Bytes::copy_from_slice(body)))
        }
        other => Err(protocol(format!(
            "unexpected frame tag {:?}",
            other as char
        ))),
    }
}
