use super::*;
use memorydb_core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
use memorydb_objectstore::ObjectStore;

fn test_shard(replicas: usize) -> Arc<Shard> {
    Shard::bootstrap(
        0,
        ShardConfig::fast(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        replicas,
    )
}

/// A server over a fresh single-node shard. The shard is returned too so
/// its run loop stays alive for the duration of the test.
fn test_server(replicas: usize) -> (Server, Arc<Shard>) {
    let shard = test_shard(replicas);
    let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
    let server = Server::start(primary, "127.0.0.1:0").unwrap();
    (server, shard)
}

fn bulk(s: &str) -> Frame {
    Frame::Bulk(Bytes::copy_from_slice(s.as_bytes()))
}

#[test]
fn end_to_end_over_tcp() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    assert_eq!(
        client.command(["PING"]).unwrap(),
        Frame::Simple("PONG".into())
    );
    assert_eq!(client.command(["SET", "k", "v"]).unwrap(), Frame::ok());
    assert_eq!(client.command(["GET", "k"]).unwrap(), bulk("v"));
    assert_eq!(client.command(["INCR", "n"]).unwrap(), Frame::Integer(1));
    assert_eq!(
        client.command(["LPUSH", "l", "a", "b"]).unwrap(),
        Frame::Integer(2)
    );
    assert_eq!(
        client.command(["LRANGE", "l", "0", "-1"]).unwrap(),
        Frame::Array(vec![bulk("b"), bulk("a")])
    );
}

#[test]
fn pipelined_commands() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    // Write three commands before reading any reply.
    let mut out = BytesMut::new();
    for c in [["SET", "a", "1"], ["SET", "b", "2"], ["SET", "c", "3"]] {
        encode(&Frame::command(c), &mut out);
    }
    client.stream.write_all(&out).unwrap();
    for _ in 0..3 {
        assert_eq!(client.read_reply().unwrap(), Frame::ok());
    }
    assert_eq!(client.command(["DBSIZE"]).unwrap(), Frame::Integer(3));
}

#[test]
fn pipeline_api_replies_in_order() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();

    let mut cmds: Vec<Vec<String>> = Vec::new();
    for i in 0..40 {
        cmds.push(vec!["SET".into(), format!("k{i}"), format!("v{i}")]);
    }
    for i in 0..40 {
        cmds.push(vec!["GET".into(), format!("k{i}")]);
    }
    cmds.push(vec!["DBSIZE".into()]);

    let replies = client.pipeline(cmds).unwrap();
    assert_eq!(replies.len(), 81);
    for r in &replies[..40] {
        assert_eq!(*r, Frame::ok());
    }
    for (i, r) in replies[40..80].iter().enumerate() {
        assert_eq!(*r, bulk(&format!("v{i}")), "reply {i} out of order");
    }
    assert_eq!(replies[80], Frame::Integer(40));
}

#[test]
fn multi_exec_spanning_pipeline_batches() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();

    // MULTI and the queued commands arrive as one pipelined batch...
    let first = client
        .pipeline(vec![
            vec!["MULTI"],
            vec!["SET", "t", "1"],
            vec!["INCR", "t"],
        ])
        .unwrap();
    assert_eq!(first[0], Frame::ok());
    assert_eq!(first[1], Frame::Simple("QUEUED".into()));
    assert_eq!(first[2], Frame::Simple("QUEUED".into()));

    // ...EXEC arrives in the next batch and sees the full queue.
    let second = client
        .pipeline(vec![vec!["EXEC"], vec!["GET", "t"]])
        .unwrap();
    assert_eq!(
        second[0],
        Frame::Array(vec![Frame::ok(), Frame::Integer(2)])
    );
    assert_eq!(second[1], bulk("2"));
}

#[test]
fn watch_conflict_across_pipeline_batches_aborts_exec() {
    let (server, _shard) = test_server(0);
    let mut watcher = BlockingClient::connect(server.local_addr).unwrap();
    let mut writer = BlockingClient::connect(server.local_addr).unwrap();

    let r = watcher
        .pipeline(vec![vec!["WATCH", "w"], vec!["MULTI"]])
        .unwrap();
    assert_eq!(r, vec![Frame::ok(), Frame::ok()]);
    // Another connection clobbers the watched key between the batches.
    assert_eq!(
        writer.command(["SET", "w", "clobber"]).unwrap(),
        Frame::ok()
    );
    let r = watcher
        .pipeline(vec![vec!["SET", "w", "mine"], vec!["EXEC"]])
        .unwrap();
    assert_eq!(r[0], Frame::Simple("QUEUED".into()));
    assert_eq!(r[1], Frame::Null, "EXEC must abort on watch conflict");
    assert_eq!(writer.command(["GET", "w"]).unwrap(), bulk("clobber"));
}

#[test]
fn replica_requires_readonly_opt_in() {
    let shard = test_shard(1);
    let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
    let mut session = SessionState::new();
    primary.handle(&mut session, &memorydb_engine::cmd(["SET", "k", "v"]));
    assert!(shard.wait_replicas_caught_up(Duration::from_secs(5)));
    let replica = shard.replicas().into_iter().next().unwrap();
    let server = Server::start(replica, "127.0.0.1:0").unwrap();
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    // Without the opt-in: redirected.
    match client.command(["GET", "k"]).unwrap() {
        Frame::Error(msg) => assert!(msg.starts_with("MOVED"), "{msg}"),
        other => panic!("expected MOVED, got {other:?}"),
    }
    // With READONLY: served. Sent pipelined with the read to prove the
    // mode flip applies in submission order inside one batch.
    let r = client
        .pipeline(vec![vec!["READONLY"], vec!["GET", "k"]])
        .unwrap();
    assert_eq!(r[0], Frame::ok());
    assert_eq!(r[1], bulk("v"));
    // Writes still redirect.
    match client.command(["SET", "x", "1"]).unwrap() {
        Frame::Error(msg) => assert!(msg.starts_with("MOVED"), "{msg}"),
        other => panic!("expected MOVED, got {other:?}"),
    }
    // READWRITE turns the opt-in back off.
    assert_eq!(client.command(["READWRITE"]).unwrap(), Frame::ok());
    assert!(client.command(["GET", "k"]).unwrap().is_error());
}

#[test]
fn concurrent_clients() {
    let (server, _shard) = test_server(0);
    let addr = server.local_addr;
    let mut handles = Vec::new();
    // 64 simultaneous connections: far more sockets than IO threads, so
    // this exercises genuine multiplexing (the old server would burn one
    // OS thread per socket here).
    for t in 0..64 {
        handles.push(std::thread::spawn(move || {
            let mut client = BlockingClient::connect(addr).unwrap();
            for i in 0..25 {
                let key = format!("t{t}:k{i}");
                assert_eq!(
                    client.command(["SET", key.as_str(), "v"]).unwrap(),
                    Frame::ok()
                );
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut client = BlockingClient::connect(addr).unwrap();
    assert_eq!(client.command(["DBSIZE"]).unwrap(), Frame::Integer(64 * 25));
}

#[cfg(target_os = "linux")]
fn process_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap()
}

/// The Enhanced-IO claim made checkable: parking 64 idle connections on the
/// server must not grow the process thread count per connection.
#[cfg(target_os = "linux")]
#[test]
fn multiplexing_does_not_spawn_thread_per_connection() {
    let (server, _shard) = test_server(0);
    let before = process_thread_count();
    let mut clients = Vec::new();
    for _ in 0..64 {
        let mut c = BlockingClient::connect(server.local_addr).unwrap();
        assert_eq!(c.command(["PING"]).unwrap(), Frame::Simple("PONG".into()));
        clients.push(c);
    }
    let after = process_thread_count();
    // Other tests run in parallel, so allow slack — but 64 fresh threads
    // (thread-per-connection) would blow well past this bound.
    assert!(
        after.saturating_sub(before) < 32,
        "thread count grew from {before} to {after} for 64 connections"
    );
}

#[test]
fn thread_per_connection_mode_still_serves() {
    let shard = test_shard(0);
    let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
    let mut server = Server::start_with(
        primary,
        "127.0.0.1:0",
        ServerOptions {
            mode: IoMode::ThreadPerConnection,
            io_threads: 0,
        },
    )
    .unwrap();
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    assert_eq!(client.command(["SET", "k", "v"]).unwrap(), Frame::ok());
    let replies = client
        .pipeline(vec![vec!["GET", "k"], vec!["DBSIZE"]])
        .unwrap();
    assert_eq!(replies, vec![bulk("v"), Frame::Integer(1)]);
    drop(client);
    // stop() joins the per-connection threads too.
    server.stop();
}

#[test]
fn stop_joins_io_threads_and_refuses_new_connections() {
    let (mut server, _shard) = test_server(0);
    let addr = server.local_addr;
    let mut client = BlockingClient::connect(addr).unwrap();
    assert_eq!(
        client.command(["PING"]).unwrap(),
        Frame::Simple("PONG".into())
    );

    let started = std::time::Instant::now();
    server.stop();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop() must join promptly, took {:?}",
        started.elapsed()
    );
    // The listener is gone: fresh connections are refused (or reset).
    assert!(TcpStream::connect(addr)
        .and_then(|mut s| {
            // Some platforms accept briefly in the backlog; prove the
            // socket is dead by failing to get a reply.
            s.set_read_timeout(Some(Duration::from_millis(500)))?;
            s.write_all(b"PING\r\n")?;
            let mut b = [0u8; 8];
            match s.read(&mut b) {
                Ok(0) => Err(std::io::Error::new(ErrorKind::UnexpectedEof, "closed")),
                Ok(_) => Ok(()),
                Err(e) => Err(e),
            }
        })
        .is_err());
    // The existing connection is closed by shutdown.
    assert!(client.command(["PING"]).is_err());
}

#[test]
fn quit_closes_connection() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    assert_eq!(client.command(["QUIT"]).unwrap(), Frame::ok());
    // Subsequent use fails with EOF.
    assert!(client.command(["PING"]).is_err());
}

#[test]
fn quit_mid_pipeline_answers_prefix_then_closes() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    let mut out = BytesMut::new();
    encode(&Frame::command(["SET", "q", "1"]), &mut out);
    encode(&Frame::command(["QUIT"]), &mut out);
    encode(&Frame::command(["SET", "q", "2"]), &mut out);
    client.stream.write_all(&out).unwrap();
    assert_eq!(client.read_reply().unwrap(), Frame::ok()); // SET q 1
    assert_eq!(client.read_reply().unwrap(), Frame::ok()); // QUIT
    assert!(
        client.read_reply().is_err(),
        "connection must close after QUIT"
    );
    // The command pipelined after QUIT was discarded.
    let mut c2 = BlockingClient::connect(server.local_addr).unwrap();
    assert_eq!(c2.command(["GET", "q"]).unwrap(), bulk("1"));
}

#[test]
fn inline_commands_work() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    // Telnet-style inline commands, mixed with RESP on one connection.
    client.stream.write_all(b"PING\r\n").unwrap();
    assert_eq!(client.read_reply().unwrap(), Frame::Simple("PONG".into()));
    client
        .stream
        .write_all(b"SET greeting \"hello world\"\r\n")
        .unwrap();
    assert_eq!(client.read_reply().unwrap(), Frame::ok());
    assert_eq!(
        client.command(["GET", "greeting"]).unwrap(),
        Frame::Bulk(Bytes::from_static(b"hello world"))
    );
    // Blank lines between inline commands are ignored.
    client.stream.write_all(b"\r\n\r\nDBSIZE\r\n").unwrap();
    assert_eq!(client.read_reply().unwrap(), Frame::Integer(1));
}

#[test]
fn protocol_error_reported() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    // Non-RESP text is interpreted as an inline command: an unknown name
    // yields a normal command error, like Redis.
    client.stream.write_all(b"!garbage\r\n").unwrap();
    match client.read_reply().unwrap() {
        Frame::Error(msg) => assert!(msg.contains("unknown command"), "{msg}"),
        other => panic!("expected unknown-command error, got {other:?}"),
    }
    // Structurally invalid RESP is a protocol error and closes the
    // connection.
    client.stream.write_all(b"*1\r\n$abc\r\n").unwrap();
    match client.read_reply().unwrap() {
        Frame::Error(msg) => assert!(msg.contains("Protocol error"), "{msg}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
}

#[test]
fn protocol_error_mid_batch_flushes_prior_replies() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    // One write: two valid commands, then structurally invalid RESP.
    let mut out = BytesMut::new();
    encode(&Frame::command(["SET", "p", "1"]), &mut out);
    encode(&Frame::command(["INCR", "p2"]), &mut out);
    out.extend_from_slice(b"*1\r\n$abc\r\n");
    client.stream.write_all(&out).unwrap();

    // Both replies from before the error arrive, then the error, then EOF.
    assert_eq!(client.read_reply().unwrap(), Frame::ok());
    assert_eq!(client.read_reply().unwrap(), Frame::Integer(1));
    match client.read_reply().unwrap() {
        Frame::Error(msg) => assert!(msg.contains("Protocol error"), "{msg}"),
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert!(client.read_reply().is_err(), "connection must close");
    // The prefix really executed.
    let mut c2 = BlockingClient::connect(server.local_addr).unwrap();
    assert_eq!(c2.command(["GET", "p"]).unwrap(), bulk("1"));
}

// ---------------------------------------------------------------------------
// Observability over live TCP, pipeline ordering, inline cap (DESIGN §10)
// ---------------------------------------------------------------------------

#[test]
fn info_slowlog_latency_work_over_tcp() {
    let (server, shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    assert_eq!(client.command(["SET", "k", "v"]).unwrap(), Frame::ok());
    assert_eq!(client.command(["GET", "k"]).unwrap(), bulk("v"));

    // INFO: default sections plus a latencystats section on request, with
    // the server-recorded IO stages present (we came in over a socket).
    let info = client.command(["INFO"]).unwrap();
    let Frame::Bulk(b) = &info else {
        panic!("INFO must be bulk, got {info:?}");
    };
    let text = String::from_utf8_lossy(b);
    assert!(text.contains("# Server") && text.contains("role:master"));

    let lat = client.command(["INFO", "latencystats"]).unwrap();
    let Frame::Bulk(b) = &lat else { panic!() };
    let text = String::from_utf8_lossy(b);
    for stage in ["io_read", "io_write", "parse", "apply", "e2e"] {
        assert!(
            text.contains(&format!("latency_percentiles_usec_{stage}:")),
            "missing {stage} in: {text}"
        );
    }

    // SLOWLOG with threshold 0 records the traffic.
    assert_eq!(
        client
            .command(["CONFIG", "SET", "slowlog-log-slower-than", "0"])
            .unwrap(),
        Frame::ok()
    );
    assert_eq!(client.command(["SET", "slow", "1"]).unwrap(), Frame::ok());
    let len = client.command(["SLOWLOG", "LEN"]).unwrap();
    assert!(matches!(len, Frame::Integer(n) if n >= 1), "{len:?}");
    let got = client.command(["SLOWLOG", "GET", "1"]).unwrap();
    let Frame::Array(entries) = got else { panic!() };
    assert_eq!(entries.len(), 1);
    assert_eq!(client.command(["SLOWLOG", "RESET"]).unwrap(), Frame::ok());

    // LATENCY HISTOGRAM is a RESP3 map keyed by stage name.
    let hist = client.command(["LATENCY", "HISTOGRAM"]).unwrap();
    let Frame::Map(pairs) = &hist else {
        panic!("LATENCY HISTOGRAM must be a map, got {hist:?}");
    };
    let stages: Vec<String> = pairs
        .iter()
        .filter_map(|(k, _)| match k {
            Frame::Bulk(b) => Some(String::from_utf8_lossy(b).into_owned()),
            _ => None,
        })
        .collect();
    for want in [
        "io_read",
        "io_write",
        "parse",
        "engine",
        "apply",
        "e2e",
        "log_append",
    ] {
        assert!(
            stages.iter().any(|s| s == want),
            "missing {want} in {stages:?}"
        );
    }

    // The registry the server recorded into is the node's own.
    let primary = shard.primary().unwrap();
    let snap = primary.metrics().snapshot();
    assert!(snap.counter("connections_accepted").unwrap_or(0) >= 1);
    assert!(snap.stage("io_read").is_some_and(|s| s.count > 0));
}

#[test]
fn pipeline_replies_never_reorder_under_batch_splits() {
    // A pipeline mixing connection-level commands (READONLY/READWRITE flush
    // the run), MULTI/EXEC, errors, and plain commands must come back in
    // exact submission order. This pins the positional-reply invariant the
    // batch splitter relies on.
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    let replies = client
        .pipeline([
            vec!["SET", "x", "1"],
            vec!["READONLY"],
            vec!["INCR", "x"],
            vec!["READWRITE"],
            vec!["NOSUCHCMD"],
            vec!["GET", "x"],
            vec!["PING"],
        ])
        .unwrap();
    assert_eq!(replies.len(), 7);
    assert_eq!(replies[0], Frame::ok());
    assert_eq!(replies[1], Frame::ok());
    assert_eq!(replies[2], Frame::Integer(2));
    assert_eq!(replies[3], Frame::ok());
    assert!(matches!(&replies[4], Frame::Error(_)), "{:?}", replies[4]);
    assert_eq!(replies[5], bulk("2"));
    assert_eq!(replies[6], Frame::Simple("PONG".into()));

    // A >BATCH_CAP pipeline split into multiple engine batches keeps order:
    // INCR replies must be exactly 1..=N.
    let n = BATCH_CAP * 2 + 17;
    let cmds: Vec<Vec<String>> = (0..n)
        .map(|_| vec!["INCR".to_string(), "ctr".to_string()])
        .collect();
    let replies = client.pipeline(cmds).unwrap();
    assert_eq!(replies.len(), n);
    for (i, r) in replies.iter().enumerate() {
        assert_eq!(*r, Frame::Integer(i as i64 + 1), "reorder at index {i}");
    }
}

/// Deferred-reply safety: when the primary is fenced while client batches
/// are parked awaiting durability, every parked reply must drain as a
/// CLUSTERDOWN error — never +OK (the write is not durable) and never a
/// hang (the IO thread no longer blocks inside the node, so resolution
/// must come from the commit pipeline's poison path).
#[test]
fn fenced_primary_errors_parked_replies_instead_of_hanging() {
    // Quiet renewal cadence (600ms) so the fence is discovered by the
    // committer's conditional append — the parked-batch poison path —
    // rather than by a racing lease renewal.
    let shard = Shard::bootstrap(
        0,
        ShardConfig {
            lease: Duration::from_secs(2),
            renew_interval: Duration::from_millis(600),
            backoff: Duration::from_millis(2250),
            ..ShardConfig::fast()
        },
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::new(NodeIdGen::new()),
        vec![(0, 16383)],
        0,
    );
    let primary = shard.wait_for_primary(Duration::from_secs(10)).unwrap();
    let server = Server::start(primary, "127.0.0.1:0").unwrap();
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    assert_eq!(client.command(["SET", "stable", "1"]).unwrap(), Frame::ok());

    // Fence out-of-band: a foreign append moves the log tail, so the
    // committer's next conditional append loses and poisons the pipeline.
    let fence = memorydb_core::Record::Effects {
        version: memorydb_engine::EngineVersion::CURRENT,
        effects: vec![memorydb_engine::cmd(["SET", "sneak", "1"])],
    };
    shard
        .ctx()
        .log
        .append(999, fence.encode())
        .expect("foreign append");

    // A pipeline of writes: each parks on the connection until its ticket
    // resolves. All three must come back as errors, in order, within the
    // client's read timeout.
    let replies = client
        .pipeline(vec![
            vec!["SET", "lost1", "x"],
            vec!["SET", "lost2", "x"],
            vec!["SET", "lost3", "x"],
        ])
        .expect("parked replies must drain, not hang");
    assert_eq!(replies.len(), 3);
    for r in &replies {
        match r {
            Frame::Error(m) => assert!(m.starts_with("CLUSTERDOWN"), "{m}"),
            other => panic!("fenced parked write was acknowledged: {other:?}"),
        }
    }
}

#[test]
fn oversized_inline_line_is_rejected_not_buffered_forever() {
    let (server, _shard) = test_server(0);
    let mut client = BlockingClient::connect(server.local_addr).unwrap();
    // A newline-free inline blob past INLINE_MAX must produce a protocol
    // error and a closed connection, not unbounded buffering.
    let blob = vec![b'a'; INLINE_MAX + 512];
    client.stream.write_all(&blob).unwrap();
    let reply = client.read_reply().unwrap();
    let Frame::Error(msg) = reply else {
        panic!("expected protocol error, got {reply:?}");
    };
    assert!(msg.contains("too big inline request"), "{msg}");
    assert!(client.read_reply().is_err(), "connection must close");
}

/// Drains every complete command currently buffered on `raw` into `out`
/// as owned byte vectors, surfacing any protocol error.
fn drain_all_owned(raw: &mut BytesMut, out: &mut Vec<Vec<Vec<u8>>>) -> Result<(), String> {
    loop {
        match next_command(raw)? {
            Some(args) => out.push(args.iter().map(|a| a.to_vec()).collect()),
            None => return Ok(()),
        }
    }
}

/// Equivalence property for the borrowed-decode parser: a mixed stream of
/// RESP arrays (including binary args with embedded CRLF/NUL and empty
/// bulks), inline commands, and blank separator lines must parse to the
/// same command sequence whether it arrives as one contiguous read or
/// split at every possible chunk boundary.
#[test]
fn next_command_equivalence_across_arbitrary_splits() {
    let mut stream: Vec<u8> = Vec::new();
    stream.extend_from_slice(b"*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$2\r\nv1\r\n");
    stream.extend_from_slice(b"*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n");
    stream.extend_from_slice(b"*3\r\n$3\r\nSET\r\n$3\r\nbin\r\n$6\r\na\r\nb\x00c\r\n");
    stream.extend_from_slice(b"\r\n"); // blank separator line
    stream.extend_from_slice(b"PING\r\n"); // inline command
    stream.extend_from_slice(b"  ECHO   hi  \r\n"); // inline, extra spaces
    stream.extend_from_slice(b"\n");
    stream.extend_from_slice(b"*3\r\n$3\r\nSET\r\n$5\r\nempty\r\n$0\r\n\r\n");

    let expected: Vec<Vec<Vec<u8>>> = vec![
        vec![b"SET".to_vec(), b"k1".to_vec(), b"v1".to_vec()],
        vec![b"GET".to_vec(), b"k1".to_vec()],
        vec![b"SET".to_vec(), b"bin".to_vec(), b"a\r\nb\x00c".to_vec()],
        vec![b"PING".to_vec()],
        vec![b"ECHO".to_vec(), b"hi".to_vec()],
        vec![b"SET".to_vec(), b"empty".to_vec(), b"".to_vec()],
    ];

    // Whole-stream parse.
    let mut raw = BytesMut::new();
    raw.extend_from_slice(&stream);
    let mut whole = Vec::new();
    drain_all_owned(&mut raw, &mut whole).unwrap();
    assert_eq!(whole, expected);
    assert!(raw.is_empty());

    // Chunked parses: every fixed chunk size exercises a different set of
    // split points, including mid-header, mid-argument, and mid-CRLF.
    for chunk in [1usize, 2, 3, 5, 8, 13, 64] {
        let mut raw = BytesMut::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            raw.extend_from_slice(piece);
            drain_all_owned(&mut raw, &mut got)
                .unwrap_or_else(|e| panic!("chunk={chunk}: unexpected error {e}"));
        }
        assert_eq!(got, expected, "chunk={chunk} parsed a different sequence");
    }
}

/// A malformed stream must fail identically whole and chunked, after
/// yielding the same valid prefix.
#[test]
fn next_command_errors_identically_chunked_and_whole() {
    let mut stream: Vec<u8> = Vec::new();
    stream.extend_from_slice(b"*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n"); // valid prefix
    stream.extend_from_slice(b":5\r\n"); // top-level non-array frame

    let mut raw = BytesMut::new();
    raw.extend_from_slice(&stream);
    let mut whole = Vec::new();
    let whole_err = drain_all_owned(&mut raw, &mut whole).unwrap_err();
    assert_eq!(whole, vec![vec![b"GET".to_vec(), b"k1".to_vec()]]);

    for chunk in [1usize, 3, 7] {
        let mut raw = BytesMut::new();
        let mut got = Vec::new();
        let mut err = None;
        for piece in stream.chunks(chunk) {
            raw.extend_from_slice(piece);
            if let Err(e) = drain_all_owned(&mut raw, &mut got) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(got, whole, "chunk={chunk}: different valid prefix");
        assert_eq!(err.as_ref(), Some(&whole_err), "chunk={chunk}");
    }
}

/// Satellite (c) regression: a connection that ballooned its IO buffers
/// during a pipelined burst must shed them once drained — idle
/// connections may not pin burst-sized capacity — and the IO-thread pool
/// must never adopt an oversized buffer either.
#[test]
fn oversized_idle_buffers_are_shed_and_never_pooled() {
    let hw = buf_high_water();
    let mut pool = BufPool::default();

    // Balloon both connection buffers past the high-water mark, then
    // drain them (the idle state after a burst).
    let mut conn = ConnState::new();
    conn.raw.extend_from_slice(&vec![0u8; hw + 1]);
    conn.raw.clear();
    conn.out.extend_from_slice(&vec![0u8; hw + 1]);
    conn.out.clear();
    assert!(conn.raw.capacity() > hw && conn.out.capacity() > hw);

    conn.shed_oversized(&mut pool);
    assert!(
        conn.raw.capacity() <= hw,
        "idle raw buffer still resident at {} bytes",
        conn.raw.capacity()
    );
    assert!(
        conn.out.capacity() <= hw,
        "idle out buffer still resident at {} bytes",
        conn.out.capacity()
    );

    // A buffer still holding bytes is NOT shed: shedding it would drop
    // undelivered data.
    let mut busy = ConnState::new();
    busy.raw.extend_from_slice(&vec![0u8; hw + 1]);
    let before = busy.raw.capacity();
    busy.shed_oversized(&mut pool);
    assert_eq!(busy.raw.capacity(), before);
    assert_eq!(busy.raw.len(), hw + 1);

    // The pool never adopts an oversized buffer and clears what it keeps.
    let mut big = BytesMut::new();
    big.extend_from_slice(&vec![0u8; hw + 1]);
    big.clear();
    pool.put(big);
    assert!(
        pool.free.iter().all(|b| b.capacity() <= hw),
        "pool adopted an oversized buffer"
    );
    let mut small = BytesMut::new();
    small.extend_from_slice(b"leftover bytes");
    pool.put(small);
    let recycled = pool.free.last().expect("small buffer should be pooled");
    assert!(recycled.is_empty(), "pool must clear recycled buffers");

    // And the pool is bounded: POOL_CAP puts, not one more.
    let mut pool = BufPool::default();
    for _ in 0..(POOL_CAP + 8) {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"x");
        pool.put(b);
    }
    assert_eq!(pool.free.len(), POOL_CAP);
}
