//! # memorydb-server — a RESP TCP server over a MemoryDB node
//!
//! Exposes one [`memorydb_core::Node`] on a real TCP socket speaking RESP,
//! so any Redis client (or the bundled [`BlockingClient`]) can talk to the
//! reproduction. Wire compatibility is the point of the whole design
//! (paper §1: "remain fully compatible with Redis").
//!
//! Connection handling reproduces MemoryDB's Enhanced-IO shape (§2.1): a
//! fixed pool of IO threads ([`IoMode::Multiplexed`], the default) owns all
//! client sockets in non-blocking mode and funnels parsed commands into the
//! node's single-threaded engine. Each sweep over a connection parses every
//! complete frame buffered on it and submits the run as ONE
//! [`memorydb_core::Node::handle_batch_submit`] call — one engine-lock
//! acquisition per pipeline. Durability is **deferred**: the submit returns
//! a [`memorydb_core::SubmittedBatch`] holding a commit-pipeline ticket, the
//! batch is parked on the connection, and the IO thread moves on to sweep
//! its other sockets instead of blocking inside the node. When the
//! committer resolves the ticket, a waker message re-arms the IO thread,
//! which settles parked batches front-to-back (per-connection reply order
//! is submission order) and coalesces their replies into one socket write.
//! [`IoMode::ThreadPerConnection`] keeps the classic one-thread-per-socket
//! baseline for comparison benchmarks; it settles each batch inline.
//!
//! Session semantics implemented here (they are connection state, not
//! engine state): `READONLY`/`READWRITE` opt-in for replica reads (§3.2 —
//! "clients must explicitly opt-in, ensuring they do not accidentally
//! consume stale data") and `QUIT`.

use bytes::{Buf, Bytes, BytesMut};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use memorydb_core::{Node, SubmittedBatch};
use memorydb_engine::{command_spec, CmdName, Frame, SessionState};
use memorydb_metrics::{CounterId, GaugeId, StageId};
use memorydb_resp::{encode, CommandParse, Decoder};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How connections are mapped onto OS threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoMode {
    /// A fixed pool of IO threads multiplexes every socket (default).
    /// Matches the paper's Enhanced-IO model: thread count is bounded by
    /// the pool size, not the client count.
    Multiplexed,
    /// One OS thread per accepted connection. Kept as the baseline the
    /// throughput benchmark compares against.
    ThreadPerConnection,
}

/// Server tuning knobs. `ServerOptions::default()` gives the multiplexed
/// pool sized to `min(4, available cores)`.
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    pub mode: IoMode,
    /// IO-thread pool size; `0` means auto (`min(4, cores)`). Ignored in
    /// thread-per-connection mode.
    pub io_threads: usize,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            mode: IoMode::Multiplexed,
            io_threads: 0,
        }
    }
}

fn auto_io_threads() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cores.clamp(1, 4)
}

/// Applies a connection-count delta shared across IO threads and mirrors
/// the new total into the node registry's `connected_clients` gauge.
fn track_clients(node: &Node, live: &AtomicI64, delta: i64) {
    let v = live.fetch_add(delta, Ordering::Relaxed) + delta;
    node.metrics().set_gauge(GaugeId::ConnectedClients, v);
}

/// A running server bound to one node.
pub struct Server {
    /// The bound address (useful with port 0).
    pub local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    io_threads: Vec<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

/// What flows over an IO thread's intake channel: new sockets from the
/// acceptor, and wake-ups from commit-ticket wakers when a parked batch
/// becomes ready to settle (so an idle IO thread never sits out its full
/// nap while replies are releasable).
enum IoMsg {
    Conn(TcpStream),
    Wake,
}

enum Workers {
    Multiplexed(Vec<Sender<IoMsg>>),
    PerConn,
}

impl Server {
    /// Starts serving `node` on `addr` (use `127.0.0.1:0` for an ephemeral
    /// port) with the default multiplexed IO pool.
    pub fn start(node: Arc<Node>, addr: &str) -> std::io::Result<Server> {
        Server::start_with(node, addr, ServerOptions::default())
    }

    /// Starts serving with explicit IO options.
    pub fn start_with(node: Arc<Node>, addr: &str, opts: ServerOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let live_conns = Arc::new(AtomicI64::new(0));

        let mut io_threads = Vec::new();
        let workers = match opts.mode {
            IoMode::Multiplexed => {
                let n = if opts.io_threads == 0 {
                    auto_io_threads()
                } else {
                    opts.io_threads
                };
                let mut txs = Vec::with_capacity(n);
                for i in 0..n {
                    let (tx, rx) = channel::unbounded::<IoMsg>();
                    // The thread keeps a sender to its own channel: ticket
                    // wakers clone it to post `IoMsg::Wake`.
                    let wake_tx = tx.clone();
                    txs.push(tx);
                    let node = Arc::clone(&node);
                    let shutdown = Arc::clone(&shutdown);
                    let live = Arc::clone(&live_conns);
                    io_threads.push(
                        std::thread::Builder::new()
                            .name(format!("memorydb-io-{i}"))
                            .spawn(move || io_loop(node, rx, wake_tx, shutdown, live))?,
                    );
                }
                Workers::Multiplexed(txs)
            }
            IoMode::ThreadPerConnection => Workers::PerConn,
        };

        let accept_thread = {
            let node = Arc::clone(&node);
            let shutdown = Arc::clone(&shutdown);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("memorydb-accept".into())
                .spawn(move || {
                    // Blocking accept; Server::stop wakes it with a
                    // throwaway self-connection (no sleep/poll loop).
                    let mut next = 0usize;
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                if shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                                match &workers {
                                    Workers::Multiplexed(txs) => {
                                        let _ = txs[next % txs.len()].send(IoMsg::Conn(stream));
                                        next += 1;
                                    }
                                    Workers::PerConn => {
                                        let node = Arc::clone(&node);
                                        let shutdown = Arc::clone(&shutdown);
                                        let live = Arc::clone(&live_conns);
                                        let spawned = std::thread::Builder::new()
                                            .name("memorydb-conn".into())
                                            .spawn(move || {
                                                node.metrics().incr(CounterId::ConnectionsAccepted);
                                                track_clients(&node, &live, 1);
                                                let _ = serve_blocking(
                                                    stream,
                                                    Arc::clone(&node),
                                                    shutdown,
                                                );
                                                track_clients(&node, &live, -1);
                                            });
                                        if let Ok(h) = spawned {
                                            conn_threads.lock().push(h);
                                        }
                                    }
                                }
                            }
                            Err(_) => {
                                if shutdown.load(Ordering::Acquire) {
                                    return;
                                }
                            }
                        }
                    }
                })?
        };

        Ok(Server {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            io_threads,
            conn_threads,
        })
    }

    /// Stops the server: wakes the acceptor, then joins the accept thread,
    /// every IO thread, and any per-connection threads.
    pub fn stop(&mut self) {
        // Release pairs with the IO/accept loops' Acquire loads: all
        // stop-time state written before the flag is visible to them.
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor; it checks the flag right after accept.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.io_threads.drain(..) {
            let _ = t.join();
        }
        let handles: Vec<_> = self.conn_threads.lock().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Command parsing and batch execution (shared by both IO modes)
// ---------------------------------------------------------------------------

/// Max commands executed per engine batch: bounds the time one connection
/// can hold the engine lock before replies start flowing.
const BATCH_CAP: usize = 128;

/// Max parked (submitted, not yet durable) batches per connection before
/// the IO thread stops reading more input from that socket. Together with
/// the node's commit window this bounds per-connection in-flight state.
const PARKED_CAP: usize = 32;

/// Max bytes drained from one socket per sweep, so a fire-hose client
/// cannot starve its IO thread's other connections.
const READ_SWEEP_CAP: usize = 256 * 1024;

/// Max length of a telnet-style inline command line (64 KB, the Redis
/// `PROTO_INLINE_MAX_SIZE` default).
const INLINE_MAX: usize = 64 * 1024;

/// Pulls the next command from the connection buffer: a RESP array frame,
/// or (when the first byte is not a RESP type tag) an inline command line,
/// the `PING\r\n` form redis-cli and telnet users send.
///
/// Consumption is cursor-based: the buffer's read position advances in
/// `O(1)` instead of memmoving the unread tail to the front after every
/// command (the old `Vec::drain(..used)` made a K-deep pipeline cost
/// `O(K²)` byte moves per sweep). Flat RESP command arrays additionally
/// take the zero-copy [`memorydb_resp::decode_command`] path: each argument
/// is a refcounted slice of the consumed region, never a fresh copy.
fn next_command(raw: &mut BytesMut) -> Result<Option<Vec<Bytes>>, String> {
    loop {
        // Skip blank separator lines between inline commands.
        while matches!(raw.first(), Some(b'\r') | Some(b'\n')) {
            raw.advance(1);
        }
        let Some(&first) = raw.first() else {
            // Fully drained: reset the cursor region so appended reads
            // reuse the front of the allocation instead of growing it.
            raw.clear();
            return Ok(None);
        };
        if b"+-:$*_,#%=".contains(&first) {
            return match memorydb_resp::decode_command(raw) {
                Ok(CommandParse::Cmd(args)) if args.is_empty() => continue,
                Ok(CommandParse::Cmd(args)) => Ok(Some(args)),
                Ok(CommandParse::NotCommand) => Err("expected array of bulk strings".into()),
                Ok(CommandParse::Incomplete) => Ok(None),
                Err(e) => Err(e.to_string()),
            };
        }
        // Inline command: consume one line. A line that exceeds the cap —
        // complete or still streaming — is a protocol error, so a client
        // that never sends a newline cannot grow the buffer without bound
        // (Redis's PROTO_INLINE_MAX_SIZE behavior).
        let Some(pos) = raw.iter().position(|&b| b == b'\n') else {
            if raw.len() > INLINE_MAX {
                return Err("too big inline request".into());
            }
            return Ok(None);
        };
        if pos > INLINE_MAX {
            return Err("too big inline request".into());
        }
        let line = String::from_utf8_lossy(&raw[..pos]).trim().to_string();
        raw.advance(pos + 1);
        if line.is_empty() {
            continue;
        }
        return match memorydb_resp::tokenize(&line) {
            Ok(args) if args.is_empty() => continue,
            Ok(args) => Ok(Some(args)),
            Err(e) => Err(e.to_string()),
        };
    }
}

/// One submitted pipeline batch whose replies may still be waiting on
/// commit-pipeline tickets. Reply slots are positional; `None` slots are
/// filled from `waits` when the batch settles.
struct ParkedBatch {
    replies: Vec<Option<Frame>>,
    /// Engine runs awaiting durability: the contiguous positional index
    /// range each run's replies map back to, plus the submitted batch
    /// holding the ticket. Runs are always contiguous because every
    /// non-run command (QUIT, READONLY/READWRITE, a gated replica read)
    /// flushes the pending run before claiming its own reply slot.
    waits: Vec<(std::ops::Range<usize>, SubmittedBatch)>,
}

impl ParkedBatch {
    /// True once every run's ticket has resolved (durable, poisoned, or
    /// timed out) — settling will not block.
    fn is_complete(&self) -> bool {
        self.waits.iter().all(|(_, sb)| sb.is_complete())
    }
}

/// How many drained IO buffers an IO thread keeps around for reuse. Sized
/// to the connection churn one sweep can realistically see; beyond this,
/// returned buffers are simply dropped.
const POOL_CAP: usize = 16;

/// High-water mark for a pooled/retained IO buffer (64 KB). A buffer that
/// grew past this during a burst is released once it drains instead of
/// pinning megabytes for the rest of the connection's (or pool's) life.
/// Env-tunable for experiments: `MEMORYDB_BUF_HIGH_WATER` (bytes).
const BUF_HIGH_WATER: usize = 64 * 1024;

fn buf_high_water() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| {
        std::env::var("MEMORYDB_BUF_HIGH_WATER")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(BUF_HIGH_WATER)
    })
}

/// An IO thread's free-list of connection buffers. New connections draw
/// their input/output buffers here so short-lived connections in a churn
/// burst don't each pay two fresh heap growth curves; drained buffers come
/// back on close. Oversized buffers (over [`buf_high_water`]) never enter
/// the pool — that is the anti-bloat half of the policy.
#[derive(Default)]
struct BufPool {
    free: Vec<BytesMut>,
}

impl BufPool {
    fn get(&mut self) -> BytesMut {
        self.free.pop().unwrap_or_default()
    }

    fn put(&mut self, mut b: BytesMut) {
        b.clear();
        if b.capacity() <= buf_high_water() && self.free.len() < POOL_CAP {
            self.free.push(b);
        }
    }
}

/// Per-connection protocol state, independent of the IO mode driving it.
struct ConnState {
    raw: BytesMut,
    out: BytesMut,
    session: SessionState,
    readonly_mode: bool,
    /// Batches submitted to the engine whose replies have not been released
    /// yet, in submission order. Only the multiplexed path parks; the
    /// blocking path settles inline so this stays empty there.
    parked: VecDeque<ParkedBatch>,
    /// Set on QUIT or protocol error: settle `parked`, flush `out`, close.
    closing: bool,
    /// Parse scratch: the outer command vector is recycled across
    /// `drain_commands` calls so the steady-state hot path performs no
    /// per-drain allocation for it. Cleared (inner argument vectors
    /// dropped) before being stashed so it never pins input chunks while
    /// the connection is idle.
    cmd_scratch: Vec<Vec<Bytes>>,
    /// Reply-slot vector recycled from the most recently settled batch.
    spare_replies: Vec<Option<Frame>>,
    /// Wait vector recycled from the most recently settled batch.
    spare_waits: Vec<(std::ops::Range<usize>, SubmittedBatch)>,
}

impl ConnState {
    fn new() -> ConnState {
        ConnState {
            raw: BytesMut::new(),
            out: BytesMut::new(),
            session: SessionState::new(),
            readonly_mode: false,
            parked: VecDeque::new(),
            closing: false,
            cmd_scratch: Vec::new(),
            spare_replies: Vec::new(),
            spare_waits: Vec::new(),
        }
    }

    /// Draws the IO buffers from an IO thread's pool instead of allocating.
    fn new_pooled(pool: &mut BufPool) -> ConnState {
        let mut c = ConnState::new();
        c.raw = pool.get();
        c.out = pool.get();
        c
    }

    /// Anti-bloat sweep, run when the connection goes idle: a pipelined
    /// burst can balloon `raw`/`out` far past steady state, and without
    /// this the capacity stays resident until the client disconnects. Any
    /// drained buffer over the high-water mark is swapped for a pooled one
    /// and its allocation dropped.
    fn shed_oversized(&mut self, pool: &mut BufPool) {
        let hw = buf_high_water();
        if self.raw.is_empty() && self.raw.capacity() > hw {
            self.raw = pool.get();
        }
        if self.out.is_empty() && self.out.capacity() > hw {
            self.out = pool.get();
        }
    }

    /// Returns the connection's buffers to the pool on close. Whatever
    /// undelivered bytes they held die with the connection; `put` clears.
    fn recycle(self, pool: &mut BufPool) {
        pool.put(self.raw);
        pool.put(self.out);
    }
}

/// Appends one out-of-band reply (protocol-error farewell) to the
/// connection, behind any parked batches so replies never reorder.
fn emit_frame(conn: &mut ConnState, f: Frame) {
    if conn.parked.is_empty() {
        encode(&f, &mut conn.out);
    } else {
        conn.parked.push_back(ParkedBatch {
            replies: vec![Some(f)],
            waits: Vec::new(),
        });
    }
}

/// Parses every complete command buffered on the connection and submits
/// them in engine batches. With `wake_tx` (the multiplexed path) each batch
/// is parked on the connection and a waker is armed on its pending
/// tickets; without it (the blocking path) each batch settles inline into
/// `conn.out`.
///
/// A protocol error mid-stream still submits everything parsed before it,
/// then emits the error reply and marks the connection closing.
fn drain_commands(node: &Node, conn: &mut ConnState, wake_tx: Option<&Sender<IoMsg>>) {
    let m = node.metrics();
    // The outer command vector is recycled across drains (and across
    // connections' lifetimes) via `cmd_scratch`, so steady-state parsing
    // allocates nothing for it.
    let mut cmds = std::mem::take(&mut conn.cmd_scratch);
    while !conn.closing {
        cmds.clear();
        let mut parse_err: Option<String> = None;
        let parse_start = m.now_us();
        while cmds.len() < BATCH_CAP {
            match next_command(&mut conn.raw) {
                Ok(Some(args)) => cmds.push(args),
                Ok(None) => break,
                Err(e) => {
                    parse_err = Some(e);
                    break;
                }
            }
        }
        if !cmds.is_empty() || parse_err.is_some() {
            m.record_stage(StageId::Parse, m.now_us().saturating_sub(parse_start));
        }
        if !cmds.is_empty() {
            let batch = submit_batch(node, conn, &cmds);
            match wake_tx {
                None => {
                    let (r, w) = settle_batch(node, batch, &mut conn.out);
                    conn.spare_replies = r;
                    conn.spare_waits = w;
                }
                Some(tx) => {
                    for (_, sb) in &batch.waits {
                        if !sb.is_complete() {
                            let tx = tx.clone();
                            sb.set_waker(Box::new(move || {
                                let _ = tx.send(IoMsg::Wake);
                            }));
                        }
                    }
                    conn.parked.push_back(batch);
                }
            }
        }
        if let Some(e) = parse_err {
            m.incr(CounterId::ProtocolErrors);
            if !conn.closing {
                emit_frame(conn, Frame::error(format!("Protocol error: {e}")));
                conn.closing = true;
            }
            break;
        }
        if cmds.len() < BATCH_CAP {
            break; // input buffer exhausted
        }
    }
    // Drop any parsed arguments (they hold slices of the input chunk)
    // before stashing the scratch, so idle connections pin nothing.
    cmds.clear();
    conn.cmd_scratch = cmds;
}

/// Submits one parsed batch to the engine. Connection-level commands (QUIT,
/// READONLY, READWRITE) and the replica read-gating check are handled here;
/// runs of plain commands between them go to the engine as ONE
/// [`Node::handle_batch_submit`] call — executed now, durability pending on
/// the returned ticket. Replies are positional, so ordering is preserved no
/// matter how the batch is partitioned.
///
/// Runs of plain commands are **contiguous** index ranges, so each run is
/// submitted as a direct sub-slice of the parsed batch — no per-run
/// collection, no clone, no move. Reply-slot and wait vectors are drawn
/// from the connection's recycled spares, so a warmed-up connection
/// allocates nothing here.
fn submit_batch(node: &Node, conn: &mut ConnState, cmds: &[Vec<Bytes>]) -> ParkedBatch {
    let mut replies = std::mem::take(&mut conn.spare_replies);
    replies.clear();
    replies.resize(cmds.len(), None);
    let mut waits = std::mem::take(&mut conn.spare_waits);
    waits.clear();
    // The pending run is cmds[run_start..i] — flushed whenever a non-run
    // command claims slot i, which keeps every run contiguous.
    let mut run_start: usize = 0;

    fn flush_run(
        node: &Node,
        session: &mut SessionState,
        cmds: &[Vec<Bytes>],
        run: std::ops::Range<usize>,
        waits: &mut Vec<(std::ops::Range<usize>, SubmittedBatch)>,
    ) {
        if run.is_empty() {
            return;
        }
        let sb = node.handle_batch_submit(session, &cmds[run.clone()]);
        waits.push((run, sb));
    }

    for i in 0..cmds.len() {
        let name = CmdName::from_arg(&cmds[i][0]);
        match name.as_str() {
            "QUIT" => {
                flush_run(node, &mut conn.session, cmds, run_start..i, &mut waits);
                // Anything pipelined after QUIT is discarded, like Redis.
                run_start = cmds.len();
                replies[i] = Some(Frame::ok());
                conn.closing = true;
                break;
            }
            // READONLY/READWRITE are connection state (paper §2.1: replica
            // reads are an explicit opt-in). The pending run is flushed
            // first so the mode flip cannot reorder around engine commands.
            "READONLY" => {
                flush_run(node, &mut conn.session, cmds, run_start..i, &mut waits);
                run_start = i + 1;
                conn.readonly_mode = true;
                replies[i] = Some(Frame::ok());
            }
            "READWRITE" => {
                flush_run(node, &mut conn.session, cmds, run_start..i, &mut waits);
                run_start = i + 1;
                conn.readonly_mode = false;
                replies[i] = Some(Frame::ok());
            }
            _ => {
                // Enforce the opt-in: a replica serves nothing but admin
                // commands to sessions that did not issue READONLY.
                let gated = node.role() == memorydb_engine::exec::Role::Replica
                    && !conn.readonly_mode
                    && !command_spec(&name).is_some_and(|s| s.flags.admin);
                if gated {
                    flush_run(node, &mut conn.session, cmds, run_start..i, &mut waits);
                    run_start = i + 1;
                    replies[i] = Some(Frame::Error(
                        "MOVED 0 ? (replica requires READONLY opt-in)".into(),
                    ));
                }
            }
        }
    }
    flush_run(
        node,
        &mut conn.session,
        cmds,
        run_start..cmds.len(),
        &mut waits,
    );
    ParkedBatch { replies, waits }
}

/// Resolves every pending run of `batch` (blocking until its tickets
/// settle — instant when [`ParkedBatch::is_complete`] was already true),
/// fills the reply slots, and encodes every reply **directly** into the
/// connection's output buffer — no intermediate scratch buffer and no
/// second copy of the encoded bytes.
/// Returns the two emptied vectors so the caller can hand them back to
/// the connection's spares for the next batch (capacity recycling).
#[allow(clippy::type_complexity)]
fn settle_batch(
    node: &Node,
    batch: ParkedBatch,
    out: &mut BytesMut,
) -> (
    Vec<Option<Frame>>,
    Vec<(std::ops::Range<usize>, SubmittedBatch)>,
) {
    let ParkedBatch {
        mut replies,
        mut waits,
    } = batch;
    for (run, sb) in waits.drain(..) {
        let rs = node.wait_finish(sb);
        for (i, r) in run.zip(rs) {
            replies[i] = Some(r);
        }
    }
    for r in replies.drain(..).flatten() {
        encode(&r, out);
    }
    (replies, waits)
}

/// Settles parked batches front-to-back, stopping at the first batch whose
/// tickets are still pending: per-connection replies are released in
/// submission order, so batch N+1 never overtakes batch N even when it
/// commits first. Returns whether anything settled.
fn drain_parked(node: &Node, conn: &mut ConnState) -> bool {
    let mut progressed = false;
    while conn.parked.front().is_some_and(ParkedBatch::is_complete) {
        if let Some(batch) = conn.parked.pop_front() {
            let (r, w) = settle_batch(node, batch, &mut conn.out);
            conn.spare_replies = r;
            conn.spare_waits = w;
            progressed = true;
        }
    }
    progressed
}

// ---------------------------------------------------------------------------
// Multiplexed IO loop
// ---------------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    state: ConnState,
    eof: bool,
}

/// Writes as much of `out` as the socket accepts without blocking.
/// Returns bytes written; `Err` means the connection is dead. Consumed
/// bytes advance the buffer's read cursor in `O(1)` (the old
/// `Vec::drain(..written)` memmoved the unwritten tail on every partial
/// write); a fully flushed buffer is `clear()`ed so the next replies are
/// encoded at the front of the same allocation.
fn flush_out(
    stream: &mut TcpStream,
    out: &mut BytesMut,
    m: &memorydb_metrics::Registry,
) -> std::io::Result<usize> {
    if out.is_empty() {
        return Ok(0);
    }
    let write_start = m.now_us();
    let mut written = 0usize;
    while written < out.len() {
        match stream.write(&out[written..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::WriteZero,
                    "socket write returned 0",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if written == out.len() {
        out.clear();
    } else {
        out.advance(written);
    }
    m.record_stage(StageId::IoWrite, m.now_us().saturating_sub(write_start));
    Ok(written)
}

/// One readiness sweep over one connection: settle any parked batches whose
/// tickets resolved, flush pending output, drain readable input, submit,
/// settle, flush again. Returns `(keep, progressed)`.
fn sweep_conn(
    node: &Node,
    conn: &mut Conn,
    buf: &mut [u8],
    wake_tx: &Sender<IoMsg>,
) -> (bool, bool) {
    let mut progressed = false;
    let m = node.metrics();

    progressed |= drain_parked(node, &mut conn.state);
    match flush_out(&mut conn.stream, &mut conn.state.out, m) {
        Ok(n) => progressed |= n > 0,
        Err(_) => return (false, true),
    }
    if conn.state.closing {
        // QUIT / protocol error: keep only until every parked reply has
        // settled and the farewell is flushed.
        return (
            !conn.state.out.is_empty() || !conn.state.parked.is_empty(),
            progressed,
        );
    }

    // Backpressure: a connection with a full parked queue gets no further
    // reads until the committer releases some of its batches.
    if !conn.eof && conn.state.parked.len() < PARKED_CAP {
        let mut total = 0usize;
        let read_start = m.now_us();
        loop {
            match conn.stream.read(buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.state.raw.extend_from_slice(&buf[..n]);
                    total += n;
                    if total >= READ_SWEEP_CAP {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return (false, true),
            }
        }
        if total > 0 {
            // The sockets are non-blocking, so this span is syscall time,
            // not time spent waiting for the client to type.
            m.record_stage(StageId::IoRead, m.now_us().saturating_sub(read_start));
            progressed = true;
            drain_commands(node, &mut conn.state, Some(wake_tx));
            drain_parked(node, &mut conn.state);
            if flush_out(&mut conn.stream, &mut conn.state.out, m).is_err() {
                return (false, true);
            }
        }
    }

    if conn.eof {
        // Client sent FIN: answer whatever it managed to buffer, then drop
        // once every parked reply has settled and flushed.
        if !conn.state.raw.is_empty() && !conn.state.closing {
            drain_commands(node, &mut conn.state, Some(wake_tx));
        }
        drain_parked(node, &mut conn.state);
        if flush_out(&mut conn.stream, &mut conn.state.out, m).is_err() {
            return (false, true);
        }
        return (
            !conn.state.out.is_empty() || !conn.state.parked.is_empty(),
            progressed,
        );
    }
    if conn.state.closing && conn.state.out.is_empty() && conn.state.parked.is_empty() {
        return (false, progressed);
    }
    (true, progressed)
}

/// An IO thread: owns a set of non-blocking sockets, sweeps them for
/// readiness, and parks on its intake channel when everything is idle
/// (spin briefly first so pipelined bursts stay hot). The channel also
/// delivers `IoMsg::Wake` from commit-ticket wakers, so a thread parked in
/// `recv_timeout` re-sweeps as soon as a parked batch becomes settleable
/// instead of waiting out its nap.
fn io_loop(
    node: Arc<Node>,
    rx: Receiver<IoMsg>,
    wake_tx: Sender<IoMsg>,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicI64>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut pool = BufPool::default();
    let mut idle_spins = 0u32;
    let mut accepting = true;

    let adopt = |stream: TcpStream, conns: &mut Vec<Conn>, pool: &mut BufPool| {
        if stream.set_nonblocking(true).is_ok() {
            let _ = stream.set_nodelay(true);
            node.metrics().incr(CounterId::ConnectionsAccepted);
            track_clients(&node, &live, 1);
            conns.push(Conn {
                stream,
                state: ConnState::new_pooled(pool),
                eof: false,
            });
        }
    };

    loop {
        if shutdown.load(Ordering::Acquire) {
            return; // dropping conns closes the sockets
        }
        if accepting {
            loop {
                match rx.try_recv() {
                    Ok(IoMsg::Conn(s)) => adopt(s, &mut conns, &mut pool),
                    // Wake-ups while already sweeping carry no extra info.
                    Ok(IoMsg::Wake) => {}
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        accepting = false;
                        break;
                    }
                }
            }
        }
        if !accepting && conns.is_empty() {
            return;
        }

        let mut progressed = false;
        let mut i = 0;
        while i < conns.len() {
            let (keep, p) = sweep_conn(&node, &mut conns[i], &mut buf, &wake_tx);
            progressed |= p;
            if keep {
                i += 1;
            } else {
                conns.swap_remove(i).state.recycle(&mut pool);
                track_clients(&node, &live, -1);
            }
        }

        if progressed {
            idle_spins = 0;
            continue;
        }
        idle_spins += 1;
        if idle_spins == 8 {
            // Entering idle: burst-bloated buffers on drained connections
            // get released now rather than riding out the connection.
            for c in &mut conns {
                c.state.shed_oversized(&mut pool);
            }
        }
        if idle_spins < 8 {
            // A short spin keeps pipelined bursts hot; yielding (rather
            // than busy-polling) matters on small machines where the
            // clients need this core to produce the next request.
            std::thread::yield_now();
            continue;
        }
        // Idle: park on the intake channel so a fresh connection wakes us
        // immediately; cap the nap so existing sockets get re-swept.
        let nap = if conns.is_empty() {
            Duration::from_millis(50)
        } else {
            Duration::from_millis(1)
        };
        if accepting {
            match rx.recv_timeout(nap) {
                Ok(IoMsg::Conn(s)) => {
                    adopt(s, &mut conns, &mut pool);
                    idle_spins = 0;
                }
                Ok(IoMsg::Wake) => idle_spins = 0,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => accepting = false,
            }
        } else {
            std::thread::sleep(nap);
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-per-connection baseline
// ---------------------------------------------------------------------------

/// Classic blocking loop, one thread per socket. Shares the batch parser and
/// executor with the multiplexed path, so the only variable the benchmark
/// sees is the threading model.
fn serve_blocking(
    mut stream: TcpStream,
    node: Arc<Node>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_nodelay(true)?;
    let mut conn = ConnState::new();
    let mut buf = [0u8; 16 * 1024];

    loop {
        if shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) => return Err(e),
        };
        conn.raw.extend_from_slice(&buf[..n]);
        drain_commands(&node, &mut conn, None);
        if !conn.out.is_empty() {
            // No IoRead sample here: the blocking read above waits on the
            // client, which would attribute client think time to the server.
            let m = node.metrics();
            let write_start = m.now_us();
            stream.write_all(&conn.out)?;
            m.record_stage(StageId::IoWrite, m.now_us().saturating_sub(write_start));
            conn.out.clear();
        }
        if conn.closing {
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A minimal blocking RESP client for tests and examples.
pub struct BlockingClient {
    stream: TcpStream,
    decoder: Decoder,
}

impl BlockingClient {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<BlockingClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(BlockingClient {
            stream,
            decoder: Decoder::new(),
        })
    }

    /// Sends one command and reads one reply.
    pub fn command<S: Into<Vec<u8>>>(
        &mut self,
        parts: impl IntoIterator<Item = S>,
    ) -> std::io::Result<Frame> {
        let frame = Frame::command(parts.into_iter().map(|p| p.into()));
        let mut out = BytesMut::new();
        encode(&frame, &mut out);
        self.stream.write_all(&out)?;
        self.read_reply()
    }

    /// Sends a pipeline of commands in one write and reads every reply, in
    /// order. This is the client half of Enhanced-IO batching: the server
    /// executes the whole pipeline under one engine-lock acquisition and
    /// one group-committed append.
    pub fn pipeline<C, S>(&mut self, cmds: C) -> std::io::Result<Vec<Frame>>
    where
        C: IntoIterator,
        C::Item: IntoIterator<Item = S>,
        S: Into<Vec<u8>>,
    {
        let mut out = BytesMut::new();
        let mut n = 0usize;
        for parts in cmds {
            encode(
                &Frame::command(parts.into_iter().map(|p| p.into())),
                &mut out,
            );
            n += 1;
        }
        if n == 0 {
            return Ok(Vec::new());
        }
        self.stream.write_all(&out)?;
        (0..n).map(|_| self.read_reply()).collect()
    }

    /// Reads the next reply frame.
    pub fn read_reply(&mut self) -> std::io::Result<Frame> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Ok(Some(frame)) = self.decoder.next_frame() {
                return Ok(frame);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            self.decoder.feed(&buf[..n]);
        }
    }
}

#[cfg(test)]
mod tests;
