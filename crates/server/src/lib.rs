//! # memorydb-server — a RESP TCP server over a MemoryDB node
//!
//! Exposes one [`memorydb_core::Node`] on a real TCP socket speaking RESP,
//! so any Redis client (or the bundled [`BlockingClient`]) can talk to the
//! reproduction. Wire compatibility is the point of the whole design
//! (paper §1: "remain fully compatible with Redis").
//!
//! Connection handling is thread-per-connection feeding the node's
//! single-threaded engine — the same funnel shape as MemoryDB's Enhanced-IO
//! threads multiplexing many sockets into one engine workloop, minus the
//! syscall-level batching (which the simulator models instead; the paper's
//! throughput argument about multiplexing lives there).
//!
//! Session semantics implemented here (they are connection state, not
//! engine state): `READONLY`/`READWRITE` opt-in for replica reads (§3.2 —
//! "clients must explicitly opt-in, ensuring they do not accidentally
//! consume stale data") and `QUIT`.

use bytes::{Bytes, BytesMut};
use memorydb_core::Node;
use memorydb_engine::{command_spec, Frame, SessionState};
use memorydb_resp::{encode, Decoder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running server bound to one node.
pub struct Server {
    /// The bound address (useful with port 0).
    pub local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts serving `node` on `addr` (use `127.0.0.1:0` for an ephemeral
    /// port).
    pub fn start(node: Arc<Node>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("memorydb-accept".into())
            .spawn(move || {
                while !shutdown2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let node = Arc::clone(&node);
                            let shutdown = Arc::clone(&shutdown2);
                            std::thread::spawn(move || {
                                let _ = handle_connection(stream, node, shutdown);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(Server {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// Stops accepting new connections (existing ones close on their own).
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Pulls the next command from the connection buffer: a RESP array frame,
/// or (when the first byte is not a RESP type tag) an inline command line,
/// the `PING\r\n` form redis-cli and telnet users send.
fn next_command(raw: &mut Vec<u8>) -> Result<Option<Vec<Bytes>>, String> {
    loop {
        // Skip blank separator lines between inline commands.
        while matches!(raw.first(), Some(b'\r') | Some(b'\n')) {
            raw.remove(0);
        }
        let Some(&first) = raw.first() else {
            return Ok(None);
        };
        if b"+-:$*_,#%=".contains(&first) {
            return match memorydb_resp::decode(raw) {
                Ok(Some((frame, used))) => {
                    raw.drain(..used);
                    match frame.into_command_args() {
                        Some(args) if args.is_empty() => continue,
                        Some(args) => Ok(Some(args)),
                        None => Err("expected array of bulk strings".into()),
                    }
                }
                Ok(None) => Ok(None),
                Err(e) => Err(e.to_string()),
            };
        }
        // Inline command: consume one line.
        let Some(pos) = raw.iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let line = String::from_utf8_lossy(&raw[..pos]).trim().to_string();
        raw.drain(..=pos);
        if line.is_empty() {
            continue;
        }
        return match memorydb_resp::tokenize(&line) {
            Ok(args) if args.is_empty() => continue,
            Ok(args) => Ok(Some(args)),
            Err(e) => Err(e.to_string()),
        };
    }
}

fn handle_connection(
    mut stream: TcpStream,
    node: Arc<Node>,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true)?;
    let mut raw: Vec<u8> = Vec::new();
    let mut session = SessionState::new();
    let mut readonly_mode = false;
    let mut buf = [0u8; 16 * 1024];
    let mut out = BytesMut::new();

    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        raw.extend_from_slice(&buf[..n]);
        loop {
            let args = match next_command(&mut raw) {
                Ok(Some(args)) => args,
                Ok(None) => break,
                Err(e) => {
                    out.clear();
                    encode(&Frame::error(format!("Protocol error: {e}")), &mut out);
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
            };
            let reply = dispatch(&node, &mut session, &mut readonly_mode, &args);
            match reply {
                Dispatch::Reply(frame) => {
                    out.clear();
                    encode(&frame, &mut out);
                    stream.write_all(&out)?;
                }
                Dispatch::Quit => {
                    out.clear();
                    encode(&Frame::ok(), &mut out);
                    let _ = stream.write_all(&out);
                    return Ok(());
                }
            }
        }
    }
}

enum Dispatch {
    Reply(Frame),
    Quit,
}

fn dispatch(
    node: &Node,
    session: &mut SessionState,
    readonly_mode: &mut bool,
    args: &[Bytes],
) -> Dispatch {
    let name = String::from_utf8_lossy(&args[0]).to_ascii_uppercase();
    match name.as_str() {
        "QUIT" => return Dispatch::Quit,
        // READONLY/READWRITE are connection state (paper §2.1: replica
        // reads are an explicit opt-in).
        "READONLY" => {
            *readonly_mode = true;
            return Dispatch::Reply(Frame::ok());
        }
        "READWRITE" => {
            *readonly_mode = false;
            return Dispatch::Reply(Frame::ok());
        }
        _ => {}
    }
    // Enforce the opt-in: a replica serves nothing but admin commands to
    // sessions that did not issue READONLY.
    if node.role() == memorydb_engine::exec::Role::Replica && !*readonly_mode {
        let is_admin = command_spec(&name).is_some_and(|s| s.flags.admin);
        if !is_admin {
            return Dispatch::Reply(Frame::Error(
                "MOVED 0 ? (replica requires READONLY opt-in)".into(),
            ));
        }
    }
    Dispatch::Reply(node.handle(session, args))
}

/// A minimal blocking RESP client for tests and examples.
pub struct BlockingClient {
    stream: TcpStream,
    decoder: Decoder,
}

impl BlockingClient {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<BlockingClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(BlockingClient {
            stream,
            decoder: Decoder::new(),
        })
    }

    /// Sends one command and reads one reply.
    pub fn command<S: Into<Vec<u8>>>(
        &mut self,
        parts: impl IntoIterator<Item = S>,
    ) -> std::io::Result<Frame> {
        let frame = Frame::command(parts.into_iter().map(|p| p.into()));
        let mut out = BytesMut::new();
        encode(&frame, &mut out);
        self.stream.write_all(&out)?;
        self.read_reply()
    }

    /// Reads the next reply frame.
    pub fn read_reply(&mut self) -> std::io::Result<Frame> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Ok(Some(frame)) = self.decoder.next_frame() {
                return Ok(frame);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            self.decoder.feed(&buf[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memorydb_core::{ClusterBus, NodeIdGen, Shard, ShardConfig};
    use memorydb_objectstore::ObjectStore;

    fn test_shard(replicas: usize) -> Arc<Shard> {
        Shard::bootstrap(
            0,
            ShardConfig::fast(),
            Arc::new(ObjectStore::new()),
            Arc::new(ClusterBus::new()),
            Arc::new(NodeIdGen::new()),
            vec![(0, 16383)],
            replicas,
        )
    }

    fn bulk(s: &str) -> Frame {
        Frame::Bulk(Bytes::copy_from_slice(s.as_bytes()))
    }

    #[test]
    fn end_to_end_over_tcp() {
        let shard = test_shard(0);
        let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
        let server = Server::start(primary, "127.0.0.1:0").unwrap();
        let mut client = BlockingClient::connect(server.local_addr).unwrap();
        assert_eq!(client.command(["PING"]).unwrap(), Frame::Simple("PONG".into()));
        assert_eq!(client.command(["SET", "k", "v"]).unwrap(), Frame::ok());
        assert_eq!(client.command(["GET", "k"]).unwrap(), bulk("v"));
        assert_eq!(client.command(["INCR", "n"]).unwrap(), Frame::Integer(1));
        assert_eq!(
            client.command(["LPUSH", "l", "a", "b"]).unwrap(),
            Frame::Integer(2)
        );
        assert_eq!(
            client.command(["LRANGE", "l", "0", "-1"]).unwrap(),
            Frame::Array(vec![bulk("b"), bulk("a")])
        );
    }

    #[test]
    fn pipelined_commands() {
        let shard = test_shard(0);
        let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
        let server = Server::start(primary, "127.0.0.1:0").unwrap();
        let mut client = BlockingClient::connect(server.local_addr).unwrap();
        // Write three commands before reading any reply.
        let mut out = BytesMut::new();
        for c in [["SET", "a", "1"], ["SET", "b", "2"], ["SET", "c", "3"]] {
            encode(&Frame::command(c), &mut out);
        }
        client.stream.write_all(&out).unwrap();
        for _ in 0..3 {
            assert_eq!(client.read_reply().unwrap(), Frame::ok());
        }
        assert_eq!(client.command(["DBSIZE"]).unwrap(), Frame::Integer(3));
    }

    #[test]
    fn replica_requires_readonly_opt_in() {
        let shard = test_shard(1);
        let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
        let mut session = SessionState::new();
        primary.handle(&mut session, &memorydb_engine::cmd(["SET", "k", "v"]));
        assert!(shard.wait_replicas_caught_up(Duration::from_secs(5)));
        let replica = shard.replicas().into_iter().next().unwrap();
        let server = Server::start(replica, "127.0.0.1:0").unwrap();
        let mut client = BlockingClient::connect(server.local_addr).unwrap();
        // Without the opt-in: redirected.
        match client.command(["GET", "k"]).unwrap() {
            Frame::Error(msg) => assert!(msg.starts_with("MOVED"), "{msg}"),
            other => panic!("expected MOVED, got {other:?}"),
        }
        // With READONLY: served.
        assert_eq!(client.command(["READONLY"]).unwrap(), Frame::ok());
        assert_eq!(client.command(["GET", "k"]).unwrap(), bulk("v"));
        // Writes still redirect.
        match client.command(["SET", "x", "1"]).unwrap() {
            Frame::Error(msg) => assert!(msg.starts_with("MOVED"), "{msg}"),
            other => panic!("expected MOVED, got {other:?}"),
        }
        // READWRITE turns the opt-in back off.
        assert_eq!(client.command(["READWRITE"]).unwrap(), Frame::ok());
        assert!(client.command(["GET", "k"]).unwrap().is_error());
    }

    #[test]
    fn concurrent_clients() {
        let shard = test_shard(0);
        let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
        let server = Server::start(primary, "127.0.0.1:0").unwrap();
        let addr = server.local_addr;
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(std::thread::spawn(move || {
                let mut client = BlockingClient::connect(addr).unwrap();
                for i in 0..50 {
                    let key = format!("t{t}:k{i}");
                    assert_eq!(client.command(["SET", key.as_str(), "v"]).unwrap(), Frame::ok());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut client = BlockingClient::connect(addr).unwrap();
        assert_eq!(client.command(["DBSIZE"]).unwrap(), Frame::Integer(400));
    }

    #[test]
    fn quit_closes_connection() {
        let shard = test_shard(0);
        let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
        let server = Server::start(primary, "127.0.0.1:0").unwrap();
        let mut client = BlockingClient::connect(server.local_addr).unwrap();
        assert_eq!(client.command(["QUIT"]).unwrap(), Frame::ok());
        // Subsequent use fails with EOF.
        assert!(client.command(["PING"]).is_err());
    }

    #[test]
    fn inline_commands_work() {
        let shard = test_shard(0);
        let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
        let server = Server::start(primary, "127.0.0.1:0").unwrap();
        let mut client = BlockingClient::connect(server.local_addr).unwrap();
        // Telnet-style inline commands, mixed with RESP on one connection.
        client.stream.write_all(b"PING\r\n").unwrap();
        assert_eq!(client.read_reply().unwrap(), Frame::Simple("PONG".into()));
        client
            .stream
            .write_all(b"SET greeting \"hello world\"\r\n")
            .unwrap();
        assert_eq!(client.read_reply().unwrap(), Frame::ok());
        assert_eq!(
            client.command(["GET", "greeting"]).unwrap(),
            Frame::Bulk(Bytes::from_static(b"hello world"))
        );
        // Blank lines between inline commands are ignored.
        client.stream.write_all(b"\r\n\r\nDBSIZE\r\n").unwrap();
        assert_eq!(client.read_reply().unwrap(), Frame::Integer(1));
    }

    #[test]
    fn protocol_error_reported() {
        let shard = test_shard(0);
        let primary = shard.wait_for_primary(Duration::from_secs(5)).unwrap();
        let server = Server::start(primary, "127.0.0.1:0").unwrap();
        let mut client = BlockingClient::connect(server.local_addr).unwrap();
        // Non-RESP text is now interpreted as an inline command: an unknown
        // name yields a normal command error, like Redis.
        client.stream.write_all(b"!garbage\r\n").unwrap();
        match client.read_reply().unwrap() {
            Frame::Error(msg) => assert!(msg.contains("unknown command"), "{msg}"),
            other => panic!("expected unknown-command error, got {other:?}"),
        }
        // Structurally invalid RESP is a protocol error and closes the
        // connection.
        client.stream.write_all(b"*1\r\n$abc\r\n").unwrap();
        match client.read_reply().unwrap() {
            Frame::Error(msg) => assert!(msg.contains("Protocol error"), "{msg}"),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
}
