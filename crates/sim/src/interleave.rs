//! Exhaustive interleaving explorer for small concurrency models.
//!
//! The commit pipeline's trickiest invariants — exactly-once window release
//! through the `begin_release` CAS, flush-token leadership handoff, and the
//! watermark-advance vs. ack-fence race (DESIGN.md §11/§13) — rest on
//! reasoning about a handful of instructions interleaving across two or
//! three threads. This module checks that reasoning mechanically: a model is
//! a tiny shared state plus per-thread step lists, and [`explore`] runs
//! *every* schedule, checking an invariant after each step and a final
//! predicate at each terminal state.
//!
//! Dependency-free and deterministic by construction (same policy as the
//! metrics registry): no real threads, no clocks — the "threads" are step
//! closures and the scheduler is a DFS over which thread runs next. Steps
//! are atomic units: everything inside one step happens without
//! interleaving, so model steps at the granularity of the atomic operations
//! whose orderings you want to vary.
//!
//! A step returns `false` to say it is *blocked* (a guard: mutex
//! unavailable, queue empty); the explorer discards that branch's state
//! mutation and retries the step later. A schedule where no thread can run
//! but a non-daemon thread still has steps left is reported as a deadlock.
//! Daemon threads (background committers) need not finish for a schedule to
//! terminate.

/// One step of a modelled thread: mutates the shared state and returns
/// `false` when blocked (the mutation is then discarded and retried later).
pub type Step<S> = Box<dyn Fn(&mut S) -> bool>;

/// One modelled thread: a name for traces, its step list, and whether the
/// schedule may end while it still has steps left.
pub struct ThreadSpec<S> {
    pub name: &'static str,
    pub steps: Vec<Step<S>>,
    pub daemon: bool,
}

impl<S> ThreadSpec<S> {
    /// A worker thread: every step must run before a schedule is terminal.
    pub fn worker(name: &'static str, steps: Vec<Step<S>>) -> Self {
        ThreadSpec {
            name,
            steps,
            daemon: false,
        }
    }

    /// A daemon thread: schedules may end with steps left over.
    pub fn daemon(name: &'static str, steps: Vec<Step<S>>) -> Self {
        ThreadSpec {
            name,
            steps,
            daemon: true,
        }
    }
}

/// What [`explore`] found. `failures` holds at most [`MAX_FAILURES`]
/// messages; each carries the schedule prefix that produced it.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Complete schedules reaching a terminal state.
    pub interleavings: usize,
    /// Invariant/final-check/deadlock failures (capped).
    pub failures: Vec<String>,
    /// True when exploration stopped at [`MAX_INTERLEAVINGS`] — a capped
    /// run must itself be treated as a model bug, never a silent pass.
    pub capped: bool,
}

impl Outcome {
    /// Panics with every failure if the exploration was not clean.
    pub fn assert_clean(&self) {
        assert!(
            !self.capped,
            "model too large: exploration capped at {MAX_INTERLEAVINGS} schedules"
        );
        assert!(
            self.failures.is_empty(),
            "{} schedule failure(s) over {} interleavings:\n{}",
            self.failures.len(),
            self.interleavings,
            self.failures.join("\n")
        );
    }
}

/// Exploration cap: generous for 2–3 threads with a handful of steps, small
/// enough that a runaway model fails fast instead of hanging tier-1.
pub const MAX_INTERLEAVINGS: usize = 250_000;

/// At most this many failure messages are kept (each names its schedule).
pub const MAX_FAILURES: usize = 8;

/// Runs every schedule of `threads` from `init`. `invariant` is checked
/// after each step; `final_check` at each terminal state. Both return
/// `Err(why)` to fail the schedule.
pub fn explore<S: Clone>(
    init: &S,
    threads: &[ThreadSpec<S>],
    invariant: &dyn Fn(&S) -> Result<(), String>,
    final_check: &dyn Fn(&S) -> Result<(), String>,
) -> Outcome {
    let mut out = Outcome::default();
    let pcs = vec![0usize; threads.len()];
    let mut trace: Vec<&'static str> = Vec::new();
    dfs(
        init,
        threads,
        &pcs,
        invariant,
        final_check,
        &mut trace,
        &mut out,
    );
    out
}

fn fail(out: &mut Outcome, trace: &[&'static str], why: &str) {
    if out.failures.len() < MAX_FAILURES {
        out.failures.push(format!("[{}] {why}", trace.join(" ")));
    }
}

fn dfs<S: Clone>(
    state: &S,
    threads: &[ThreadSpec<S>],
    pcs: &[usize],
    invariant: &dyn Fn(&S) -> Result<(), String>,
    final_check: &dyn Fn(&S) -> Result<(), String>,
    trace: &mut Vec<&'static str>,
    out: &mut Outcome,
) {
    if out.capped {
        return;
    }
    let mut ran_any = false;
    let mut workers_pending = false;
    for (t, spec) in threads.iter().enumerate() {
        let pc = pcs[t];
        if pc >= spec.steps.len() {
            continue;
        }
        if !spec.daemon {
            workers_pending = true;
        }
        // Run the step on a clone; a `false` return means blocked — the
        // clone (and any partial mutation) is discarded.
        let mut next = state.clone();
        if !spec.steps[pc](&mut next) {
            continue;
        }
        ran_any = true;
        trace.push(spec.name);
        match invariant(&next) {
            Ok(()) => {
                let mut next_pcs = pcs.to_vec();
                next_pcs[t] += 1;
                dfs(
                    &next,
                    threads,
                    &next_pcs,
                    invariant,
                    final_check,
                    trace,
                    out,
                );
            }
            Err(why) => fail(out, trace, &format!("invariant: {why}")),
        }
        trace.pop();
    }
    if ran_any {
        return;
    }
    if workers_pending {
        fail(out, trace, "deadlock: a worker thread can never run again");
        return;
    }
    out.interleavings += 1;
    if out.interleavings >= MAX_INTERLEAVINGS {
        out.capped = true;
    }
    if let Err(why) = final_check(state) {
        fail(out, trace, &format!("final: {why}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn step<S>(f: impl Fn(&mut S) -> bool + 'static) -> Step<S> {
        Box::new(f)
    }

    #[test]
    fn two_by_two_threads_yield_six_interleavings() {
        let threads = vec![
            ThreadSpec::worker("a", vec![step(|_: &mut u8| true), step(|_: &mut u8| true)]),
            ThreadSpec::worker("b", vec![step(|_: &mut u8| true), step(|_: &mut u8| true)]),
        ];
        let out = explore(&0u8, &threads, &|_| Ok(()), &|_| Ok(()));
        out.assert_clean();
        assert_eq!(out.interleavings, 6); // C(4,2)
    }

    #[test]
    fn blocked_step_mutations_are_discarded() {
        // The guard mutates before discovering it is blocked; the explorer
        // must throw that mutation away or the count goes wrong.
        #[derive(Clone, Default)]
        struct S {
            flag: bool,
            count: u32,
        }
        let threads = vec![
            ThreadSpec::worker(
                "setter",
                vec![step(|s: &mut S| {
                    s.flag = true;
                    true
                })],
            ),
            ThreadSpec::worker(
                "waiter",
                vec![step(|s: &mut S| {
                    s.count += 1; // speculative; must vanish when blocked
                    s.flag
                })],
            ),
        ];
        let out = explore(&S::default(), &threads, &|_| Ok(()), &|s| {
            if s.count == 1 {
                Ok(())
            } else {
                Err(format!("count = {}", s.count))
            }
        });
        out.assert_clean();
        // Only one terminal order (waiter can only run after setter) but
        // the schedule where waiter tries first still terminates.
        assert_eq!(out.interleavings, 1);
    }

    #[test]
    fn mutual_wait_is_reported_as_deadlock() {
        #[derive(Clone, Default)]
        struct S {
            a: bool,
            b: bool,
        }
        let threads = vec![
            ThreadSpec::worker(
                "a",
                vec![
                    step(|s: &mut S| s.b),
                    step(|s: &mut S| {
                        s.a = true;
                        true
                    }),
                ],
            ),
            ThreadSpec::worker(
                "b",
                vec![
                    step(|s: &mut S| s.a),
                    step(|s: &mut S| {
                        s.b = true;
                        true
                    }),
                ],
            ),
        ];
        let out = explore(&S::default(), &threads, &|_| Ok(()), &|_| Ok(()));
        assert_eq!(out.interleavings, 0);
        assert!(
            out.failures.iter().any(|f| f.contains("deadlock")),
            "{out:?}"
        );
    }

    #[test]
    fn daemon_leftover_steps_do_not_deadlock() {
        let threads = vec![
            ThreadSpec::worker("w", vec![step(|_: &mut u8| true)]),
            // Daemon blocked forever: schedules still terminate.
            ThreadSpec::daemon("d", vec![step(|_: &mut u8| false)]),
        ];
        let out = explore(&0u8, &threads, &|_| Ok(()), &|_| Ok(()));
        out.assert_clean();
        assert_eq!(out.interleavings, 1);
    }

    #[test]
    fn invariant_failures_carry_the_schedule_trace() {
        let threads = vec![ThreadSpec::worker(
            "inc",
            vec![step(|s: &mut u8| {
                *s += 1;
                true
            })],
        )];
        let out = explore(
            &0u8,
            &threads,
            &|s| {
                if *s == 0 {
                    Ok(())
                } else {
                    Err("nonzero".to_string())
                }
            },
            &|_| Ok(()),
        );
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("[inc] invariant: nonzero"));
    }

    #[test]
    fn every_reachable_outcome_is_visited() {
        // Two racers CAS-claim a flag; across all schedules each must win
        // at least once — the explorer really does permute.
        #[derive(Clone, Default)]
        struct S {
            taken: bool,
            winner: u8,
        }
        let first = Cell::new(0u32);
        let second = Cell::new(0u32);
        let threads = vec![
            ThreadSpec::worker(
                "r1",
                vec![step(|s: &mut S| {
                    if !s.taken {
                        s.taken = true;
                        s.winner = 1;
                    }
                    true
                })],
            ),
            ThreadSpec::worker(
                "r2",
                vec![step(|s: &mut S| {
                    if !s.taken {
                        s.taken = true;
                        s.winner = 2;
                    }
                    true
                })],
            ),
        ];
        let out = explore(&S::default(), &threads, &|_| Ok(()), &|s| {
            match s.winner {
                1 => first.set(first.get() + 1),
                2 => second.set(second.get() + 1),
                _ => return Err("no winner".to_string()),
            }
            Ok(())
        });
        out.assert_clean();
        assert_eq!(out.interleavings, 2);
        assert!(first.get() > 0 && second.get() > 0);
    }
}
