//! Instance catalogue and the calibrated cost model.
//!
//! All constants are stated here once, with provenance, and consumed by the
//! DES. Two kinds of constants exist:
//!
//! * **Paper-stated** — taken directly from the MemoryDB paper (fork cost,
//!   swap threshold, txlog bandwidth, workload shapes).
//! * **Calibrated** — chosen so the simulated *ceilings* land where the
//!   paper's figures put them; the point of the reproduction is the shape
//!   (who wins, where curves flatten, where crossovers sit), not absolute
//!   microseconds.

use std::time::Duration;

/// The Graviton3 instance types the paper evaluates (§6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceType {
    /// r7g.large — 2 vCPU, 16 GiB.
    Large,
    /// r7g.xlarge — 4 vCPU, 32 GiB.
    XLarge,
    /// r7g.2xlarge — 8 vCPU, 64 GiB.
    X2Large,
    /// r7g.4xlarge — 16 vCPU, 128 GiB.
    X4Large,
    /// r7g.8xlarge — 32 vCPU, 256 GiB.
    X8Large,
    /// r7g.12xlarge — 48 vCPU, 384 GiB.
    X12Large,
    /// r7g.16xlarge — 64 vCPU, 512 GiB.
    X16Large,
}

impl InstanceType {
    /// All types, smallest first (the Figure 4 x-axis).
    pub fn all() -> [InstanceType; 7] {
        use InstanceType::*;
        [Large, XLarge, X2Large, X4Large, X8Large, X12Large, X16Large]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            InstanceType::Large => "r7g.large",
            InstanceType::XLarge => "r7g.xlarge",
            InstanceType::X2Large => "r7g.2xlarge",
            InstanceType::X4Large => "r7g.4xlarge",
            InstanceType::X8Large => "r7g.8xlarge",
            InstanceType::X12Large => "r7g.12xlarge",
            InstanceType::X16Large => "r7g.16xlarge",
        }
    }

    /// vCPU count (public AWS specs).
    pub fn vcpus(&self) -> usize {
        match self {
            InstanceType::Large => 2,
            InstanceType::XLarge => 4,
            InstanceType::X2Large => 8,
            InstanceType::X4Large => 16,
            InstanceType::X8Large => 32,
            InstanceType::X12Large => 48,
            InstanceType::X16Large => 64,
        }
    }

    /// DRAM in GiB (public AWS specs).
    pub fn dram_gib(&self) -> usize {
        self.vcpus() * 8
    }

    /// IO threads the engine runs on this size (both systems are configured
    /// with the same count, §6.1.1). Calibrated: 1 thread until 2xlarge,
    /// then grows with cores, capped at 8.
    pub fn io_threads(&self) -> usize {
        match self {
            InstanceType::Large | InstanceType::XLarge => 1,
            InstanceType::X2Large => 4,
            InstanceType::X4Large => 6,
            InstanceType::X8Large | InstanceType::X12Large => 7,
            InstanceType::X16Large => 8,
        }
    }

    /// Fraction of full single-core speed the engine thread effectively
    /// gets (small instances share cores between the engine, IO threads,
    /// kernel and networking). Calibrated so the sub-2xlarge read ceilings
    /// land at/below the paper's ~200 K op/s.
    pub fn engine_speed_factor(&self) -> f64 {
        match self {
            InstanceType::Large => 0.55,
            InstanceType::XLarge => 0.75,
            _ => 1.0,
        }
    }
}

/// Which serving stack is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// OSS Redis 7.0.7 with threaded IO, no durability in the write path.
    Redis,
    /// MemoryDB: Enhanced-IO multiplexing + synchronous multi-AZ commit of
    /// every write.
    MemoryDb,
}

/// Per-request cost constants consumed by the DES.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Engine-thread CPU per GET, seconds.
    pub engine_read_s: f64,
    /// Engine-thread CPU per SET, seconds.
    pub engine_write_s: f64,
    /// IO-thread CPU per request (socket read+parse+write), seconds.
    pub io_request_s: f64,
    /// One-way client↔server network latency, seconds (same-AZ placement,
    /// §6.1.1).
    pub net_one_way_s: f64,
    /// Multi-AZ transaction-log commit latency: base, seconds.
    pub commit_base_s: f64,
    /// Commit latency jitter (uniform 0..jitter), seconds.
    pub commit_jitter_s: f64,
    /// Probability a commit is a straggler (slow quorum member, GC pause,
    /// TCP retransmit) — the source of the Figure 5b p99 ≈ 6 ms tail.
    pub commit_tail_prob: f64,
    /// Multiplier applied to a straggler commit's latency.
    pub commit_tail_mult: f64,
    /// Transaction-log bandwidth cap, bytes/sec (paper §6.1.2.1: a single
    /// shard sustains up to ~100 MB/s of writes).
    pub log_bandwidth_bps: f64,
    /// Per-record log overhead in bytes (framing + effect encoding).
    pub log_record_overhead_b: f64,
}

impl CostModel {
    /// The calibrated model for a system on an instance type.
    ///
    /// Calibration targets (paper Figure 4, r7g.2xlarge and up):
    /// * Redis read ceiling ≈ 330 K op/s → engine read cost 3.0 µs
    ///   (single-threaded engine incl. per-connection event-loop work).
    /// * MemoryDB read ceiling ≈ 500 K op/s → engine read cost 2.0 µs
    ///   (Enhanced-IO multiplexing batches many connections into one,
    ///   trimming per-op connection handling, §6.1.2.1).
    /// * Redis write ceiling ≈ 300 K op/s → 3.3 µs.
    /// * MemoryDB write ceiling ≈ 185 K op/s → 5.4 µs (effect
    ///   serialization, conditional-append bookkeeping and the tracker all
    ///   run on the workloop).
    /// * Write latency: p50 ≈ 3 ms on MemoryDB (Figure 5b) → commit base
    ///   2.4 ms + up to 1.2 ms jitter (two inter-AZ hops + storage fsync).
    pub fn for_system(kind: SystemKind, instance: InstanceType) -> CostModel {
        let f = instance.engine_speed_factor();
        match kind {
            SystemKind::Redis => CostModel {
                engine_read_s: 3.0e-6 / f,
                engine_write_s: 3.3e-6 / f,
                io_request_s: 5.0e-6,
                net_one_way_s: 50e-6,
                commit_base_s: 0.0,
                commit_jitter_s: 0.0,
                commit_tail_prob: 0.0,
                commit_tail_mult: 1.0,
                log_bandwidth_bps: f64::INFINITY,
                log_record_overhead_b: 0.0,
            },
            SystemKind::MemoryDb => CostModel {
                engine_read_s: 2.0e-6 / f,
                engine_write_s: 5.4e-6 / f,
                io_request_s: 5.0e-6,
                net_one_way_s: 50e-6,
                commit_base_s: 2.4e-3,
                commit_jitter_s: 1.2e-3,
                commit_tail_prob: 0.015,
                commit_tail_mult: 2.0,
                log_bandwidth_bps: 100e6,
                log_record_overhead_b: 64.0,
            },
        }
    }

    /// Commit latency as a Duration range (diagnostics).
    pub fn commit_range(&self) -> (Duration, Duration) {
        (
            Duration::from_secs_f64(self.commit_base_s),
            Duration::from_secs_f64(self.commit_base_s + self.commit_jitter_s),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_monotone() {
        let all = InstanceType::all();
        for w in all.windows(2) {
            assert!(w[0].vcpus() < w[1].vcpus());
            assert!(w[0].io_threads() <= w[1].io_threads());
            assert!(w[0].engine_speed_factor() <= w[1].engine_speed_factor());
        }
        assert_eq!(InstanceType::X16Large.vcpus(), 64);
        assert_eq!(InstanceType::X16Large.dram_gib(), 512);
    }

    #[test]
    fn analytic_ceilings_match_calibration_targets() {
        // Engine-bound ceilings on a big instance: 1/cost.
        let redis = CostModel::for_system(SystemKind::Redis, InstanceType::X16Large);
        let memdb = CostModel::for_system(SystemKind::MemoryDb, InstanceType::X16Large);
        let redis_read_cap = 1.0 / redis.engine_read_s;
        let memdb_read_cap = 1.0 / memdb.engine_read_s;
        let redis_write_cap = 1.0 / redis.engine_write_s;
        let memdb_write_cap = 1.0 / memdb.engine_write_s;
        assert!((redis_read_cap - 333e3).abs() < 10e3);
        assert!((memdb_read_cap - 500e3).abs() < 10e3);
        assert!((redis_write_cap - 303e3).abs() < 10e3);
        assert!((memdb_write_cap - 185e3).abs() < 10e3);
    }

    #[test]
    fn memdb_write_latency_is_single_digit_ms() {
        let memdb = CostModel::for_system(SystemKind::MemoryDb, InstanceType::X16Large);
        let (lo, hi) = memdb.commit_range();
        assert!(lo >= Duration::from_millis(2));
        assert!(hi <= Duration::from_millis(4));
        // Redis has no commit in the write path.
        let redis = CostModel::for_system(SystemKind::Redis, InstanceType::X16Large);
        assert_eq!(redis.commit_base_s, 0.0);
    }
}
