//! Latency histograms and throughput accounting.

/// A log-bucketed latency histogram (HdrHistogram-lite): ~2% relative
/// resolution from 1 µs to ~70 s, constant memory.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket `i` covers `[GROWTH^i, GROWTH^(i+1))` microseconds.
    buckets: Vec<u64>,
    count: u64,
    max_us: u64,
    min_us: u64,
    sum_us: u64,
}

const GROWTH: f64 = 1.02;
const NUM_BUCKETS: usize = 900; // 1.02^900 ≈ 5.4e7 µs ≈ 54 s

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            max_us: 0,
            min_us: u64::MAX,
            sum_us: 0,
        }
    }

    fn bucket_index(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        let idx = (us as f64).ln() / GROWTH.ln();
        (idx as usize).min(NUM_BUCKETS - 1)
    }

    /// Records one latency sample in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.max_us = self.max_us.max(us);
        self.min_us = self.min_us.min(us);
        self.sum_us += us;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// The exact maximum (p100) in microseconds.
    pub fn max_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_us
        }
    }

    /// Quantile (0.0..=1.0) in microseconds, to bucket resolution.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = GROWTH.powi(i as i32 + 1);
                return (upper as u64).min(self.max_us).max(self.min_us);
            }
        }
        self.max_us
    }

    /// p50 in milliseconds.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_us(0.50) as f64 / 1000.0
    }

    /// p99 in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.quantile_us(0.99) as f64 / 1000.0
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.max_us(), 0);
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile_us(0.5);
        assert!((4800..=5400).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_us(0.99);
        assert!((9500..=10_300).contains(&p99), "p99 {p99}");
        assert_eq!(h.max_us(), 10_000);
        assert!((h.mean_us() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = Histogram::new();
        h.record_us(1500);
        assert_eq!(h.quantile_us(0.5), 1500);
        assert_eq!(h.quantile_us(0.99), 1500);
        assert_eq!(h.max_us(), 1500);
    }

    #[test]
    fn resolution_within_two_percent() {
        let mut h = Histogram::new();
        h.record_us(100_000);
        let q = h.quantile_us(0.5) as f64;
        assert!((q - 100_000.0).abs() / 100_000.0 < 0.03);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_us(100);
        b.record_us(10_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_us(), 10_000);
        assert!(a.quantile_us(0.25) <= 110);
    }

    #[test]
    fn giant_sample_clamps_to_last_bucket() {
        let mut h = Histogram::new();
        h.record_us(u64::MAX / 2);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_us(), u64::MAX / 2);
    }
}
