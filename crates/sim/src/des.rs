//! The discrete-event queueing simulator of the serving path.
//!
//! One simulated node processes requests through two stations — the IO
//! thread pool and the single engine thread — with write durability modeled
//! as a commit delay plus a shared log-bandwidth token line. Clients are
//! either closed-loop (each connection has one outstanding request, like
//! `redis-benchmark` without pipelining, §6.1.1) or open-loop Poisson (the
//! offered-load sweeps of Figure 5).

use crate::instance::{CostModel, InstanceType, SystemKind};
use crate::metrics::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// How load is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// `clients` connections, each back-to-back blocking requests.
    ClosedLoop,
    /// Poisson arrivals at this many requests/second.
    OpenLoop(f64),
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// Which stack.
    pub system: SystemKind,
    /// Which instance size.
    pub instance: InstanceType,
    /// Connection count (closed-loop) / concurrency bound (open-loop cap).
    pub clients: usize,
    /// Load generation mode.
    pub mode: LoadMode,
    /// Fraction of GETs (1.0 = read only, 0.0 = write only, 0.8 = the
    /// paper's mixed workload).
    pub read_fraction: f64,
    /// Value payload size in bytes (paper: 100 B for §6.1, 500 B for §6.2).
    pub value_bytes: usize,
    /// Virtual seconds to simulate.
    pub duration_s: f64,
    /// Virtual seconds to discard as warm-up.
    pub warmup_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SimParams {
    /// The paper's §6.1.1 benchmark setup on a given system/instance:
    /// 10 load generators × 100 connections, 100-byte values.
    pub fn paper_setup(
        system: SystemKind,
        instance: InstanceType,
        read_fraction: f64,
    ) -> SimParams {
        SimParams {
            system,
            instance,
            clients: 1000,
            mode: LoadMode::ClosedLoop,
            read_fraction,
            value_bytes: 100,
            duration_s: 2.0,
            warmup_s: 0.5,
            seed: 42,
        }
    }
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completed requests/second in the measurement window.
    pub throughput: f64,
    /// Latency over all requests.
    pub all: Histogram,
    /// Latency of reads only.
    pub reads: Histogram,
    /// Latency of writes only.
    pub writes: Histogram,
}

const NS: f64 = 1e9;

#[derive(Debug, Clone, Copy)]
struct Job {
    start_ns: u64,
    is_write: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Request reaches the server NIC → IO queue.
    ArriveServer(u32),
    /// IO stage finished → engine queue.
    IoDone(u32),
    /// Engine stage finished → commit (writes) or response.
    EngineDone(u32),
    /// Durable commit acknowledged → response.
    CommitDone(u32),
    /// Response reaches the client.
    Response(u32),
    /// Open-loop: next Poisson arrival.
    NextArrival,
}

struct Station {
    capacity: usize,
    busy: usize,
    queue: VecDeque<u32>,
}

impl Station {
    fn new(capacity: usize) -> Station {
        Station {
            capacity,
            busy: 0,
            queue: VecDeque::new(),
        }
    }
}

/// Runs one simulation.
pub fn run_sim(params: SimParams) -> SimResult {
    let cost = CostModel::for_system(params.system, params.instance);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let push = |heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, seq: &mut u64, t: u64, ev: Ev| {
        *seq += 1;
        heap.push(Reverse((t, *seq, ev)));
    };

    let mut jobs: Vec<Job> = Vec::new();
    let mut io = Station::new(params.instance.io_threads());
    let mut engine = Station::new(1);
    // The shared log line: serialization of records onto the 100 MB/s pipe.
    let mut log_free_ns: u64 = 0;
    let record_bytes = params.value_bytes as f64 + cost.log_record_overhead_b;

    let duration_ns = (params.duration_s * NS) as u64;
    let warmup_ns = (params.warmup_s * NS) as u64;
    let net_ns = (cost.net_one_way_s * NS) as u64;

    let mut all = Histogram::new();
    let mut reads = Histogram::new();
    let mut writes = Histogram::new();
    let mut completed_after_warmup: u64 = 0;

    let new_job = |jobs: &mut Vec<Job>, rng: &mut StdRng, now: u64| -> u32 {
        let is_write = !rng.gen_bool(params.read_fraction);
        jobs.push(Job {
            start_ns: now,
            is_write,
        });
        (jobs.len() - 1) as u32
    };

    // Seed initial load.
    match params.mode {
        LoadMode::ClosedLoop => {
            for _ in 0..params.clients {
                let id = new_job(&mut jobs, &mut rng, 0);
                push(&mut heap, &mut seq, net_ns, Ev::ArriveServer(id));
            }
        }
        LoadMode::OpenLoop(_) => {
            push(&mut heap, &mut seq, 0, Ev::NextArrival);
        }
    }

    while let Some(Reverse((now, _, ev))) = heap.pop() {
        if now > duration_ns {
            break;
        }
        match ev {
            Ev::NextArrival => {
                let LoadMode::OpenLoop(rate) = params.mode else {
                    unreachable!("NextArrival only fires in open-loop mode")
                };
                let id = new_job(&mut jobs, &mut rng, now);
                push(&mut heap, &mut seq, now + net_ns, Ev::ArriveServer(id));
                // Exponential inter-arrival.
                let gap_s = -rng.gen::<f64>().max(1e-12).ln() / rate;
                push(
                    &mut heap,
                    &mut seq,
                    now + (gap_s * NS) as u64,
                    Ev::NextArrival,
                );
            }
            Ev::ArriveServer(id) => {
                if io.busy < io.capacity {
                    io.busy += 1;
                    let svc = (cost.io_request_s * NS) as u64;
                    push(&mut heap, &mut seq, now + svc, Ev::IoDone(id));
                } else {
                    io.queue.push_back(id);
                }
            }
            Ev::IoDone(id) => {
                // Free the IO thread and pull the next waiter.
                io.busy -= 1;
                if let Some(next) = io.queue.pop_front() {
                    io.busy += 1;
                    let svc = (cost.io_request_s * NS) as u64;
                    push(&mut heap, &mut seq, now + svc, Ev::IoDone(next));
                }
                if engine.busy < engine.capacity {
                    engine.busy += 1;
                    let svc = engine_service_ns(&jobs[id as usize], &cost);
                    push(&mut heap, &mut seq, now + svc, Ev::EngineDone(id));
                } else {
                    engine.queue.push_back(id);
                }
            }
            Ev::EngineDone(id) => {
                engine.busy -= 1;
                if let Some(next) = engine.queue.pop_front() {
                    engine.busy += 1;
                    let svc = engine_service_ns(&jobs[next as usize], &cost);
                    push(&mut heap, &mut seq, now + svc, Ev::EngineDone(next));
                }
                let job = jobs[id as usize];
                if job.is_write && cost.commit_base_s > 0.0 {
                    // Serialize onto the log line (bandwidth cap), then wait
                    // out the multi-AZ quorum latency.
                    let ser_ns = (record_bytes / cost.log_bandwidth_bps * NS) as u64;
                    log_free_ns = log_free_ns.max(now) + ser_ns;
                    let mut commit_lat =
                        cost.commit_base_s + rng.gen::<f64>() * cost.commit_jitter_s;
                    if cost.commit_tail_prob > 0.0 && rng.gen::<f64>() < cost.commit_tail_prob {
                        commit_lat *= cost.commit_tail_mult;
                    }
                    let done = log_free_ns + (commit_lat * NS) as u64;
                    push(&mut heap, &mut seq, done, Ev::CommitDone(id));
                } else {
                    push(&mut heap, &mut seq, now + net_ns, Ev::Response(id));
                }
            }
            Ev::CommitDone(id) => {
                push(&mut heap, &mut seq, now + net_ns, Ev::Response(id));
            }
            Ev::Response(id) => {
                let job = jobs[id as usize];
                if now >= warmup_ns {
                    let lat_us = (now - job.start_ns) / 1_000;
                    all.record_us(lat_us);
                    if job.is_write {
                        writes.record_us(lat_us);
                    } else {
                        reads.record_us(lat_us);
                    }
                    completed_after_warmup += 1;
                }
                if params.mode == LoadMode::ClosedLoop {
                    // The connection immediately issues its next request.
                    let id = new_job(&mut jobs, &mut rng, now);
                    push(&mut heap, &mut seq, now + net_ns, Ev::ArriveServer(id));
                }
            }
        }
    }

    let window_s = (params.duration_s - params.warmup_s).max(1e-9);
    SimResult {
        throughput: completed_after_warmup as f64 / window_s,
        all,
        reads,
        writes,
    }
}

fn engine_service_ns(job: &Job, cost: &CostModel) -> u64 {
    let s = if job.is_write {
        cost.engine_write_s
    } else {
        cost.engine_read_s
    };
    (s * NS) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(system: SystemKind, instance: InstanceType, read_fraction: f64) -> SimResult {
        run_sim(SimParams {
            duration_s: 0.6,
            warmup_s: 0.2,
            ..SimParams::paper_setup(system, instance, read_fraction)
        })
    }

    #[test]
    fn read_ceilings_match_figure_4a() {
        // 16xlarge: MemoryDB ~500K vs Redis ~330K.
        let redis = quick(SystemKind::Redis, InstanceType::X16Large, 1.0);
        let memdb = quick(SystemKind::MemoryDb, InstanceType::X16Large, 1.0);
        assert!(
            (300e3..360e3).contains(&redis.throughput),
            "redis read {}",
            redis.throughput
        );
        assert!(
            (450e3..550e3).contains(&memdb.throughput),
            "memdb read {}",
            memdb.throughput
        );
        // Small instances: comparable, ≤ ~200K (Figure 4a's left side).
        let redis_s = quick(SystemKind::Redis, InstanceType::Large, 1.0);
        let memdb_s = quick(SystemKind::MemoryDb, InstanceType::Large, 1.0);
        assert!(redis_s.throughput < 220e3, "{}", redis_s.throughput);
        assert!(memdb_s.throughput < 220e3, "{}", memdb_s.throughput);
        let ratio = memdb_s.throughput / redis_s.throughput;
        assert!(
            (0.7..1.45).contains(&ratio),
            "should be comparable: {ratio}"
        );
    }

    #[test]
    fn write_ceilings_match_figure_4b() {
        // Redis outperforms MemoryDB on write-only everywhere; 16xlarge
        // lands near 300K vs 185K.
        let redis = quick(SystemKind::Redis, InstanceType::X16Large, 0.0);
        let memdb = quick(SystemKind::MemoryDb, InstanceType::X16Large, 0.0);
        assert!(
            (270e3..330e3).contains(&redis.throughput),
            "redis write {}",
            redis.throughput
        );
        assert!(
            (160e3..205e3).contains(&memdb.throughput),
            "memdb write {}",
            memdb.throughput
        );
        assert!(redis.throughput > memdb.throughput);
    }

    #[test]
    fn latency_profile_matches_figure_5() {
        // At moderate offered load on 16xlarge:
        // read: both sub-ms p50; write: Redis sub-ms p50, MemoryDB ~3ms p50.
        let read_load = |system| {
            run_sim(SimParams {
                mode: LoadMode::OpenLoop(100e3),
                duration_s: 0.6,
                warmup_s: 0.2,
                ..SimParams::paper_setup(system, InstanceType::X16Large, 1.0)
            })
        };
        let r = read_load(SystemKind::Redis);
        let m = read_load(SystemKind::MemoryDb);
        assert!(r.all.p50_ms() < 1.0, "redis read p50 {}", r.all.p50_ms());
        assert!(m.all.p50_ms() < 1.0, "memdb read p50 {}", m.all.p50_ms());

        let write_load = |system| {
            run_sim(SimParams {
                mode: LoadMode::OpenLoop(50e3),
                duration_s: 0.6,
                warmup_s: 0.2,
                ..SimParams::paper_setup(system, InstanceType::X16Large, 0.0)
            })
        };
        let rw = write_load(SystemKind::Redis);
        let mw = write_load(SystemKind::MemoryDb);
        assert!(rw.all.p50_ms() < 1.0, "redis write p50 {}", rw.all.p50_ms());
        assert!(
            (2.0..4.5).contains(&mw.all.p50_ms()),
            "memdb write p50 {}",
            mw.all.p50_ms()
        );
        assert!(
            mw.all.p99_ms() < 8.0,
            "memdb write p99 stays single-digit ms: {}",
            mw.all.p99_ms()
        );
    }

    #[test]
    fn mixed_workload_tail_dominated_by_writes() {
        // 80/20 mix: MemoryDB p50 sub-ms (reads dominate), p99 in the
        // write-latency regime (Figure 5c).
        let m = run_sim(SimParams {
            mode: LoadMode::OpenLoop(100e3),
            duration_s: 0.6,
            warmup_s: 0.2,
            ..SimParams::paper_setup(SystemKind::MemoryDb, InstanceType::X16Large, 0.8)
        });
        assert!(m.all.p50_ms() < 1.0, "mixed p50 {}", m.all.p50_ms());
        assert!(
            (2.0..6.5).contains(&m.all.p99_ms()),
            "mixed p99 {}",
            m.all.p99_ms()
        );
        // Reads and writes have distinct profiles.
        assert!(m.reads.p50_ms() < 1.0);
        assert!(m.writes.p50_ms() >= 2.0);
    }

    #[test]
    fn open_loop_achieves_offered_rate_below_saturation() {
        let m = run_sim(SimParams {
            mode: LoadMode::OpenLoop(50e3),
            duration_s: 0.6,
            warmup_s: 0.2,
            ..SimParams::paper_setup(SystemKind::Redis, InstanceType::X16Large, 1.0)
        });
        assert!(
            (45e3..55e3).contains(&m.throughput),
            "achieved {}",
            m.throughput
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let p = SimParams {
            duration_s: 0.3,
            warmup_s: 0.1,
            ..SimParams::paper_setup(SystemKind::MemoryDb, InstanceType::X4Large, 0.5)
        };
        let a = run_sim(p);
        let b = run_sim(p);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.all.quantile_us(0.99), b.all.quantile_us(0.99));
    }

    #[test]
    fn throughput_monotone_in_instance_size() {
        let mut last = 0.0;
        for inst in [
            InstanceType::Large,
            InstanceType::XLarge,
            InstanceType::X2Large,
        ] {
            let r = quick(SystemKind::Redis, inst, 1.0);
            assert!(
                r.throughput >= last * 0.98,
                "{}: {} < {}",
                inst.name(),
                r.throughput,
                last
            );
            last = r.throughput;
        }
    }
}
