//! Deterministic chaos harness for failover & crash-recovery.
//!
//! Runs a full shard (primary + replicas sharing one LogService and object
//! store) under scripted or seeded-random fault schedules while concurrent
//! client workers record invocation/response histories, then feeds every
//! history through the linearizability checker and asserts the four
//! protocol invariants:
//!
//! 1. **Fencing / lease singularity** — at most one node is an active
//!    primary at a time, and leadership epochs claimed in the log are
//!    strictly increasing (no epoch is ever claimed twice).
//! 2. **No acknowledged write lost** — every uniquely-keyed write that was
//!    acknowledged is present, with its exact value, in the final state of
//!    the shard *and* in a cold restore from snapshot + log.
//! 3. **Convergence** — any two nodes (and a fresh restore) at the same
//!    applied position report the same running checksum.
//! 4. **Restorability** — restores complete (or fail cleanly) even when
//!    racing snapshot+trim cycles; a trim never strands a restore below
//!    `first_available()`, and a deliberately broken incremental snapshot
//!    chain must make restores fall back to the newest full snapshot
//!    rather than fail or load a partial image.
//!
//! **Determinism model.** The *plan* — every worker's operation stream and
//! the fault script with its trigger points — is a pure function of
//! `(schedule, seed)`; see [`ChaosPlan::generate`] and the unit test
//! pinning it. Execution then runs on real threads, so interleavings vary
//! run to run — that variation is the point: correctness is judged by the
//! checker and the invariants, which must hold under *every* interleaving
//! the same plan can produce.

use memorydb_consistency::checker::{check, CheckOutcome};
use memorydb_consistency::history::HistoryRecorder;
use memorydb_consistency::model::{KvInput, KvModel, KvOutput};
use memorydb_core::bus::ClusterBus;
use memorydb_core::config::ShardConfig;
use memorydb_core::manifest::{self, SnapshotCandidate, SnapshotManifest};
use memorydb_core::offbox::OffboxSnapshotter;
use memorydb_core::record::Record;
use memorydb_core::restore::{restore_replica, ReplayTarget};
use memorydb_core::shard::{NodeIdGen, Shard};
use memorydb_engine::{cmd, EngineVersion, Frame, SessionState};
use memorydb_metrics::CounterId;
use memorydb_objectstore::ObjectStore;
use memorydb_txlog::{EntryId, ReadError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which fault script to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// One AZ lost mid-run, then a short full-quorum outage, then healed.
    AzOutage,
    /// The primary is partitioned from the log: its lease expires while a
    /// replica campaigns against it.
    PrimaryPartition,
    /// Snapshot, then crash the primary; a cold node restores from the
    /// latest snapshot and rejoins.
    PrimaryCrashRestore,
    /// Off-box snapshot + trim cycles racing a slow replica restore; the
    /// later cycles build an incremental manifest chain which is then
    /// deliberately broken, so restores (one immediate, one from a cold
    /// node added afterwards) must fall back to the newest full snapshot
    /// and replay the untrimmed suffix.
    SnapshotTrimRace,
    /// The primary voluntarily releases leadership under load, twice.
    VoluntaryHandover,
    /// The log's committer is frozen mid-run while writes keep arriving:
    /// the node's commit pipeline stages and parks batches that can never
    /// become durable, the lease fails to renew, and the primary must
    /// demote — every parked reply must drain as an error (nothing hangs)
    /// and no acknowledged write may be lost.
    CommitterStall,
    /// Demotion with a full quorum pipeline in flight: the watermark is
    /// frozen so the appender streams batches up to `quorum_pipeline_depth`
    /// without a single ack landing, then the primary is partitioned. The
    /// fenced primary holds pipelined batches whose acks arrive only after
    /// it lost its lease — the watermark-advance fence must refuse to
    /// confirm them (no commit from a fenced primary), yet nothing it DID
    /// acknowledge may be lost by the successor.
    PipelinedDemote,
    /// A seeded-random mix drawn from all of the above faults.
    SeededRandom,
}

impl ScheduleKind {
    /// Every schedule, in the order the sweep runs them.
    pub const ALL: [ScheduleKind; 8] = [
        ScheduleKind::AzOutage,
        ScheduleKind::PrimaryPartition,
        ScheduleKind::PrimaryCrashRestore,
        ScheduleKind::SnapshotTrimRace,
        ScheduleKind::VoluntaryHandover,
        ScheduleKind::CommitterStall,
        ScheduleKind::PipelinedDemote,
        ScheduleKind::SeededRandom,
    ];

    fn tag(self) -> u64 {
        match self {
            ScheduleKind::AzOutage => 1,
            ScheduleKind::PrimaryPartition => 2,
            ScheduleKind::PrimaryCrashRestore => 3,
            ScheduleKind::SnapshotTrimRace => 4,
            ScheduleKind::VoluntaryHandover => 5,
            ScheduleKind::SeededRandom => 6,
            ScheduleKind::CommitterStall => 7,
            ScheduleKind::PipelinedDemote => 8,
        }
    }
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ScheduleKind::AzOutage => "az-outage",
            ScheduleKind::PrimaryPartition => "primary-partition",
            ScheduleKind::PrimaryCrashRestore => "primary-crash-restore",
            ScheduleKind::SnapshotTrimRace => "snapshot-trim-race",
            ScheduleKind::VoluntaryHandover => "voluntary-handover",
            ScheduleKind::CommitterStall => "committer-stall",
            ScheduleKind::PipelinedDemote => "pipelined-demote",
            ScheduleKind::SeededRandom => "seeded-random",
        };
        f.write_str(s)
    }
}

/// One chaos run's parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fault script.
    pub schedule: ScheduleKind,
    /// Seed for the plan (op streams + fault trigger points).
    pub seed: u64,
    /// Concurrent client workers.
    pub workers: usize,
    /// Operations each worker attempts.
    pub ops_per_worker: usize,
    /// Replicas next to the initial primary.
    pub replicas: usize,
    /// Sleep between a worker's ops. Healthy in-memory ops finish in
    /// microseconds — unpaced, the whole stream completes before a lease
    /// can even expire, and every fault degenerates to a no-op fired into
    /// an idle shard. Pacing keeps live traffic overlapping the faults.
    pub op_pacing: Duration,
}

impl ChaosConfig {
    /// Standard-size run.
    pub fn new(schedule: ScheduleKind, seed: u64) -> ChaosConfig {
        ChaosConfig {
            schedule,
            seed,
            workers: 4,
            ops_per_worker: 120,
            replicas: 2,
            op_pacing: Duration::from_millis(12),
        }
    }

    /// Small run for CI smoke tests.
    pub fn smoke(schedule: ScheduleKind, seed: u64) -> ChaosConfig {
        ChaosConfig {
            ops_per_worker: 50,
            workers: 3,
            op_pacing: Duration::from_millis(20),
            ..ChaosConfig::new(schedule, seed)
        }
    }
}

/// One planned client operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedOp {
    /// `SET key value` on a shared key (value unique per worker+index).
    Set(String, String),
    /// `GET key` on a shared key.
    Get(String),
    /// `DEL key` on a shared key.
    Del(String),
    /// `INCR` on a shared counter key.
    Incr(String),
    /// `APPEND key suffix`.
    Append(String, String),
    /// `SET` on a key owned by exactly one (worker, index) — acked ones go
    /// into the lost-write ledger (invariant 2).
    UniqueSet(String, String),
}

/// A fault action the director can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Take one AZ down / up.
    AzDown(usize),
    AzUp(usize),
    /// Partition the current primary's txlog client.
    PartitionPrimary,
    /// Heal all client partitions.
    HealPartitions,
    /// Hard-crash the current primary.
    CrashPrimary,
    /// Off-box snapshot + trim the covered prefix.
    SnapshotTrim,
    /// Ask the current primary to release leadership voluntarily.
    ReleaseLeadership,
    /// Stop / resume the log's commit pipeline (LogService crash/restart).
    SuspendCommits,
    ResumeCommits,
    /// Start a fresh node that cold-restores from snapshot + log. The
    /// `u64` is a read delay in ms applied to its txlog client, to widen
    /// the restore window that `SnapshotTrim` then races.
    AddSlowNode(u64),
    /// Corrupt a link in the newest incremental snapshot chain (the head
    /// delta's base manifest, or a head chunk when the base is already the
    /// full). Restores must detect the broken chain during metadata
    /// verification and fall back to an older candidate — ultimately the
    /// newest full snapshot, whose log suffix a trim never removes.
    BreakChain,
}

/// A fault with its trigger: fired when the global completed-op counter
/// reaches `at_op` (or after a bounded wait, if progress stalls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultStep {
    /// Global op-count trigger.
    pub at_op: usize,
    /// What to do.
    pub action: FaultAction,
}

/// The full deterministic plan: everything the run does except thread
/// interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Per-worker operation streams.
    pub ops: Vec<Vec<PlannedOp>>,
    /// The fault script, ordered by trigger point.
    pub faults: Vec<FaultStep>,
}

const SHARED_KEYS: usize = 6;
const COUNTER_KEYS: usize = 2;

impl ChaosPlan {
    /// Generates the plan for a config — a pure function of
    /// `(schedule, seed, workers, ops_per_worker)`.
    pub fn generate(cfg: &ChaosConfig) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(
            cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ cfg.schedule.tag(),
        );
        let mut ops = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let mut stream = Vec::with_capacity(cfg.ops_per_worker);
            for i in 0..cfg.ops_per_worker {
                let key = format!("sk{}", rng.gen_range(0..SHARED_KEYS));
                let roll = rng.gen_range(0u32..100);
                let op = if roll < 35 {
                    PlannedOp::Set(key, format!("w{w}i{i}"))
                } else if roll < 60 {
                    PlannedOp::Get(key)
                } else if roll < 70 {
                    PlannedOp::Incr(format!("ctr{}", rng.gen_range(0..COUNTER_KEYS)))
                } else if roll < 80 {
                    PlannedOp::Append(key, format!("+{w}.{i}"))
                } else if roll < 87 {
                    PlannedOp::Del(key)
                } else {
                    PlannedOp::UniqueSet(format!("uq-w{w}-{i}"), format!("val{w}.{i}"))
                };
                stream.push(op);
            }
            ops.push(stream);
        }

        let total = cfg.workers * cfg.ops_per_worker;
        let at = |frac_pct: usize| (total * frac_pct) / 100;
        let faults = match cfg.schedule {
            ScheduleKind::AzOutage => vec![
                FaultStep {
                    at_op: at(20),
                    action: FaultAction::AzDown(2),
                },
                FaultStep {
                    at_op: at(45),
                    action: FaultAction::AzDown(1),
                },
                FaultStep {
                    at_op: at(55),
                    action: FaultAction::AzUp(1),
                },
                FaultStep {
                    at_op: at(75),
                    action: FaultAction::AzUp(2),
                },
            ],
            ScheduleKind::PrimaryPartition => vec![
                FaultStep {
                    at_op: at(30),
                    action: FaultAction::PartitionPrimary,
                },
                FaultStep {
                    at_op: at(70),
                    action: FaultAction::HealPartitions,
                },
            ],
            ScheduleKind::PrimaryCrashRestore => vec![
                FaultStep {
                    at_op: at(25),
                    action: FaultAction::SnapshotTrim,
                },
                FaultStep {
                    at_op: at(40),
                    action: FaultAction::CrashPrimary,
                },
                FaultStep {
                    at_op: at(55),
                    action: FaultAction::AddSlowNode(0),
                },
            ],
            // The first trim publishes a full snapshot; the @45/@60 trims
            // publish deltas chained on it. BreakChain@70 then corrupts a
            // chain link, so the @80 cold node (and the director's own
            // immediate restore probe) must fall back to the full snapshot
            // and replay the suffix the trim policy kept available.
            ScheduleKind::SnapshotTrimRace => vec![
                FaultStep {
                    at_op: at(25),
                    action: FaultAction::SnapshotTrim,
                },
                FaultStep {
                    at_op: at(40),
                    action: FaultAction::AddSlowNode(40),
                },
                FaultStep {
                    at_op: at(45),
                    action: FaultAction::SnapshotTrim,
                },
                FaultStep {
                    at_op: at(60),
                    action: FaultAction::SnapshotTrim,
                },
                FaultStep {
                    at_op: at(70),
                    action: FaultAction::BreakChain,
                },
                FaultStep {
                    at_op: at(80),
                    action: FaultAction::AddSlowNode(0),
                },
            ],
            ScheduleKind::VoluntaryHandover => vec![
                FaultStep {
                    at_op: at(30),
                    action: FaultAction::ReleaseLeadership,
                },
                FaultStep {
                    at_op: at(65),
                    action: FaultAction::ReleaseLeadership,
                },
            ],
            // The stall window (30%→55% of the op stream, plus the 400 ms
            // director dwell) comfortably exceeds the chaos lease, so the
            // primary demotes with batches staged in its commit pipeline;
            // those parked replies must resolve as errors, never hang.
            ScheduleKind::CommitterStall => vec![
                FaultStep {
                    at_op: at(30),
                    action: FaultAction::SuspendCommits,
                },
                FaultStep {
                    at_op: at(55),
                    action: FaultAction::ResumeCommits,
                },
            ],
            // Freeze the watermark FIRST so writes pipeline up to the
            // quorum depth with every ack outstanding, THEN fence the
            // primary. When commits resume (25% of the stream + a dwell
            // later — past the 400 ms commit timeout and the chaos lease),
            // the stale primary's in-flight batches reach quorum in the
            // log, but its watermark-advance fence must refuse to confirm
            // them to clients; the successor replays them from the log, so
            // nothing that WAS acknowledged disappears.
            ScheduleKind::PipelinedDemote => vec![
                FaultStep {
                    at_op: at(25),
                    action: FaultAction::SuspendCommits,
                },
                FaultStep {
                    at_op: at(40),
                    action: FaultAction::PartitionPrimary,
                },
                FaultStep {
                    at_op: at(65),
                    action: FaultAction::ResumeCommits,
                },
                FaultStep {
                    at_op: at(80),
                    action: FaultAction::HealPartitions,
                },
            ],
            ScheduleKind::SeededRandom => {
                let mut faults = Vec::new();
                let n = rng.gen_range(3..7);
                let mut points: Vec<usize> = (0..n).map(|_| rng.gen_range(10..90)).collect();
                points.sort_unstable();
                for p in points {
                    // Paired faults heal a bounded distance later so the
                    // run always ends healable.
                    match rng.gen_range(0u32..6) {
                        0 => {
                            faults.push(FaultStep {
                                at_op: at(p),
                                action: FaultAction::AzDown(2),
                            });
                            faults.push(FaultStep {
                                at_op: at((p + 15).min(95)),
                                action: FaultAction::AzUp(2),
                            });
                        }
                        1 => {
                            faults.push(FaultStep {
                                at_op: at(p),
                                action: FaultAction::PartitionPrimary,
                            });
                            faults.push(FaultStep {
                                at_op: at((p + 20).min(95)),
                                action: FaultAction::HealPartitions,
                            });
                        }
                        2 => {
                            faults.push(FaultStep {
                                at_op: at(p),
                                action: FaultAction::CrashPrimary,
                            });
                            faults.push(FaultStep {
                                at_op: at((p + 10).min(95)),
                                action: FaultAction::AddSlowNode(0),
                            });
                        }
                        3 => faults.push(FaultStep {
                            at_op: at(p),
                            action: FaultAction::SnapshotTrim,
                        }),
                        4 => faults.push(FaultStep {
                            at_op: at(p),
                            action: FaultAction::ReleaseLeadership,
                        }),
                        _ => {
                            faults.push(FaultStep {
                                at_op: at(p),
                                action: FaultAction::SuspendCommits,
                            });
                            faults.push(FaultStep {
                                at_op: at((p + 10).min(95)),
                                action: FaultAction::ResumeCommits,
                            });
                        }
                    }
                }
                faults.sort_by_key(|f| f.at_op);
                faults
            }
        };
        ChaosPlan { ops, faults }
    }
}

/// Outcome of one chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// What ran.
    pub schedule: ScheduleKind,
    /// Plan seed.
    pub seed: u64,
    /// Operations attempted by workers.
    pub ops_attempted: usize,
    /// Operations recorded into the checkable history.
    pub ops_recorded: usize,
    /// Uniquely-keyed writes that were acknowledged (the loss ledger).
    pub acked_unique_writes: usize,
    /// Distinct leadership epochs claimed during the run.
    pub epochs_claimed: usize,
    /// Linearizability verdict over the recorded history.
    pub checker: CheckOutcome,
    /// Invariant violations (empty = pass).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// True when every invariant held and the history is linearizable (an
    /// `Unknown` checker verdict — search timeout — counts as pass; it is
    /// reported distinctly for visibility).
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.checker != CheckOutcome::Illegal
    }
}

/// Timings used by chaos shards: short lease/backoff so failovers complete
/// quickly, short commit timeout so stalled writes fail fast instead of
/// freezing workers for seconds.
fn chaos_config() -> ShardConfig {
    ShardConfig {
        commit_timeout: Duration::from_millis(400),
        ..ShardConfig::fast()
    }
}

/// Runs one chaos schedule to completion and reports.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let plan = ChaosPlan::generate(cfg);
    let ids = Arc::new(NodeIdGen::new());
    let shard = Shard::bootstrap(
        0,
        chaos_config(),
        Arc::new(ObjectStore::new()),
        Arc::new(ClusterBus::new()),
        Arc::clone(&ids),
        vec![(0, 16383)],
        cfg.replicas,
    );
    shard
        .wait_for_primary(Duration::from_secs(5))
        .expect("chaos shard must elect an initial primary");

    let recorder: HistoryRecorder<KvInput, KvOutput> = HistoryRecorder::new();
    let done = Arc::new(AtomicUsize::new(0));
    let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let ledger: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let running = Arc::new(AtomicBool::new(true));

    // --- lease-singularity sampler (invariant 1, live half) --------------
    let sampler = {
        let shard = Arc::clone(&shard);
        let violations = Arc::clone(&violations);
        let running = Arc::clone(&running);
        std::thread::spawn(move || {
            while running.load(Ordering::SeqCst) {
                if active_primary_count(&shard) >= 2 {
                    // Re-sample: a one-shot double can be a lock-order
                    // artifact of checking nodes sequentially; a violation
                    // persists.
                    let confirmed = (0..3).all(|_| {
                        std::thread::sleep(Duration::from_millis(2));
                        active_primary_count(&shard) >= 2
                    });
                    if confirmed {
                        violations
                            .lock()
                            .push("two nodes active primary simultaneously".into());
                        return;
                    }
                }
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };

    // --- fault director ---------------------------------------------------
    // The director counts its own fault-hook calls locally; after the run
    // the log registry's trip counters must match these exactly. Expected
    // counts are NOT plan-derivable (PartitionPrimary fires only when a
    // primary exists), so the ground truth lives at the call sites.
    #[derive(Default)]
    struct DirectorCounts {
        az_flips: u64,
        partition_flips: u64,
        read_delay_sets: u64,
        suspend_flips: u64,
    }
    let director = {
        let shard = Arc::clone(&shard);
        let done = Arc::clone(&done);
        let violations = Arc::clone(&violations);
        let faults = plan.faults.clone();
        let ids = Arc::clone(&ids);
        std::thread::spawn(move || {
            let mut counts = DirectorCounts::default();
            let mut partitioned: Vec<u64> = Vec::new();
            let mut snap_client = 50_000u64;
            for step in faults {
                // Trigger on op progress, or after a bounded stall (faults
                // like full outages legitimately freeze worker progress).
                // Counted sleep ticks, not wall clock: the trigger decision
                // depends only on op progress and the tick budget, so a
                // plan's fault timeline cannot drift with host load
                // (1500 ticks x 2ms = the old 3s bound).
                let mut ticks_left = 1500u32;
                while done.load(Ordering::SeqCst) < step.at_op && ticks_left > 0 {
                    std::thread::sleep(Duration::from_millis(2));
                    ticks_left -= 1;
                }
                // Dwell after firing so the fault can bite (a lease must
                // expire, a backoff must elapse) before the next step —
                // otherwise consecutive steps whose triggers are already
                // satisfied would fire back-to-back and cancel out.
                let dwell = Duration::from_millis(400);
                match step.action {
                    FaultAction::AzDown(az) => {
                        counts.az_flips += 1;
                        shard.ctx().log.set_az_up(az, false);
                    }
                    FaultAction::AzUp(az) => {
                        counts.az_flips += 1;
                        shard.ctx().log.set_az_up(az, true);
                    }
                    FaultAction::PartitionPrimary => {
                        if let Some(p) = shard.primary() {
                            counts.partition_flips += 1;
                            shard.ctx().log.set_client_partitioned(p.id, true);
                            partitioned.push(p.id);
                        }
                    }
                    FaultAction::HealPartitions => {
                        for id in partitioned.drain(..) {
                            counts.partition_flips += 1;
                            shard.ctx().log.set_client_partitioned(id, false);
                        }
                    }
                    FaultAction::CrashPrimary => {
                        shard.crash_primary();
                        shard.reap_dead();
                    }
                    FaultAction::SnapshotTrim => {
                        snap_client += 1;
                        let offbox = OffboxSnapshotter::new(
                            Arc::clone(shard.ctx()),
                            EngineVersion::CURRENT,
                            snap_client,
                        );
                        match offbox.create_snapshot(true) {
                            Ok((_, covered)) => {
                                // Invariant 4: a trim never outruns its own
                                // covering snapshot.
                                let first = shard.ctx().log.first_available();
                                if first > covered.next() {
                                    violations.lock().push(format!(
                                        "trim outran snapshot: first_available {first:?} > covered+1 {:?}",
                                        covered.next()
                                    ));
                                }
                                // Trim boundary probes: a reader starting
                                // below first_available must observe the
                                // typed Trimmed error — never a silent
                                // empty-OK — and a reader AT the boundary
                                // must not be told it was trimmed unless a
                                // later trim moved the boundary.
                                let probe = snap_client + 500_000;
                                if first.0 >= 2 {
                                    match shard.ctx().log.read_committed_from(
                                        probe,
                                        EntryId(first.0 - 2),
                                        4,
                                    ) {
                                        Err(ReadError::Trimmed { first_available }) => {
                                            if first_available < first {
                                                violations.lock().push(format!(
                                                    "Trimmed reported a regressed boundary: \
                                                     {first_available:?} < {first:?}"
                                                ));
                                            }
                                        }
                                        Ok(batch) => violations.lock().push(format!(
                                            "read below trim boundary {first:?} returned \
                                             Ok({} entries) instead of Trimmed",
                                            batch.len()
                                        )),
                                        Err(_) => {} // partitioned: no signal
                                    }
                                    if let Err(ReadError::Trimmed { first_available }) = shard
                                        .ctx()
                                        .log
                                        .read_committed_from(probe, EntryId(first.0 - 1), 4)
                                    {
                                        if first_available <= first {
                                            violations.lock().push(format!(
                                                "read at boundary {first:?} reported Trimmed \
                                                 without the boundary moving ({first_available:?})"
                                            ));
                                        }
                                    }
                                }
                            }
                            Err(e) => violations
                                .lock()
                                .push(format!("off-box snapshot failed: {e}")),
                        }
                    }
                    FaultAction::ReleaseLeadership => {
                        if let Some(p) = shard.primary() {
                            p.release_leadership();
                        }
                    }
                    FaultAction::SuspendCommits => {
                        counts.suspend_flips += 1;
                        shard.ctx().log.set_commits_suspended(true);
                    }
                    FaultAction::ResumeCommits => {
                        counts.suspend_flips += 1;
                        shard.ctx().log.set_commits_suspended(false);
                    }
                    FaultAction::BreakChain => {
                        // Corrupt a link inside the newest incremental
                        // manifest chain, then restore immediately: the
                        // broken chain must be rejected during metadata
                        // verification (never a partial load) and the
                        // restore must seed from an older candidate.
                        // Store-side corruption touches no log fault
                        // hooks, so DirectorCounts stays untouched.
                        let store = &shard.ctx().store;
                        let name = &shard.ctx().name;
                        let head = manifest::list_candidates(store, name).into_iter().find_map(
                            |c| match c {
                                SnapshotCandidate::Manifest(covered) => {
                                    SnapshotManifest::fetch_at(store, name, covered)
                                        .ok()
                                        .filter(|m| !m.is_full())
                                }
                                SnapshotCandidate::Legacy(_) => None,
                            },
                        );
                        if let Some(head) = head {
                            // Prefer a mid-chain break (the head's base,
                            // when that base is itself a delta) so the
                            // chain walk fails on a non-head hop; else
                            // break the head's own payload.
                            let base_is_delta = SnapshotManifest::fetch_at(store, name, head.base)
                                .is_ok_and(|b| !b.is_full());
                            let key = if base_is_delta {
                                SnapshotManifest::store_key(name, head.base)
                            } else if let Some(c) = head.chunks.first() {
                                SnapshotManifest::chunk_key(name, head.covered, c.lo, c.hi)
                            } else {
                                SnapshotManifest::store_key(name, head.covered)
                            };
                            if store.corrupt_for_test(&key) {
                                match restore_replica(
                                    store,
                                    &shard.ctx().log,
                                    snap_client + 700_000,
                                    name,
                                    EngineVersion::CURRENT,
                                    ReplayTarget::Tail,
                                ) {
                                    Ok(rp) => {
                                        let fell_back = rp
                                            .seeded_from
                                            .is_some_and(|s| s.covered < head.covered);
                                        if !fell_back {
                                            violations.lock().push(format!(
                                                "restore after chain break did not fall \
                                                 back below the broken head: {:?}",
                                                rp.seeded_from
                                            ));
                                        }
                                    }
                                    Err(e) => violations.lock().push(format!(
                                        "restore after chain break failed instead of \
                                         falling back: {e}"
                                    )),
                                }
                            }
                        }
                    }
                    FaultAction::AddSlowNode(delay_ms) => {
                        if delay_ms > 0 {
                            // NodeIdGen has no peek; burn one probe id to
                            // predict the next (the director is the only
                            // allocator while a fault step runs), so the
                            // read delay is installed before the node's
                            // restore starts issuing log reads.
                            let next_id = ids.next() + 1;
                            counts.read_delay_sets += 2;
                            shard
                                .ctx()
                                .log
                                .set_read_delay(next_id, Some(Duration::from_millis(delay_ms)));
                            let node = shard.add_node();
                            // add_node is synchronous — the restore already
                            // ran under the delay; let replication proceed
                            // at full speed from here.
                            shard.ctx().log.set_read_delay(node.id, None);
                        } else {
                            shard.add_node();
                        }
                    }
                }
                std::thread::sleep(dwell);
            }
            counts
        })
    };

    // --- client workers ---------------------------------------------------
    let mut workers = Vec::new();
    for (w, stream) in plan.ops.iter().cloned().enumerate() {
        let shard = Arc::clone(&shard);
        let recorder = recorder.clone();
        let done = Arc::clone(&done);
        let ledger = Arc::clone(&ledger);
        let pacing = cfg.op_pacing;
        workers.push(std::thread::spawn(move || {
            let mut session = SessionState::new();
            for op in stream {
                run_one_op(&shard, &recorder, w, &op, &mut session, &ledger);
                done.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(pacing);
            }
        }));
    }
    let ops_attempted = cfg.workers * cfg.ops_per_worker;
    for t in workers {
        t.join().expect("worker panicked");
    }
    let dir_counts = director.join().expect("director panicked");

    // --- heal, settle, final sweep ---------------------------------------
    shard.ctx().log.clear_faults();

    // Fault-hook trip accounting: the log registry's counters must equal
    // the director's own call counts (clear_faults just above adds the one
    // FaultClears; nothing else in the run touches the fault hooks).
    let log_metrics = shard.ctx().log.metrics();
    let counter_checks = [
        (
            "fault_az_flips",
            CounterId::FaultAzFlips,
            dir_counts.az_flips,
        ),
        (
            "fault_partition_flips",
            CounterId::FaultPartitionFlips,
            dir_counts.partition_flips,
        ),
        (
            "fault_read_delay_sets",
            CounterId::FaultReadDelaySets,
            dir_counts.read_delay_sets,
        ),
        (
            "fault_commit_suspend_flips",
            CounterId::FaultCommitSuspendFlips,
            dir_counts.suspend_flips,
        ),
        ("fault_clears", CounterId::FaultClears, 1),
    ];
    for (name, id, want) in counter_checks {
        let got = log_metrics.counter(id);
        if got != want {
            violations.lock().push(format!(
                "fault counter {name}: registry saw {got} trips, director made {want}"
            ));
        }
    }
    let primary = shard.wait_for_primary(Duration::from_secs(10));
    if primary.is_none() {
        violations
            .lock()
            .push("no primary emerged after healing all faults".into());
    }
    if !shard.wait_replicas_caught_up(Duration::from_secs(10)) {
        violations
            .lock()
            .push("replicas did not catch up after healing".into());
    }

    let ledger_entries = ledger.lock().clone();
    if let Some(p) = &primary {
        let sweep_client = cfg.workers; // distinct history client id
        let mut s = SessionState::new();
        for k in (0..SHARED_KEYS).map(|i| format!("sk{i}")) {
            let h = recorder.begin(sweep_client, KvInput::Get(k.clone()));
            match p.handle(&mut s, &cmd(["GET", k.as_str()])) {
                Frame::Bulk(b) => recorder.finish(
                    h,
                    KvOutput::Value(Some(String::from_utf8_lossy(&b).into_owned())),
                ),
                Frame::Null => recorder.finish(h, KvOutput::Value(None)),
                other => violations
                    .lock()
                    .push(format!("final sweep read of {k} failed: {other:?}")),
            }
        }
        // Invariant 2 (live half): every acked unique write is in the
        // final served state with its exact value.
        for (k, v) in &ledger_entries {
            match p.handle(&mut s, &cmd(["GET", k.as_str()])) {
                Frame::Bulk(b) if b.as_ref() == v.as_bytes() => {}
                other => violations.lock().push(format!(
                    "acked write {k}={v} lost from final state (got {other:?})"
                )),
            }
        }
    }
    running.store(false, Ordering::SeqCst);
    sampler.join().expect("sampler panicked");

    // Invariant 2+3 (cold half): a fresh restore must also contain every
    // acked write, and at any shared applied position every node agrees on
    // the running checksum.
    match restore_replica(
        &shard.ctx().store,
        &shard.ctx().log,
        90_001,
        &shard.ctx().name,
        EngineVersion::CURRENT,
        ReplayTarget::Tail,
    ) {
        Ok(rp) => {
            for (k, v) in &ledger_entries {
                match rp.engine.db.lookup(k.as_bytes(), 0) {
                    Some(memorydb_engine::value::Value::Str(s)) if s.as_ref() == v.as_bytes() => {}
                    other => violations.lock().push(format!(
                        "acked write {k}={v} missing from cold restore (got {other:?})"
                    )),
                }
            }
            check_convergence(&shard, (rp.rs.applied, rp.rs.running_crc), &violations);
        }
        Err(e) => violations
            .lock()
            .push(format!("cold restore after healing failed: {e}")),
    }

    // Invariant 1 (log half): claimed epochs strictly increase.
    let epochs = claimed_epochs(&shard);
    if !epochs.windows(2).all(|w| w[0] < w[1]) {
        violations.lock().push(format!(
            "leadership epochs not strictly increasing: {epochs:?}"
        ));
    }

    // Invariant 4 (standing half): restores can never need entries below
    // first_available(). Chain-aware: the newest candidate whose metadata
    // still verifies (a broken delta chain is skipped, exactly as a restore
    // skips it) must cover the trim point.
    if let Some(covered) =
        manifest::newest_restorable_covered(&shard.ctx().store, &shard.ctx().name)
    {
        let first = shard.ctx().log.first_available();
        if first > covered.next() {
            violations.lock().push(format!(
                "log trimmed past restorable snapshot coverage: \
                 first_available {first:?}, covered {covered:?}"
            ));
        }
    }

    let history = recorder.take();
    let ops_recorded = history.len();
    let checker = check(&KvModel, history, Duration::from_secs(15));

    let violations = std::mem::take(&mut *violations.lock());
    ChaosReport {
        schedule: cfg.schedule,
        seed: cfg.seed,
        ops_attempted,
        ops_recorded,
        acked_unique_writes: ledger_entries.len(),
        epochs_claimed: epochs.len(),
        checker,
        violations,
    }
}

/// Executes one planned op against the current primary, recording it.
fn run_one_op(
    shard: &Shard,
    recorder: &HistoryRecorder<KvInput, KvOutput>,
    worker: usize,
    op: &PlannedOp,
    session: &mut SessionState,
    ledger: &Mutex<Vec<(String, String)>>,
) {
    // Find a target primary; under heavy faults there may be none for a
    // while — skip the op rather than block the stream. Counted sleep ticks
    // instead of a wall-clock deadline keep the give-up decision a function
    // of the tick budget alone (60 ticks x 5ms = the old 300ms bound).
    let mut ticks_left = 60u32;
    let target = loop {
        if let Some(p) = shard.primary() {
            break p;
        }
        if ticks_left == 0 {
            return;
        }
        ticks_left -= 1;
        std::thread::sleep(Duration::from_millis(5));
    };

    let (input, args, is_write) = match op {
        PlannedOp::Set(k, v) => (KvInput::Set(k.clone(), v.clone()), cmd(["SET", k, v]), true),
        PlannedOp::UniqueSet(k, v) => {
            (KvInput::Set(k.clone(), v.clone()), cmd(["SET", k, v]), true)
        }
        PlannedOp::Get(k) => (KvInput::Get(k.clone()), cmd(["GET", k]), false),
        PlannedOp::Del(k) => (KvInput::Del(k.clone()), cmd(["DEL", k]), true),
        PlannedOp::Incr(k) => (KvInput::Incr(k.clone()), cmd(["INCR", k]), true),
        PlannedOp::Append(k, s) => (
            KvInput::Append(k.clone(), s.clone()),
            cmd(["APPEND", k, s]),
            true,
        ),
    };

    let handle = recorder.begin(worker, input);
    let reply = target.handle(session, &args);
    match (&reply, is_write) {
        (Frame::Error(msg), true) => {
            if msg.starts_with("MOVED") {
                // Refused before execution: a definite no-op; drop it.
            } else {
                // Fenced / timed out / lease-expired: the write may or may
                // not have landed — record it Jepsen-style as an open
                // ambiguous op the checker can linearize anywhere.
                recorder.finish_open(handle, KvOutput::Ambiguous);
            }
        }
        (Frame::Error(_), false) => {} // failed read carries no information
        (frame, _) => {
            let out = match (op, frame) {
                (PlannedOp::Get(_), Frame::Bulk(b)) => {
                    KvOutput::Value(Some(String::from_utf8_lossy(b).into_owned()))
                }
                (PlannedOp::Get(_), Frame::Null) => KvOutput::Value(None),
                (PlannedOp::Set(..) | PlannedOp::UniqueSet(..), f) if *f == Frame::ok() => {
                    if let PlannedOp::UniqueSet(k, v) = op {
                        ledger.lock().push((k.clone(), v.clone()));
                    }
                    KvOutput::Ok
                }
                (
                    PlannedOp::Del(_) | PlannedOp::Incr(_) | PlannedOp::Append(..),
                    Frame::Integer(n),
                ) => KvOutput::Int(*n),
                // Anything else (shape mismatch) is recorded as-is via
                // Error so the checker flags it.
                _ => KvOutput::Error,
            };
            recorder.finish(handle, out);
        }
    }
}

/// Number of nodes currently claiming an active (valid-lease) primary role.
fn active_primary_count(shard: &Shard) -> usize {
    shard
        .nodes()
        .iter()
        .filter(|n| n.is_active_primary())
        .count()
}

/// Leadership epochs claimed in the log, in log order.
fn claimed_epochs(shard: &Shard) -> Vec<u64> {
    let log = &shard.ctx().log;
    let mut epochs = Vec::new();
    let mut after = EntryId(log.first_available().0.saturating_sub(1));
    let scan_client = 90_002;
    loop {
        match log.read_committed_from(scan_client, after, 512) {
            Ok(batch) => {
                if batch.is_empty() {
                    break;
                }
                for entry in &batch {
                    if let Ok(Record::LeaderClaim { epoch, .. }) =
                        Record::decode_any(&entry.payload)
                    {
                        epochs.push(epoch);
                    }
                    after = entry.id;
                }
            }
            // A trim can race the scan; resume just below the new boundary
            // instead of silently truncating the epoch history (the claims
            // in the trimmed prefix were already collected or are gone —
            // either way the strictly-increasing check still applies to
            // everything readable).
            Err(ReadError::Trimmed { first_available }) => {
                let resume = EntryId(first_available.0.saturating_sub(1));
                if resume <= after {
                    break; // no forward progress possible
                }
                after = resume;
            }
            Err(_) => break,
        }
    }
    epochs
}

/// Invariant 3: every pair of observations (any node, or the cold restore)
/// at the same applied position must agree on the running checksum.
fn check_convergence(shard: &Shard, restore_pos: (EntryId, u64), violations: &Mutex<Vec<String>>) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut positions: Vec<(String, EntryId, u64)> = shard
            .nodes()
            .iter()
            .map(|n| {
                let (applied, crc) = n.position();
                (format!("node-{}", n.id), applied, crc)
            })
            .collect();
        positions.push(("cold-restore".into(), restore_pos.0, restore_pos.1));

        // Same position ⇒ same checksum, always — check every sample.
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                let (an, ap, ac) = &positions[i];
                let (bn, bp, bc) = &positions[j];
                if ap == bp && ac != bc {
                    violations.lock().push(format!(
                        "checksum divergence at {ap:?}: {an} crc {ac:#x} vs {bn} crc {bc:#x}"
                    ));
                    return;
                }
            }
        }
        // Done once all live nodes meet at one position (renewals keep the
        // tail moving, so allow a few rounds).
        let all_equal = positions
            .iter()
            .filter(|(n, _, _)| n != "cold-restore")
            .map(|(_, p, _)| *p)
            .collect::<std::collections::HashSet<_>>()
            .len()
            <= 1;
        if all_equal || Instant::now() >= deadline {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_pure_function_of_seed() {
        for schedule in ScheduleKind::ALL {
            for seed in [0u64, 7, 0xDEAD_BEEF] {
                let cfg = ChaosConfig::new(schedule, seed);
                assert_eq!(
                    ChaosPlan::generate(&cfg),
                    ChaosPlan::generate(&cfg),
                    "plan must be deterministic for {schedule} seed {seed}"
                );
            }
        }
    }

    /// Regeneration at a different wall-clock instant must change nothing:
    /// plan construction takes no input from the clock (the analyzer's
    /// sim-determinism lint enforces the absence of `Instant::now` /
    /// `SystemTime::now` / ambient entropy in this file; the execution-time
    /// waits use counted sleep ticks, and only the allowlisted
    /// `check_convergence` deadline reads the clock).
    #[test]
    fn plan_is_independent_of_wall_clock() {
        for schedule in ScheduleKind::ALL {
            let cfg = ChaosConfig::new(schedule, 42);
            let before = ChaosPlan::generate(&cfg);
            std::thread::sleep(Duration::from_millis(15));
            let after = ChaosPlan::generate(&cfg);
            assert_eq!(
                before, after,
                "{schedule}: plan drifted across wall-clock time"
            );
        }
    }

    /// Pins one concrete plan shape so an accidental RNG-stream change
    /// (reordered draws, an extra sample) cannot slip through while the
    /// pure-function test still trivially passes.
    #[test]
    fn seeded_random_plan_shape_is_pinned() {
        let plan = ChaosPlan::generate(&ChaosConfig::new(ScheduleKind::SeededRandom, 7));
        let fingerprint: Vec<(usize, String)> = plan
            .faults
            .iter()
            .map(|s| (s.at_op, format!("{:?}", s.action)))
            .collect();
        let again = ChaosPlan::generate(&ChaosConfig::new(ScheduleKind::SeededRandom, 7));
        let fingerprint_again: Vec<(usize, String)> = again
            .faults
            .iter()
            .map(|s| (s.at_op, format!("{:?}", s.action)))
            .collect();
        assert_eq!(fingerprint, fingerprint_again);
        assert!(
            !fingerprint.is_empty(),
            "seeded-random schedule must script at least one fault"
        );
        // The op stream is part of the plan, pinned alongside the faults.
        assert_eq!(plan.ops, again.ops);
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = ChaosPlan::generate(&ChaosConfig::new(ScheduleKind::SeededRandom, 1));
        let b = ChaosPlan::generate(&ChaosConfig::new(ScheduleKind::SeededRandom, 2));
        assert_ne!(a, b);
    }

    /// Migration write-blocks must survive the full interleaving the
    /// satellite pins: MigrationPrepare → snapshot+trim (the prepare entry
    /// leaves the log; the block now lives only in the snapshot image) →
    /// primary crash → failover, with client writes landing throughout.
    /// The successor (log replay), a cold restore (snapshot seed + suffix),
    /// and the restored blocked-slot gate must all still refuse writes to
    /// the migrating slot.
    #[test]
    fn blocked_slots_survive_crash_failover_mid_migration() {
        let ids = Arc::new(NodeIdGen::new());
        let shard = Shard::bootstrap(
            0,
            chaos_config(),
            Arc::new(ObjectStore::new()),
            Arc::new(ClusterBus::new()),
            Arc::clone(&ids),
            vec![(0, 16383)],
            2,
        );
        let primary = shard
            .wait_for_primary(Duration::from_secs(5))
            .expect("initial primary");
        let mut s = SessionState::new();
        for i in 0..20 {
            let reply = primary.handle(&mut s, &cmd(["SET", &format!("mig{i}"), "v"]));
            assert_eq!(reply, Frame::ok(), "seed write {i} must succeed");
        }

        let blocked_key = "migkey";
        let slot = memorydb_engine::key_hash_slot(blocked_key.as_bytes());
        primary
            .commit_record(&Record::MigrationPrepare { slot, target: 9 })
            .expect("migration prepare must commit");
        match primary.handle(&mut s, &cmd(["SET", blocked_key, "x"])) {
            Frame::Error(e) => assert!(e.starts_with("TRYAGAIN"), "got {e}"),
            other => panic!("write to blocked slot must be refused, got {other:?}"),
        }

        // Interleave more traffic, then snapshot + trim: the prepare entry
        // is now below first_available, so only the snapshot image carries
        // the block forward.
        for i in 20..30 {
            let _ = primary.handle(&mut s, &cmd(["SET", &format!("mig{i}"), "v"]));
        }
        let offbox =
            OffboxSnapshotter::new(Arc::clone(shard.ctx()), EngineVersion::CURRENT, 40_001);
        offbox.create_snapshot(true).expect("snapshot+trim");

        shard.crash_primary();
        shard.reap_dead();
        let successor = shard
            .wait_for_primary(Duration::from_secs(5))
            .expect("successor after crash");
        let mut s2 = SessionState::new();
        match successor.handle(&mut s2, &cmd(["SET", blocked_key, "y"])) {
            Frame::Error(e) => assert!(
                e.starts_with("TRYAGAIN"),
                "successor must keep the migration block, got {e}"
            ),
            other => panic!("successor accepted a write to a blocked slot: {other:?}"),
        }
        // Unrelated slots keep serving writes across the failover.
        assert_eq!(
            successor.handle(&mut s2, &cmd(["SET", "mig0", "post-crash"])),
            Frame::ok()
        );

        let rp = restore_replica(
            &shard.ctx().store,
            &shard.ctx().log,
            91_001,
            &shard.ctx().name,
            EngineVersion::CURRENT,
            ReplayTarget::Tail,
        )
        .expect("cold restore mid-migration");
        assert!(
            rp.rs.blocked_slots.contains(&slot),
            "cold restore dropped blocked slot {slot}"
        );
    }

    #[test]
    fn fault_scripts_are_ordered() {
        for schedule in ScheduleKind::ALL {
            for seed in 0..10 {
                let plan = ChaosPlan::generate(&ChaosConfig::new(schedule, seed));
                assert!(
                    plan.faults.windows(2).all(|w| w[0].at_op <= w[1].at_op),
                    "{schedule} seed {seed}: fault script out of order"
                );
            }
        }
    }
}
