//! # memorydb-sim — deterministic performance simulation
//!
//! The paper's evaluation (§6) ran on real EC2 Graviton3 fleets we do not
//! have, so the performance figures are regenerated with a deterministic
//! discrete-event simulation of the serving path:
//!
//! ```text
//! client ⇄ network ⇄ [IO-in threads] → [engine thread] → (txlog commit) → [IO-out threads] ⇄ client
//! ```
//!
//! * [`instance`] — the r7g instance-type catalogue and the calibrated
//!   **cost model** (per-op CPU costs, IO-thread counts, Enhanced-IO
//!   multiplexing effect, multi-AZ commit latency). Every constant is
//!   documented with its provenance; absolute numbers are calibrated, the
//!   *shapes* are the reproduction target.
//! * [`des`] — the event-driven queueing simulator: closed-loop clients
//!   (the paper's 10×100 redis-benchmark connections) and open-loop Poisson
//!   arrivals (the latency-vs-offered-load sweeps of Figure 5).
//! * [`metrics`] — log-bucketed latency histograms (p50/p99/p100) and
//!   throughput accounting.
//!
//! Figures 6 and 7 (BGSave collapse, off-box flatness) are driven from the
//! analytic memory model in `memorydb_baseline::bgsave` by the bench crate.

pub mod chaos;
pub mod des;
pub mod instance;
pub mod interleave;
pub mod metrics;

pub use des::{run_sim, LoadMode, SimParams, SimResult};
pub use instance::{CostModel, InstanceType, SystemKind};
pub use metrics::Histogram;
