//! Interleaving models for the commit pipeline's three handoff invariants
//! (DESIGN.md §11/§13). Each correct model is checked over *every* schedule;
//! each is paired with a deliberately-broken variant the explorer must
//! catch, so a silently-weakened model cannot pass.
//!
//! Named invariants pinned here:
//! 1. `model_window_release_exactly_once` — the `begin_release` CAS makes
//!    ticket resolution idempotent: the in-flight window is released
//!    exactly once no matter which of three racing resolvers wins.
//! 2. `model_flush_leader_handoff_no_loss` — a submitter whose try-lock
//!    leadership bid loses while the current leader has already snapshotted
//!    the stage queue cannot lose its entry: the committer fallback drains
//!    it, and appends never reorder against submission order.
//! 3. `model_fenced_ticket_resolves_ambiguous` — the ack-fence re-check at
//!    watermark advance: a demotion before the fence read forces the
//!    ambiguous (TimedOut) resolution; durable resolution implies the fence
//!    was read clean *after* the watermark advanced.

use memorydb_sim::interleave::{explore, Step, ThreadSpec};
use std::cell::Cell;

fn step<S>(f: impl Fn(&mut S) -> bool + 'static) -> Step<S> {
    Box::new(f)
}

// ---------------------------------------------------------------------------
// Invariant 1: exactly-once window release (begin_release CAS).

#[derive(Clone)]
struct ReleaseState {
    released: bool,     // the Ticket::released CAS flag
    claimed: [bool; 3], // which resolver won the CAS
    window: i32,        // in-flight window permits (entries + bytes stand-in)
    releases: u8,
}

fn release_threads(use_cas: bool) -> Vec<ThreadSpec<ReleaseState>> {
    ["flush", "completer", "fence"]
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            ThreadSpec::worker(
                name,
                vec![
                    step(move |s: &mut ReleaseState| {
                        // begin_release: compare_exchange(false, true).
                        if use_cas {
                            if !s.released {
                                s.released = true;
                                s.claimed[i] = true;
                            }
                        } else {
                            // Buggy variant: resolve without the CAS gate.
                            s.claimed[i] = true;
                        }
                        true
                    }),
                    step(move |s: &mut ReleaseState| {
                        if s.claimed[i] {
                            s.window -= 2;
                            s.releases += 1;
                        }
                        true
                    }),
                ],
            )
        })
        .collect()
}

fn run_release_model(use_cas: bool) -> memorydb_sim::interleave::Outcome {
    let init = ReleaseState {
        released: false,
        claimed: [false; 3],
        window: 2,
        releases: 0,
    };
    explore(
        &init,
        &release_threads(use_cas),
        &|s| {
            if s.releases <= 1 && s.window >= 0 {
                Ok(())
            } else {
                Err(format!(
                    "window released {} times (window = {})",
                    s.releases, s.window
                ))
            }
        },
        &|s| {
            if s.releases == 1 && s.window == 0 {
                Ok(())
            } else {
                Err(format!(
                    "terminal: releases = {}, window = {}",
                    s.releases, s.window
                ))
            }
        },
    )
}

#[test]
fn model_window_release_exactly_once() {
    run_release_model(true).assert_clean();
}

#[test]
fn model_detects_missing_begin_release_cas() {
    let out = run_release_model(false);
    assert!(
        !out.failures.is_empty(),
        "the explorer must catch the double release"
    );
}

// ---------------------------------------------------------------------------
// Invariant 2: flush-token leadership handoff loses no staged entry.

#[derive(Clone, Default)]
struct FlushState {
    next: u32,
    order: Vec<u32>,      // submission order (what the log must follow)
    staged: Vec<u32>,     // the stage queue
    taken: [Vec<u32>; 2], // per-submitter drained snapshot
    committer_taken: Vec<u32>,
    log: Vec<u32>,
    token: bool, // the flush token mutex
    leader: [bool; 2],
    committer_leads: bool,
}

/// Submitter steps: stage → try-token → snapshot-if-leader →
/// append+release. `release_before_append` is the buggy variant where the
/// token is released before the snapshot is appended.
fn submitter(i: usize, name: &'static str, release_before_append: bool) -> ThreadSpec<FlushState> {
    let mut steps: Vec<Step<FlushState>> = vec![
        step(move |s: &mut FlushState| {
            let id = s.next;
            s.next += 1;
            s.order.push(id);
            s.staged.push(id);
            true
        }),
        step(move |s: &mut FlushState| {
            // try_lock: non-blocking leadership bid.
            if !s.token {
                s.token = true;
                s.leader[i] = true;
            }
            true
        }),
        step(move |s: &mut FlushState| {
            if s.leader[i] {
                s.taken[i] = std::mem::take(&mut s.staged);
            }
            true
        }),
    ];
    if release_before_append {
        steps.push(step(move |s: &mut FlushState| {
            if s.leader[i] {
                s.token = false; // bug: hand the token off too early
            }
            true
        }));
        steps.push(step(move |s: &mut FlushState| {
            if s.leader[i] {
                s.log.append(&mut s.taken[i]);
                s.leader[i] = false;
            }
            true
        }));
    } else {
        steps.push(step(move |s: &mut FlushState| {
            if s.leader[i] {
                s.log.append(&mut s.taken[i]);
                s.leader[i] = false;
                s.token = false;
            }
            true
        }));
    }
    ThreadSpec::worker(name, steps)
}

/// The committer fallback: blocked until there is stranded work and the
/// token is free; two passes cover both submitters stranding entries.
fn committer() -> ThreadSpec<FlushState> {
    let acquire = |s: &mut FlushState| {
        if s.token || s.staged.is_empty() {
            return false; // parked: no work, or a submitter leads
        }
        s.token = true;
        s.committer_leads = true;
        s.committer_taken = std::mem::take(&mut s.staged);
        true
    };
    let append = |s: &mut FlushState| {
        if s.committer_leads {
            s.log.append(&mut s.committer_taken);
            s.committer_leads = false;
            s.token = false;
        }
        true
    };
    ThreadSpec::daemon(
        "committer",
        vec![step(acquire), step(append), step(acquire), step(append)],
    )
}

fn flush_invariant(s: &FlushState) -> Result<(), String> {
    if s.order.starts_with(&s.log) {
        Ok(())
    } else {
        Err(format!(
            "log {:?} is not a prefix of submission order {:?}",
            s.log, s.order
        ))
    }
}

fn flush_final(s: &FlushState) -> Result<(), String> {
    if s.log != s.order {
        return Err(format!(
            "handoff lost entries: log {:?} != submitted {:?} (staged {:?})",
            s.log, s.order, s.staged
        ));
    }
    Ok(())
}

#[test]
fn model_flush_leader_handoff_no_loss() {
    let threads = vec![
        submitter(0, "sub-a", false),
        submitter(1, "sub-b", false),
        committer(),
    ];
    let out = explore(
        &FlushState::default(),
        &threads,
        &flush_invariant,
        &flush_final,
    );
    out.assert_clean();
    assert!(out.interleavings > 100, "explorer barely permuted: {out:?}");
}

#[test]
fn model_detects_stranded_stage_without_committer_fallback() {
    // Without the committer, a submitter whose token bid loses after the
    // leader's snapshot strands its entry — the starvation hole the single
    // drain pass leaves open by design.
    let threads = vec![submitter(0, "sub-a", false), submitter(1, "sub-b", false)];
    let out = explore(
        &FlushState::default(),
        &threads,
        &flush_invariant,
        &flush_final,
    );
    assert!(
        out.failures.iter().any(|f| f.contains("handoff lost")),
        "{out:?}"
    );
}

#[test]
fn model_detects_append_after_token_release() {
    // Releasing the token before appending lets the next leader append
    // first: submission order breaks.
    let threads = vec![
        submitter(0, "sub-a", true),
        submitter(1, "sub-b", true),
        committer(),
    ];
    let out = explore(
        &FlushState::default(),
        &threads,
        &flush_invariant,
        &flush_final,
    );
    assert!(
        out.failures.iter().any(|f| f.contains("not a prefix")),
        "{out:?}"
    );
}

// ---------------------------------------------------------------------------
// Invariant 3: watermark advance vs. ack fencing.

#[derive(Clone, Default)]
struct FenceState {
    clock: u32,
    watermark_at: u32,
    fence_read_at: u32,
    demoted_at: u32,
    fenced: bool,
    snap_clean: Option<bool>,
    durable: bool,
    ambiguous: bool,
}

/// Completer steps in the given order; the correct protocol advances the
/// watermark first and reads the fence after.
fn completer(fence_read_first: bool) -> ThreadSpec<FenceState> {
    let advance = |s: &mut FenceState| {
        s.clock += 1;
        s.watermark_at = s.clock;
        true
    };
    let fence_read = |s: &mut FenceState| {
        s.clock += 1;
        s.fence_read_at = s.clock;
        s.snap_clean = Some(!s.fenced);
        true
    };
    let resolve = |s: &mut FenceState| {
        if s.snap_clean == Some(true) {
            s.durable = true;
        } else {
            s.ambiguous = true;
        }
        true
    };
    let steps: Vec<Step<FenceState>> = if fence_read_first {
        vec![step(fence_read), step(advance), step(resolve)]
    } else {
        vec![step(advance), step(fence_read), step(resolve)]
    };
    ThreadSpec::worker("completer", steps)
}

fn demoter() -> ThreadSpec<FenceState> {
    ThreadSpec::worker(
        "demoter",
        vec![step(|s: &mut FenceState| {
            s.clock += 1;
            s.demoted_at = s.clock;
            s.fenced = true;
            true
        })],
    )
}

fn fence_final(s: &FenceState) -> Result<(), String> {
    if s.durable == s.ambiguous {
        return Err("ticket must resolve exactly one way".to_string());
    }
    if s.durable {
        // Durable requires: fence read after the watermark advanced, and no
        // demotion before that read.
        if s.fence_read_at <= s.watermark_at {
            return Err(format!(
                "durable but fence read (t{}) precedes watermark advance (t{})",
                s.fence_read_at, s.watermark_at
            ));
        }
        if s.demoted_at != 0 && s.demoted_at < s.fence_read_at {
            return Err(format!(
                "durable although demoted (t{}) before the fence read (t{})",
                s.demoted_at, s.fence_read_at
            ));
        }
    } else if s.demoted_at == 0 || s.demoted_at > s.fence_read_at {
        return Err("ambiguous without a demotion before the fence read".to_string());
    }
    Ok(())
}

#[test]
fn model_fenced_ticket_resolves_ambiguous() {
    let durable_seen = Cell::new(0u32);
    let ambiguous_seen = Cell::new(0u32);
    let threads = vec![completer(false), demoter()];
    let out = explore(&FenceState::default(), &threads, &|_| Ok(()), &|s| {
        fence_final(s)?;
        if s.durable {
            durable_seen.set(durable_seen.get() + 1);
        } else {
            ambiguous_seen.set(ambiguous_seen.get() + 1);
        }
        Ok(())
    });
    out.assert_clean();
    // Both outcomes must be reachable: demote-late schedules stay durable,
    // demote-early schedules must downgrade to ambiguous.
    assert!(durable_seen.get() > 0, "no schedule resolved durable");
    assert!(ambiguous_seen.get() > 0, "no schedule resolved ambiguous");
}

#[test]
fn model_detects_fence_read_before_watermark_advance() {
    // Snapshotting the fence before the watermark advances leaves a window
    // where a demotion lands unseen and the ticket still resolves durable.
    let threads = vec![completer(true), demoter()];
    let out = explore(&FenceState::default(), &threads, &|_| Ok(()), &fence_final);
    assert!(
        out.failures
            .iter()
            .any(|f| f.contains("precedes watermark advance")),
        "{out:?}"
    );
}
