//! Allocation census: a counting wrapper around the system allocator.
//!
//! [`CountingAlloc`] forwards every request to [`std::alloc::System`] and
//! bumps two process-wide atomic counters (allocation calls, allocated
//! bytes). It is *not* registered anywhere in the serving stack — only the
//! census harness (`memorydb-bench`'s `alloc_census` binary) installs it as
//! `#[global_allocator]`, so production builds pay nothing. The counters
//! measure the zero-copy hot-path claim (DESIGN.md §15): at pipeline depth
//! 1, allocations-per-command *is* the latency floor, and unlike the
//! stripe-scaling gates this census is meaningful on a 1-core host.
//!
//! Only `alloc`/`alloc_zeroed`/`realloc` count (each is one heap round-trip
//! the serve path asked for); `dealloc` is free to the census because every
//! counted allocation already implies its eventual free.

// The one sanctioned unsafe block in the workspace: implementing
// `GlobalAlloc` is inherently unsafe and this impl is a pure pass-through
// to `System` plus two Relaxed counter bumps — no pointer arithmetic of
// its own, nothing retained.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// Counting pass-through allocator. Register with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;` in a
/// bench/test binary, then diff [`alloc_counts`] snapshots around the
/// region of interest.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// One snapshot of the census counters (monotonic since process start,
/// zero unless a [`CountingAlloc`] is the registered global allocator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// Heap allocation calls (`alloc` + `alloc_zeroed` + `realloc`).
    pub calls: u64,
    /// Bytes requested across those calls.
    pub bytes: u64,
}

impl AllocCounts {
    /// Counter deltas since an `earlier` snapshot.
    pub fn since(self, earlier: AllocCounts) -> AllocCounts {
        AllocCounts {
            calls: self.calls.saturating_sub(earlier.calls),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Reads the current census counters.
pub fn alloc_counts() -> AllocCounts {
    AllocCounts {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the counter plumbing without registering the allocator
    /// globally: drive the `GlobalAlloc` impl directly and assert both
    /// counters move by exactly what was requested.
    #[test]
    fn counters_track_direct_alloc_calls() {
        let a = CountingAlloc;
        let before = alloc_counts();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p2 = a.realloc(p, layout, 128);
            assert!(!p2.is_null());
            a.dealloc(p2, Layout::from_size_align(128, 8).unwrap());
            let z = a.alloc_zeroed(layout);
            assert!(!z.is_null());
            a.dealloc(z, layout);
        }
        let d = alloc_counts().since(before);
        assert_eq!(d.calls, 3, "alloc + realloc + alloc_zeroed");
        assert_eq!(d.bytes, 64 + 128 + 64);
        // dealloc never counts.
        let after = alloc_counts();
        unsafe {
            let p = a.alloc(layout);
            a.dealloc(p, layout);
        }
        assert_eq!(alloc_counts().since(after).calls, 1);
    }

    #[test]
    fn since_saturates_and_defaults_to_zero() {
        let zero = AllocCounts::default();
        let some = AllocCounts { calls: 5, bytes: 9 };
        assert_eq!(zero.since(some), zero);
        assert_eq!(some.since(zero), some);
    }
}
